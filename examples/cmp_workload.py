"""Full-system example: a 64-tile CMP running a synthetic SPECjbb.

Builds the paper's Table 2 platform -- 64 out-of-order cores with private
L1s, a shared distributed L2 with a MESI directory, corner memory
controllers -- on top of two network layouts, replays a profile-matched
synthetic SPECjbb trace on every core, and reports IPC, L1 behaviour,
memory round-trip latency and network power.

Run:  python examples/cmp_workload.py
"""

from repro.cmp import CmpSystem
from repro.core import layout_by_name
from repro.core.power import network_power_breakdown
from repro.traffic.workloads import WORKLOADS, generate_core_trace

WORKLOAD = "SPECjbb"
RECORDS_PER_CORE = 400
LAYOUTS = ("baseline", "diagonal+BL")


def main() -> None:
    profile = WORKLOADS[WORKLOAD]
    print(
        f"workload {WORKLOAD}: {profile.mem_fraction:.0%} memory instructions, "
        f"{profile.write_fraction:.0%} writes, "
        f"{profile.sharing_fraction:.0%} shared accesses\n"
    )
    traces = {
        core: generate_core_trace(profile, core, RECORDS_PER_CORE, seed=21)
        for core in range(64)
    }
    for name in LAYOUTS:
        system = CmpSystem(layout_by_name(name), traces)
        system.warm_caches()
        system.network.begin_measurement()
        cycles = system.run(max_cycles=500_000)
        system.network.end_measurement()

        l1_hits = sum(l1.cache.hits for l1 in system.l1s.values())
        l1_total = sum(
            l1.cache.hits + l1.cache.misses for l1 in system.l1s.values()
        )
        misses = system.miss_latency_stats()
        dram = sum(1 for r in system.miss_records if r.via_memory)
        power = network_power_breakdown(system.network, system.network.stats)

        print(f"{name} ({system.network.describe()})")
        print(f"  finished in        : {cycles} cycles")
        print(f"  mean IPC           : {system.mean_ipc():.3f}")
        print(f"  L1 hit rate        : {100 * l1_hits / l1_total:.1f}%")
        print(
            f"  L1 miss round trip : {misses['mean']:.1f} cycles "
            f"({int(misses['count'])} misses, {dram} to DRAM)"
        )
        print(
            f"  network latency    : "
            f"{system.network.stats.avg_latency_cycles:.1f} cycles/packet"
        )
        print(f"  network power      : {power['total']:.2f} W")
        print()


if __name__ == "__main__":
    main()
