"""Topology and traffic-pattern tour.

Shows the breadth of the substrate beyond the headline experiment:

* the same Diagonal+BL layout evaluated on a mesh vs an edge-symmetric
  torus (the Section 5.1.1 comparison);
* all six synthetic traffic patterns on the baseline mesh, including the
  self-similar (Pareto ON/OFF) injection process.

Run:  python examples/torus_and_traffic_patterns.py
"""

from repro.core import build_network, layout_by_name
from repro.noc.topology import Mesh, Torus
from repro.traffic import SelfSimilarInjector, pattern_by_name, run_synthetic

RATE = 0.035


def mesh_vs_torus() -> None:
    print("Diagonal+BL on mesh vs torus (UR @ %.3f):" % RATE)
    for topo_name, topo_cls in (("mesh", Mesh), ("torus", Torus)):
        for layout_name in ("baseline", "diagonal+BL"):
            layout = layout_by_name(layout_name)
            network = build_network(layout, topology=topo_cls(8))
            pattern = pattern_by_name("uniform_random", network.topology)
            result = run_synthetic(
                network, pattern, RATE,
                warmup_packets=100, measure_packets=600, seed=17,
            )
            print(
                f"  {topo_name:5s} {layout_name:12s} "
                f"latency {result.stats.avg_latency_cycles:6.1f} cycles, "
                f"hops {result.stats.avg_hops:.2f}"
            )
    print()


def pattern_tour() -> None:
    print("baseline mesh under every synthetic pattern (@ %.3f):" % RATE)
    names = (
        "uniform_random",
        "nearest_neighbor",
        "transpose",
        "bit_complement",
        "bit_reverse",
        "tornado",
    )
    for name in names:
        network = build_network(layout_by_name("baseline"))
        pattern = pattern_by_name(name, network.topology)
        result = run_synthetic(
            network, pattern, RATE,
            warmup_packets=100, measure_packets=600, seed=17,
        )
        print(
            f"  {name:17s} latency {result.stats.avg_latency_cycles:6.1f} cycles, "
            f"hops {result.stats.avg_hops:5.2f}"
        )
    # Self-similar: same spatial pattern, bursty arrival process.
    network = build_network(layout_by_name("baseline"))
    pattern = pattern_by_name("uniform_random", network.topology)
    injector = SelfSimilarInjector(num_nodes=64, rate=RATE, seed=17)
    result = run_synthetic(
        network, pattern, RATE,
        warmup_packets=100, measure_packets=600, seed=17, injector=injector,
    )
    print(
        f"  {'self_similar(UR)':17s} latency {result.stats.avg_latency_cycles:6.1f} cycles, "
        f"p95 {result.stats.latency_percentile(0.95):.0f}"
    )


if __name__ == "__main__":
    mesh_vs_torus()
    pattern_tour()
