"""Design-space exploration: where should the big routers go?

Reproduces the spirit of the paper's footnote 4: an exhaustive search
over all C(16, 8) = 12,870 placements of 8 big routers on a 4x4 mesh,
ranked by the analytic cost model (load-weighted coverage of X-Y flows),
a seeded annealing search of the non-enumerable 8x8 space
(:mod:`repro.search`), plus a cycle-simulated shoot-out between the
three named shapes (diagonal / center / rows) scaled up to the 8x8 mesh.

Run:  python examples/design_space_exploration.py
"""

from repro.core.design_space import PlacementExplorer
from repro.core.layouts import (
    layout_by_name,
    build_network,
)
from repro.traffic import UniformRandom, run_synthetic


def exhaustive_4x4() -> None:
    explorer = PlacementExplorer(4)
    print(f"4x4 mesh, 8 big routers: {explorer.count_placements(8)} placements")
    print("(the paper also searched 1820 and 8008 configurations for the")
    print(" 4- and 6-big-router cases)\n")

    top = explorer.top_placements(8, k=5)
    print("top 5 placements by analytic score:")
    for i, score in enumerate(top, 1):
        grid = [
            "".join("B" if r * 4 + c in score.big_positions else "." for c in range(4))
            for r in range(4)
        ]
        print(f"  #{i}: score {score.score:.3f}  rows: {' '.join(grid)}")
    print()
    print("named shapes:")
    for name, score in explorer.named_placements(8).items():
        rank = explorer.rank_of(score.big_positions)
        print(
            f"  {name:9s} score {score.score:.3f} "
            f"(rank {rank}/{explorer.count_placements(8)}, "
            f"flow coverage {100 * score.flow_coverage:.0f}%)"
        )


def annealed_8x8() -> None:
    """The 8x8 space (C(64, 16) ~= 4.9e14) is far beyond enumeration --
    PlacementExplorer.enumerate refuses it -- so search it with the
    repro.search metaheuristics instead."""
    from repro.search import PlacementEvaluator, simulated_annealing

    print("\n8x8 mesh, 16 big routers: seeded annealing (enumeration impossible):")
    evaluator = PlacementEvaluator(8)
    result = simulated_annealing(evaluator, 16, seed=0, steps=800, restarts=2)
    grid = [
        "".join("B" if r * 8 + c in result.best_placement else "." for c in range(8))
        for r in range(8)
    ]
    print(
        f"  best scalar {result.best.scalar:.4f} after {result.proposals} "
        f"proposals"
    )
    print(f"  (+ {result.evaluations} evaluations incl. polish); placement:")
    for row in grid:
        print(f"    {row}")
    print("  (python -m repro.experiments.placement_search runs the full")
    print("   multi-stage study: both traffic patterns, the diagonal-family")
    print("   extrapolation, the Pareto frontier and cycle-simulated refinement)")


def simulated_8x8() -> None:
    print("\ncycle-simulated 8x8 shoot-out (UR @ 0.05 packets/node/cycle):")
    for name in ("baseline", "center+BL", "row2_5+BL", "diagonal+BL"):
        network = build_network(layout_by_name(name))
        result = run_synthetic(
            network, UniformRandom(64), rate=0.05,
            warmup_packets=100, measure_packets=800, seed=9,
        )
        print(
            f"  {name:12s} latency {result.avg_latency_cycles:6.1f} cycles, "
            f"throughput {result.throughput_packets_per_node_cycle:.4f}"
        )


if __name__ == "__main__":
    exhaustive_4x4()
    annealed_8x8()
    simulated_8x8()
