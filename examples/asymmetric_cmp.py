"""Case study II: an asymmetric CMP on a heterogeneous interconnect.

Reproduces the Section 7 platform: 4 large out-of-order cores at the
mesh corners running latency-sensitive libquantum, 60 small in-order
cores running SPECjbb threads, evaluated on three networks -- the
homogeneous baseline, Diagonal+BL with plain X-Y, and Diagonal+BL with
table-based routing that steers large-core packets through the diagonal
big routers (escape VCs guarantee deadlock freedom).

Run:  python examples/asymmetric_cmp.py
"""

from repro.experiments.fig14_asymmetric import run


def main() -> None:
    data = run(fast=True)
    print("asymmetric CMP: 4x libquantum (large cores) + 60x SPECjbb (small cores)\n")
    print(f"{'network':22s} {'weighted spdup':>14s} {'harmonic spdup':>14s} "
          f"{'libquantum IPC':>14s} {'SPECjbb IPC':>12s}")
    for name, r in data["results"].items():
        print(
            f"{name:22s} {r['weighted_speedup']:14.3f} "
            f"{r['harmonic_speedup']:14.3f} {r['libquantum_ipc']:14.3f} "
            f"{r['specjbb_ipc']:12.3f}"
        )
    print("\npaper: HeteroNoC-XY +6% and HeteroNoC-Table+XY +11% weighted")
    print("speedup over HomoNoC-XY; see EXPERIMENTS.md for why our substrate")
    print("shows a flat result here (DRAM-dominated large-core miss latency).")


if __name__ == "__main__":
    main()
