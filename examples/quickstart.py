"""Quickstart: compare the homogeneous baseline against HeteroNoC.

Builds the paper's 8x8 baseline mesh and the Diagonal+BL heterogeneous
layout, drives both with uniform-random traffic at a moderate load, and
prints latency (in nanoseconds, at each network's own clock), accepted
throughput and modelled network power.

Run:  python examples/quickstart.py
"""

from repro.core import build_network, layout_by_name
from repro.core.merging import merge_report
from repro.core.power import network_power_breakdown
from repro.traffic import UniformRandom, run_synthetic

RATE = 0.045  # packets/node/cycle
LAYOUTS = ("baseline", "diagonal+BL")


def main() -> None:
    print(f"Uniform-random traffic at {RATE} packets/node/cycle\n")
    results = {}
    for name in LAYOUTS:
        layout = layout_by_name(name)
        network = build_network(layout)
        pattern = UniformRandom(network.topology.num_nodes)
        result = run_synthetic(
            network, pattern, RATE,
            warmup_packets=200, measure_packets=1500, seed=42,
        )
        power = network_power_breakdown(network, result.stats)
        merging = merge_report(network, result.stats)
        results[name] = (layout, result, power)
        print(f"{name} -- {network.describe()}")
        print(f"  avg packet latency : {result.avg_latency_ns(layout.frequency_ghz):6.2f} ns"
              f"  ({result.avg_latency_cycles:.1f} cycles)")
        print(f"  accepted throughput: {result.throughput_packets_per_node_cycle:.4f} packets/node/cycle")
        print(f"  network power      : {power['total']:6.2f} W "
              f"(buffers {power['buffers']:.1f}, crossbar {power['crossbar']:.1f})")
        if merging.merged_pairs:
            print(f"  flit merging       : {100 * merging.merge_fraction:.0f}% of wide-link flits paired")
        print()

    base_layout, base, base_power = results["baseline"]
    het_layout, hetero, het_power = results["diagonal+BL"]
    latency_delta = 100 * (
        1 - hetero.avg_latency_ns(het_layout.frequency_ghz)
        / base.avg_latency_ns(base_layout.frequency_ghz)
    )
    power_delta = 100 * (1 - het_power["total"] / base_power["total"])
    print(f"Diagonal+BL vs baseline: latency {latency_delta:+.1f}%, power {power_delta:+.1f}%")
    print("(paper at this load range: latency ~+24%, power ~+26..28%)")


if __name__ == "__main__":
    main()
