"""Case study I: memory-controller placement on a HeteroNoC (Section 6).

Closed-loop uniform-random evaluation (every node keeps a few requests to
the memory controllers in flight, as MSHRs would) of the four
configurations the paper compares:

* 4 corner controllers on the homogeneous baseline (Table 2 reference);
* 16 diamond-placed controllers on the baseline (Abts et al.);
* 16 diamond-placed controllers on Diagonal+BL;
* 16 diagonal-placed controllers on Diagonal+BL -- the controllers then
  sit on the big routers, the paper's best configuration.

Run:  python examples/memory_controller_placement.py
"""

from repro.experiments.fig13_memctrl import (
    CONFIGURATIONS,
    PAPER_REDUCTIONS,
    run_closed_loop_ur,
)


def main() -> None:
    print("closed-loop UR, 4 outstanding requests/node, 60-cycle DRAM\n")
    results = {}
    for name, (placement, layout) in CONFIGURATIONS.items():
        results[name] = run_closed_loop_ur(
            placement, layout, num_requests=2560, seed=31
        )
    reference = results["corners_homo"].mean_latency
    print(f"{'configuration':18s} {'mean (cyc)':>10s} {'norm std':>9s} {'reduction':>10s}  paper")
    for name, result in results.items():
        reduction = 100.0 * (reference - result.mean_latency) / reference
        paper = PAPER_REDUCTIONS.get(name)
        paper_text = f"{paper:+.0f}%" if paper is not None else "(ref)"
        print(
            f"{name:18s} {result.mean_latency:10.1f} "
            f"{result.normalized_std:9.2f} {reduction:+9.1f}%  {paper_text}"
        )
    print(
        "\nA lower normalized standard deviation means more predictable "
        "memory latency\nregardless of which core a thread runs on "
        "(the paper's Figure 13b argument)."
    )


if __name__ == "__main__":
    main()
