"""Setup shim for environments without the `wheel` package, where
PEP 660 editable installs (`pip install -e .`) cannot build. Use
`python setup.py develop` there; metadata lives in pyproject.toml."""

from setuptools import setup

setup()
