"""Tests for wide-link flit combining (Section 3.2/3.3)."""

from repro.core.layouts import layout_by_name, build_network
from repro.core.merging import merge_report, per_router_merge_counts
from repro.noc.config import NetworkConfig, big_router
from repro.noc.network import Network
from repro.noc.topology import Mesh
from repro.traffic.patterns import UniformRandom
from repro.traffic.runner import run_synthetic


def _all_big_network():
    """4x4 mesh of big routers: every link is wide (2 lanes)."""
    topology = Mesh(4)
    configs = {r: big_router() for r in range(16)}
    return Network(topology, configs, NetworkConfig())


class TestSamePacketMerging:
    def test_packet_pairs_flits_over_wide_path(self):
        network = _all_big_network()
        packet = network.make_packet(0, 3)  # 8 flits at 128 b
        packet.measured = True
        network.begin_measurement()
        network.enqueue(packet)
        network.drain(max_cycles=5_000)
        network.end_measurement()
        report = merge_report(network, network.stats)
        # Injection is two flits per cycle at a big router, so pairs form
        # and traverse the wide links together.
        assert report.merged_pairs > 0
        record = network.stats.records[0]
        # Serialization is halved: 3 hops * 2 + 1 + ceil(7/2).
        assert record.transfer == 2 * 3 + 1 + 4
        assert record.total == record.transfer  # zero load: no blocking

    def test_min_lanes_tracked(self):
        network = _all_big_network()
        packet = network.make_packet(0, 5)
        network.enqueue(packet)
        network.drain(max_cycles=5_000)
        assert packet.min_lanes == 2


class TestCrossPacketMerging:
    def test_two_packets_share_wide_output(self):
        # Two single-flit packets from different inputs converge on one
        # wide output port: SA's second arbiter should pair them.
        network = _all_big_network()
        network.begin_measurement()
        a = network.make_packet(1, 2, payload_bits=64)
        b = network.make_packet(5, 2, payload_bits=64)
        for packet in (a, b):
            packet.measured = True
            network.enqueue(packet)
        network.drain(max_cycles=5_000)
        network.end_measurement()
        # Whether a pair formed depends on arrival alignment; both must at
        # least have been delivered over wide links.
        report = merge_report(network, network.stats)
        assert report.wide_link_flits >= 2


class TestNoMergingOnNarrowLinks:
    def test_baseline_never_merges(self):
        layout = layout_by_name("baseline")
        network = build_network(layout)
        result = run_synthetic(
            network, UniformRandom(64), rate=0.03,
            warmup_packets=30, measure_packets=150, seed=2,
        )
        report = merge_report(network, result.stats)
        assert report.merged_pairs == 0
        assert report.wide_link_flits == 0
        assert report.merge_fraction == 0.0

    def test_buffer_only_layouts_never_merge(self):
        network = build_network(layout_by_name("diagonal+B"))
        result = run_synthetic(
            network, UniformRandom(64), rate=0.03,
            warmup_packets=30, measure_packets=150, seed=2,
        )
        assert merge_report(network, result.stats).merged_pairs == 0


class TestMergeStatistics:
    def test_merge_fraction_rises_with_load(self):
        fractions = []
        for rate in (0.01, 0.05):
            network = build_network(layout_by_name("diagonal+BL"))
            result = run_synthetic(
                network, UniformRandom(64), rate=rate,
                warmup_packets=50, measure_packets=300, seed=4,
            )
            fractions.append(merge_report(network, result.stats).merge_fraction)
        assert fractions[1] > fractions[0]

    def test_paper_range_at_moderate_load(self):
        """Paper: ~40% combinable at low load, ~80% at moderate-high."""
        network = build_network(layout_by_name("diagonal+BL"))
        result = run_synthetic(
            network, UniformRandom(64), rate=0.05,
            warmup_packets=50, measure_packets=400, seed=4,
        )
        fraction = merge_report(network, result.stats).merge_fraction
        assert 0.2 <= fraction <= 0.95

    def test_per_router_counts_only_nonzero(self):
        network = build_network(layout_by_name("diagonal+BL"))
        result = run_synthetic(
            network, UniformRandom(64), rate=0.05,
            warmup_packets=50, measure_packets=200, seed=4,
        )
        counts = per_router_merge_counts(result.stats)
        assert counts
        assert all(v > 0 for v in counts.values())

    def test_credit_rule_two_credits_for_pair(self):
        """A merged same-VC pair consumes two credits at once (Section 3.2)."""
        network = _all_big_network()
        packet = network.make_packet(0, 1)
        network.enqueue(packet)
        # Step until the first pair leaves router 0; downstream credits for
        # the chosen VC must drop by 2 in one cycle.
        east = network.topology.direction_port(1)
        router0 = network.routers[0]
        baseline_credits = [list(router0.out_credits[east])]
        seen_double = False
        for _ in range(30):
            network.step()
            credits = list(router0.out_credits[east])
            drop = sum(b - c for b, c in zip(baseline_credits[-1], credits))
            if drop >= 2:
                seen_double = True
                break
            baseline_credits.append(credits)
        assert seen_double
