"""Unit and property tests for topologies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.topology import (
    ConcentratedMesh,
    FlattenedButterfly,
    Mesh,
    Torus,
    manhattan_distance,
    torus_distance,
)


class TestMesh:
    def test_counts(self):
        mesh = Mesh(8)
        assert mesh.num_routers == 64
        assert mesh.num_nodes == 64
        assert mesh.num_ports(0) == 5
        assert mesh.num_local_ports(0) == 1

    def test_coords_roundtrip(self):
        mesh = Mesh(8)
        for rid in range(64):
            row, col = mesh.coords(rid)
            assert mesh.router_at(row, col) == rid

    def test_router_at_bounds(self):
        with pytest.raises(ValueError):
            Mesh(4).router_at(4, 0)

    def test_edges_have_missing_neighbors(self):
        mesh = Mesh(4)
        # Corner 0: no north, no west.
        assert mesh.neighbor(0, mesh.direction_port(0)) is None  # north
        assert mesh.neighbor(0, mesh.direction_port(3)) is None  # west
        assert mesh.neighbor(0, mesh.direction_port(1)) == (1, mesh.direction_port(3))

    def test_local_port_has_no_neighbor(self):
        assert Mesh(4).neighbor(5, 0) is None

    def test_validate_passes(self):
        Mesh(8).validate()

    def test_bisection_count(self):
        # One east-going channel per row crosses the vertical cut.
        assert len(Mesh(8).bisection_channels()) == 8

    def test_rectangular_mesh(self):
        mesh = Mesh(4, height=2)
        assert mesh.num_routers == 8
        mesh.validate()

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            Mesh(1)

    def test_manhattan_distance(self):
        mesh = Mesh(8)
        assert manhattan_distance(mesh, 0, 63) == 14
        assert manhattan_distance(mesh, 9, 9) == 0
        assert manhattan_distance(mesh, 0, 7) == 7

    @given(size=st.integers(min_value=2, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_channel_symmetry(self, size):
        mesh = Mesh(size)
        mesh.validate()
        channels = list(mesh.channels())
        # 2 directed channels per adjacent pair: 2 * 2*n*(n-1)
        assert len(channels) == 4 * size * (size - 1)


class TestTorus:
    def test_wrap_links(self):
        torus = Torus(4)
        # Router 0's west neighbor wraps to router 3.
        west = torus.direction_port(3)
        east = torus.direction_port(1)
        assert torus.neighbor(0, west) == (3, east)
        # North of router 0 wraps to the bottom row.
        north = torus.direction_port(0)
        south = torus.direction_port(2)
        assert torus.neighbor(0, north) == (12, south)

    def test_validate(self):
        Torus(4).validate()

    def test_every_port_connected(self):
        torus = Torus(4)
        for rid in range(torus.num_routers):
            for port in range(1, 5):
                assert torus.neighbor(rid, port) is not None

    def test_bisection_includes_wrap(self):
        # Direct plus wrap-around channel per row.
        assert len(Torus(8).bisection_channels()) == 16

    def test_torus_distance_uses_wrap(self):
        torus = Torus(8)
        assert torus_distance(torus, 0, 7) == 1
        assert torus_distance(torus, 0, 63) == 2
        assert torus_distance(torus, 0, 36) == 8


class TestConcentratedMesh:
    def test_counts(self):
        cmesh = ConcentratedMesh(4, concentration=4)
        assert cmesh.num_routers == 16
        assert cmesh.num_nodes == 64
        assert cmesh.num_ports(0) == 8
        assert cmesh.num_local_ports(0) == 4

    def test_node_mapping(self):
        cmesh = ConcentratedMesh(4, concentration=4)
        assert cmesh.router_of_node(0) == 0
        assert cmesh.router_of_node(7) == 1
        assert cmesh.local_port_of_node(7) == 3
        assert cmesh.node_at(1, 3) == 7

    def test_node_at_rejects_network_port(self):
        with pytest.raises(ValueError):
            ConcentratedMesh(4).node_at(0, 4)

    def test_validate(self):
        ConcentratedMesh(4, concentration=4).validate()

    def test_bisection(self):
        assert len(ConcentratedMesh(4).bisection_channels()) == 4


class TestFlattenedButterfly:
    def test_counts(self):
        fbfly = FlattenedButterfly(4, concentration=4)
        assert fbfly.num_routers == 16
        assert fbfly.num_nodes == 64
        assert fbfly.num_ports(0) == 10

    def test_row_connectivity(self):
        fbfly = FlattenedButterfly(4)
        # Router 0 (row 0, col 0) reaches every other column in its row.
        reached = set()
        for port in range(4, 7):
            other, _ = fbfly.neighbor(0, port)
            reached.add(fbfly.coords(other))
        assert reached == {(0, 1), (0, 2), (0, 3)}

    def test_column_connectivity(self):
        fbfly = FlattenedButterfly(4)
        reached = set()
        for port in range(7, 10):
            other, _ = fbfly.neighbor(0, port)
            reached.add(fbfly.coords(other))
        assert reached == {(1, 0), (2, 0), (3, 0)}

    def test_validate(self):
        FlattenedButterfly(4, concentration=4).validate()

    def test_row_port_to_rejects_self(self):
        fbfly = FlattenedButterfly(4)
        with pytest.raises(ValueError):
            fbfly.row_port_to(0, 0)

    def test_bisection(self):
        # Per row: 2 left cols x 2 right cols = 4 channels; 4 rows = 16.
        assert len(FlattenedButterfly(4).bisection_channels()) == 16
