"""Unit tests for the MESI directory protocol controllers.

These drive the L1 and L2 controllers directly with scripted messages
(collecting their outputs instead of using a network), checking each
transition of the protocol tables in isolation.
"""

from repro.cmp.cache import (
    EXCLUSIVE,
    INVALID,
    MODIFIED,
    SHARED,
    CacheConfig,
)
from repro.cmp.coherence import (
    L1Controller,
    L2DirectoryController,
    Message,
)


class Harness:
    """Message-collecting environment for one or more controllers."""

    def __init__(self):
        self.sent = []
        self.scheduled = []

    def send(self, msg):
        self.sent.append(msg)

    def schedule(self, delay, fn):
        self.scheduled.append((delay, fn))
        fn()  # run immediately; unit tests don't model time

    def pop_all(self):
        out, self.sent = self.sent, []
        return out


def _l1(harness, node=1):
    return L1Controller(
        node=node,
        cache_config=CacheConfig(),
        mshr_capacity=8,
        home_of=lambda block: 0,
        send=harness.send,
        schedule=harness.schedule,
    )


def _l2(harness, node=0):
    return L2DirectoryController(
        node=node,
        cache_config=CacheConfig(size_bytes=256 * 1024, associativity=16),
        home_of=lambda block: 0,
        mc_of=lambda block: 63,
        send=harness.send,
    )


BLOCK = 0x4000


class TestL1Requests:
    def test_read_miss_sends_gets(self):
        harness = Harness()
        l1 = _l1(harness)
        status = l1.request(BLOCK, False, 0, lambda: None)
        assert status == "miss"
        (msg,) = harness.pop_all()
        assert (msg.mtype, msg.block, msg.dst) == ("GETS", BLOCK, 0)

    def test_write_miss_sends_getx(self):
        harness = Harness()
        l1 = _l1(harness)
        assert l1.request(BLOCK, True, 0, lambda: None) == "miss"
        assert harness.pop_all()[0].mtype == "GETX"

    def test_hit_completes_locally(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.cache.insert(BLOCK, SHARED)
        done = []
        assert l1.request(BLOCK, False, 0, lambda: done.append(1)) == "hit"
        assert done == [1]
        assert not harness.pop_all()

    def test_write_hit_on_exclusive_silently_upgrades(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.cache.insert(BLOCK, EXCLUSIVE)
        assert l1.request(BLOCK, True, 0, lambda: None) == "hit"
        assert l1.cache.lookup(BLOCK).state == MODIFIED
        assert not harness.pop_all()

    def test_write_to_shared_needs_upgrade(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.cache.insert(BLOCK, SHARED)
        assert l1.request(BLOCK, True, 0, lambda: None) == "miss"
        assert harness.pop_all()[0].mtype == "GETX"

    def test_merged_read_miss(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.request(BLOCK, False, 0, lambda: None)
        harness.pop_all()
        assert l1.request(BLOCK, False, 1, lambda: None) == "miss"
        assert not harness.pop_all()  # merged into the existing MSHR

    def test_write_after_outstanding_read_blocked(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.request(BLOCK, False, 0, lambda: None)
        assert l1.request(BLOCK, True, 1, lambda: None) == "blocked"

    def test_mshr_full_blocks(self):
        harness = Harness()
        l1 = L1Controller(1, CacheConfig(), 1, lambda b: 0, harness.send, harness.schedule)
        l1.request(BLOCK, False, 0, lambda: None)
        assert l1.request(BLOCK + 0x4000, False, 0, lambda: None) == "blocked"


class TestL1Responses:
    def test_data_fill_wakes_waiters(self):
        harness = Harness()
        l1 = _l1(harness)
        done = []
        l1.request(BLOCK, False, 0, lambda: done.append("a"))
        l1.request(BLOCK, False, 0, lambda: done.append("b"))
        harness.pop_all()
        l1.handle(Message("DATA", BLOCK, src=0, dst=1))
        assert done == ["a", "b"]
        assert l1.state_of(BLOCK) == SHARED

    def test_data_x_installs_modified(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.request(BLOCK, True, 0, lambda: None)
        harness.pop_all()
        l1.handle(Message("DATA_X", BLOCK, src=0, dst=1))
        line = l1.cache.lookup(BLOCK)
        assert line.state == MODIFIED and line.dirty

    def test_dirty_eviction_writes_back(self):
        harness = Harness()
        config = CacheConfig(size_bytes=2 * 128, associativity=1)
        l1 = L1Controller(1, config, 8, lambda b: 0, harness.send, harness.schedule)
        l1.cache.insert(0x0000, MODIFIED)
        l1.request(0x100, False, 0, lambda: None)
        harness.pop_all()
        # Fill maps to set 0 block 0x100... wait: with 2 sets the conflict
        # is within set 0: 0x000 and 0x100 share set 0 (two-set cache).
        l1.handle(Message("DATA", 0x100, src=0, dst=1))
        putx = [m for m in harness.pop_all() if m.mtype == "PUTX"]
        assert putx and putx[0].block == 0x0000
        assert 0x0000 in l1.writeback_buffer

    def test_inv_acks_and_invalidates(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.cache.insert(BLOCK, SHARED)
        l1.handle(Message("INV", BLOCK, src=0, dst=1))
        assert l1.state_of(BLOCK) == INVALID
        (ack,) = harness.pop_all()
        assert ack.mtype == "INV_ACK" and ack.dst == 0

    def test_inv_on_absent_line_still_acks(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.handle(Message("INV", BLOCK, src=0, dst=1))
        assert harness.pop_all()[0].mtype == "INV_ACK"

    def test_fwd_gets_downgrades_and_returns_data(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.cache.insert(BLOCK, MODIFIED)
        l1.handle(Message("FWD_GETS", BLOCK, src=0, dst=1, requester=5))
        assert l1.state_of(BLOCK) == SHARED
        (data,) = harness.pop_all()
        assert data.mtype == "OWNER_DATA" and data.requester == 5

    def test_fwd_getx_invalidates(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.cache.insert(BLOCK, MODIFIED)
        l1.handle(Message("FWD_GETX", BLOCK, src=0, dst=1, requester=5))
        assert l1.state_of(BLOCK) == INVALID
        assert harness.pop_all()[0].mtype == "OWNER_DATA"

    def test_inv_overtaking_fill_drops_line_after_fill(self):
        """Regression: an INV racing ahead of its DATA fill must not leave
        this cache as a sharer the directory no longer knows about."""
        harness = Harness()
        l1 = _l1(harness)
        done = []
        l1.request(BLOCK, False, 0, lambda: done.append(1))
        harness.pop_all()
        # The home invalidated us (on behalf of a writer) before our DATA
        # arrived; the messages crossed on different VCs.
        l1.handle(Message("INV", BLOCK, src=0, dst=1))
        assert harness.pop_all()[0].mtype == "INV_ACK"
        l1.handle(Message("DATA", BLOCK, src=0, dst=1))
        assert done == [1]  # the waiter consumed the fill...
        assert l1.state_of(BLOCK) == INVALID  # ...but the copy is dropped

    def test_inv_does_not_cancel_write_grant(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.request(BLOCK, True, 0, lambda: None)
        harness.pop_all()
        l1.handle(Message("INV", BLOCK, src=0, dst=1))
        harness.pop_all()
        l1.handle(Message("DATA_X", BLOCK, src=0, dst=1))
        # The write grant postdates the INV epoch: ownership stands.
        assert l1.state_of(BLOCK) == MODIFIED

    def test_forward_overtaking_own_fill_is_parked(self):
        """Regression: the home grants us ownership and immediately
        forwards the next requester; the forward beats our fill."""
        harness = Harness()
        l1 = _l1(harness)
        l1.request(BLOCK, False, 0, lambda: None)
        harness.pop_all()
        l1.handle(Message("FWD_GETS", BLOCK, src=0, dst=1, requester=5))
        assert not harness.pop_all()  # parked: no OWNER_DATA yet
        l1.handle(Message("DATA_E", BLOCK, src=0, dst=1))
        replies = harness.pop_all()
        assert [m.mtype for m in replies] == ["OWNER_DATA"]
        assert replies[0].requester == 5
        assert l1.state_of(BLOCK) == SHARED  # downgraded by the forward

    def test_fwd_getx_overtaking_fill_invalidates_after_fill(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.request(BLOCK, False, 0, lambda: None)
        harness.pop_all()
        l1.handle(Message("FWD_GETX", BLOCK, src=0, dst=1, requester=5))
        assert not harness.pop_all()
        l1.handle(Message("DATA_E", BLOCK, src=0, dst=1))
        replies = harness.pop_all()
        assert [m.mtype for m in replies] == ["OWNER_DATA"]
        assert l1.state_of(BLOCK) == INVALID

    def test_fwd_getx_with_stale_shared_copy_and_upgrade_in_flight(self):
        """Regression: an upgrade (GETX from S) is outstanding when a
        FWD_GETX for our *incoming* ownership overtakes the DATA_X grant.
        The stale S copy must not be mistaken for the ownership the
        forward targets -- else the grant reinstalls M after we already
        surrendered the block."""
        harness = Harness()
        l1 = _l1(harness)
        l1.cache.insert(BLOCK, SHARED)
        assert l1.request(BLOCK, True, 0, lambda: None) == "miss"  # upgrade
        harness.pop_all()
        l1.handle(Message("FWD_GETX", BLOCK, src=0, dst=1, requester=8))
        assert not harness.pop_all()  # parked, not answered from the S copy
        l1.handle(Message("DATA_X", BLOCK, src=0, dst=1))
        replies = harness.pop_all()
        assert [m.mtype for m in replies] == ["OWNER_DATA"]
        assert l1.state_of(BLOCK) == INVALID  # ownership passed on

    def test_request_blocked_while_own_writeback_in_flight(self):
        """Regression: a re-request racing our own PUTX could reach the
        home first and then have the stale PUTX clobber the fresh
        directory entry."""
        harness = Harness()
        l1 = _l1(harness)
        l1.writeback_buffer[BLOCK] = True
        assert l1.request(BLOCK, True, 0, lambda: None) == "blocked"
        l1.handle(Message("WB_ACK", BLOCK, src=0, dst=1))
        assert l1.request(BLOCK, True, 1, lambda: None) == "miss"

    def test_wb_ack_clears_buffer(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.writeback_buffer[BLOCK] = True
        l1.handle(Message("WB_ACK", BLOCK, src=0, dst=1))
        assert BLOCK not in l1.writeback_buffer

    def test_fwd_crossing_putx_served_from_buffer(self):
        harness = Harness()
        l1 = _l1(harness)
        l1.writeback_buffer[BLOCK] = True  # PUTX in flight
        l1.handle(Message("FWD_GETS", BLOCK, src=0, dst=1, requester=5))
        assert harness.pop_all()[0].mtype == "OWNER_DATA"
        assert l1.writeback_buffer[BLOCK] is False  # superseded


class TestL2Directory:
    def test_gets_on_l2_miss_fetches_memory(self):
        harness = Harness()
        l2 = _l2(harness)
        l2.handle(Message("GETS", BLOCK, src=1, dst=0))
        (mem,) = harness.pop_all()
        assert mem.mtype == "MEM_READ" and mem.dst == 63
        assert BLOCK in l2.busy

    def test_mem_data_grants_exclusive_on_read(self):
        harness = Harness()
        l2 = _l2(harness)
        l2.handle(Message("GETS", BLOCK, src=1, dst=0))
        harness.pop_all()
        l2.handle(Message("MEM_DATA", BLOCK, src=63, dst=0))
        (grant,) = harness.pop_all()
        assert grant.mtype == "DATA_E" and grant.dst == 1
        assert grant.via_memory
        entry = l2.directory[BLOCK]
        assert entry.state == MODIFIED and entry.owner == 1

    def test_second_reader_gets_shared_via_forward(self):
        harness = Harness()
        l2 = _l2(harness)
        l2.cache.insert(BLOCK, SHARED)
        l2.handle(Message("GETS", BLOCK, src=1, dst=0))
        harness.pop_all()  # DATA_E to 1
        l2.handle(Message("GETS", BLOCK, src=2, dst=0))
        (fwd,) = harness.pop_all()
        assert fwd.mtype == "FWD_GETS" and fwd.dst == 1 and fwd.requester == 2
        l2.handle(Message("OWNER_DATA", BLOCK, src=1, dst=0, requester=2))
        (data,) = harness.pop_all()
        assert data.mtype == "DATA" and data.dst == 2
        entry = l2.directory[BLOCK]
        assert entry.state == SHARED and entry.sharers == {1, 2}

    def test_getx_collects_invalidations(self):
        harness = Harness()
        l2 = _l2(harness)
        l2.cache.insert(BLOCK, SHARED)
        # Establish sharers 1 and 2.
        l2.handle(Message("GETS", BLOCK, src=1, dst=0))
        harness.pop_all()
        l2.handle(Message("GETS", BLOCK, src=2, dst=0))
        harness.pop_all()
        l2.handle(Message("OWNER_DATA", BLOCK, src=1, dst=0, requester=2))
        harness.pop_all()
        # Core 3 writes: both sharers must be invalidated first.
        l2.handle(Message("GETX", BLOCK, src=3, dst=0))
        invs = harness.pop_all()
        assert {m.dst for m in invs} == {1, 2}
        assert all(m.mtype == "INV" for m in invs)
        l2.handle(Message("INV_ACK", BLOCK, src=1, dst=0))
        assert not harness.pop_all()  # still waiting for the second ack
        l2.handle(Message("INV_ACK", BLOCK, src=2, dst=0))
        (grant,) = harness.pop_all()
        assert grant.mtype == "DATA_X" and grant.dst == 3
        assert l2.directory[BLOCK].owner == 3

    def test_requests_serialized_while_busy(self):
        harness = Harness()
        l2 = _l2(harness)
        l2.handle(Message("GETS", BLOCK, src=1, dst=0))
        harness.pop_all()
        l2.handle(Message("GETS", BLOCK, src=2, dst=0))
        assert not harness.pop_all()  # queued behind the fetch
        l2.handle(Message("MEM_DATA", BLOCK, src=63, dst=0))
        messages = harness.pop_all()
        # Grant to 1, then the queued request is replayed (forward to 1).
        assert messages[0].mtype == "DATA_E" and messages[0].dst == 1
        assert messages[1].mtype == "FWD_GETS" and messages[1].dst == 1

    def test_putx_from_owner_accepted(self):
        harness = Harness()
        l2 = _l2(harness)
        l2.cache.insert(BLOCK, SHARED)
        l2.handle(Message("GETX", BLOCK, src=1, dst=0))
        harness.pop_all()
        l2.handle(Message("PUTX", BLOCK, src=1, dst=0))
        (ack,) = harness.pop_all()
        assert ack.mtype == "WB_ACK"
        assert BLOCK not in l2.directory
        assert l2.cache.lookup(BLOCK).dirty

    def test_stale_putx_dropped_but_acked(self):
        harness = Harness()
        l2 = _l2(harness)
        l2.cache.insert(BLOCK, SHARED)
        l2.handle(Message("PUTX", BLOCK, src=9, dst=0))
        (ack,) = harness.pop_all()
        assert ack.mtype == "WB_ACK" and ack.dst == 9

    def test_eviction_recalls_sharers_and_writes_back(self):
        harness = Harness()
        config = CacheConfig(size_bytes=128, associativity=1)
        l2 = L2DirectoryController(0, config, lambda b: 0, lambda b: 63, harness.send)
        l2.cache.insert(0x0000, SHARED)
        l2.cache.lookup(0x0000).dirty = True
        from repro.cmp.coherence import DirectoryEntry

        entry = DirectoryEntry(state=SHARED)
        entry.sharers.update({1, 2})
        l2.directory[0x0000] = entry
        # A fetch fill for a conflicting block evicts 0x0000.
        l2.handle(Message("GETS", 0x80, src=3, dst=0))
        harness.pop_all()
        l2.handle(Message("MEM_DATA", 0x80, src=63, dst=0))
        messages = harness.pop_all()
        kinds = [m.mtype for m in messages]
        assert kinds.count("INV") == 2
        assert "MEM_WRITE" in kinds
        assert 0x0000 not in l2.directory
