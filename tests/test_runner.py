"""Tests for the synthetic-traffic experiment driver."""

import pytest

from repro.core.layouts import baseline_layout, build_network
from repro.traffic.patterns import UniformRandom
from repro.traffic.runner import run_synthetic
from repro.traffic.selfsimilar import SelfSimilarInjector


def _network():
    return build_network(baseline_layout(4))


class TestRunSynthetic:
    def test_measures_requested_packets(self):
        network = _network()
        result = run_synthetic(
            network, UniformRandom(16), rate=0.05,
            warmup_packets=20, measure_packets=100, seed=1,
        )
        assert result.measured_packets == 100
        assert len(result.stats.records) == 100
        assert not result.saturated

    def test_reproducible(self):
        latencies = []
        for _ in range(2):
            network = _network()
            result = run_synthetic(
                network, UniformRandom(16), rate=0.05,
                warmup_packets=20, measure_packets=80, seed=7,
            )
            latencies.append(result.avg_latency_cycles)
        assert latencies[0] == latencies[1]

    def test_latency_rises_with_load(self):
        results = []
        for rate in (0.02, 0.12):
            network = _network()
            results.append(
                run_synthetic(
                    network, UniformRandom(16), rate=rate,
                    warmup_packets=30, measure_packets=150, seed=2,
                )
            )
        assert results[1].avg_latency_cycles > results[0].avg_latency_cycles

    def test_throughput_tracks_offered_load_below_saturation(self):
        network = _network()
        result = run_synthetic(
            network, UniformRandom(16), rate=0.04,
            warmup_packets=30, measure_packets=200, seed=3,
        )
        assert result.throughput_packets_per_node_cycle == pytest.approx(
            0.04, rel=0.25
        )

    def test_saturation_flag(self):
        network = _network()
        result = run_synthetic(
            network, UniformRandom(16), rate=0.5,
            warmup_packets=20, measure_packets=300, seed=3,
            drain_cycle_cap=150,
        )
        assert result.saturated

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            run_synthetic(_network(), UniformRandom(16), rate=0.0)

    def test_custom_injector(self):
        network = _network()
        injector = SelfSimilarInjector(num_nodes=16, rate=0.05, seed=1)
        result = run_synthetic(
            network, UniformRandom(16), rate=0.05,
            warmup_packets=20, measure_packets=80, seed=1, injector=injector,
        )
        assert result.measured_packets == 80

    def test_latency_ns_uses_frequency(self):
        network = _network()
        result = run_synthetic(
            network, UniformRandom(16), rate=0.03,
            warmup_packets=20, measure_packets=60, seed=1,
        )
        assert result.avg_latency_ns(2.0) == pytest.approx(
            result.avg_latency_cycles / 2.0
        )
