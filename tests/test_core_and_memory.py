"""Tests for the core timing model, memory controllers and metrics."""

import pytest

from repro.cmp.coherence import Message
from repro.cmp.core_model import (
    CoreConfig,
    TraceCore,
    large_core_config,
    small_core_config,
)
from repro.cmp.memory import MemoryConfig, MemoryController
from repro.cmp.metrics import (
    harmonic_speedup,
    ipc_improvement_pct,
    summarize_ipc,
    weighted_speedup,
)
from repro.traffic.trace import TraceRecord


class _FakeL1:
    """L1 stub with scripted hit/miss behaviour."""

    def __init__(self, result="hit", latency=2):
        self.result = result
        self.latency = latency
        self.pending = []
        self.requests = []

    def request(self, address, is_write, cycle, on_complete):
        self.requests.append((address, is_write, cycle))
        if self.result == "blocked":
            return "blocked"
        self.pending.append(on_complete)
        if self.result == "hit":
            return "hit"
        return "miss"

    def complete_one(self):
        self.pending.pop(0)()


def _trace(n, gap=2, stride=128):
    return [
        TraceRecord(gap=gap, is_write=False, address=i * stride) for i in range(n)
    ]


class TestCoreConfig:
    def test_presets(self):
        large = large_core_config()
        small = small_core_config()
        assert large.issue_width == 3 and large.window == 64
        assert small.issue_width == 1 and small.blocking_loads

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreConfig(issue_width=0)
        with pytest.raises(ValueError):
            CoreConfig(window=0)


class TestTraceCore:
    def test_gap_consumption_rate(self):
        l1 = _FakeL1("hit")
        core = TraceCore(0, CoreConfig(issue_width=3), _trace(5, gap=8), l1)
        core.step(0)
        # 3-wide: consumes 3 gap instructions in the first cycle.
        assert core.instructions_retired == 3

    def test_completes_trace(self):
        l1 = _FakeL1("hit")
        core = TraceCore(0, large_core_config(), _trace(10, gap=1), l1)
        for cycle in range(100):
            core.step(cycle)
            while l1.pending:
                l1.complete_one()
        assert core.done
        assert core.instructions_retired == 10 * 2  # gap 1 + access each

    def test_outstanding_cap_stalls(self):
        l1 = _FakeL1("miss")
        core = TraceCore(
            0, CoreConfig(issue_width=3, max_outstanding=2, window=1000),
            _trace(10, gap=0), l1,
        )
        for cycle in range(10):
            core.step(cycle)
        assert core.outstanding == 2
        assert core.stall_cycles > 0

    def test_window_limits_run_ahead(self):
        l1 = _FakeL1("miss")
        core = TraceCore(
            0,
            CoreConfig(issue_width=3, max_outstanding=16, window=8),
            _trace(10, gap=20),
            l1,
        )
        for cycle in range(50):
            core.step(cycle)
        # One miss outstanding; retirement capped at issue mark + window.
        assert core.instructions_retired <= core._issue_marks[0] + 8

    def test_blocking_loads_stall_in_order_core(self):
        l1 = _FakeL1("miss")
        core = TraceCore(0, small_core_config(), _trace(4, gap=0), l1)
        core.step(0)
        assert core.outstanding == 1
        core.step(1)
        core.step(2)
        assert core.instructions_retired == 1  # frozen until the response
        l1.complete_one()
        core.step(3)
        assert core.instructions_retired == 2

    def test_start_cycle_delays_execution(self):
        l1 = _FakeL1("hit")
        core = TraceCore(0, large_core_config(), _trace(3), l1, start_cycle=10)
        core.step(5)
        assert core.instructions_retired == 0
        core.step(10)
        assert core.instructions_retired > 0

    def test_ipc(self):
        l1 = _FakeL1("hit")
        core = TraceCore(0, CoreConfig(issue_width=1), _trace(5, gap=0), l1)
        for cycle in range(5):
            core.step(cycle)
        assert core.ipc(5) == pytest.approx(1.0)

    def test_blocked_l1_retries(self):
        l1 = _FakeL1("blocked")
        core = TraceCore(0, large_core_config(), _trace(2, gap=0), l1)
        core.step(0)
        core.step(1)
        assert core.instructions_retired == 0
        assert len(l1.requests) == 2  # retried each cycle


class TestMemoryController:
    def _mc(self, latency=10, interval=2):
        harness = []
        mc = MemoryController(
            0, MemoryConfig(access_latency=latency, service_interval=interval),
            harness.append,
        )
        return mc, harness

    def test_read_latency(self):
        mc, sent = self._mc(latency=10)
        mc.handle(Message("MEM_READ", 0x100, src=3, dst=0), cycle=0)
        for cycle in range(12):
            mc.tick(cycle)
        assert len(sent) == 1
        assert sent[0].mtype == "MEM_DATA" and sent[0].dst == 3

    def test_not_before_latency(self):
        mc, sent = self._mc(latency=10)
        mc.handle(Message("MEM_READ", 0x100, src=3, dst=0), cycle=0)
        for cycle in range(9):
            mc.tick(cycle)
        assert not sent

    def test_service_interval_limits_rate(self):
        mc, sent = self._mc(latency=5, interval=4)
        for i in range(3):
            mc.handle(Message("MEM_READ", i * 128, src=1, dst=0), cycle=0)
        for cycle in range(30):
            mc.tick(cycle)
        assert len(sent) == 3
        assert mc.reads_served == 3
        # Starts at cycles 0, 4, 8 -> completions at 5, 9, 13.

    def test_writes_posted(self):
        mc, sent = self._mc()
        mc.handle(Message("MEM_WRITE", 0x100, src=1, dst=0), cycle=0)
        for cycle in range(20):
            mc.tick(cycle)
        assert not sent  # no reply for writes
        assert mc.writes_served == 1

    def test_rejects_other_messages(self):
        mc, _ = self._mc()
        with pytest.raises(ValueError):
            mc.handle(Message("GETS", 0x100, src=1, dst=0), cycle=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MemoryConfig(access_latency=0)
        with pytest.raises(ValueError):
            MemoryConfig(service_interval=0)


class TestMetrics:
    def test_weighted_speedup(self):
        assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(2.0)
        assert weighted_speedup([0.5, 1.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_harmonic_speedup(self):
        assert harmonic_speedup([1.0, 1.0], [1.0, 1.0]) == pytest.approx(1.0)
        # Harmonic punishes imbalance harder than weighted.
        ws = weighted_speedup([1.0, 0.1], [1.0, 1.0])
        hs = harmonic_speedup([1.0, 0.1], [1.0, 1.0])
        assert hs < ws / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            harmonic_speedup([], [])
        with pytest.raises(ValueError):
            weighted_speedup([0.0], [1.0])

    def test_ipc_improvement(self):
        assert ipc_improvement_pct(1.12, 1.0) == pytest.approx(12.0)
        with pytest.raises(ValueError):
            ipc_improvement_pct(1.0, 0.0)

    def test_summarize(self):
        summary = summarize_ipc({0: 1.0, 1: 3.0})
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        with pytest.raises(ValueError):
            summarize_ipc({})
