"""The compiled C cycle kernel: build machinery, fallback ladder, cache.

The bit-identity of ``kernel="c"`` against the other three kernels is
pinned by ``tests/test_kernel_differential.py`` / ``test_golden_runs.py``
/ ``test_snapshot.py``; this file covers what is unique to the compiled
kernel:

* the on-demand build: compiler discovery, the sha256-keyed shared-object
  cache (``REPRO_CKERNEL_CACHE``), and reuse across loads;
* the degradation ladder: no compiler -> a *single* ``RuntimeWarning``
  and a transparent, bit-identical fall back to the soa kernel; hooks or
  faults -> per-step fall back to the event kernel (differential file);
* unsupported shapes (sub-cycle credit/link delays, too-wide routers)
  refuse cleanly instead of simulating wrongly;
* ``python -m repro.noc.bench --kernel c`` skips loudly (exit 0, clear
  message) on a compilerless host instead of mislabelling soa timings;
* the :class:`SweepPoint` spec-hash rule: ``kernel="c"`` is part of the
  cache key, kernel-free rows in an existing store keep replaying.
"""

import random
import warnings
from dataclasses import replace

import pytest

import repro.noc.ckernel as ckernel
from repro.core.layouts import build_network, layout_by_name
from repro.exec import SweepPoint, run_sweep
from repro.exec.store import ResultStore
from repro.noc.ckernel import (
    CKernelUnavailable,
    ckernel_available,
    find_compiler,
    load_kernel_library,
    unavailable_reason,
)
from repro.noc.config import NetworkConfig, RouterConfig
from repro.noc.flit import reset_packet_ids
from repro.noc.network import Network
from repro.noc.topology import Mesh

needs_ckernel = pytest.mark.skipif(
    not ckernel_available(),
    reason=f"compiled kernel unavailable: {unavailable_reason()}",
)


@pytest.fixture
def no_compiler(monkeypatch):
    """A process state in which no C compiler can be found: the build
    memo is reset so discovery really re-runs, and restored afterwards
    so later tests reuse the already-loaded library."""
    monkeypatch.setattr(ckernel, "_LIB", None)
    monkeypatch.setattr(ckernel, "_FAILED", None)
    monkeypatch.setattr(ckernel, "_WARNED", False)
    monkeypatch.setattr(ckernel, "find_compiler", lambda: None)
    yield


def _drive(net, cycles=60, rate=0.2, seed=5):
    rng = random.Random(seed)
    num_nodes = net.topology.num_nodes
    for _ in range(cycles):
        for node in range(num_nodes):
            if rng.random() < rate:
                dst = rng.randrange(num_nodes)
                if dst != node:
                    net.enqueue(net.make_packet(node, dst))
        net.step()


class TestBuildMachinery:
    @needs_ckernel
    def test_shared_object_is_cached_and_reused(self, monkeypatch, tmp_path):
        """Two builds with the same source+compiler+flags hit one .so;
        REPRO_CKERNEL_CACHE relocates the cache directory."""
        monkeypatch.setenv("REPRO_CKERNEL_CACHE", str(tmp_path))
        assert ckernel.cache_dir() == tmp_path
        ckernel._build_library()
        built = list(tmp_path.glob("ckernel-*.so"))
        assert len(built) == 1, built
        before = built[0].stat().st_mtime_ns
        ckernel._build_library()  # cache hit: no recompile, same file
        assert list(tmp_path.glob("ckernel-*.so")) == built
        assert built[0].stat().st_mtime_ns == before
        assert not list(tmp_path.glob("*.tmp.so")), "temp files must not leak"

    @needs_ckernel
    def test_load_is_memoized(self):
        assert load_kernel_library() is load_kernel_library()
        assert unavailable_reason() is None

    def test_compile_failure_is_memoized(self, no_compiler):
        with pytest.raises(CKernelUnavailable, match="no C compiler"):
            load_kernel_library()
        # Second call fails fast from the memo without re-probing PATH.
        assert ckernel._FAILED is not None
        assert ckernel_available() is False
        assert "no C compiler" in unavailable_reason()

    def test_find_compiler_returns_real_path_or_none(self):
        path = find_compiler()
        if path is not None:
            import os

            assert os.path.isabs(path) and os.access(path, os.X_OK)


class TestFallbackLadder:
    def test_no_compiler_falls_back_to_soa_with_one_warning(self, no_compiler):
        """kernel="c" on a compilerless host: exactly one RuntimeWarning
        per process, then the soa kernel carries the run."""
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 3))
        net.use_kernel("c")
        with pytest.warns(RuntimeWarning, match="falling back to the soa"):
            net.step()
        assert net.kernel == "c", "the *requested* kernel is unchanged"
        assert net.active_kernel == "soa"
        # Further steps and even further networks stay silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _drive(net, cycles=30)
            reset_packet_ids()
            other = build_network(layout_by_name("baseline", 2))
            other.use_kernel("c")
            other.step()
        assert other.active_kernel == "soa"
        net.drain()
        assert net.total_buffered_flits() == 0

    def test_no_compiler_run_matches_soa_bit_for_bit(self, no_compiler):
        import sys

        sys.path.insert(0, "tests")
        try:
            from test_kernel_differential import _run_one, _assert_same
        finally:
            sys.path.pop(0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            degraded = _run_one("c", 3, "baseline", 0.2, 11, 80, 1024)
        reference = _run_one("soa", 3, "baseline", 0.2, 11, 80, 1024)
        _assert_same(reference, degraded, "c-degraded-to-soa")

    @needs_ckernel
    def test_sub_cycle_delays_refuse_cleanly(self):
        """credit_delay=0 breaks the C calendar ring; the kernel must
        refuse (and the network degrade to soa) rather than mis-simulate."""
        from repro.noc.ckernel import CKernel

        reset_packet_ids()
        topo = Mesh(3)
        configs = {r: RouterConfig() for r in range(topo.num_routers)}
        net = Network(topo, configs, NetworkConfig(credit_delay=0, kernel="c"))
        with pytest.raises(CKernelUnavailable, match="calendar"):
            CKernel(net)
        # The network-level ladder degrades to soa (sub-cycle credits
        # are an event/soa-kernel concern either way, not the C ring's).
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            net.step()
        assert net.active_kernel == "soa"

    @needs_ckernel
    def test_explicit_rerequest_retries_activation(self):
        """A blocked c request stays blocked (no per-step re-probe), but
        an explicit use_kernel("c") tries again."""
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 2))
        net.use_kernel("c")
        net._ck_blocked = True  # as if a prior activation failed
        net.step()
        assert net.active_kernel == "soa"
        net.use_kernel("c")  # explicit re-request clears the block
        net.step()
        assert net.active_kernel == "c"
        net.drain()


class TestBenchSkipPath:
    def test_bench_kernel_c_skips_cleanly_without_compiler(
        self, no_compiler, capsys
    ):
        from repro.noc import bench

        rc = bench.main(["--kernel", "c", "--repeat", "1", "--no-history"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "skipping compiled-kernel benchmark" in out
        assert "no C compiler" in out
        assert "benchmarking" not in out, "must skip before timing anything"

    def test_bench_check_kernel_c_skips_cleanly_without_compiler(
        self, no_compiler, capsys, tmp_path
    ):
        import json

        from repro.noc import bench

        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({"c": {}}))
        rc = bench.main(["--check", str(baseline), "--kernel", "c"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "skipping compiled-kernel benchmark" in out

    @needs_ckernel
    def test_bench_all_times_c_section(self, capsys, tmp_path):
        import json

        from repro.noc import bench

        out_path = tmp_path / "r.json"
        rc = bench.main([
            "--kernel", "all", "--repeat", "1", "--only", "empty-4x4",
            "--no-history", "--out", str(out_path),
            "--baseline", str(tmp_path / "absent.json"),
        ])
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert "c" in report
        assert "empty-4x4" in report["c"]
        assert "speedup_c_vs_event" in report
        assert "speedup_c_vs_soa" in report


class TestSpecHashRule:
    POINT = SweepPoint(
        layout="baseline", mesh_size=3, pattern="uniform_random",
        rate=0.05, seed=3, warmup_packets=20, measure_packets=80,
    )

    def test_kernel_c_is_part_of_the_spec(self):
        point = replace(self.POINT, kernel="c")
        assert point.spec_dict()["kernel"] == "c"
        assert point.key() != self.POINT.key()
        assert "kernel" not in self.POINT.spec_dict()

    def test_kernel_free_store_rows_replay_for_default_points(self, tmp_path):
        """Regression: a store populated before the kernel field existed
        (rows with no kernel) must keep replaying for default-kernel
        points, and a kernel="c" override must be a cache *miss* (its own
        row), not a collision."""
        with ResultStore(tmp_path / "sweeps.sqlite") as store:
            first = run_sweep([self.POINT], cache=store)[0]
            assert not first.from_cache
            replay = run_sweep([self.POINT], cache=store)[0]
            assert replay.from_cache
            assert replay.to_dict() == first.to_dict()
            c_point = replace(self.POINT, kernel="c")
            c_result = run_sweep([c_point], cache=store)[0]
            assert not c_result.from_cache, "override must not hit the row"
            # Bit-identical payload, distinct key.
            a, b = first.to_dict(), c_result.to_dict()
            assert a.pop("key") != b.pop("key")
            assert a == b


@needs_ckernel
class TestCompiledStepping:
    def test_active_kernel_reports_c(self):
        reset_packet_ids()
        net = build_network(layout_by_name("diagonal+BL", 3))
        net.use_kernel("c")
        assert net.active_kernel in ("naive", "event")  # not yet stepped
        _drive(net, cycles=40)
        assert net.active_kernel == "c"
        net.drain()
        assert net.total_buffered_flits() == 0
        assert net.packets_in_flight == 0

    def test_sync_is_non_destructive(self):
        """sync_kernel() mirrors C state into the object model without
        deactivating: stepping continues compiled, digests unperturbed."""
        import sys

        sys.path.insert(0, "tests")
        try:
            from test_kernel_differential import _digest
        finally:
            sys.path.pop(0)
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 3))
        net.use_kernel("c")
        _drive(net, cycles=50)
        before = _digest(net)  # digest itself calls sync_kernel()
        assert net.active_kernel == "c", "sync must not deactivate"
        assert _digest(net) == before, "sync must be idempotent"
        _drive(net, cycles=10)
        net.drain()
        assert net.total_buffered_flits() == 0

    def test_wormhole_violation_raises_event_kernel_message(self):
        """C-side invariant failures surface as the same RuntimeError
        wording the python kernels use (the differential tests rely on
        error parity to triangulate real bugs)."""
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 2))
        net.use_kernel("c")
        net.enqueue(net.make_packet(0, 3))
        net.step()
        assert net.active_kernel == "c"
        ck = net._ck
        # Find a lane whose queue head is a *body* flit (mid-wormhole),
        # then claim its wormhole for a bogus packet id and re-arm VA.
        from repro.noc.ckernel import A_NEED, A_NVA, A_ST_PID

        lane = None
        for _ in range(100):
            for index in range(ck.L):
                if ck._qlen[index]:
                    slot = index * ck.D + ck._qhead[index] % ck.D
                    if ck._qs_seq[slot] != 0:
                        lane = index
                        break
            if lane is not None:
                break
            net.step()
        assert lane is not None, "no mid-wormhole lane appeared"
        rid = lane // (ck.P * ck.V)
        ck._view(A_ST_PID, ck.L)[lane] = 10_000_019
        ck._view(A_NEED, ck.L)[lane] = 1
        ck._view(A_NVA, ck.R)[rid] += 1
        ck.lib.ck_wake(ck._ck, rid)
        with pytest.raises(RuntimeError, match="wormhole violation"):
            for _ in range(50):
                net.step()
