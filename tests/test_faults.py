"""Fault-injection, resilience and watchdog tests.

Covers the acceptance criteria of the resilience subsystem:

* a 5% transient link-fault rate on the 4x4 mesh delivers 100% of
  measured packets through NI retransmission (fixed seed);
* permanent router kills lose exactly the unreachable packets, and
  every one of them is an *explicit* loss (full accounting);
* a hand-built routing cycle deadlocks and the watchdog names the
  blocked routers/VCs within its window;
* a synthetically leaked credit trips the ``REPRO_CHECK`` invariant
  suite within one check interval;
* fault-free runs never trip the invariants (property test), and a
  golden reference run is byte-identical with ``REPRO_CHECK=1``;
* fault schedules ride inside sweep points: hashing, caching and JSON
  round-trips.
"""

import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layouts import build_network, layout_by_name
from repro.exec import SweepPoint, run_sweep
from repro.exec.point import PointResult, execute_point
from repro.faults import (
    FaultSchedule,
    FaultSpec,
    FaultInjector,
    InvariantViolation,
    SimulationStalled,
    Watchdog,
    check_network_invariants,
    intermittent_link_faults,
    kill_routers,
    mesh_link_channels,
)
from repro.noc.config import RouterConfig
from repro.noc.flit import reset_packet_ids
from repro.noc.network import Network
from repro.noc.routing import Routing
from repro.noc.topology import Mesh
from repro.traffic.patterns import pattern_by_name
from repro.traffic.runner import run_synthetic

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "golden_runs.json"


def _build(mesh_size=4, layout="baseline"):
    reset_packet_ids()
    network = build_network(
        layout_by_name(layout, mesh_size), topology=Mesh(mesh_size)
    )
    pattern = pattern_by_name("uniform_random", network.topology)
    return network, pattern


# -- schedules ride inside sweep points ---------------------------------------
class TestSchedules:
    def test_schedule_json_round_trip(self):
        schedule = FaultSchedule(
            specs=(
                FaultSpec(kind="router", router=5),
                FaultSpec(kind="link", router=1, port=2, mode="transient",
                          at=10, repair_after=50),
                FaultSpec(kind="vc_stuck", router=3, port=1, vc=0),
                FaultSpec(kind="bit_flip", router=2, port=3,
                          mode="intermittent", rate=0.01, duration=8),
            ),
            seed=42,
            retransmit_timeout=128,
            max_retries=3,
            backoff_factor=1.5,
        )
        payload = schedule.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert FaultSchedule.from_dict(payload) == schedule

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor", router=0)
        with pytest.raises(ValueError):
            FaultSpec(kind="link", router=0)  # port required
        with pytest.raises(ValueError):
            FaultSpec(kind="router", router=0, port=1)
        with pytest.raises(ValueError):
            FaultSpec(kind="vc_stuck", router=0, port=1)  # vc required
        with pytest.raises(ValueError):
            FaultSpec(kind="link", router=0, port=1, mode="transient")
        with pytest.raises(ValueError):
            FaultSpec(kind="link", router=0, port=1, mode="intermittent")

    def test_sweep_point_spec_omits_faults_when_absent(self):
        point = SweepPoint(mesh_size=4, rate=0.05)
        assert "faults" not in point.spec_dict()

    def test_sweep_point_key_changes_with_faults(self):
        base = SweepPoint(mesh_size=4, rate=0.05)
        faulty = SweepPoint(mesh_size=4, rate=0.05, faults=kill_routers([5]))
        assert base.key() != faulty.key()

    def test_sweep_point_coerces_dict_schedule(self):
        schedule = kill_routers([5], retransmit_timeout=64)
        via_obj = SweepPoint(mesh_size=4, rate=0.05, faults=schedule)
        via_dict = SweepPoint(
            mesh_size=4, rate=0.05, faults=schedule.to_dict()
        )
        assert via_dict.faults == schedule
        assert via_dict.key() == via_obj.key()

    def test_point_result_tolerates_legacy_payloads(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        payload = next(iter(golden.values()))["result"]
        assert "resilience" not in payload
        result = PointResult.from_dict(payload)
        assert result.resilience is None
        assert result.error is None


# -- resilience mechanisms -----------------------------------------------------
class TestResilience:
    def test_transient_link_faults_deliver_every_measured_packet(self):
        """Acceptance: 5% of channels suffer transient link faults; the
        NI retransmission layer still delivers 100% of the measured
        packets (fixed seed, zero explicit losses)."""
        network, pattern = _build()
        channels = mesh_link_channels(network.topology)
        count = max(1, round(0.05 * len(channels)))
        schedule = FaultSchedule(
            specs=tuple(
                FaultSpec(kind="link", router=router, port=port,
                          mode="transient", at=100 + 37 * i, repair_after=400)
                for i, (router, port) in enumerate(channels[:count])
            ),
        )
        result = run_synthetic(
            network, pattern, 0.05, warmup_packets=50, measure_packets=300,
            seed=3, faults=schedule,
        )
        assert len(result.stats.records) == 300
        assert result.lost_measured_packets == 0
        assert not result.saturated

    def test_intermittent_poisson_link_faults_recovered(self):
        network, pattern = _build()
        channels = mesh_link_channels(network.topology)
        schedule = intermittent_link_faults(
            channels[:3], rate=0.002, duration=40, seed=9,
        )
        result = run_synthetic(
            network, pattern, 0.05, warmup_packets=50, measure_packets=250,
            seed=5, faults=schedule,
        )
        assert len(result.stats.records) == 250
        assert result.lost_measured_packets == 0
        assert result.resilience["fault_events"] > 0

    def test_router_kill_loses_exactly_the_unreachable_packets(self):
        network, pattern = _build()
        result = run_synthetic(
            network, pattern, 0.05, warmup_packets=50, measure_packets=300,
            seed=3, faults=kill_routers([5], at=200),
        )
        # Full accounting: every measured packet is a record or an
        # explicit loss -- nothing silently truncated.
        assert len(result.stats.records) + result.lost_measured_packets == 300
        assert result.lost_measured_packets > 0
        assert result.resilience["lost_measured"] == result.lost_measured_packets

    def test_transient_router_kill_recovers_after_repair(self):
        """Packets for a transiently dead router park at the NI and get
        through once the router repairs -- zero losses."""
        network, pattern = _build()
        schedule = FaultSchedule(
            specs=(FaultSpec(kind="router", router=5, mode="transient",
                             at=100, repair_after=800),),
        )
        result = run_synthetic(
            network, pattern, 0.05, warmup_packets=50, measure_packets=300,
            seed=3, faults=schedule,
        )
        assert len(result.stats.records) == 300
        assert result.lost_measured_packets == 0
        assert result.resilience["fault_events"] == 2  # apply + repair

    def test_repaired_channels_recover_full_credit(self, monkeypatch):
        """Regression: purges while an element is dead deliberately skip
        restoring credits at dead routers, so without repair-time
        reconciliation a repaired channel runs permanently short -- and
        trips the conservation invariant.  With REPRO_CHECK=1 the whole
        faulty run (apply, purge, repair) must stay invariant-clean."""
        monkeypatch.setenv("REPRO_CHECK", "1")
        network, pattern = _build()
        schedule = FaultSchedule(
            specs=(FaultSpec(kind="router", router=5, mode="transient",
                             at=100, repair_after=800),),
        )
        result = run_synthetic(
            network, pattern, 0.05, warmup_packets=50, measure_packets=300,
            seed=3, faults=schedule,
        )
        assert len(result.stats.records) == 300
        assert check_network_invariants(network) == []
        # Conservation per channel at end of run: held credits plus
        # whatever is still buffered or in flight must equal the depth
        # (pre-fix, repaired channels ran short by the purged flits).
        arrivals = {}
        for events in network._arrivals.values():
            for rid, port, vc, _flit in events:
                arrivals[rid, port, vc] = arrivals.get((rid, port, vc), 0) + 1
        returning = {}
        for events in network._credits.values():
            for rid, port, vc, _release in events:
                returning[rid, port, vc] = returning.get((rid, port, vc), 0) + 1
        for src, sport, dst, dport in network.topology.channels():
            router = network.routers[src]
            depth = router._credit_ceiling[sport]
            for vc in range(router.out_vc_count[sport]):
                total = (
                    router.out_credits[sport][vc]
                    + len(network.routers[dst]._vc_states[dport][vc].queue)
                    + arrivals.get((dst, dport, vc), 0)
                    + returning.get((src, sport, vc), 0)
                )
                assert total == depth, (src, sport, vc, total)

    def test_bit_flip_corruption_retransmits_until_clean(self):
        network, pattern = _build()
        channels = mesh_link_channels(network.topology)
        router, port = next(
            (r, p) for r, p in channels if r == 5
        )
        schedule = FaultSchedule(
            specs=(FaultSpec(kind="bit_flip", router=router, port=port,
                             mode="transient", at=80, repair_after=400),),
        )
        result = run_synthetic(
            network, pattern, 0.1, warmup_packets=50, measure_packets=300,
            seed=3, faults=schedule,
        )
        assert len(result.stats.records) == 300
        assert result.lost_measured_packets == 0
        assert result.resilience["corrupt_deliveries"] > 0
        assert result.resilience["retransmissions"] > 0

    def test_stuck_vc_recovered_by_timeout_purge(self):
        network, pattern = _build()
        channels = mesh_link_channels(network.topology)
        router, port = next((r, p) for r, p in channels if r == 5)
        schedule = FaultSchedule(
            specs=(FaultSpec(kind="vc_stuck", router=router, port=port,
                             vc=0, mode="transient", at=50,
                             repair_after=600),),
        )
        result = run_synthetic(
            network, pattern, 0.08, warmup_packets=50, measure_packets=300,
            seed=3, faults=schedule,
        )
        assert len(result.stats.records) == 300
        assert result.lost_measured_packets == 0

    def test_link_degrade_halves_lanes_and_loses_nothing(self):
        network, pattern = _build(layout="diagonal+BL")
        wide = next(
            (router.router_id, port)
            for router in network.routers
            for port in range(router.num_ports)
            if not router.is_ejection[port] and router._output_lanes(port) == 2
        )
        schedule = FaultSchedule(
            specs=(FaultSpec(kind="link_degrade", router=wide[0],
                             port=wide[1]),),
        )
        injector = FaultInjector(schedule, network.topology)
        network.attach_faults(injector)
        injector.tick(network, 0)
        assert network.routers[wide[0]]._output_lanes(wide[1]) == 1
        network.detach_faults()

        network, pattern = _build(layout="diagonal+BL")
        result = run_synthetic(
            network, pattern, 0.05, warmup_packets=50, measure_packets=250,
            seed=3, faults=schedule,
        )
        assert len(result.stats.records) == 250
        assert result.lost_measured_packets == 0


# -- watchdog and invariants ---------------------------------------------------
class _ClockwiseRing(Routing):
    """Adversarial routing: every packet circles 0 -> 1 -> 3 -> 2 -> 0.

    With one VC and packets longer than the per-hop buffering, four
    simultaneous wormholes form the textbook cyclic channel dependency
    that X-Y routing exists to forbid.
    """

    ORDER = (0, 1, 3, 2)

    def __init__(self, topology):
        super().__init__(topology)
        self._port_to = {
            (src, dst): sport for src, sport, dst, _ in topology.channels()
        }

    def output_port(self, router, packet):
        dst_router = self.topology.router_of_node(packet.dst)
        if router == dst_router:
            return self.topology.local_port_of_node(packet.dst)
        here = self.ORDER.index(router)
        return self._port_to[(router, self.ORDER[(here + 1) % 4])]


class TestWatchdog:
    def _ring_network(self):
        reset_packet_ids()
        topo = Mesh(2)
        configs = {
            rid: RouterConfig(num_vcs=1, buffer_depth=2)
            for rid in range(topo.num_routers)
        }
        network = Network(topo, configs)
        network.routing = _ClockwiseRing(topo)
        return network

    def test_hand_built_routing_cycle_raises_simulation_stalled(self):
        """A 4-packet cyclic wormhole wedge is detected within the
        watchdog window and the diagnosis names the blocked VCs."""
        network = self._ring_network()
        network.attach_watchdog(Watchdog(stall_window=64, check_interval=16))
        for i in range(4):
            src = _ClockwiseRing.ORDER[i]
            dst = _ClockwiseRing.ORDER[(i + 3) % 4]
            network.enqueue(
                network.make_packet(src, dst, payload_bits=network.flit_width * 8)
            )
        with pytest.raises(SimulationStalled) as excinfo:
            for _ in range(5_000):
                network.step()
        diagnosis = excinfo.value.diagnosis
        assert diagnosis.kind == "deadlock"
        assert diagnosis.packets_in_flight == 4
        assert len(diagnosis.blocked) >= 1
        entry = diagnosis.blocked[0]
        assert entry.router in _ClockwiseRing.ORDER
        assert entry.vc == 0
        # The diagnosis, not just the exception, reaches the message.
        assert "blocked" in str(excinfo.value)
        # Detected within (stall_window + check_interval) of the wedge.
        assert diagnosis.cycle < 1_000

    def test_watchdog_quiet_on_healthy_run(self):
        network, pattern = _build()
        run_synthetic(
            network, pattern, 0.05, warmup_packets=40, measure_packets=150,
            seed=2,
            watchdog=Watchdog(stall_window=500, check_interval=8),
        )

    def test_credit_leak_detected_within_one_interval(self):
        network, _ = _build()
        src, sport, _, _ = next(iter(network.topology.channels()))
        network.routers[src].out_credits[sport][0] -= 1
        violations = check_network_invariants(network)
        assert any("not conserved" in v for v in violations)
        network.attach_watchdog(
            Watchdog(check_interval=1, check_invariants=True)
        )
        with pytest.raises(InvariantViolation) as excinfo:
            for _ in range(4):
                network.step()
        assert excinfo.value.cycle <= 4
        assert any("not conserved" in v for v in excinfo.value.violations)

    def test_buffer_accounting_leak_detected(self):
        network, _ = _build()
        network.routers[3].occupied_flits += 1
        violations = check_network_invariants(network)
        assert any("occupied_flits" in v for v in violations)

    @settings(max_examples=5, deadline=None)
    @given(
        rate=st.floats(min_value=0.02, max_value=0.08),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_fault_free_runs_never_trip_invariants(self, rate, seed):
        """Property: the invariant suite is silent on healthy runs at any
        load/seed -- the REPRO_CHECK layer must never false-positive."""
        network, pattern = _build()
        run_synthetic(
            network, pattern, rate, warmup_packets=30, measure_packets=100,
            seed=seed,
            watchdog=Watchdog(
                stall_window=50_000, check_interval=16, check_invariants=True
            ),
        )


# -- golden byte-identity with the fault subsystem compiled in ----------------
class TestGoldenWithChecks:
    def test_golden_run_identical_under_repro_check(self, monkeypatch):
        """REPRO_CHECK=1 (watchdog + invariants attached, faults absent)
        must not perturb a golden reference by a single byte."""
        monkeypatch.setenv("REPRO_CHECK", "1")
        golden = json.loads(GOLDEN_PATH.read_text())
        name = "homogeneous-4x4-UR"
        point = SweepPoint(**golden[name]["spec"])
        assert execute_point(point).to_dict() == golden[name]["result"]


# -- faulty points cache and parallelize like healthy ones --------------------
class TestFaultyPointExecution:
    def _point(self):
        return SweepPoint(
            layout="baseline", mesh_size=4, pattern="uniform_random",
            rate=0.05, seed=7, warmup_packets=20, measure_packets=60,
            faults=kill_routers(
                [5], at=50, retransmit_timeout=64, max_retries=1,
                backoff_factor=1.0,
            ),
        )

    def test_execute_point_reports_resilience(self):
        result = execute_point(self._point())
        assert result.resilience is not None
        assert result.measured_packets + result.lost_measured_packets == 60

    def test_faulty_point_caches_and_round_trips(self, tmp_path):
        point = self._point()
        first = run_sweep([point], cache=str(tmp_path))[0]
        second = run_sweep([point], cache=str(tmp_path))[0]
        assert not first.from_cache and second.from_cache
        assert second.to_dict() == first.to_dict()
        assert second.resilience == first.resilience
        assert second.lost_measured_packets == first.lost_measured_packets

    def test_faulty_point_process_backend_matches_serial(self, tmp_path):
        point = self._point()
        serial = run_sweep([point], jobs=1, cache=None)[0]
        process = run_sweep(
            [point, point], jobs=2, backend="process", cache=None
        )[0]
        assert process.to_dict() == serial.to_dict()


def test_resilience_harness_registered():
    from repro.experiments.run_all import HARNESSES

    assert "resilience" in HARNESSES
