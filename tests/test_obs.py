"""Tests for the observability layer (repro.obs).

Covers the acceptance criteria of the obs tentpole: with sampling and
tracing enabled, (a) the time-average of the per-router utilization series
equals the end-of-run ``NetworkStats`` aggregates to within 1e-6, and
(b) the JSONL packet trace reproduces each measured packet's hop count and
total latency exactly -- plus the event bus, profiler, progress, drain
truncation accounting, exporters and the replay CLI.
"""

import json
import math

import pytest

from repro.core.layouts import baseline_layout, build_network
from repro.experiments.export import export_observation
from repro.obs import (
    CompositeObserver,
    EventLog,
    Observer,
    PacketTracer,
    RunProfiler,
    TimeSeriesSampler,
    observe,
)
from repro.obs import replay
from repro.obs.exporters import (
    sampler_buffer_rows,
    sampler_summary_rows,
    write_sampler_csv,
    write_sampler_json,
)
from repro.obs.profiler import Progress
from repro.traffic.patterns import UniformRandom
from repro.traffic.runner import run_synthetic


def _run_observed(
    mesh=4, rate=0.05, warmup=20, measure=150, seed=11, **observe_kwargs
):
    network = build_network(baseline_layout(mesh))
    obs = observe(network, **observe_kwargs)
    result = run_synthetic(
        network,
        UniformRandom(network.topology.num_nodes),
        rate=rate,
        warmup_packets=warmup,
        measure_packets=measure,
        seed=seed,
        profiler=obs.profiler,
    )
    obs.finalize()
    return network, obs, result


class TestAcceptanceSamplerMatchesStats:
    """Acceptance (a): series time-averages == NetworkStats aggregates."""

    @pytest.fixture(scope="class")
    def observed(self):
        return _run_observed(
            mesh=8, rate=0.05, warmup=50, measure=300,
            sample_window=50, trace=True,
        )

    def test_buffer_utilization_time_average(self, observed):
        network, obs, result = observed
        stats = result.stats
        assert obs.sampler.windows, "sampler recorded no windows"
        for router in range(network.topology.num_routers):
            assert obs.sampler.time_average_buffer_utilization(
                router
            ) == pytest.approx(stats.buffer_utilization(router), abs=1e-6)

    def test_link_utilization_time_average(self, observed):
        network, obs, result = observed
        stats = result.stats
        assert any(
            stats.link_utilization(*key) > 0 for key in stats.link_lanes
        )
        for router, port in stats.link_lanes:
            assert obs.sampler.time_average_link_utilization(
                router, port
            ) == pytest.approx(stats.link_utilization(router, port), abs=1e-6)

    def test_sampled_cycles_equal_measured_cycles(self, observed):
        _, obs, result = observed
        assert obs.sampler.sampled_cycles() == result.stats.measured_cycles

    def test_series_values_bounded(self, observed):
        network, obs, _ = observed
        for router in range(network.topology.num_routers):
            for _, value in obs.sampler.buffer_utilization_series(router):
                assert 0.0 <= value <= 1.0
        for router, port in obs.sampler.link_keys():
            for _, value in obs.sampler.link_utilization_series(router, port):
                assert 0.0 <= value <= 1.0


class TestAcceptanceTracerMatchesRecords:
    """Acceptance (b): JSONL trace reproduces hops and total latency."""

    @pytest.fixture(scope="class")
    def observed(self):
        return _run_observed(sample_window=None, trace=True)

    def test_every_measured_packet_traced(self, observed):
        _, obs, result = observed
        for record in result.stats.records:
            assert record.packet_id in obs.tracer.traces
            assert record.packet_id in obs.tracer.delivered

    def test_trace_object_matches_records(self, observed):
        _, obs, result = observed
        for record in result.stats.records:
            assert obs.tracer.hop_count(record.packet_id) == record.hops
            assert obs.tracer.total_latency(record.packet_id) == record.total

    def test_jsonl_matches_records(self, observed, tmp_path):
        _, obs, result = observed
        path = obs.tracer.write_jsonl(tmp_path / "trace.jsonl")
        hops = {}
        enqueue_cycle = {}
        deliver_cycle = {}
        summaries = {}
        with path.open() as handle:
            for line in handle:
                event = json.loads(line)
                pid = event["packet_id"]
                if event["type"] == "link" and event["head"]:
                    hops[pid] = hops.get(pid, 0) + 1
                elif event["type"] == "enqueue":
                    enqueue_cycle[pid] = event["cycle"]
                elif event["type"] == "delivered":
                    deliver_cycle[pid] = event["cycle"]
                    summaries[pid] = event
        for record in result.stats.records:
            pid = record.packet_id
            # Recomputed from raw events...
            assert hops.get(pid, 0) == record.hops
            assert deliver_cycle[pid] - enqueue_cycle[pid] == record.total
            # ...and as carried by the summary record.
            assert summaries[pid]["hops"] == record.hops
            assert summaries[pid]["latency"] == record.total

    def test_chrome_trace_is_valid(self, observed, tmp_path):
        _, obs, result = observed
        path = obs.tracer.write_chrome_trace(tmp_path / "trace.json")
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
        begins = sum(1 for e in events if e["ph"] == "B")
        ends = sum(1 for e in events if e["ph"] == "E")
        assert begins == ends == len(obs.tracer.traces)


class TestEventBus:
    def test_event_counts_are_consistent(self):
        log = EventLog()
        network = build_network(baseline_layout(4))
        network.attach_observer(log)
        result = run_synthetic(
            network, UniformRandom(16), rate=0.05,
            warmup_packets=20, measure_packets=100, seed=5,
        )
        counts = log.counts
        # Warmup + measured packets, plus background load during the drain.
        assert counts["packet_enqueued"] >= 120
        assert counts["packet_delivered"] <= counts["packet_enqueued"]
        # Ejections never exceed injections (drain may leave flits inside).
        assert counts["flit_ejected"] <= counts["flit_injected"]
        # A flit traverses the switch once per hop plus once to eject.
        assert counts["switch_grant"] == (
            counts["link_traversal"] + counts["flit_ejected"]
        )
        assert counts["cycle_end"] == network.cycle
        assert not result.saturated

    def test_observer_does_not_perturb_simulation(self):
        baseline = []
        for attach in (False, True):
            network = build_network(baseline_layout(4))
            if attach:
                network.attach_observer(EventLog())
            result = run_synthetic(
                network, UniformRandom(16), rate=0.06,
                warmup_packets=20, measure_packets=120, seed=9,
            )
            baseline.append(
                (result.avg_latency_cycles, result.total_cycles,
                 result.stats.measured_cycles)
            )
        assert baseline[0] == baseline[1]

    def test_detach_restores_fast_path(self):
        network = build_network(baseline_layout(4))
        network.attach_observer(EventLog())
        network.detach_observer()
        assert network.obs is None
        assert all(router.obs is None for router in network.routers)

    def test_composite_fans_out(self):
        log_a, log_b = EventLog(), EventLog()
        composite = CompositeObserver([log_a])
        composite.add(log_b)
        network = build_network(baseline_layout(4))
        network.attach_observer(composite)
        run_synthetic(
            network, UniformRandom(16), rate=0.05,
            warmup_packets=10, measure_packets=40, seed=2,
        )
        assert log_a.counts == log_b.counts
        assert log_a.counts["packet_enqueued"] >= 50

    def test_base_observer_is_noop(self):
        network = build_network(baseline_layout(4))
        network.attach_observer(Observer())
        result = run_synthetic(
            network, UniformRandom(16), rate=0.05,
            warmup_packets=10, measure_packets=40, seed=2,
        )
        assert len(result.stats.records) == 40


class TestDrainTruncation:
    def test_unfinished_measured_packets_reported(self):
        network = build_network(baseline_layout(4))
        log = EventLog()
        network.attach_observer(log)
        result = run_synthetic(
            network, UniformRandom(16), rate=0.5,
            warmup_packets=20, measure_packets=300, seed=3,
            drain_cycle_cap=150,
        )
        assert result.saturated
        assert result.unfinished_measured_packets > 0
        assert result.unfinished_measured_packets == (
            result.stats.packets_offered - len(result.stats.records)
        )
        assert result.stats.saturated
        assert log.counts.get("drain_truncated") == 1
        truncations = [e for e in log.events if e[0] == "drain_truncated"]
        assert truncations[0][2] == result.unfinished_measured_packets

    def test_clean_run_has_no_unfinished_packets(self):
        network = build_network(baseline_layout(4))
        result = run_synthetic(
            network, UniformRandom(16), rate=0.05,
            warmup_packets=20, measure_packets=80, seed=1,
        )
        assert not result.saturated
        assert result.unfinished_measured_packets == 0
        assert not result.stats.saturated


class TestProfilerAndProgress:
    def test_profiler_report(self):
        _, obs, result = _run_observed(
            sample_window=None, profile=True, measure=80
        )
        report = obs.profiler.report()
        assert report["cycles"] == result.total_cycles
        assert report["cycles_per_second"] > 0
        assert report["wall_seconds"] > 0
        assert set(report["phase_seconds"]) == {
            "arrivals", "credits", "inject", "vc_alloc", "switch", "sample",
        }
        assert sum(report["phase_seconds"].values()) > 0
        assert set(report["run_phase_seconds"]) == {
            "warmup", "measure", "drain",
        }
        assert abs(sum(report["phase_fraction"].values()) - 1.0) < 1e-9
        text = obs.profiler.format_report()
        assert "cycles/second" in text and "switch" in text

    def test_profiled_run_matches_unprofiled(self):
        results = []
        for profile in (False, True):
            network = build_network(baseline_layout(4))
            profiler = RunProfiler() if profile else None
            result = run_synthetic(
                network, UniformRandom(16), rate=0.05,
                warmup_packets=20, measure_packets=80, seed=4,
                profiler=profiler,
            )
            results.append((result.avg_latency_cycles, result.total_cycles))
        assert results[0] == results[1]

    def test_progress_callbacks(self):
        beats = []
        network = build_network(baseline_layout(4))
        run_synthetic(
            network, UniformRandom(16), rate=0.05,
            warmup_packets=50, measure_packets=400, seed=1,
            progress=beats.append, progress_every=100,
        )
        assert beats
        assert {b.phase for b in beats} <= {"warmup", "measure", "drain"}
        for beat in beats:
            assert isinstance(beat, Progress)
            assert beat.elapsed_s >= 0
            assert beat.target > 0
            assert beat.eta_s >= 0 or math.isnan(beat.eta_s)
        assert str(beats[-1]).startswith("[")

    def test_progress_eta_math(self):
        beat = Progress(
            phase="measure", cycle=10, done=50, target=100, elapsed_s=2.0
        )
        assert beat.fraction == pytest.approx(0.5)
        assert beat.eta_s == pytest.approx(2.0)
        empty = Progress(
            phase="warmup", cycle=0, done=0, target=100, elapsed_s=0.0
        )
        assert math.isnan(empty.eta_s)


class TestSamplerDetails:
    def test_rejects_bad_window(self):
        network = build_network(baseline_layout(4))
        with pytest.raises(ValueError):
            TimeSeriesSampler(network, window=0)

    def test_window_metadata(self):
        _, obs, result = _run_observed(sample_window=25)
        windows = obs.sampler.windows
        assert windows
        for w in windows[:-1]:
            assert w.cycles == 25
        assert sum(w.cycles for w in windows) == result.stats.measured_cycles
        for earlier, later in zip(windows, windows[1:]):
            assert later.start_cycle > earlier.end_cycle - 1
            assert later.index == earlier.index + 1

    def test_window_deliveries_sum_to_window_total(self):
        _, obs, result = _run_observed(sample_window=25)
        assert sum(w.deliveries for w in obs.sampler.windows) == (
            result.stats.window_packet_deliveries
        )
        assert sum(w.flits_delivered for w in obs.sampler.windows) == (
            result.stats.window_flit_deliveries
        )

    def test_latency_and_throughput_series(self):
        network, obs, _ = _run_observed(sample_window=25)
        latencies = [v for _, v in obs.sampler.latency_series()]
        assert any(not math.isnan(v) for v in latencies)
        throughputs = [v for _, v in obs.sampler.throughput_series()]
        assert any(v > 0 for v in throughputs)

    def test_saturation_onset_none_below_knee(self):
        _, obs, _ = _run_observed(sample_window=25, rate=0.03)
        assert obs.sampler.saturation_onset(factor=50.0) is None


class TestTracerSelection:
    def test_select_all_traces_warmup_packets(self):
        _, obs, result = _run_observed(
            sample_window=None, trace=True, trace_select="all",
            warmup=10, measure=40,
        )
        assert len(obs.tracer.traces) >= 50

    def test_max_packets_cap(self):
        _, obs, _ = _run_observed(
            sample_window=None, trace=True, trace_max_packets=5,
        )
        assert len(obs.tracer.traces) == 5

    def test_select_by_callable(self):
        tracer = PacketTracer(select=lambda p: p.dst == 0)
        network = build_network(baseline_layout(4))
        network.attach_observer(tracer)
        run_synthetic(
            network, UniformRandom(16), rate=0.05,
            warmup_packets=10, measure_packets=60, seed=8,
        )
        assert tracer.traces
        for events in tracer.traces.values():
            assert events[0]["dst"] == 0

    def test_rejects_unknown_selector_string(self):
        with pytest.raises(ValueError):
            PacketTracer(select="bogus")


class TestExportersAndReplay:
    @pytest.fixture(scope="class")
    def observed(self):
        return _run_observed(sample_window=25, trace=True, profile=True)

    def test_sampler_rows_and_csv(self, observed, tmp_path):
        _, obs, _ = observed
        rows = sampler_summary_rows(obs.sampler)
        assert len(rows) == len(obs.sampler.windows)
        assert {"window", "cycles", "deliveries"} <= set(rows[0])
        buffer_rows = sampler_buffer_rows(obs.sampler)
        assert len(buffer_rows) == len(obs.sampler.windows) * 16
        paths = write_sampler_csv(obs.sampler, tmp_path, prefix="t")
        assert len(paths) == 3
        for path in paths:
            assert path.exists()
            assert len(path.read_text().splitlines()) > 1

    def test_sampler_json(self, observed, tmp_path):
        _, obs, _ = observed
        path = write_sampler_json(obs.sampler, tmp_path / "sampler.json")
        document = json.loads(path.read_text())
        assert len(document["windows"]) == len(obs.sampler.windows)
        assert document["sampled_cycles"] == obs.sampler.sampled_cycles()

    def test_export_observation_bundle(self, observed, tmp_path):
        _, obs, _ = observed
        written = export_observation("demo", obs, tmp_path)
        names = {path.name for path in written}
        assert names == {
            "demo_timeseries.csv",
            "demo_buffer_series.csv",
            "demo_link_series.csv",
            "demo_trace.jsonl",
            "demo_trace_chrome.json",
            "demo_profile.json",
        }

    def test_replay_summarize(self, observed, tmp_path):
        _, obs, result = observed
        path = obs.tracer.write_jsonl(tmp_path / "trace.jsonl")
        events = replay.load_events(path)
        summary = replay.summarize(events)
        assert summary["packets"] == len(obs.tracer.traces)
        assert summary["delivered"] == len(result.stats.records)
        assert summary["avg_hops"] == pytest.approx(result.stats.avg_hops)
        assert summary["avg_latency_cycles"] == pytest.approx(
            result.stats.avg_latency_cycles
        )
        text = replay.format_summary(summary)
        assert "packets" in text and "hottest routers" in text

    def test_replay_cli(self, observed, tmp_path, capsys):
        _, obs, _ = observed
        trace = obs.tracer.write_jsonl(tmp_path / "trace.jsonl")
        chrome = tmp_path / "chrome.json"
        assert replay.main([str(trace), "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "events" in out and "delivered" in out
        document = json.loads(chrome.read_text())
        assert document["traceEvents"]
        pid = next(iter(obs.tracer.traces))
        assert replay.main([str(trace), "--packet", str(pid)]) == 0
        assert f"packet {pid}" in capsys.readouterr().out

    def test_replay_cli_bad_usage(self, tmp_path, capsys):
        assert replay.main([]) == 2
        assert replay.main([str(tmp_path / "missing.jsonl")]) == 1
