"""Tests for the calibrated power/area/frequency models."""

import pytest

from repro.core.layouts import layout_by_name, build_network
from repro.core.power import (
    CALIBRATION_ACTIVITY,
    RouterPowerModel,
    TABLE1_POWER_W,
    heteronoc_frequency_ghz,
    network_power_breakdown,
    router_area_mm2,
    router_frequency_ghz,
)
from repro.noc.config import baseline_router, big_router, small_router
from repro.traffic.patterns import UniformRandom
from repro.traffic.runner import run_synthetic


class TestFrequencyModel:
    def test_table1_anchors_exact(self):
        assert router_frequency_ghz(3) == pytest.approx(2.20)
        assert router_frequency_ghz(2) == pytest.approx(2.25)
        assert router_frequency_ghz(6) == pytest.approx(2.07)

    def test_heteronoc_runs_at_big_router_clock(self):
        assert heteronoc_frequency_ghz() == pytest.approx(2.07)

    def test_more_vcs_slower(self):
        frequencies = [router_frequency_ghz(v) for v in (2, 3, 4, 6, 8, 12)]
        assert frequencies == sorted(frequencies, reverse=True)

    def test_rejects_zero_vcs(self):
        with pytest.raises(ValueError):
            router_frequency_ghz(0)


class TestAreaModel:
    def test_table1_areas_exact(self):
        assert router_area_mm2(baseline_router()) == pytest.approx(0.290, abs=1e-3)
        assert router_area_mm2(small_router()) == pytest.approx(0.235, abs=1e-3)
        assert router_area_mm2(big_router()) == pytest.approx(0.425, abs=1e-3)

    def test_big_router_area_delta_matches_paper(self):
        """Section 3.5: big +46%, small -18% vs baseline."""
        base = router_area_mm2(baseline_router())
        assert (router_area_mm2(big_router()) - base) / base == pytest.approx(
            0.466, abs=0.02
        )
        assert (router_area_mm2(small_router()) - base) / base == pytest.approx(
            -0.19, abs=0.02
        )

    def test_total_hetero_area_below_homogeneous(self):
        """Section 3.5: 18.08 mm2 vs 18.56 mm2."""
        hetero = 48 * router_area_mm2(small_router()) + 16 * router_area_mm2(
            big_router()
        )
        homo = 64 * router_area_mm2(baseline_router())
        assert hetero == pytest.approx(18.08, abs=0.05)
        assert homo == pytest.approx(18.56, abs=0.05)
        assert hetero < homo


class TestPowerModel:
    def test_table1_power_anchors(self):
        model = RouterPowerModel()
        for config, kind in (
            (baseline_router(), "baseline"),
            (small_router(), "small"),
            (big_router(), "big"),
        ):
            assert model.table1_power(config) == pytest.approx(
                TABLE1_POWER_W[kind], rel=0.03
            )

    def test_buffer_share_near_paper(self):
        """Refs [29, 30]: buffers ~= 35% of router power."""
        model = RouterPowerModel()
        power = model.power_at_activity(baseline_router(), CALIBRATION_ACTIVITY)
        assert power.buffers / power.total == pytest.approx(0.35, abs=0.08)

    def test_dynamic_power_scales_with_activity(self):
        model = RouterPowerModel()
        idle = model.power_at_activity(baseline_router(), 0.0)
        busy = model.power_at_activity(baseline_router(), 1.0)
        assert busy.total > idle.total
        # Leakage persists at zero activity.
        assert idle.total > 0

    def test_activity_bounds(self):
        model = RouterPowerModel()
        with pytest.raises(ValueError):
            model.power_at_activity(baseline_router(), 1.5)

    def test_power_from_counts_scaling(self):
        model = RouterPowerModel()
        low = model.power_from_counts(
            baseline_router(), 2.2, cycles=1000, flit_traversals=500, link_flits=400
        )
        high = model.power_from_counts(
            baseline_router(), 2.2, cycles=1000, flit_traversals=2000, link_flits=1600
        )
        assert high.total > low.total
        with pytest.raises(ValueError):
            model.power_from_counts(baseline_router(), 2.2, 0, 1, 1)

    def test_power_inequality_threshold(self):
        """The Table 1 numbers give the paper's 1.71 threshold ratio."""
        ratio = (TABLE1_POWER_W["big"] - TABLE1_POWER_W["small"]) / (
            TABLE1_POWER_W["big"] - TABLE1_POWER_W["baseline"]
        )
        assert ratio == pytest.approx(1.71, abs=0.01)


class TestNetworkPower:
    def _run(self, layout_name, rate=0.04):
        network = build_network(layout_by_name(layout_name))
        result = run_synthetic(
            network, UniformRandom(64), rate=rate,
            warmup_packets=50, measure_packets=300, seed=6,
        )
        return network, result

    def test_breakdown_components_positive(self):
        network, result = self._run("baseline")
        breakdown = network_power_breakdown(network, result.stats)
        for key in ("buffers", "crossbar", "arbiters_logic", "links", "total"):
            assert breakdown[key] >= 0
        assert breakdown["total"] == pytest.approx(
            breakdown["buffers"]
            + breakdown["crossbar"]
            + breakdown["arbiters_logic"]
            + breakdown["links"]
        )

    def test_hetero_bl_saves_power(self):
        """The headline power claim: +BL layouts consume less."""
        _, base_result = self._run("baseline")
        base_network, base_result = self._run("baseline")
        hetero_network, hetero_result = self._run("diagonal+BL")
        base_power = network_power_breakdown(base_network, base_result.stats)
        hetero_power = network_power_breakdown(hetero_network, hetero_result.stats)
        assert hetero_power["total"] < base_power["total"]
        # Buffer power drops the most (33% fewer bits).
        assert hetero_power["buffers"] < base_power["buffers"]

    def test_requires_measurement_window(self):
        network = build_network(layout_by_name("baseline"))
        with pytest.raises(ValueError):
            network_power_breakdown(network, network.stats)
