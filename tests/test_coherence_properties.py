"""Property-based fuzzing of the MESI protocol under network reordering.

Random short traces with heavy block contention run through a small CMP;
after quiescing, the system must satisfy the MESI safety invariants:
single writer, no writer alongside sharers, directory agreement and L2
inclusivity.  Historical protocol races (INV-overtakes-DATA,
FWD-overtakes-fill, stale PUTX) were all of the kind this test hunts.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.cmp.cache import EXCLUSIVE, MODIFIED, SHARED, CacheConfig
from repro.cmp.system import CmpConfig, CmpSystem
from repro.core.layouts import baseline_layout, layout_by_name
from repro.traffic.trace import TraceRecord


def _contended_traces(rng, num_cores, records_per_core, num_blocks):
    """Traces where every core hammers a tiny shared block pool."""
    base = 1 << 45
    traces = {}
    for core in range(num_cores):
        records = []
        for _ in range(records_per_core):
            block = rng.randrange(num_blocks)
            records.append(
                TraceRecord(
                    gap=rng.randrange(3),
                    is_write=rng.random() < 0.4,
                    address=base + block * 128,
                )
            )
        traces[core] = records
    return traces


def _assert_mesi_safe(system):
    blocks = set()
    for l1 in system.l1s.values():
        blocks.update(line.block for line in l1.cache.lines())
    for block in blocks:
        states = {
            node: l1.state_of(block)
            for node, l1 in system.l1s.items()
            if l1.state_of(block) != "I"
        }
        owners = [n for n, s in states.items() if s in (MODIFIED, EXCLUSIVE)]
        sharers = [n for n, s in states.items() if s == SHARED]
        assert len(owners) <= 1, f"{block:#x}: multiple owners {owners}"
        assert not (owners and sharers), (
            f"{block:#x}: owner {owners} coexists with sharers {sharers}"
        )
        home = system.home_of(block)
        entry = system.l2s[home].directory.get(block)
        if owners:
            assert entry is not None and entry.owner == owners[0], (
                f"{block:#x}: cache owner {owners[0]} but directory {entry}"
            )
        if states:
            assert system.l2s[home].cache.probe(block) is not None, (
                f"{block:#x}: L1 copies without an inclusive L2 line"
            )


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_blocks=st.integers(min_value=1, max_value=6),
    hetero=st.booleans(),
)
@settings(max_examples=10, deadline=None)
def test_contended_protocol_stays_safe(seed, num_blocks, hetero):
    rng = random.Random(seed)
    layout = (
        layout_by_name("diagonal+BL", 4) if hetero else baseline_layout(4)
    )
    config = CmpConfig(
        l1=CacheConfig(size_bytes=2 * 1024, associativity=2, block_bytes=128),
        l2_bank=CacheConfig(
            size_bytes=16 * 1024, associativity=4, block_bytes=128, latency=6
        ),
        start_stagger_window=8,
    )
    traces = _contended_traces(rng, num_cores=16, records_per_core=25,
                               num_blocks=num_blocks)
    system = CmpSystem(layout, traces, config=config)
    system.run(max_cycles=400_000)
    for _ in range(3000):
        system.tick()
    _assert_mesi_safe(system)
    # Liveness: every access eventually completed.
    assert all(core.done for core in system.cores.values())
