"""Property-based tests of whole-network invariants.

These exercise the simulator with randomized traffic and check the
system-level invariants from DESIGN.md: every packet is delivered, hops
match the deterministic route, the latency decomposition is exact, and
the network quiesces with all credits restored.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.layouts import layout_by_name
from repro.noc.config import NetworkConfig, RouterConfig
from repro.noc.network import Network
from repro.noc.topology import Mesh, Torus, manhattan_distance, torus_distance


def _random_traffic(network, rng, n_packets, max_flits=8):
    packets = []
    nodes = network.topology.num_nodes
    for _ in range(n_packets):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        packet = network.make_packet(src, dst)
        packet.num_flits = rng.randint(1, max_flits)
        packet.measured = True
        packets.append(packet)
    return packets


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=2, max_value=5),
    vcs=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_mesh_delivery_invariants(seed, size, vcs):
    rng = random.Random(seed)
    topology = Mesh(size)
    configs = {
        r: RouterConfig(num_vcs=vcs, buffer_depth=rng.randint(2, 6))
        for r in range(topology.num_routers)
    }
    network = Network(topology, configs, NetworkConfig())
    network.begin_measurement()
    packets = _random_traffic(network, rng, n_packets=25)
    for packet in packets:
        network.enqueue(packet)
        if rng.random() < 0.5:
            network.step()
    network.drain(max_cycles=50_000)
    network.end_measurement()

    # 1. Every packet delivered, exactly once.
    assert len(network.stats.records) == len(packets)
    assert all(p.received_at is not None for p in packets)

    # 2. Hops equal the deterministic X-Y distance.
    for packet in packets:
        assert packet.hops == manhattan_distance(topology, packet.src, packet.dst)

    # 3. Latency decomposition is exact and non-negative.
    for record in network.stats.records:
        assert record.total == record.queuing + record.transfer + record.blocking
        assert record.queuing >= 0 and record.blocking >= 0

    # 4. Full quiescence: buffers empty, credits restored, VCs released.
    for router in network.routers:
        assert router.occupied_flits == 0
        for port in range(router.num_ports):
            assert all(
                c == router._credit_ceiling[port]
                for c in router.out_credits[port]
            )
            assert all(owner is None for owner in router.out_vc_owner[port])


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_torus_delivery_and_deadlock_freedom(seed):
    rng = random.Random(seed)
    topology = Torus(4)
    configs = {r: RouterConfig(num_vcs=4) for r in range(topology.num_routers)}
    network = Network(topology, configs, NetworkConfig())
    packets = _random_traffic(network, rng, n_packets=30)
    for packet in packets:
        network.enqueue(packet)
    # Deadlock would trip the drain deadline.
    network.drain(max_cycles=50_000)
    for packet in packets:
        assert packet.hops == torus_distance(topology, packet.src, packet.dst)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    layout_name=st.sampled_from(["diagonal+BL", "center+BL", "row2_5+B"]),
)
@settings(max_examples=8, deadline=None)
def test_hetero_layout_delivery(seed, layout_name):
    """Heterogeneous meshes (mixed VC counts, wide links, merging) keep
    the same delivery and quiescence guarantees."""
    from repro.core.layouts import build_network

    rng = random.Random(seed)
    layout = layout_by_name(layout_name)
    network = build_network(layout)
    packets = _random_traffic(network, rng, n_packets=40)
    for packet in packets:
        network.enqueue(packet)
        network.step()
    network.drain(max_cycles=50_000)
    assert all(p.received_at is not None for p in packets)
    for router in network.routers:
        assert router.occupied_flits == 0


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_table_routing_deadlock_freedom(seed):
    """Table-routed staircase paths with escape VCs always drain."""
    from repro.core.layouts import build_network, diagonal_positions
    from repro.noc.routing import TableRouting

    rng = random.Random(seed)
    layout = layout_by_name("diagonal+BL")
    mesh = Mesh(8)
    routing = TableRouting(
        mesh,
        big_routers=diagonal_positions(8),
        table_nodes={0, 7, 56, 63},
        escape_vc=0,
    )
    network = build_network(layout, topology=mesh, routing=routing)
    corners = [0, 7, 56, 63]
    packets = []
    for _ in range(30):
        if rng.random() < 0.5:
            src = rng.choice(corners)
            dst = rng.randrange(64)
        else:
            src = rng.randrange(64)
            dst = rng.choice(corners)
        packet = network.make_packet(src, dst)
        packet.num_flits = rng.randint(1, 6)
        packets.append(packet)
        network.enqueue(packet)
    network.drain(max_cycles=50_000)
    assert all(p.received_at is not None for p in packets)
