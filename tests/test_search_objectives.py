"""Tests for the multi-objective placement evaluator (repro.search)."""

import pytest

from repro.core.layouts import diagonal_positions
from repro.faults.schedule import FaultSchedule
from repro.search.canonical import (
    canonical_placement,
    placement_orbit,
)
from repro.search.objectives import (
    FlowModel,
    ObjectiveWeights,
    PlacementEvaluator,
    default_hotspots,
)

DIAG4 = tuple(sorted(diagonal_positions(4)))


class TestFlowModel:
    def test_uniform_random_keeps_all_eight_symmetries(self):
        assert len(FlowModel(4).symmetry_maps) == 8
        assert FlowModel(4).symmetric

    def test_hotspot_keeps_the_four_axis_preserving_maps(self):
        """The hotspot destination boost breaks (s, d) <-> (d, s) weight
        symmetry, so the four axis-swapping transforms no longer preserve
        scores; the D4-symmetric default hotspot set keeps the other four."""
        model = FlowModel(4, "hotspot")
        assert len(model.symmetry_maps) == 4
        assert not model.symmetric

    def test_asymmetric_hotspots_keep_only_identity(self):
        model = FlowModel(4, "hotspot", hotspots=(1,))
        assert len(model.symmetry_maps) == 1

    def test_offered_load_matches_traversal_counts(self):
        """Uniform-random offered load is the footnote-4 traversal count,
        normalized."""
        from repro.core.design_space import router_traversal_counts
        from repro.noc.topology import Mesh

        model = FlowModel(4)
        counts = router_traversal_counts(Mesh(4))
        total = sum(counts.values())
        for rid, count in counts.items():
            assert model.load[rid] == pytest.approx(count / total)

    def test_hotspot_destinations_hotter(self):
        model = FlowModel(8, "hotspot", hotspot_factor=4.0)
        hot = default_hotspots(8)
        cold_corner = 0
        assert all(model.offered[h] > model.offered[cold_corner] for h in hot)

    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError, match="pattern"):
            FlowModel(4, "transpose")

    def test_bad_hotspot_factor_rejected(self):
        with pytest.raises(ValueError, match="hotspot_factor"):
            FlowModel(4, "hotspot", hotspot_factor=0.5)

    def test_hotspots_outside_mesh_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            FlowModel(4, "hotspot", hotspots=(99,))


class TestEvaluator:
    def test_full_objective_vector_is_orbit_invariant(self):
        """Every axis -- including fairness (self-dual min) and resilience
        (kill tie-breaks) -- scores identically across all eight
        reflections, each evaluated by a fresh evaluator (no shared
        cache)."""
        placement = frozenset({0, 1, 3, 6, 9, 10, 12, 14})
        reference = None
        for member in placement_orbit(placement, 4):
            record = PlacementEvaluator(4).evaluate(member)
            vector = (
                record.analytic,
                record.fairness,
                record.contention,
                record.balance,
                record.resilience,
                record.power_slack,
                record.scalar,
            )
            if reference is None:
                reference = vector
            else:
                assert vector == pytest.approx(reference, abs=1e-12)

    def test_symmetric_candidates_hit_the_cache(self):
        evaluator = PlacementEvaluator(4)
        first = evaluator.evaluate(DIAG4)
        for member in placement_orbit(DIAG4, 4):
            again = evaluator.evaluate(member)
            assert again is first
        assert evaluator.evaluations == 1
        assert evaluator.cache_hits >= len(placement_orbit(DIAG4, 4))

    def test_canonical_recorded_with_original_positions(self):
        evaluator = PlacementEvaluator(4)
        shifted = frozenset({1, 2, 4, 7, 8, 11, 13, 14})
        record = evaluator.evaluate(shifted)
        assert record.positions == tuple(sorted(shifted))
        assert record.canonical == canonical_placement(shifted, 4)

    def test_diagonal_scores_higher_than_corner_cluster(self):
        evaluator = PlacementEvaluator(4)
        cluster = {0, 1, 2, 4, 5, 6, 8, 9}
        assert evaluator.score(DIAG4) > evaluator.score(cluster)

    def test_balance_is_one_for_family_and_lower_for_rows(self):
        evaluator = PlacementEvaluator(4)
        assert evaluator.evaluate(DIAG4).balance == pytest.approx(1.0)
        rows = set(range(8))  # two full rows: balanced columns, skewed rows
        assert evaluator.evaluate(rows).balance < 1.0

    def test_resilience_penalizes_spof_concentration(self):
        """Killing the two hottest big routers hurts a center cluster far
        more than the diagonal."""
        evaluator = PlacementEvaluator(4, kill_count=2)
        center = {5, 6, 9, 10, 1, 2, 13, 14}
        assert (
            evaluator.evaluate(DIAG4).resilience
            >= evaluator.evaluate(center).resilience
        )

    def test_kill_schedule_is_a_fault_schedule(self):
        evaluator = PlacementEvaluator(4, kill_count=2)
        schedule = evaluator.kill_schedule(DIAG4, at=100)
        assert isinstance(schedule, FaultSchedule)
        kills = evaluator.worst_kills(DIAG4)
        assert len(kills) == 2
        assert set(kills) <= set(DIAG4)

    def test_power_slack_sign(self):
        evaluator = PlacementEvaluator(8)
        assert evaluator.power_slack(16) > 0  # the paper's 16/48 mix fits
        assert evaluator.power_slack(64) < 0  # all-big blows the budget

    def test_extra_terms_reach_scalar(self):
        def prefer_corner(big, model):
            return 1.0 if 0 in big else 0.0

        weights = ObjectiveWeights(extras={"corner": 10.0})
        evaluator = PlacementEvaluator(
            4, weights=weights, extra_terms={"corner": prefer_corner}
        )
        with_corner = evaluator.evaluate({0, 5, 10, 15})
        without = evaluator.evaluate({1, 4, 11, 14})
        assert with_corner.extras["corner"] == 1.0
        assert with_corner.scalar > without.scalar + 5.0

    def test_empty_placement_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PlacementEvaluator(4).evaluate(())

    def test_out_of_mesh_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            PlacementEvaluator(4).evaluate({0, 99})

    def test_bad_utilization_rejected(self):
        with pytest.raises(ValueError, match="reference_utilization"):
            PlacementEvaluator(4, reference_utilization=1.5)

    def test_bad_kill_count_rejected(self):
        with pytest.raises(ValueError, match="kill_count"):
            PlacementEvaluator(4, kill_count=-1)


class TestCalibration:
    def test_4x4_global_optimum_is_the_figure3_diagonal(self):
        """Under the default weights the argmax of the entire 12,870-wide
        4x4 space is the paper's exact diagonal placement -- the
        calibration the defaults are documented to satisfy."""
        import itertools

        evaluator = PlacementEvaluator(4)
        best = max(
            (
                evaluator.evaluate(frozenset(combo))
                for combo in itertools.combinations(range(16), 8)
            ),
            key=lambda r: r.scalar,
        )
        assert best.canonical == canonical_placement(DIAG4, 4)
