"""Tests for the cache tag stores and MSHRs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cmp.cache import (
    EXCLUSIVE,
    MODIFIED,
    SHARED,
    CacheConfig,
    MSHRFile,
    SetAssociativeCache,
)


class TestCacheConfig:
    def test_table2_l1_geometry(self):
        config = CacheConfig()
        assert config.num_sets == 64  # 32 KB / (4 * 128 B)

    def test_set_index_wraps(self):
        config = CacheConfig()
        assert config.set_index(0) == 0
        assert config.set_index(128 * 64) == 0
        assert config.set_index(128 * 65) == 1

    def test_interleave_shift_skips_bank_bits(self):
        config = CacheConfig(interleave_shift=6)
        # Blocks 64 apart (same bank in a 64-way interleave) land in
        # different sets.
        assert config.set_index(0) != config.set_index(64 * 128) or config.num_sets == 1
        assert config.set_index(64 * 128) == 1

    def test_block_address(self):
        config = CacheConfig()
        assert config.block_address(0x1234) == 0x1200

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000)
        with pytest.raises(ValueError):
            CacheConfig(latency=-1)
        with pytest.raises(ValueError):
            CacheConfig(interleave_shift=-1)


class TestSetAssociativeCache:
    def _cache(self, assoc=2, sets=2):
        config = CacheConfig(
            size_bytes=assoc * sets * 128, associativity=assoc, block_bytes=128
        )
        return SetAssociativeCache(config)

    def test_insert_and_lookup(self):
        cache = self._cache()
        assert cache.lookup(0x100) is None
        cache.insert(0x100, SHARED)
        line = cache.lookup(0x100)
        assert line is not None and line.state == SHARED

    def test_lru_eviction(self):
        cache = self._cache(assoc=2, sets=1)
        cache.insert(0x000, SHARED)
        cache.insert(0x080, SHARED)
        cache.lookup(0x000)  # touch: 0x080 becomes LRU
        victim = cache.insert(0x100, SHARED)
        assert victim.block == 0x080

    def test_victim_for_predicts_eviction(self):
        cache = self._cache(assoc=2, sets=1)
        cache.insert(0x000, SHARED)
        assert cache.victim_for(0x080) is None  # still a free way
        cache.insert(0x080, SHARED)
        assert cache.victim_for(0x100).block == 0x000
        assert cache.victim_for(0x000) is None  # already resident

    def test_reinsert_updates_state(self):
        cache = self._cache()
        cache.insert(0x100, SHARED)
        assert cache.insert(0x100, MODIFIED) is None
        assert cache.lookup(0x100).state == MODIFIED

    def test_invalidate(self):
        cache = self._cache()
        cache.insert(0x100, EXCLUSIVE)
        removed = cache.invalidate(0x100)
        assert removed.state == EXCLUSIVE
        assert cache.lookup(0x100) is None
        assert cache.invalidate(0x100) is None

    def test_hit_miss_counters(self):
        cache = self._cache()
        cache.access(0x100)
        cache.insert(0x100, SHARED)
        cache.access(0x100)
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_probe_preserves_lru(self):
        cache = self._cache(assoc=2, sets=1)
        cache.insert(0x000, SHARED)
        cache.insert(0x080, SHARED)
        cache.probe(0x000)  # does NOT touch
        victim = cache.insert(0x100, SHARED)
        assert victim.block == 0x000

    def test_occupancy_and_lines(self):
        cache = self._cache()
        cache.insert(0x000, SHARED)
        cache.insert(0x080, MODIFIED)
        assert cache.occupancy == 2
        assert {l.block for l in cache.lines()} == {0x000, 0x080}

    @given(addresses=st.lists(st.integers(min_value=0, max_value=2**20), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = self._cache(assoc=2, sets=4)
        for address in addresses:
            cache.insert(address, SHARED)
        assert cache.occupancy <= 8
        # Each set respects its associativity.
        for cache_set in cache._sets:
            assert len(cache_set) <= 2


class TestMSHRFile:
    def test_allocate_and_release(self):
        mshrs = MSHRFile(capacity=2)
        entry = mshrs.allocate(0x100, is_write=False, cycle=5)
        assert entry.issued_at == 5
        assert mshrs.outstanding == 1
        assert mshrs.lookup(0x100) is entry
        released = mshrs.release(0x100)
        assert released is entry
        assert mshrs.outstanding == 0

    def test_capacity_enforced(self):
        mshrs = MSHRFile(capacity=1)
        mshrs.allocate(0x100, False, 0)
        assert mshrs.full
        with pytest.raises(RuntimeError):
            mshrs.allocate(0x200, False, 0)

    def test_duplicate_block_rejected(self):
        mshrs = MSHRFile(capacity=4)
        mshrs.allocate(0x100, False, 0)
        with pytest.raises(ValueError):
            mshrs.allocate(0x100, True, 1)

    def test_release_unknown(self):
        with pytest.raises(KeyError):
            MSHRFile().release(0x100)

    def test_waiter_merging(self):
        mshrs = MSHRFile()
        entry = mshrs.allocate(0x100, False, 0)
        entry.waiters.append("a")
        entry.waiters.append("b")
        assert mshrs.lookup(0x100).waiters == ["a", "b"]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(capacity=0)
