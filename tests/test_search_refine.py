"""Tests for the cycle-simulated refinement stage (repro.search.refine)."""

import math

import pytest

from repro.core.layouts import diagonal_positions
from repro.search.objectives import PlacementEvaluator
from repro.search.refine import placement_points, refine_placements

CANDIDATES = [tuple(sorted(diagonal_positions(4))), (0, 1, 2, 3, 4, 5, 6, 7)]


def _strip_cache_flag(records):
    return [
        {k: v for k, v in record.items() if k != "from_cache"}
        for record in records
    ]


class TestPlacementPoints:
    def test_one_point_per_candidate(self):
        points = placement_points(CANDIDATES, 4, rate=0.05)
        assert len(points) == 2
        assert all(p.mesh_size == 4 for p in points)
        assert all(p.pattern == "uniform_random" for p in points)
        assert points[0].big_positions == CANDIDATES[0]

    def test_default_warmup_scales_with_measure(self):
        points = placement_points(CANDIDATES, 4, measure_packets=800)
        assert points[0].warmup_packets == 100

    def test_per_candidate_fault_schedules(self):
        evaluator = PlacementEvaluator(4, kill_count=1)
        schedules = [evaluator.kill_schedule(c, at=50) for c in CANDIDATES]
        points = placement_points(CANDIDATES, 4, faults=schedules)
        assert all(p.faults is not None for p in points)
        assert points[0].key() != placement_points(CANDIDATES, 4)[0].key()

    def test_mismatched_schedule_count_rejected(self):
        with pytest.raises(ValueError, match="schedules"):
            placement_points(CANDIDATES, 4, faults=[None])

    def test_kernel_forwarded_to_every_point(self):
        points = placement_points(CANDIDATES, 4, kernel="soa")
        assert all(p.kernel == "soa" for p in points)
        assert all(p.spec_dict()["kernel"] == "soa" for p in points)
        # Unset stays off the spec, so existing cached refinements keep
        # their keys.
        default = placement_points(CANDIDATES, 4)
        assert all("kernel" not in p.spec_dict() for p in default)


class TestRefinePlacements:
    def test_sorted_by_latency_with_scores_attached(self):
        records = refine_placements(
            CANDIDATES, 4, rate=0.05, measure_packets=120, cache=None
        )
        assert len(records) == 2
        latencies = [r["latency_cycles"] for r in records]
        assert latencies == sorted(latencies)
        for record in records:
            assert not math.isnan(record["latency_cycles"])
            assert record["analytic_score"] > 0
            assert record["scalar_score"] > 0
            assert record["from_cache"] is False

    def test_same_seed_rerun_is_all_cache_hits(self, tmp_path):
        """The acceptance property: repeating a refinement with the same
        seed performs zero new cycle simulations."""
        cache = str(tmp_path / "sweep-cache")
        first = refine_placements(
            CANDIDATES, 4, rate=0.05, measure_packets=120, cache=cache
        )
        assert all(r["from_cache"] is False for r in first)
        second = refine_placements(
            CANDIDATES, 4, rate=0.05, measure_packets=120, cache=cache
        )
        assert all(r["from_cache"] is True for r in second)
        assert _strip_cache_flag(second) == _strip_cache_flag(first)

    def test_serial_and_parallel_are_bit_identical(self):
        serial = refine_placements(
            CANDIDATES, 4, rate=0.05, measure_packets=120, cache=None, jobs=1
        )
        parallel = refine_placements(
            CANDIDATES, 4, rate=0.05, measure_packets=120, cache=None, jobs=2
        )
        assert _strip_cache_flag(serial) == _strip_cache_flag(parallel)

    def test_explicit_evaluator_supplies_the_scores(self):
        evaluator = PlacementEvaluator(4)
        records = refine_placements(
            CANDIDATES,
            4,
            rate=0.05,
            measure_packets=120,
            cache=None,
            evaluator=evaluator,
        )
        for record in records:
            expected = evaluator.evaluate(record["big_positions"])
            assert record["analytic_score"] == expected.analytic
            assert record["scalar_score"] == expected.scalar


class TestSubmitRefinement:
    def test_server_refinement_matches_local(self, tmp_path):
        """submit_refinement -> collect_refinement returns the same
        ranked records as a local refine_placements of the same
        candidates, and a resubmission dedups onto the finished job."""
        from repro.search.refine import collect_refinement, submit_refinement
        from repro.serve import SweepServer

        local = refine_placements(
            CANDIDATES, 4, rate=0.05, measure_packets=120, cache=None
        )
        server = SweepServer(tmp_path / "s.sqlite", port=0, workers=2)
        server.start()
        try:
            url = f"http://127.0.0.1:{server.port}"
            submitted = submit_refinement(
                url, CANDIDATES, 4, rate=0.05, measure_packets=120
            )
            assert not submitted["deduped"]
            records = collect_refinement(
                url, submitted["job_id"], CANDIDATES, mesh_size=4
            )
            assert _strip_cache_flag(records) == _strip_cache_flag(local)
            again = submit_refinement(
                url, CANDIDATES, 4, rate=0.05, measure_packets=120
            )
            assert again["deduped"]
            assert again["job_id"] == submitted["job_id"]
        finally:
            server.stop()

    def test_collect_needs_mesh_size_or_evaluator(self):
        from repro.search.refine import collect_refinement

        with pytest.raises(ValueError, match="mesh_size or evaluator"):
            collect_refinement("http://127.0.0.1:1", "job", CANDIDATES)
