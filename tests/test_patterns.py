"""Tests for synthetic traffic patterns and injectors."""

import random

import pytest

from repro.noc.topology import Mesh
from repro.traffic.patterns import (
    BitComplement,
    BitReverse,
    NearestNeighbor,
    Tornado,
    Transpose,
    UniformRandom,
    pattern_by_name,
)
from repro.traffic.selfsimilar import (
    BernoulliInjector,
    ParetoOnOffSource,
    SelfSimilarInjector,
)


class TestUniformRandom:
    def test_never_self(self):
        pattern = UniformRandom(64)
        rng = random.Random(1)
        for _ in range(500):
            src = rng.randrange(64)
            assert pattern.destination(src, rng) != src

    def test_covers_all_destinations(self):
        pattern = UniformRandom(16)
        rng = random.Random(2)
        seen = {pattern.destination(0, rng) for _ in range(600)}
        assert seen == set(range(1, 16))

    def test_rejects_bad_source(self):
        with pytest.raises(ValueError):
            UniformRandom(8).destination(8, random.Random())


class TestNearestNeighbor:
    def test_destinations_adjacent(self):
        mesh = Mesh(8)
        pattern = NearestNeighbor(mesh)
        rng = random.Random(3)
        for src in range(64):
            dst = pattern.destination(src, rng)
            sr, sc = mesh.coords(src)
            dr, dc = mesh.coords(dst)
            assert abs(sr - dr) + abs(sc - dc) == 1

    def test_corner_has_two_neighbors(self):
        mesh = Mesh(4)
        pattern = NearestNeighbor(mesh)
        rng = random.Random(4)
        dsts = {pattern.destination(0, rng) for _ in range(100)}
        assert dsts == {1, 4}

    def test_requires_mesh(self):
        with pytest.raises(TypeError):
            NearestNeighbor(object())


class TestTranspose:
    def test_swaps_coordinates(self):
        pattern = Transpose(64)
        rng = random.Random(0)
        assert pattern.destination(1, rng) == 8  # (0,1) -> (1,0)
        assert pattern.destination(23, rng) == 58  # (2,7) -> (7,2)

    def test_diagonal_nodes_redirected(self):
        pattern = Transpose(64)
        rng = random.Random(0)
        for diagonal in (0, 9, 63):
            assert pattern.destination(diagonal, rng) != diagonal

    def test_requires_square(self):
        with pytest.raises(ValueError):
            Transpose(10)


class TestBitComplement:
    def test_complements(self):
        pattern = BitComplement(64)
        rng = random.Random(0)
        assert pattern.destination(0, rng) == 63
        assert pattern.destination(21, rng) == 42

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            BitComplement(48)

    def test_is_an_involution(self):
        pattern = BitComplement(64)
        rng = random.Random(0)
        for src in range(64):
            assert pattern.destination(pattern.destination(src, rng), rng) == src


class TestBitReverse:
    def test_reverses_bits(self):
        pattern = BitReverse(64)
        rng = random.Random(0)
        assert pattern.destination(1, rng) == 32
        assert pattern.destination(3, rng) == 48

    def test_palindromes_redirected(self):
        pattern = BitReverse(64)
        rng = random.Random(0)
        for src in range(64):
            assert pattern.destination(src, rng) != src


class TestTornado:
    def test_half_row_shift(self):
        pattern = Tornado(64)
        rng = random.Random(0)
        assert pattern.destination(0, rng) == 3
        assert pattern.destination(7, rng) == 2  # wraps in the row

    def test_never_self(self):
        pattern = Tornado(64)
        rng = random.Random(0)
        for src in range(64):
            assert pattern.destination(src, rng) != src


class TestPatternFactory:
    def test_by_name(self):
        mesh = Mesh(8)
        for name in (
            "uniform_random",
            "nearest_neighbor",
            "transpose",
            "bit_complement",
            "bit_reverse",
            "tornado",
        ):
            pattern = pattern_by_name(name, mesh)
            dst = pattern.destination(5, random.Random(1))
            assert 0 <= dst < 64

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            pattern_by_name("zipfian", Mesh(4))


class TestInjectors:
    def test_bernoulli_rate(self):
        injector = BernoulliInjector(0.25)
        rng = random.Random(5)
        fires = sum(injector.fires(0, rng) for _ in range(8000))
        assert fires == pytest.approx(2000, rel=0.1)

    def test_bernoulli_validates(self):
        with pytest.raises(ValueError):
            BernoulliInjector(1.5)

    def test_pareto_source_validates(self):
        with pytest.raises(ValueError):
            ParetoOnOffSource(rate=0.0)
        with pytest.raises(ValueError):
            ParetoOnOffSource(rate=0.1, alpha_on=2.5)

    def test_self_similar_long_run_rate(self):
        injector = SelfSimilarInjector(num_nodes=4, rate=0.1, seed=9)
        rng = random.Random(0)
        fires = sum(
            injector.fires(node, rng)
            for _ in range(20_000)
            for node in range(4)
        )
        rate = fires / (20_000 * 4)
        assert rate == pytest.approx(0.1, rel=0.35)

    def test_self_similar_is_bursty(self):
        """ON/OFF sources produce burstier arrivals than Bernoulli."""
        injector = SelfSimilarInjector(num_nodes=1, rate=0.1, seed=3)
        rng = random.Random(0)
        window = 50
        counts = []
        total = 0
        for i in range(20_000):
            total += injector.fires(0, rng)
            if (i + 1) % window == 0:
                counts.append(total)
                total = 0
        mean = sum(counts) / len(counts)
        var = sum((c - mean) ** 2 for c in counts) / len(counts)
        # Bernoulli window counts would have variance ~= mean (Poisson-ish);
        # self-similar traffic is overdispersed.
        assert var > 1.5 * mean
