"""Unit tests for flits and packets."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.flit import (
    DATA_PACKET_BITS,
    FlitType,
    Packet,
    flits_per_packet,
    split_into_packets,
)


class TestFlitsPerPacket:
    def test_baseline_data_packet_is_six_flits(self):
        assert flits_per_packet(1024, 192) == 6

    def test_hetero_data_packet_is_eight_flits(self):
        assert flits_per_packet(1024, 128) == 8

    def test_address_packet_is_single_flit(self):
        assert flits_per_packet(64, 192) == 1
        assert flits_per_packet(64, 128) == 1

    def test_exact_multiple(self):
        assert flits_per_packet(384, 192) == 2

    def test_rounds_up(self):
        assert flits_per_packet(193, 192) == 2

    def test_rejects_nonpositive_payload(self):
        with pytest.raises(ValueError):
            flits_per_packet(0, 192)

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            flits_per_packet(1024, 0)

    @given(
        bits=st.integers(min_value=1, max_value=10_000),
        width=st.integers(min_value=1, max_value=512),
    )
    def test_covers_payload_without_excess(self, bits, width):
        n = flits_per_packet(bits, width)
        assert n * width >= bits
        assert (n - 1) * width < bits or n == 1


class TestPacket:
    def _packet(self, num_flits=6):
        return Packet(src=0, dst=5, num_flits=num_flits, created_at=10)

    def test_make_flits_single(self):
        flits = self._packet(1).make_flits()
        assert len(flits) == 1
        assert flits[0].flit_type is FlitType.HEAD_TAIL
        assert flits[0].is_head and flits[0].is_tail

    def test_make_flits_multi(self):
        flits = self._packet(6).make_flits()
        assert len(flits) == 6
        assert flits[0].flit_type is FlitType.HEAD
        assert flits[-1].flit_type is FlitType.TAIL
        assert all(f.flit_type is FlitType.BODY for f in flits[1:-1])
        assert [f.index for f in flits] == list(range(6))

    def test_flit_shortcuts(self):
        flits = self._packet(3).make_flits()
        assert flits[0].src == 0 and flits[0].dst == 5
        assert not flits[1].is_head and not flits[1].is_tail

    def test_rejects_zero_flits(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, num_flits=0, created_at=0)

    def test_rejects_negative_endpoints(self):
        with pytest.raises(ValueError):
            Packet(src=-1, dst=1, num_flits=1, created_at=0)

    def test_latency_requires_delivery(self):
        packet = self._packet()
        with pytest.raises(ValueError):
            _ = packet.latency

    def test_latency_and_queuing(self):
        packet = self._packet()
        packet.injected_at = 13
        packet.received_at = 40
        assert packet.queuing_latency == 3
        assert packet.latency == 30

    def test_unique_packet_ids(self):
        ids = {Packet(src=0, dst=1, num_flits=1, created_at=0).packet_id for _ in range(50)}
        assert len(ids) == 50

    def test_split_into_packets(self):
        packet, n = split_into_packets(DATA_PACKET_BITS, 192, src=2, dst=9, cycle=7)
        assert n == 6
        assert packet.num_flits == 6
        assert packet.created_at == 7

    @given(num_flits=st.integers(min_value=1, max_value=64))
    def test_flit_sequence_well_formed(self, num_flits):
        flits = Packet(src=0, dst=1, num_flits=num_flits, created_at=0).make_flits()
        assert len(flits) == num_flits
        assert flits[0].is_head
        assert flits[-1].is_tail
        heads = sum(1 for f in flits if f.is_head)
        tails = sum(1 for f in flits if f.is_tail)
        assert heads == 1 and tails == 1
