"""Tests for the placement-search experiment harness (smoke scale)."""

import pytest

from repro.core.layouts import diagonal_positions
from repro.experiments import placement_search
from repro.search.canonical import (
    canonical_placement,
    is_diagonal_family,
    wrapped_diagonals,
)


class TestFamilyCandidates:
    def test_every_candidate_is_family(self):
        for candidate in placement_search.family_candidates(8, 16):
            assert is_diagonal_family(candidate, 8)
            assert len(candidate) == 16

    def test_contains_the_figure3_diagonal(self):
        diag8 = canonical_placement(diagonal_positions(8), 8)
        assert diag8 in placement_search.family_candidates(8, 16)

    def test_contains_a_parallel_stripe(self):
        bands = wrapped_diagonals(8)
        stripe = canonical_placement(bands[1] | bands[5], 8)
        assert stripe in placement_search.family_candidates(8, 16)

    def test_candidates_are_canonical_and_distinct(self):
        candidates = placement_search.family_candidates(8, 16)
        assert len(set(candidates)) == len(candidates)
        for candidate in candidates:
            assert candidate == canonical_placement(candidate, 8)

    def test_non_divisible_budget_has_no_family(self):
        assert placement_search.family_candidates(8, 15) == []


class TestSmokeRun:
    @pytest.fixture(scope="class")
    def smoke(self):
        return placement_search.run(fast=True, smoke=True, refine_packets=120)

    def test_all_checks_pass(self, smoke):
        failed = [n for n, ok in smoke["checks"].items() if not ok]
        assert not failed

    def test_exhaustive_covers_the_footnote4_space(self, smoke):
        assert smoke["count_4x4"] == 12870

    def test_annealing_cheaper_than_enumeration(self, smoke):
        assert smoke["anneal_4x4"].evaluations < smoke["count_4x4"] / 4

    def test_winner_is_the_diagonal(self, smoke):
        diag4 = canonical_placement(diagonal_positions(4), 4)
        assert smoke["exhaustive"].best_placement == diag4
        assert smoke["anneal_4x4"].best_placement == diag4

    def test_refinement_reports_every_candidate(self, smoke):
        refinement = smoke["refinement"]
        assert refinement["rows"]
        for row in refinement["rows"]:
            assert row["mean_latency_cycles"] > 0
            assert row["min_latency_cycles"] <= row["max_latency_cycles"]
        assert refinement["total_points"] == len(refinement["rows"]) * len(
            refinement["seeds"]
        )

    def test_smoke_is_deterministic(self, smoke):
        again = placement_search.run(fast=True, smoke=True, refine_packets=120)
        assert (
            again["exhaustive"].best_placement
            == smoke["exhaustive"].best_placement
        )
        assert again["anneal_4x4"].history == smoke["anneal_4x4"].history
        assert [r["mean_latency_cycles"] for r in again["refinement"]["rows"]] == [
            r["mean_latency_cycles"] for r in smoke["refinement"]["rows"]
        ]
