"""Determinism properties of the sweep engine and the run driver.

The paper's trend claims (and the parallel backend's correctness) rest on
one property: a :class:`~repro.exec.SweepPoint` fully determines its
result.  These tests pin that from several angles -- repeated execution,
sweep-order shuffling, backend choice and process history -- and the
converse: changing the seed really does change the injection stream.
"""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layouts import baseline_layout, build_network
from repro.exec import SweepPoint, execute_point, run_sweep
from repro.noc.flit import reset_packet_ids
from repro.traffic.patterns import UniformRandom
from repro.traffic.runner import run_synthetic

#: a cheap 4x4 reference point (~0.1 s to execute).
POINT = SweepPoint(
    layout="baseline", mesh_size=4, pattern="uniform_random",
    rate=0.05, seed=3, warmup_packets=20, measure_packets=120,
)


def _points(n=3):
    """A few distinct cheap points."""
    rates = (0.03, 0.05, 0.08)
    return [dataclasses.replace(POINT, rate=rates[i]) for i in range(n)]


class TestSweepPointDeterminism:
    def test_same_point_twice_identical_stats_sums(self):
        first = execute_point(POINT)
        second = execute_point(POINT)
        assert first.latency_sum_cycles == second.latency_sum_cycles
        assert first.hops_sum == second.hops_sum
        assert first.packet_id_sum == second.packet_id_sum
        assert first.to_dict() == second.to_dict()

    def test_result_independent_of_process_history(self):
        """Executing unrelated simulations first (packet-id counter well
        past zero) must not leak into a point's result."""
        reference = execute_point(POINT)
        network = build_network(baseline_layout(4))
        run_synthetic(
            network, UniformRandom(16), 0.1,
            warmup_packets=10, measure_packets=50, seed=99,
        )
        assert execute_point(POINT).to_dict() == reference.to_dict()

    def test_shuffled_sweep_order_identical_results(self):
        points = _points()
        forward = run_sweep(points, jobs=1, cache=None)
        order = [2, 0, 1]
        shuffled = run_sweep([points[i] for i in order], jobs=1, cache=None)
        for dst, src in enumerate(order):
            assert shuffled[dst].to_dict() == forward[src].to_dict()

    def test_different_seeds_different_injection_streams(self):
        a = execute_point(POINT)
        b = execute_point(dataclasses.replace(POINT, seed=POINT.seed + 1))
        # Same packet-id bookkeeping, different traffic.
        assert a.packet_id_sum == b.packet_id_sum
        assert (a.latency_sum_cycles, a.hops_sum, a.total_cycles) != (
            b.latency_sum_cycles, b.hops_sum, b.total_cycles,
        )

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           rate=st.sampled_from([0.02, 0.05, 0.09]))
    def test_replay_property(self, seed, rate):
        """Any (seed, rate) replays to the same result."""
        point = dataclasses.replace(
            POINT, seed=seed, rate=rate, measure_packets=60, warmup_packets=10
        )
        assert execute_point(point).to_dict() == execute_point(point).to_dict()


class TestRunSyntheticInjectionPath:
    """Pins of the `_offer_load` refactor (single injection path)."""

    def _run(self, seed=5, warmup=25, measure=150, rate=0.06):
        reset_packet_ids()
        network = build_network(baseline_layout(4))
        result = run_synthetic(
            network, UniformRandom(16), rate,
            warmup_packets=warmup, measure_packets=measure, seed=seed,
        )
        return result

    def test_packet_ids_are_creation_ordered(self):
        """Measured records are exactly ids [warmup, warmup+measure):
        warmup packets take the first ids, measured packets the next
        block, drain packets everything after."""
        warmup, measure = 25, 150
        result = self._run(warmup=warmup, measure=measure)
        ids = sorted(record.packet_id for record in result.stats.records)
        assert ids == list(range(warmup, warmup + measure))

    def test_drain_keeps_offering_load(self):
        """The drain phase keeps creating packets (ids past the measured
        window exist), i.e. the shared injection path really runs there."""
        result = self._run()
        assert result.stats.packets_delivered >= len(result.stats.records)
        # The network saw more creations than warmup+measure: the source
        # of the extra ids is the drain loop's _offer_load.
        from repro.noc import flit

        next_id = next(flit._packet_ids)
        assert next_id > 25 + 150

    def test_identical_records_across_runs(self):
        first = self._run()
        second = self._run()
        assert [
            (r.packet_id, r.src, r.dst, r.total, r.queuing, r.blocking, r.hops)
            for r in first.stats.records
        ] == [
            (r.packet_id, r.src, r.dst, r.total, r.queuing, r.blocking, r.hops)
            for r in second.stats.records
        ]

    def test_offer_load_budget_and_rng_order(self):
        """_offer_load draws fires() then destination, and stops drawing
        destinations once the budget is exhausted -- the invariant that
        keeps warmup/measure streams identical to the pre-refactor code."""
        from repro.traffic.runner import _offer_load

        class CountingPattern(UniformRandom):
            calls = 0

            def destination(self, src, rng):
                type(self).calls += 1
                return super().destination(src, rng)

        class AlwaysFire:
            def fires(self, node, rng):
                return True

        network = build_network(baseline_layout(4))
        pattern = CountingPattern(16)
        created = _offer_load(
            network, pattern, AlwaysFire(), random.Random(0), budget=5
        )
        assert created == 5
        assert CountingPattern.calls == 5  # no destination drawn past budget

    def test_on_create_sees_packet_before_enqueue(self):
        from repro.traffic.runner import _offer_load

        seen = []

        class AlwaysFire:
            def fires(self, node, rng):
                return True

        network = build_network(baseline_layout(4))
        offered_before = network.stats.packets_offered

        def mark(packet):
            packet.measured = True
            seen.append(packet.packet_id)

        created = _offer_load(
            network, UniformRandom(16), AlwaysFire(), random.Random(1),
            budget=3, on_create=mark,
        )
        assert created == 3 and len(seen) == 3
        # measured flag set pre-enqueue => packets_offered counted them.
        assert network.stats.packets_offered == offered_before + 3


class TestBackendEquivalence:
    def test_process_equals_serial(self):
        points = _points(2)
        serial = run_sweep(points, jobs=1, cache=None)
        process = run_sweep(points, jobs=2, backend="process", cache=None)
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in process]

    def test_results_returned_in_input_order(self):
        points = _points(3)
        results = run_sweep(points, jobs=2, backend="process", cache=None)
        assert [r.rate for r in results] == [p.rate for p in points]
        assert [r.key for r in results] == [p.key() for p in points]


@pytest.mark.parametrize("bad", [0, -2])
def test_jobs_must_be_positive(bad):
    with pytest.raises(ValueError):
        run_sweep([POINT], jobs=bad, cache=None)
