"""Tests for the trace format and synthetic workload profiles."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic.trace import TraceReader, TraceRecord, TraceWriter, roundtrip
from repro.traffic.workloads import (
    BLOCK_BYTES,
    FAR_REGION_BASE,
    SHARED_REGION_BASE,
    WORKLOADS,
    WorkloadProfile,
    app_packet_stream,
    commercial_workloads,
    generate_core_trace,
    home_node,
    parsec_workloads,
)


class TestTraceFormat:
    def test_record_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(gap=-1, is_write=False, address=0)
        with pytest.raises(ValueError):
            TraceRecord(gap=0, is_write=False, address=-4)

    def test_instructions_property(self):
        assert TraceRecord(gap=5, is_write=True, address=0).instructions == 6

    def test_write_read_roundtrip(self):
        records = [
            TraceRecord(gap=3, is_write=False, address=0x1000),
            TraceRecord(gap=0, is_write=True, address=0xDEADBEEF),
        ]
        assert roundtrip(records) == records

    def test_reader_skips_comments_and_blanks(self):
        text = "# header\n\n2 L 40\n"
        records = TraceReader(text).read_all()
        assert records == [TraceRecord(gap=2, is_write=False, address=0x40)]

    def test_reader_rejects_malformed(self):
        with pytest.raises(ValueError):
            TraceReader("2 X 40\n").read_all()
        with pytest.raises(ValueError):
            TraceReader("2 L\n").read_all()

    def test_writer_counts(self):
        buffer = io.StringIO()
        writer = TraceWriter(buffer)
        writer.write_all(
            TraceRecord(gap=i, is_write=False, address=i * 64) for i in range(5)
        )
        assert writer.records_written == 5

    @given(
        st.lists(
            st.builds(
                TraceRecord,
                gap=st.integers(min_value=0, max_value=1000),
                is_write=st.booleans(),
                address=st.integers(min_value=0, max_value=2**48),
            ),
            max_size=50,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, records):
        assert roundtrip(records) == records


class TestWorkloadProfiles:
    def test_all_eleven_benchmarks_present(self):
        expected = {
            "SAP", "SPECjbb", "TPC-C", "SJAS",
            "frrt", "fsim", "vips", "canl", "ddup", "sclst",
            "libquantum",
        }
        assert set(WORKLOADS) == expected

    def test_suites(self):
        assert len(commercial_workloads()) == 4
        assert len(parsec_workloads()) == 6

    def test_mean_gap(self):
        profile = WORKLOADS["SPECjbb"]
        assert profile.mean_gap == pytest.approx(
            (1 - profile.mem_fraction) / profile.mem_fraction
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", "spec", 0.0, 0.2, 10, 0.1, 10, 1.5)
        with pytest.raises(ValueError):
            WorkloadProfile("x", "spec", 0.3, 0.2, 10, 1.0, 10, 1.5)
        with pytest.raises(ValueError):
            WorkloadProfile("x", "spec", 0.3, 0.2, 10, 0.1, 10, 0.5)


class TestTraceGeneration:
    def test_deterministic(self):
        a = generate_core_trace(WORKLOADS["SAP"], 3, 200, seed=9)
        b = generate_core_trace(WORKLOADS["SAP"], 3, 200, seed=9)
        assert a == b

    def test_different_cores_differ(self):
        a = generate_core_trace(WORKLOADS["SAP"], 0, 200, seed=9)
        b = generate_core_trace(WORKLOADS["SAP"], 1, 200, seed=9)
        assert a != b

    def test_gap_mean_tracks_mem_fraction(self):
        profile = WORKLOADS["TPC-C"]
        trace = generate_core_trace(profile, 0, 4000, seed=1)
        mean_gap = sum(r.gap for r in trace) / len(trace)
        assert mean_gap == pytest.approx(profile.mean_gap, rel=0.15)

    def test_write_fraction_in_range(self):
        profile = WORKLOADS["fsim"]
        trace = generate_core_trace(profile, 0, 4000, seed=1)
        writes = sum(r.is_write for r in trace) / len(trace)
        # Shared writes are scaled down, so the observed rate is at or
        # below the nominal private write fraction.
        assert 0.5 * profile.write_fraction <= writes <= profile.write_fraction * 1.1

    def test_address_regions(self):
        profile = WORKLOADS["SAP"]
        trace = generate_core_trace(profile, 2, 3000, seed=1)
        shared = [r for r in trace if SHARED_REGION_BASE <= r.address < FAR_REGION_BASE]
        far = [r for r in trace if r.address >= FAR_REGION_BASE]
        private = [r for r in trace if r.address < SHARED_REGION_BASE]
        assert private and shared and far
        share = len(shared) / len(trace)
        assert share == pytest.approx(profile.sharing_fraction, abs=0.05)

    def test_far_blocks_never_repeat(self):
        profile = WORKLOADS["canl"]
        trace = generate_core_trace(profile, 0, 5000, seed=2)
        far_blocks = [
            r.address // BLOCK_BYTES for r in trace if r.address >= FAR_REGION_BASE
        ]
        assert len(far_blocks) == len(set(far_blocks))

    def test_streaming_profile_walks_words(self):
        profile = WORKLOADS["libquantum"]
        trace = generate_core_trace(profile, 0, 2000, seed=3)
        stream_addrs = [
            r.address
            for r in trace
            if r.address < SHARED_REGION_BASE and r.address % BLOCK_BYTES != 0
        ]
        # Word-granular streaming produces intra-line addresses.
        assert stream_addrs

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            generate_core_trace(WORKLOADS["SAP"], 0, -1)


class TestNetworkAbstraction:
    def test_home_node_interleave(self):
        assert home_node(0, 64) == 0
        assert home_node(128, 64) == 1
        assert home_node(128 * 64, 64) == 0

    def test_app_packet_stream_shape(self):
        stream = app_packet_stream(WORKLOADS["SPECjbb"], 64, seed=1)
        pairs = [next(stream) for _ in range(40)]
        # Alternating request (small) and response (data) packets.
        for request, response in zip(pairs[0::2], pairs[1::2]):
            src, dst, bits = request
            rsrc, rdst, rbits = response
            assert (rsrc, rdst) == (dst, src)
            assert bits < rbits
            assert src != dst
