"""SweepPoint spec semantics: validation, hashing, pickling, results.

The cache and the process backend both rest on two properties of
:class:`repro.exec.SweepPoint`: the content hash is *stable* (same spec
=> same key, across processes and Python versions) and *sensitive*
(any field change => different key).  These tests pin both, plus the
spec-level validation and the :class:`repro.exec.PointResult`
serialization round-trip the cache depends on.
"""

import dataclasses
import pickle

import pytest

from repro.exec import SPEC_VERSION, PointResult, SweepPoint

#: the golden-run UR spec's key, computed once and pinned as a literal.
#: If this changes, every cached result on every machine silently
#: invalidates -- bump SPEC_VERSION deliberately instead.
PINNED_KEY = "7d97daad281928ff9f8418f38af5409d933525174037a7dcf1b472fdd88516b4"
PINNED_POINT = SweepPoint(
    layout="baseline", mesh_size=4, pattern="uniform_random",
    rate=0.05, seed=7, warmup_packets=50, measure_packets=300,
)


class TestKeyStability:
    def test_key_is_deterministic(self):
        assert PINNED_POINT.key() == PINNED_POINT.key()
        assert SweepPoint().key() == SweepPoint().key()

    def test_key_matches_pinned_literal(self):
        assert SPEC_VERSION == 1
        assert PINNED_POINT.key() == PINNED_KEY

    def test_equal_specs_equal_keys(self):
        clone = dataclasses.replace(PINNED_POINT)
        assert clone == PINNED_POINT
        assert clone.key() == PINNED_POINT.key()

    def test_big_positions_order_is_canonicalized(self):
        a = SweepPoint(layout=None, big_positions=(3, 1, 2))
        b = SweepPoint(layout=None, big_positions=(1, 2, 3))
        assert a.big_positions == (1, 2, 3)
        assert a.key() == b.key()

    def test_key_survives_pickle_round_trip(self):
        """Workers rebuild the point from a pickle; the key must agree
        with the parent process's."""
        clone = pickle.loads(pickle.dumps(PINNED_POINT))
        assert clone == PINNED_POINT
        assert clone.key() == PINNED_KEY


class TestKeySensitivity:
    @pytest.mark.parametrize(
        "change",
        [
            {"rate": 0.06},
            {"seed": 8},
            {"warmup_packets": 51},
            {"measure_packets": 301},
            {"mesh_size": 8},
            {"pattern": "transpose"},
            {"layout": "diagonal+BL"},
            {"flit_mode": "strict"},
            {"flit_merging": False},
            {"injector": "self_similar"},
            {"topology": "torus"},
            {"drain_cycle_cap": 100_000},
            {"redistribute_links": False},
        ],
        ids=lambda change: next(iter(change)),
    )
    def test_any_field_change_changes_key(self, change):
        assert dataclasses.replace(PINNED_POINT, **change).key() != PINNED_KEY

    def test_custom_placements_differ(self):
        a = SweepPoint(layout=None, big_positions=(0, 9, 18, 27))
        b = SweepPoint(layout=None, big_positions=(0, 9, 18, 28))
        assert a.key() != b.key()


class TestValidation:
    def test_layout_and_positions_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            SweepPoint(layout="baseline", big_positions=(0, 9))

    @pytest.mark.parametrize("topology", ["cmesh", "fbfly"])
    def test_concentrated_topologies_are_homogeneous(self, topology):
        with pytest.raises(ValueError, match="homogeneous"):
            SweepPoint(layout="diagonal+BL", topology=topology)
        with pytest.raises(ValueError, match="homogeneous"):
            SweepPoint(layout=None, big_positions=(0, 5), topology=topology)
        # The homogeneous form itself is fine.
        SweepPoint(layout=None, topology=topology, mesh_size=4)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            SweepPoint(topology="hypercube")

    def test_unknown_injector_rejected(self):
        with pytest.raises(ValueError, match="injector"):
            SweepPoint(injector="poisson")

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            SweepPoint(kernel="vectorized")


class TestNetworkConstruction:
    def test_named_layout_mesh(self):
        network = PINNED_POINT.build_network()
        assert network.topology.num_nodes == 16

    def test_custom_positions(self):
        point = SweepPoint(layout=None, big_positions=(0, 5, 10, 15), mesh_size=4)
        network = point.build_network()
        big = {
            rid for rid in range(16) if network.routers[rid].config.kind == "big"
        }
        assert big == {0, 5, 10, 15}

    def test_flit_overrides_reach_config(self):
        point = dataclasses.replace(
            PINNED_POINT, layout="diagonal+BL", flit_merging=False
        )
        assert point.build_network().config.flit_merging is False

    def test_self_similar_injector(self):
        point = dataclasses.replace(PINNED_POINT, injector="self_similar")
        injector = point.build_injector(16)
        assert injector is not None
        assert PINNED_POINT.build_injector(16) is None

    def test_kernel_default_is_event(self):
        network = PINNED_POINT.build_network()
        assert PINNED_POINT.kernel is None
        assert network.kernel == "event"

    @pytest.mark.parametrize("kernel", ["naive", "event", "soa"])
    def test_kernel_override_reaches_network(self, kernel):
        point = dataclasses.replace(PINNED_POINT, kernel=kernel)
        network = point.build_network()
        assert network.kernel == kernel

    def test_kernel_override_applies_to_custom_positions(self):
        """Both build_network branches (named layout / explicit big
        positions) must route through the kernel override."""
        point = SweepPoint(
            layout=None, big_positions=(0, 5, 10, 15), mesh_size=4,
            kernel="soa",
        )
        network = point.build_network()
        assert network.kernel == "soa"
        network.step()  # activation is lazy: first step engages the kernel
        assert network.soa_active


class TestPointResult:
    def _result_dict(self):
        from repro.exec import execute_point

        point = dataclasses.replace(
            PINNED_POINT, warmup_packets=10, measure_packets=60
        )
        return execute_point(point).to_dict()

    def test_round_trip(self):
        payload = self._result_dict()
        restored = PointResult.from_dict(payload)
        assert restored.to_dict() == payload
        assert restored.from_cache is False

    def test_from_dict_rejects_missing_field(self):
        payload = self._result_dict()
        payload.pop("packet_id_sum")
        with pytest.raises(ValueError, match="fields"):
            PointResult.from_dict(payload)

    def test_from_dict_rejects_extra_field(self):
        payload = self._result_dict()
        payload["bogus"] = 1
        with pytest.raises(ValueError, match="fields"):
            PointResult.from_dict(payload)

    def test_from_cache_excluded_from_payload_and_equality(self):
        payload = self._result_dict()
        assert "from_cache" not in payload
        a = PointResult.from_dict(payload)
        b = PointResult.from_dict(payload)
        b.from_cache = True
        assert a == b  # compare=False: cache provenance is not identity


class TestBigPositionValidation:
    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepPoint(
                layout=None, big_positions=(0, 9, 9), mesh_size=4,
                pattern="uniform_random", rate=0.05, seed=7,
                warmup_packets=50, measure_packets=300,
            )

    def test_non_int_rejected(self):
        for bad in ((0, 1.5), (0, True), (0, "9")):
            with pytest.raises(ValueError, match="ints"):
                SweepPoint(
                    layout=None, big_positions=bad, mesh_size=4,
                    pattern="uniform_random", rate=0.05, seed=7,
                    warmup_packets=50, measure_packets=300,
                )

    def test_out_of_mesh_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            SweepPoint(
                layout=None, big_positions=(0, 16), mesh_size=4,
                pattern="uniform_random", rate=0.05, seed=7,
                warmup_packets=50, measure_packets=300,
            )
