"""Chaos scenario for the job server: SIGKILL mid-sweep, restart, resume.

Drives :func:`repro.serve.smoke.run_serve_smoke` -- the same scenario
the CI ``serve-smoke`` job runs -- against real server subprocesses:

* a chaos kill plan SIGKILLs the server while it executes the third
  point of a submitted sweep;
* a restarted server on the same store requeues the orphaned job,
  replays the committed points, and finishes the rest;
* the results fetched through the client are byte-identical to a serial
  local run, and a resubmission dedups onto the finished job.

The assertions live inside the smoke module (it must fail CI on its
own); this test pins that the scenario passes under pytest too and that
every step of the report is exercised.
"""

from repro.serve.smoke import run_serve_smoke


def test_sigkill_resume_bit_identical(tmp_path):
    report = run_serve_smoke(tmp_path, log=lambda *_: None)
    assert report == {
        "baseline": "ok",
        "sigkill": "ok",
        "resume_bit_identical": "ok",
        "dedup": "ok",
        "shutdown": "ok",
    }
