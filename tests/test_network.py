"""Integration tests for the assembled network."""

import pytest

from repro.noc.config import (
    NetworkConfig,
    RouterConfig,
    baseline_router,
    big_router,
    small_router,
)
from repro.noc.network import Network
from repro.noc.topology import Mesh


def _uniform_network(size=4, vcs=3, **net_kwargs):
    topology = Mesh(size)
    configs = {r: RouterConfig(num_vcs=vcs) for r in range(topology.num_routers)}
    return Network(topology, configs, NetworkConfig(**net_kwargs))


def _send_one(network, src, dst, num_flits=None):
    packet = network.make_packet(src, dst)
    if num_flits is not None:
        packet.num_flits = num_flits
    packet.measured = True
    network.begin_measurement()
    network.enqueue(packet)
    network.drain(max_cycles=10_000)
    network.end_measurement()
    return packet


class TestConstruction:
    def test_requires_complete_config_map(self):
        topology = Mesh(4)
        with pytest.raises(ValueError):
            Network(topology, {0: baseline_router()})

    def test_requires_uniform_flit_width(self):
        topology = Mesh(4)
        configs = {r: baseline_router() for r in range(16)}
        configs[3] = small_router()  # 128 b flits
        with pytest.raises(ValueError):
            Network(topology, configs)

    def test_link_width_rule(self):
        topology = Mesh(4)
        configs = {r: small_router() for r in range(16)}
        configs[5] = big_router()
        network = Network(topology, configs)
        router5 = network.routers[5]
        # Every link touching the big router is wide (2 lanes).
        for port in range(1, 5):
            link = router5.out_links[port]
            if link is not None:
                assert link.lanes == 2
        # A small-small link elsewhere is narrow.
        link = network.routers[15].out_links[topology.direction_port(3)]
        assert link.lanes == 1

    def test_describe_mentions_kinds(self):
        topology = Mesh(4)
        configs = {r: small_router() for r in range(16)}
        configs[0] = big_router()
        text = Network(topology, configs).describe()
        assert "1 big" in text and "15 small" in text


class TestSinglePacketTiming:
    def test_one_hop_single_flit(self):
        network = _uniform_network()
        packet = _send_one(network, 0, 1, num_flits=1)
        # inject t0, SA t0+1, arrive t0+2, eject t0+3.
        assert packet.latency == 3
        assert packet.hops == 1

    def test_zero_load_transfer_matches_model(self):
        network = _uniform_network()
        packet = _send_one(network, 0, 15)  # 6 hops, 6 flits
        record = network.stats.records[0]
        assert record.blocking == 0
        assert record.queuing == 0
        assert record.total == record.transfer
        # hop cost 2 per hop + 1 ejection + 5 serialization.
        assert record.total == 2 * 6 + 1 + 5

    def test_hops_counted(self):
        network = _uniform_network()
        packet = _send_one(network, 0, 15)
        assert packet.hops == 6

    def test_same_router_delivery_not_possible_on_mesh(self):
        network = _uniform_network()
        # src == dst means ejection at the source router.
        packet = _send_one(network, 5, 5, num_flits=1)
        assert packet.hops == 0
        assert packet.latency == 1


class TestWormholeOrdering:
    def test_flits_arrive_in_order_and_contiguously(self):
        network = _uniform_network()
        arrivals = []
        original = network._complete_packet

        def spy(packet, cycle):
            arrivals.append((packet.packet_id, cycle))
            original(packet, cycle)

        network._complete_packet = spy
        for _ in range(5):
            network.enqueue(network.make_packet(0, 12))
        network.drain(max_cycles=10_000)
        assert len(arrivals) == 5
        # Packets from one source to one destination deliver in order.
        ids = [a[0] for a in arrivals]
        assert ids == sorted(ids)


class TestBackpressure:
    def test_source_queue_limit(self):
        network = _uniform_network(source_queue_limit=2)
        assert network.enqueue(network.make_packet(0, 5))
        assert network.enqueue(network.make_packet(0, 5))
        assert not network.enqueue(network.make_packet(0, 5))

    def test_drain_detects_stuck_network(self):
        network = _uniform_network()
        network.enqueue(network.make_packet(0, 15))
        with pytest.raises(RuntimeError):
            network.drain(max_cycles=2)

    def test_idle_initially(self):
        network = _uniform_network()
        assert network.idle()
        network.enqueue(network.make_packet(0, 1))
        assert not network.idle()


class TestMeasurementWindow:
    def test_activity_restricted_to_window(self):
        network = _uniform_network()
        # Pre-window traffic.
        network.enqueue(network.make_packet(0, 15))
        network.drain(max_cycles=10_000)
        network.begin_measurement()
        packet = network.make_packet(0, 15)
        packet.measured = True
        network.enqueue(packet)
        network.drain(max_cycles=10_000)
        network.end_measurement()
        writes = sum(a.buffer_writes for a in network.stats.router_activity)
        # Only the second packet's 6 flits x 7 routers are counted.
        assert writes == 6 * 7

    def test_end_without_begin_raises(self):
        network = _uniform_network()
        with pytest.raises(RuntimeError):
            network.end_measurement()

    def test_reset_stats_clears_records(self):
        network = _uniform_network()
        _send_one(network, 0, 3)
        assert network.stats.records
        network.reset_stats()
        assert not network.stats.records


class TestCreditConservation:
    def test_credits_restored_after_drain(self):
        network = _uniform_network()
        for i in range(12):
            network.enqueue(network.make_packet(i % 16, (i * 7 + 3) % 16))
        network.drain(max_cycles=20_000)
        for router in network.routers:
            assert router.occupied_flits == 0
            for port in range(router.num_ports):
                for vc, credits in enumerate(router.out_credits[port]):
                    assert credits == router._credit_ceiling[port], (
                        f"router {router.router_id} port {port} vc {vc}"
                    )
                for owner in router.out_vc_owner[port]:
                    assert owner is None
