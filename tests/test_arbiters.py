"""Unit tests for the arbiters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.arbiters import RoundRobinArbiter, TwoStageAllocator


class TestRoundRobinArbiter:
    def test_single_requester(self):
        arbiter = RoundRobinArbiter(4)
        assert arbiter.grant([False, True, False, False]) == 1

    def test_no_request(self):
        arbiter = RoundRobinArbiter(3)
        assert arbiter.grant([False, False, False]) is None

    def test_rotates_priority(self):
        arbiter = RoundRobinArbiter(3)
        requests = [True, True, True]
        grants = [arbiter.grant(requests) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_skips_idle_lines(self):
        arbiter = RoundRobinArbiter(4)
        grants = [arbiter.grant([True, False, True, False]) for _ in range(4)]
        assert grants == [0, 2, 0, 2]

    def test_fairness_under_contention(self):
        arbiter = RoundRobinArbiter(5)
        counts = [0] * 5
        for _ in range(100):
            winner = arbiter.grant([True] * 5)
            counts[winner] += 1
        assert counts == [20] * 5

    def test_grant_from_sparse(self):
        arbiter = RoundRobinArbiter(6)
        assert arbiter.grant_from([3, 5]) in (3, 5)
        assert arbiter.grant_from([]) is None

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(3).grant([True, True])

    def test_rejects_zero_requesters(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    @given(
        n=st.integers(min_value=1, max_value=8),
        pattern=st.lists(st.booleans(), min_size=1, max_size=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_grant_is_a_requester(self, n, pattern):
        pattern = (pattern * n)[:n]
        arbiter = RoundRobinArbiter(n)
        winner = arbiter.grant(pattern)
        if any(pattern):
            assert pattern[winner]
        else:
            assert winner is None


class TestTwoStageAllocator:
    def test_construction_validates(self):
        with pytest.raises(ValueError):
            TwoStageAllocator(3, [2, 2])

    def test_stage_one_picks_requesting_vc(self):
        allocator = TwoStageAllocator(5, [3] * 5)
        assert allocator.pick_input_vc(0, [2]) == 2
        assert allocator.pick_input_vc(1, []) is None

    def test_stage_two_picks_requesting_port(self):
        allocator = TwoStageAllocator(5, [3] * 5)
        winner = allocator.pick_output_winner(2, [1, 4])
        assert winner in (1, 4)

    def test_second_arbiter_independent_state(self):
        allocator = TwoStageAllocator(5, [3] * 5)
        first = [allocator.pick_output_winner(0, [0, 1]) for _ in range(4)]
        second = [allocator.pick_second_winner(0, [0, 1]) for _ in range(4)]
        # Both alternate fairly on their own rotation.
        assert sorted(set(first)) == [0, 1]
        assert sorted(set(second)) == [0, 1]
