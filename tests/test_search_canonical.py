"""Property tests for mesh symmetries and canonicalization (repro.search)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design_space import PlacementExplorer, xy_path_routers
from repro.core.layouts import diagonal_positions
from repro.noc.topology import Mesh
from repro.search.canonical import (
    AXIS_SWAPPING,
    apply_transform,
    canonical_placement,
    dihedral_transforms,
    is_diagonal_family,
    placement_orbit,
    wrapped_diagonals,
)


def placements(n, min_size=1):
    return st.frozensets(
        st.integers(0, n * n - 1), min_size=min_size, max_size=n * n - 1
    )


class TestTransforms:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 8])
    def test_each_transform_is_a_permutation(self, n):
        for mapping in dihedral_transforms(n):
            assert sorted(mapping) == list(range(n * n))

    def test_eight_distinct_transforms(self):
        assert len(set(dihedral_transforms(4))) == 8

    def test_identity_first(self):
        assert dihedral_transforms(4)[0] == tuple(range(16))

    def test_group_closure(self):
        """Composing any two transforms gives another of the eight."""
        maps = set(dihedral_transforms(3))
        for a in maps:
            for b in maps:
                assert tuple(a[b[i]] for i in range(9)) in maps

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError, match="mesh size"):
            dihedral_transforms(0)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=60, deadline=None)
    def test_axis_swapping_flags_match_path_geometry(self, src, dst):
        """AXIS_SWAPPING documents exactly which transforms turn X-Y paths
        into Y-X paths: the image of a flow's X-Y path equals the X-Y path
        of the transformed flow (axis-preserving) or of the transformed
        *reversed* flow (axis-swapping)."""
        mesh = Mesh(4)
        path = frozenset(xy_path_routers(mesh, src, dst))
        for mapping, swaps in zip(dihedral_transforms(4), AXIS_SWAPPING):
            image = apply_transform(path, mapping)
            if swaps:
                expected = frozenset(
                    xy_path_routers(mesh, mapping[dst], mapping[src])
                )
            else:
                expected = frozenset(
                    xy_path_routers(mesh, mapping[src], mapping[dst])
                )
            assert image == expected


class TestCanonicalization:
    @given(placements(4))
    @settings(max_examples=100, deadline=None)
    def test_orbit_members_share_one_representative(self, positions):
        canon = canonical_placement(positions, 4)
        for member in placement_orbit(positions, 4):
            assert canonical_placement(member, 4) == canon

    @given(placements(4))
    @settings(max_examples=100, deadline=None)
    def test_canonical_is_in_the_orbit(self, positions):
        canon = canonical_placement(positions, 4)
        assert frozenset(canon) in placement_orbit(positions, 4)

    @given(placements(4))
    @settings(max_examples=100, deadline=None)
    def test_orbit_size_divides_group_order(self, positions):
        assert 8 % len(placement_orbit(positions, 4)) == 0

    @given(placements(4))
    @settings(max_examples=100, deadline=None)
    def test_subgroup_canonical_is_coarser(self, positions):
        """Canonicalizing over a subgroup (the hotspot model's four
        axis-preserving maps) still maps symmetric placements together,
        just over a smaller orbit."""
        subgroup = tuple(
            m
            for m, swaps in zip(dihedral_transforms(4), AXIS_SWAPPING)
            if not swaps
        )
        canon = canonical_placement(positions, 4, subgroup)
        for mapping in subgroup:
            member = apply_transform(positions, mapping)
            assert canonical_placement(member, 4, subgroup) == canon

    @given(placements(4))
    @settings(max_examples=60, deadline=None)
    def test_analytic_score_invariant_under_all_eight_symmetries(
        self, positions
    ):
        """The footnote-4 analytic score is a class function of the orbit."""
        explorer = PlacementExplorer(4)
        reference = explorer.score(positions).score
        for member in placement_orbit(positions, 4):
            assert explorer.score(member).score == pytest.approx(
                reference, abs=1e-12
            )


class TestDiagonalFamily:
    def test_figure3_diagonal_is_family(self):
        assert is_diagonal_family(diagonal_positions(4), 4)
        assert is_diagonal_family(diagonal_positions(8), 8)

    def test_wrapped_diagonal_unions_are_family(self):
        bands = wrapped_diagonals(8)
        stripe = bands[1] | bands[5]  # parallel stripes, offsets 1 and 5
        assert is_diagonal_family(stripe, 8)

    def test_wrapped_diagonals_partition_per_orientation(self):
        bands = wrapped_diagonals(4)
        main, anti = bands[:4], bands[4:]
        assert frozenset().union(*main) == frozenset(range(16))
        assert frozenset().union(*anti) == frozenset(range(16))
        assert all(len(b) == 4 for b in bands)

    def test_wrong_cardinality_is_not_family(self):
        assert not is_diagonal_family({0, 5, 10}, 4)

    def test_broken_diagonal_is_not_family(self):
        broken = set(diagonal_positions(4))
        broken.remove(0)
        broken.add(1)
        assert not is_diagonal_family(broken, 4)

    def test_row_block_is_not_family(self):
        assert not is_diagonal_family(set(range(8)), 4)

    @given(placements(4, min_size=4))
    @settings(max_examples=60, deadline=None)
    def test_family_membership_is_symmetry_invariant(self, positions):
        flags = {
            is_diagonal_family(member, 4)
            for member in placement_orbit(positions, 4)
        }
        assert len(flags) == 1
