"""Smoke tests for every experiment harness (tiny parameterizations).

Each paper table/figure has a harness; these tests run them end to end
with reduced inputs, verifying the structure of what they report and the
invariant parts of their results (exact Table 1 numbers, correct layout
orderings where cheap to check).
"""

import pytest

from repro.experiments import (
    fig01_utilization,
    fig02_other_topologies,
    fig07_ur_traffic,
    fig08_breakdown,
    fig09_nn_traffic,
    fig10_torus,
    fig13_memctrl,
    table1_router_model,
)
from repro.experiments.common import (
    format_table,
    measurement_scale,
    percent_change,
    percent_reduction,
    run_layout_synthetic,
)


class TestCommon:
    def test_percent_helpers(self):
        assert percent_change(110, 100) == pytest.approx(10.0)
        assert percent_reduction(90, 100) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            percent_change(1, 0)

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_measurement_scale(self):
        assert measurement_scale(True)["measure_packets"] < measurement_scale(
            False
        )["measure_packets"]

    def test_run_layout_synthetic_keys(self):
        sample = run_layout_synthetic(
            "baseline", "uniform_random", 0.02,
            warmup_packets=20, measure_packets=80,
        )
        assert set(sample) >= {
            "latency_ns", "throughput", "power_w", "power_breakdown",
            "blocking_cycles", "queuing_cycles", "transfer_cycles",
        }


class TestTable1:
    def test_exact_reproduction(self):
        data = table1_router_model.run()
        for label, paper in table1_router_model.PAPER_VALUES.items():
            row = data["routers"][label]
            assert row["power_w"] == pytest.approx(paper[0], rel=0.03)
            assert row["area_mm2"] == pytest.approx(paper[1], abs=0.002)
            assert row["frequency_ghz"] == pytest.approx(paper[2])
        acc = data["accounting"]
        assert acc["baseline_buffer_bits"] == 921_600
        assert acc["hetero_buffer_bits"] == 614_400
        assert acc["buffer_bit_reduction"] == pytest.approx(1 / 3)


class TestFig01:
    def test_center_hotter_than_edge(self):
        data = fig01_utilization.run(rate=0.05, fast=True)
        assert data["center_buffer_util"] > data["edge_buffer_util"]
        assert data["center_link_util"] > data["edge_link_util"]
        grid = data["buffer_utilization"]
        assert len(grid) == 8 and len(grid[0]) == 8


class TestFig02:
    def test_nonuniform_in_both_topologies(self):
        data = fig02_other_topologies.run(fast=True)
        hi, lo = data["cmesh_max_min"]
        assert hi > lo
        assert len(data["fbfly_buffer_utilization"]) == 4


class TestFig07:
    def test_structure_and_power_ordering(self):
        data = fig07_ur_traffic.run(
            rates=(0.02, 0.05), layouts=("baseline", "diagonal+BL"), fast=True
        )
        assert set(data["curves"]) == {"baseline", "diagonal+BL"}
        assert len(data["curves"]["baseline"]) == 2
        summary = data["summary"]["diagonal+BL"]
        # The robust headline: the +BL network consumes less power.
        assert summary["power_reduction_pct"] > 0


class TestFig08:
    def test_breakdowns_sum(self):
        data = fig08_breakdown.run(
            rate=0.04, layouts=("baseline", "diagonal+BL"), fast=True
        )
        for layout, parts in data["latency"].items():
            assert parts["total"] == pytest.approx(
                parts["blocking"] + parts["queuing"] + parts["transfer"]
            )
        base = data["power"]["baseline"]
        hetero = data["power"]["diagonal+BL"]
        assert hetero["total"] < base["total"]
        assert hetero["buffers"] < base["buffers"]


class TestFig09:
    def test_nn_anomaly_direction(self):
        data = fig09_nn_traffic.run(
            rates=(0.04, 0.08), layouts=("baseline", "diagonal+BL"), fast=True
        )
        # Paper's anomaly: hetero is WORSE under NN (one-hop flows cross
        # the de-provisioned edge routers; strict flit mode).
        summary = data["summary"]["diagonal+BL"]
        assert summary["avg_latency_change_pct"] > 0.0
        assert summary["throughput_change_pct"] < 2.0


class TestFig13:
    def test_closed_loop_orderings(self):
        results = {}
        for name, (placement, layout) in fig13_memctrl.CONFIGURATIONS.items():
            results[name] = fig13_memctrl.run_closed_loop_ur(
                placement, layout, num_requests=640, seed=3
            )
        # 16 distributed controllers always beat 4 corner controllers.
        assert (
            results["diamond_homo"].mean_latency
            < results["corners_homo"].mean_latency
        )
        # The best configuration is diagonal MCs on the hetero network.
        assert (
            results["diagonal_hetero"].mean_latency
            <= results["diamond_homo"].mean_latency * 1.05
        )


class TestFig10Runner:
    def test_app_traffic_runner(self):
        from repro.core.layouts import baseline_layout, build_network

        network = build_network(baseline_layout(8))
        latency = fig10_torus.run_app_traffic(
            network, "SPECjbb", rate=0.05,
            warmup_packets=30, measure_packets=120, seed=3,
        )
        assert latency > 0

    def test_ur_crosscheck_shape(self):
        ur = fig10_torus.run_uniform_random(fast=True)
        assert ur["torus_reduction_pct"] < ur["mesh_reduction_pct"]


class TestFig11Runner:
    def test_run_one_structure(self):
        from repro.experiments.fig11_applications import run_one

        result = run_one("diagonal+BL", "frrt", records_per_core=100, seed=3)
        assert result["ipc"] > 0
        assert result["power_w"] > 0
        assert result["net_latency_cycles"] > 0
        assert result["cycles"] > 0


class TestFig12Runner:
    def test_improvements_computed(self):
        from repro.experiments.fig12_ipc import run

        data = run(
            commercial=("SPECjbb",),
            parsec=(),
            layouts=("baseline", "diagonal+BL"),
            records_per_core=100,
            fast=True,
            seed=3,
        )
        assert "diagonal+BL" in data["improvements"]
        assert "SPECjbb" in data["improvements"]["diagonal+BL"]
        assert data["ipc"]["SPECjbb"]["baseline"] > 0


class TestAblationHarness:
    def test_variants_present(self):
        from repro.experiments.ablation_mechanisms import run

        data = run(rate=0.04, fast=True)
        assert set(data) == {
            "baseline",
            "diagonal+BL",
            "diagonal+BL/no-merging",
            "diagonal+BL/strict-flits",
            "scattered+BL",
        }
        assert data["diagonal+BL/no-merging"]["merge_fraction"] == 0.0
        assert data["diagonal+BL"]["merge_fraction"] > 0.0


class TestSensitivityHarness:
    def test_power_monotone_in_big_count(self):
        from repro.experiments.sensitivity_big_routers import run

        data = run(budgets=(8, 24), fast=True)
        rows = {row["num_big"]: row for row in data["rows"]}
        assert rows[24]["power_w"] > rows[8]["power_w"]
        assert data["max_big_power_neutral"] == 26
