"""Bench trajectory tracking: history entries and regression flags.

``python -m repro.noc.bench`` appends one JSON line per run to
``BENCH_history.jsonl`` (timestamp injected for reproducibility) and
flags cases that regressed past the tolerance against the committed
``BENCH_kernel.json``.  The unit tests pin the entry shape and the flag
arithmetic; the integration test runs the real CLI on the cheapest case.
"""

import json

import pytest

from repro.noc.bench import (
    append_history,
    flag_regressions,
    history_entry,
    main,
)

REPORT = {
    "meta": {"tool": "repro.noc.bench", "repeat": 2, "scale": {}},
    "event": {
        "empty-4x4": {"cycles": 30000, "wall_s": 0.3, "cycles_per_s": 100000.0},
        "ur-4x4-r0.05": {"cycles": 5000, "wall_s": 0.5, "cycles_per_s": 10000.0},
    },
    "groups": {
        "fig07_low": {"cases": [], "wall_s": 1.25},
        "saturation": {"cases": [], "wall_s": 0.75},
    },
}


class TestHistoryEntry:
    def test_shape(self):
        entry = history_entry(REPORT, "2026-08-08T00:00:00Z", "a" * 40)
        assert entry == {
            "timestamp": "2026-08-08T00:00:00Z",
            "git_sha": "a" * 40,
            "repeat": 2,
            "event": {"empty-4x4": 100000.0, "ur-4x4-r0.05": 10000.0},
            "groups": {"fig07_low": 1.25, "saturation": 0.75},
        }

    def test_missing_sha_is_none(self):
        assert history_entry(REPORT, "t")["git_sha"] is None

    def test_append_accumulates_lines(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(history_entry(REPORT, "t1"), path)
        append_history(history_entry(REPORT, "t2"), path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["timestamp"] for line in lines] == [
            "t1", "t2",
        ]


class TestFlagRegressions:
    BASE = {
        "a": {"cycles_per_s": 1000.0},
        "b": {"cycles_per_s": 1000.0},
    }

    def test_within_tolerance_passes(self):
        current = {
            "a": {"cycles_per_s": 800.0},   # 1.25x slower
            "b": {"cycles_per_s": 1100.0},  # faster
        }
        assert flag_regressions(current, self.BASE, tolerance=1.5) == []

    def test_slow_case_flagged(self):
        current = {
            "a": {"cycles_per_s": 500.0},   # 2x slower
            "b": {"cycles_per_s": 1000.0},
        }
        assert flag_regressions(current, self.BASE, tolerance=1.5) == ["a"]

    def test_zero_rate_counts_as_regression(self):
        assert flag_regressions(
            {"a": {"cycles_per_s": 0}}, self.BASE
        ) == ["a"]

    def test_unknown_cases_ignored(self):
        assert flag_regressions(
            {"new-case": {"cycles_per_s": 1.0}}, self.BASE
        ) == []


class TestCliIntegration:
    @pytest.fixture()
    def run(self, tmp_path, capsys):
        def _run(*extra):
            argv = [
                "--kernel", "event", "--repeat", "1",
                "--only", "empty-4x4",
                "--history", str(tmp_path / "hist.jsonl"),
                "--baseline", str(tmp_path / "absent.json"),
                *extra,
            ]
            code = main(argv)
            captured = capsys.readouterr()
            return code, captured.out + captured.err, tmp_path / "hist.jsonl"
        return _run

    def test_appends_timestamped_entry(self, run):
        code, out, history = run("--timestamp", "2026-08-08T00:00:00Z")
        assert code == 0
        assert "appended history entry" in out
        entry = json.loads(history.read_text())
        assert entry["timestamp"] == "2026-08-08T00:00:00Z"
        assert entry["event"].keys() == {"empty-4x4"}
        assert entry["event"]["empty-4x4"] > 0

    def test_no_history_skips_the_file(self, run):
        code, out, history = run("--no-history")
        assert code == 0
        assert not history.exists()
        assert "appended history entry" not in out

    def test_regression_flags_against_baseline_and_fails(self, run, tmp_path):
        """A flagged case exits 1 (CI-visible), after the artifacts land."""
        fast = {"event": {"empty-4x4": {"cycles_per_s": 1e12}}}
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(fast))
        code, out, history = run("--baseline", str(baseline))
        assert code == 1
        assert "REGRESSION" in out and "empty-4x4" in out
        # The history entry was still appended: the regression run is
        # itself evidence, not something to discard.
        assert history.exists()
        assert "appended history entry" in out

    def test_clean_run_reports_no_regressions(self, run, tmp_path):
        slow = {"event": {"empty-4x4": {"cycles_per_s": 0.001}}}
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(slow))
        code, out, _ = run("--no-history", "--baseline", str(baseline))
        assert code == 0
        assert "no regressions" in out

    def test_unknown_only_case_exits_nonzero(self, run):
        """A typoed --only must not silently time nothing (exit 2,
        naming the unknown case)."""
        code, out, history = run("--only", "empty-16x16")
        assert code == 2
        assert "empty-16x16" in out
        assert "unknown bench case" in out
        assert not history.exists(), "a failed run must not append history"

    def test_run_suite_rejects_unknown_case(self):
        from repro.noc.bench import run_suite

        with pytest.raises(ValueError, match="no-such-case"):
            run_suite(repeat=1, only=["no-such-case"])

    def test_soa_kernel_runs_and_reports(self, run):
        """--kernel soa adds a soa section to the history entry."""
        code, out, history = run(
            "--kernel", "soa", "--timestamp", "2026-08-08T00:00:00Z"
        )
        assert code == 0
        assert "[soa] empty-4x4" in out
        entry = json.loads(history.read_text())
        assert entry["soa"]["empty-4x4"] > 0


class TestReadHistory:
    def test_round_trip(self, tmp_path):
        from repro.noc.bench import read_history

        path = tmp_path / "hist.jsonl"
        append_history(history_entry(REPORT, "t1"), path)
        append_history(history_entry(REPORT, "t2"), path)
        entries = read_history(path)
        assert [entry["timestamp"] for entry in entries] == ["t1", "t2"]

    def test_damaged_lines_skipped_with_warning(self, tmp_path):
        from repro.noc.bench import read_history

        path = tmp_path / "hist.jsonl"
        append_history(history_entry(REPORT, "t1"), path)
        # A torn line (crash mid-append on a pre-O_APPEND writer) and a
        # stray blank: each costs one entry, never the trajectory.
        with open(path, "a") as fh:
            fh.write('{"timestamp": "t2", "ev')
            fh.write("\n\n")
        append_history(history_entry(REPORT, "t3"), path)
        with pytest.warns(UserWarning, match="unparsable history line"):
            entries = read_history(path)
        assert [entry["timestamp"] for entry in entries] == ["t1", "t3"]

    def test_append_is_a_single_atomic_write(self, tmp_path, monkeypatch):
        import os as os_mod

        import repro.noc.bench as bench_mod

        writes = []
        real_write = os_mod.write

        def spy(fd, data):
            writes.append(bytes(data))
            return real_write(fd, data)

        monkeypatch.setattr(bench_mod.os, "write", spy)
        path = tmp_path / "hist.jsonl"
        append_history(history_entry(REPORT, "t1"), path)
        assert len(writes) == 1
        assert writes[0].endswith(b"\n")
        assert json.loads(writes[0]) == history_entry(REPORT, "t1")
