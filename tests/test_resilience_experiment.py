"""The resilience degradation study (experiments/resilience).

Acceptance: saturation/accepted throughput degrades monotonically as
permanent router faults go from 0 to 4, on the homogeneous baseline and
on the HeteroNoC with its diagonal big routers killed first.
"""

from repro.experiments import resilience


def test_kill_order_targets_diagonal_big_routers():
    order = resilience.kill_order(8)
    from repro.core.layouts import diagonal_positions

    big = diagonal_positions(8)
    assert len(order) == 6  # interior main diagonal of an 8x8 mesh
    assert all(router in big for router in order)
    n = 8
    assert all(router not in (0, n - 1, n * (n - 1), n * n - 1) for router in order)


def test_throughput_degrades_monotonically_with_router_kills():
    data = resilience.run(
        fault_counts=(0, 2, 4), fast=True, measure_packets=120
    )
    for layout, rows in data["curves"].items():
        throughputs = [row["throughput"] for row in rows]
        fractions = [row["delivered_fraction"] for row in rows]
        assert throughputs == sorted(throughputs, reverse=True), (
            layout,
            throughputs,
        )
        assert fractions == sorted(fractions, reverse=True), (layout, fractions)
        # Fault-free rows lose nothing; faulty rows lose the unreachable
        # packets but account for every one of them.
        assert rows[0]["lost"] == 0
        for row in rows[1:]:
            assert row["lost"] > 0
            assert row["killed"] == data["kill_order"][: row["faults"]]
