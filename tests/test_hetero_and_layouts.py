"""Tests for the HeteroNoC resource-redistribution math and layouts."""

import pytest

from repro.core.hetero import (
    bisection_bandwidth_bits,
    buffer_reduction_fraction,
    hetero_link_width,
    min_small_routers,
    power_inequality_ratio,
    total_buffer_bits,
    total_buffer_flits,
    total_vcs,
)
from repro.core.layouts import (
    LAYOUT_NAMES,
    asymmetric_cmp_layout,
    all_layouts,
    baseline_layout,
    build_network,
    center_positions,
    diagonal_positions,
    layout_by_name,
    memory_controller_placement,
    row2_5_positions,
)
from repro.noc.topology import Mesh, Torus


class TestLinkWidthEquation:
    def test_paper_numbers(self):
        assert hetero_link_width(192, 8, 4, 4) == 128

    def test_general_solution(self):
        # All wide: W_homo*n = 2W*n -> W = W_homo/2.
        assert hetero_link_width(256, 8, 0, 8) == 128

    def test_counts_must_add_up(self):
        with pytest.raises(ValueError):
            hetero_link_width(192, 8, 3, 4)

    def test_must_divide_evenly(self):
        with pytest.raises(ValueError):
            hetero_link_width(101, 3, 2, 1)


class TestPowerInequality:
    def test_paper_minimum(self):
        assert min_small_routers(8) == 38

    def test_threshold_ratio(self):
        assert power_inequality_ratio() == pytest.approx(1.71, abs=0.01)

    def test_chosen_48_satisfies_bound(self):
        assert 48 >= min_small_routers(8)

    def test_requires_big_hungrier_than_small(self):
        with pytest.raises(ValueError):
            min_small_routers(8, big_power=0.2, small_power=0.3)


class TestResourceAccounting:
    def test_vc_invariant_all_layouts(self):
        base = total_vcs(baseline_layout().router_configs())
        for layout in all_layouts():
            assert total_vcs(layout.router_configs("strict")) == base == 960

    def test_buffer_slots_constant(self):
        base = total_buffer_flits(baseline_layout().router_configs())
        hetero = total_buffer_flits(layout_by_name("diagonal+BL").router_configs("strict"))
        assert base == hetero == 4800

    def test_buffer_bits_reduced_one_third(self):
        base = baseline_layout().router_configs()
        hetero = layout_by_name("center+BL").router_configs("strict")
        assert total_buffer_bits(base) == 921_600
        assert total_buffer_bits(hetero) == 614_400
        assert buffer_reduction_fraction(hetero, base) == pytest.approx(1 / 3)

    def test_buffer_only_layouts_save_no_bits(self):
        base = baseline_layout().router_configs()
        hetero = layout_by_name("center+B").router_configs()
        assert total_buffer_bits(hetero) == total_buffer_bits(base)

    def test_bisection_bandwidth_never_exceeds_baseline(self):
        mesh = Mesh(8)
        base = bisection_bandwidth_bits(mesh, baseline_layout().router_configs())
        assert base == 8 * 192
        for name in LAYOUT_NAMES:
            configs = layout_by_name(name).router_configs("strict")
            assert bisection_bandwidth_bits(mesh, configs) <= base

    def test_center_bl_bisection_exactly_constant(self):
        """Center+BL puts 4 wide + 4 narrow links across the cut: the
        paper's link-width equation holds with equality."""
        mesh = Mesh(8)
        configs = layout_by_name("center+BL").router_configs("strict")
        assert bisection_bandwidth_bits(mesh, configs) == 8 * 192


class TestPositions:
    def test_diagonal_positions(self):
        positions = diagonal_positions(8)
        assert len(positions) == 16
        assert 0 in positions and 63 in positions  # main diagonal corners
        assert 7 in positions and 56 in positions  # anti-diagonal corners

    def test_center_positions_are_central_block(self):
        positions = center_positions(8)
        assert len(positions) == 16
        expected = {r * 8 + c for r in range(2, 6) for c in range(2, 6)}
        assert positions == expected

    def test_row_positions(self):
        positions = row2_5_positions(8)
        assert len(positions) == 16
        rows = {p // 8 for p in positions}
        assert rows == {1, 4}  # the paper's 2nd and 5th rows


class TestLayouts:
    def test_seven_layouts(self):
        assert len(LAYOUT_NAMES) == 7
        assert len(all_layouts()) == 7

    def test_router_counts(self):
        for name in LAYOUT_NAMES[1:]:
            layout = layout_by_name(name)
            assert layout.num_big == 16
            assert layout.num_small == 48

    def test_baseline_is_homogeneous(self):
        layout = baseline_layout()
        assert layout.is_baseline
        configs = layout.router_configs()
        assert all(c.kind == "baseline" for c in configs.values())

    def test_frequencies(self):
        assert baseline_layout().frequency_ghz == pytest.approx(2.20)
        for name in LAYOUT_NAMES[1:]:
            assert layout_by_name(name).frequency_ghz == pytest.approx(2.07)

    def test_unknown_layout(self):
        with pytest.raises(ValueError):
            layout_by_name("ring+BL")

    def test_flit_mode_validation(self):
        with pytest.raises(ValueError):
            layout_by_name("diagonal+BL").router_configs("loose")

    def test_strict_mode_uses_128b_flits(self):
        configs = layout_by_name("diagonal+BL").router_configs("strict")
        assert all(c.flit_width == 128 for c in configs.values())

    def test_paper_mode_uses_192b_flit_accounting(self):
        configs = layout_by_name("diagonal+BL").router_configs("paper")
        assert all(c.flit_width == 192 for c in configs.values())
        big = [c for c in configs.values() if c.kind == "big"]
        assert all(c.lanes == 2 for c in big)

    def test_build_network_default_mesh(self):
        network = build_network(layout_by_name("diagonal+BL"))
        assert isinstance(network.topology, Mesh)
        assert network.config.frequency_ghz == pytest.approx(2.07)

    def test_build_network_torus(self):
        network = build_network(layout_by_name("diagonal+BL"), topology=Torus(8))
        assert isinstance(network.topology, Torus)

    def test_build_network_size_mismatch(self):
        with pytest.raises(ValueError):
            build_network(layout_by_name("diagonal+BL"), topology=Mesh(4))


class TestMemoryControllerPlacements:
    def test_corners(self):
        assert memory_controller_placement("corners") == [0, 7, 56, 63]

    def test_diamond_two_per_row_and_column(self):
        nodes = memory_controller_placement("diamond")
        assert len(nodes) == 16
        rows = [n // 8 for n in nodes]
        cols = [n % 8 for n in nodes]
        assert all(rows.count(r) == 2 for r in range(8))
        assert all(cols.count(c) == 2 for c in range(8))

    def test_diagonal_matches_big_routers(self):
        nodes = memory_controller_placement("diagonal")
        assert set(nodes) == diagonal_positions(8)

    def test_unknown_placement(self):
        with pytest.raises(ValueError):
            memory_controller_placement("ring")


class TestAsymmetricLayout:
    def test_four_large_at_corners(self):
        placement = asymmetric_cmp_layout()
        assert placement["large"] == [0, 7, 56, 63]
        assert len(placement["small"]) == 60
        assert set(placement["large"]) & set(placement["small"]) == set()

    def test_large_cores_sit_on_big_routers(self):
        placement = asymmetric_cmp_layout()
        assert set(placement["large"]) <= diagonal_positions(8)


class TestCustomLayoutValidation:
    def test_valid_custom_layout(self):
        from repro.core.layouts import custom_layout

        layout = custom_layout("probe", [0, 9, 18, 27], mesh_size=6)
        assert layout.num_big == 4
        assert layout.mesh_size == 6

    def test_duplicates_rejected(self):
        from repro.core.layouts import custom_layout

        with pytest.raises(ValueError, match=r"duplicate.*\[3, 7\]"):
            custom_layout("dup", [3, 7, 3, 7, 9])

    def test_non_int_positions_rejected(self):
        from repro.core.layouts import custom_layout

        with pytest.raises(ValueError, match="plain ints"):
            custom_layout("floaty", [0, 1.5, 3])
        with pytest.raises(ValueError, match="plain ints"):
            custom_layout("booly", [0, True, 3])

    def test_out_of_mesh_rejected(self):
        from repro.core.layouts import custom_layout

        with pytest.raises(ValueError, match="outside the mesh"):
            custom_layout("outside", [0, 64], mesh_size=8)

    def test_check_power_accepts_paper_mix(self):
        from repro.core.layouts import custom_layout

        layout = custom_layout(
            "paper-mix", sorted(diagonal_positions(8)), check_power=True
        )
        assert layout.num_big == 16

    def test_check_power_rejects_over_budget_mix(self):
        from repro.core.hetero import min_small_routers
        from repro.core.layouts import custom_layout

        max_big = 64 - min_small_routers(8)
        with pytest.raises(ValueError, match="power budget"):
            custom_layout(
                "too-big", list(range(max_big + 1)), check_power=True
            )

    def test_power_check_off_by_default(self):
        from repro.core.layouts import custom_layout

        # The footnote-4 sweeps explore over-budget mixes deliberately.
        layout = custom_layout("over", list(range(60)))
        assert layout.num_big == 60
