"""The chaos harness itself: plans, tokens, fault sites, corruption.

The end-to-end scenario (worker SIGKILL, store corruption, checkpoint
interruption, injected I/O faults -> bit-identical results throughout)
runs as ``TestScenario``; the rest pins the machinery the scenario
relies on -- deterministic one-shot firing, plan gating, seeded damage.
"""

import json
import os
import signal

import pytest

from repro.chaos.corrupt import corrupt_store_rows, flip_bits, truncate_file
from repro.chaos.kill import maybe_kill_self, write_kill_plan
from repro.chaos.sites import (
    chaos_site,
    reset_chaos_sites,
    token_path,
    write_site_plan,
)
from repro.exec.engine import sweep_points


@pytest.fixture(autouse=True)
def _clean_chaos(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS_PLAN", raising=False)
    monkeypatch.delenv("REPRO_CHAOS_KILL", raising=False)
    reset_chaos_sites()
    yield
    reset_chaos_sites()


def _point():
    return sweep_points(
        ["baseline"],
        "uniform_random",
        [0.05],
        seed=7,
        warmup_packets=10,
        measure_packets=30,
        mesh_size=4,
    )[0]


class TestSites:
    def test_no_plan_is_a_no_op(self):
        chaos_site("store.put")  # must not raise

    def test_planned_site_fires_on_planned_calls_only(
        self, tmp_path, monkeypatch
    ):
        plan = write_site_plan(
            tmp_path / "plan.json",
            {"store.put": {"exc": "OSError", "calls": [1, 3]}},
        )
        monkeypatch.setenv("REPRO_CHAOS_PLAN", str(plan))
        chaos_site("store.put")  # call 0: passes
        with pytest.raises(OSError):
            chaos_site("store.put")  # call 1: fires
        chaos_site("store.put")  # call 2: passes
        with pytest.raises(OSError):
            chaos_site("store.put")  # call 3: fires
        chaos_site("store.put")  # call 4: passes
        chaos_site("store.get")  # other sites untouched

    def test_exception_type_and_message_come_from_plan(
        self, tmp_path, monkeypatch
    ):
        plan = write_site_plan(
            tmp_path / "plan.json",
            {"store.get": {"exc": "MemoryError", "calls": [0],
                           "message": "chaos says no"}},
        )
        monkeypatch.setenv("REPRO_CHAOS_PLAN", str(plan))
        with pytest.raises(MemoryError, match="chaos says no"):
            chaos_site("store.get")

    def test_once_tokens_fire_exactly_once(self, tmp_path, monkeypatch):
        tokens = tmp_path / "tokens"
        plan = write_site_plan(
            tmp_path / "plan.json",
            {"runner.checkpoint": {"exc": "OSError",
                                   "once_dir": str(tokens)}},
        )
        monkeypatch.setenv("REPRO_CHAOS_PLAN", str(plan))
        assert token_path(tokens, "runner.checkpoint", 0).exists()
        with pytest.raises(OSError):
            chaos_site("runner.checkpoint")
        assert not token_path(tokens, "runner.checkpoint", 0).exists()
        # Token claimed: every later call passes, even after a "restart"
        # (fresh per-process counters, same plan on disk).
        chaos_site("runner.checkpoint")
        reset_chaos_sites()
        monkeypatch.setenv("REPRO_CHAOS_PLAN", str(plan))
        chaos_site("runner.checkpoint")

    def test_torn_plan_never_fires(self, tmp_path, monkeypatch):
        plan = tmp_path / "plan.json"
        plan.write_text('{"sites": {"store.put"')
        monkeypatch.setenv("REPRO_CHAOS_PLAN", str(plan))
        chaos_site("store.put")  # must not raise


class TestKill:
    def test_no_plan_no_kill(self):
        maybe_kill_self(_point())  # must not raise or kill

    def test_parent_pid_interlock(self, tmp_path, monkeypatch):
        point = _point()
        plan = write_kill_plan(
            tmp_path / "kill.json", [point], tmp_path / "tokens"
        )
        monkeypatch.setenv("REPRO_CHAOS_KILL", str(plan))
        # parent_pid defaults to this process, so this must NOT kill us.
        maybe_kill_self(point)
        # And the token is still armed for an actual worker.
        assert (tmp_path / "tokens" / f"{point.key()}.token").exists()

    def test_unplanned_point_not_killed(self, tmp_path, monkeypatch):
        points = sweep_points(
            ["baseline"],
            "uniform_random",
            [0.05, 0.1],
            seed=7,
            warmup_packets=10,
            measure_packets=30,
            mesh_size=4,
        )
        plan = write_kill_plan(
            tmp_path / "kill.json",
            [points[0]],
            tmp_path / "tokens",
            parent_pid=1,  # not us: the kill path is live
        )
        monkeypatch.setenv("REPRO_CHAOS_KILL", str(plan))
        maybe_kill_self(points[1])  # unplanned: survives

    def test_claimed_token_prevents_second_kill(self, tmp_path, monkeypatch):
        point = _point()
        plan = write_kill_plan(
            tmp_path / "kill.json", [point], tmp_path / "tokens",
            parent_pid=1,
        )
        (tmp_path / "tokens" / f"{point.key()}.token").unlink()
        monkeypatch.setenv("REPRO_CHAOS_KILL", str(plan))
        maybe_kill_self(point)  # token gone: survives

    def test_kill_plan_shape(self, tmp_path):
        point = _point()
        plan_path = write_kill_plan(
            tmp_path / "kill.json", [point], tmp_path / "tokens"
        )
        plan = json.loads(plan_path.read_text())
        assert plan["keys"] == [point.key()]
        assert plan["parent_pid"] == os.getpid()
        assert plan["signal"] == signal.SIGKILL


class TestCorrupt:
    def test_truncate_file(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(bytes(range(100)))
        assert truncate_file(path, 0.5) == 50
        assert path.stat().st_size == 50
        with pytest.raises(ValueError):
            truncate_file(path, 1.5)

    def test_flip_bits_deterministic(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        payload = bytes(range(256)) * 4
        a.write_bytes(payload)
        b.write_bytes(payload)
        assert flip_bits(a, seed=9, flips=5) == flip_bits(b, seed=9, flips=5)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != payload

    def test_corrupt_store_rows_seeded(self, tmp_path):
        from repro.exec.engine import run_sweep
        from repro.exec.store import ResultStore

        points = sweep_points(
            ["baseline"],
            "uniform_random",
            [0.04, 0.06, 0.08],
            seed=7,
            warmup_packets=10,
            measure_packets=30,
            mesh_size=4,
        )
        path = tmp_path / "s.sqlite"
        run_sweep(points, cache=str(path))
        mangled = corrupt_store_rows(path, count=2, seed=5)
        assert len(mangled) == 2
        assert corrupt_store_rows(path, count=2, seed=5) == mangled
        store = ResultStore(path)
        for point in points:
            if point.key() in mangled:
                with pytest.warns(UserWarning, match="quarantined"):
                    assert store.get(point) is None
            else:
                assert store.get(point) is not None


class TestScenario:
    def test_end_to_end_chaos_scenario(self, tmp_path):
        from repro.chaos.harness import run_chaos_scenario

        report = run_chaos_scenario(tmp_path, log=lambda *a, **k: None)
        assert report == {
            "baseline": "ok",
            "worker-sigkill": "ok",
            "journal": "ok",
            "store-corruption": "ok",
            "checkpoint-resume": "ok",
            "checkpoint-corruption": "ok",
            "store-io-faults": "ok",
        }

    def test_cli_reports_success(self, capsys, monkeypatch):
        # The real scenario already ran above; here only the CLI shell
        # is under test (CI's chaos-smoke job runs the CLI for real).
        import repro.chaos.__main__ as cli

        monkeypatch.setattr(
            cli, "run_chaos_scenario", lambda *a, **k: {"baseline": "ok"}
        )
        assert cli.main(["--smoke"]) == 0
        assert "chaos scenario passed" in capsys.readouterr().out

    def test_cli_reports_failure(self, capsys, monkeypatch):
        import repro.chaos.__main__ as cli
        from repro.chaos.harness import ChaosMismatch

        def explode(*args, **kwargs):
            raise ChaosMismatch("results differ")

        monkeypatch.setattr(cli, "run_chaos_scenario", explode)
        assert cli.main(["--smoke"]) == 1
        assert "CHAOS FAILURE" in capsys.readouterr().err
