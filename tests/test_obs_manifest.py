"""Run provenance: engine spans, search telemetry and run manifests.

Telemetry must be a pure observer: a sweep run with a
:class:`~repro.obs.manifest.SweepTelemetry` attached returns bit-identical
results to an untraced run, and the search trace hooks never touch the
optimizer RNG, so traced and untraced searches walk the same trajectory.
"""

import dataclasses
import json

import pytest

import repro.exec.engine as engine_mod
from repro.exec import ExecDefaults, ResultCache, SweepPoint, run_sweep
from repro.obs.manifest import (
    RunManifest,
    SearchTrace,
    SweepTelemetry,
    config_digest,
    git_sha,
    merge_chrome_events,
    write_spans_jsonl,
)
from repro.obs.replay import (
    load_events,
    spans_to_chrome,
    split_records,
    summarize_spans,
)
from repro.search.objectives import PlacementEvaluator
from repro.search.optimize import evolutionary_search, simulated_annealing

POINT = SweepPoint(
    layout="baseline", mesh_size=4, pattern="uniform_random",
    rate=0.05, seed=3, warmup_packets=20, measure_packets=120,
)


def _points(n=3):
    rates = (0.03, 0.05, 0.08)
    return [dataclasses.replace(POINT, rate=rates[i]) for i in range(n)]


@pytest.fixture(autouse=True)
def _isolated_defaults(monkeypatch):
    """Keep configure() side effects out of the other tests."""
    monkeypatch.setattr(engine_mod, "_defaults", ExecDefaults())


class TestConfigDigest:
    def test_stable_and_order_insensitive(self):
        a = config_digest({"rate": 0.05, "layout": "baseline"})
        b = config_digest({"layout": "baseline", "rate": 0.05})
        assert a == b and len(a) == 64

    def test_value_sensitive(self):
        assert config_digest({"rate": 0.05}) != config_digest({"rate": 0.06})


class TestSweepTelemetry:
    def test_serial_sweep_records_one_span_per_point(self):
        telemetry = SweepTelemetry()
        points = _points()
        results = run_sweep(points, cache=None, telemetry=telemetry)
        assert len(results) == len(points)
        assert len(telemetry.spans) == len(points)
        for span, point in zip(telemetry.spans, points):
            assert span["type"] == "span"
            assert span["kind"] == "sweep_point"
            assert span["name"] == point.label
            assert span["config_digest"] == point.key()
            assert span["sim_s"] > 0
            assert span["attempts"] == 1
            assert span["cache_hit"] is False
            assert span["error"] is None

    def test_telemetry_does_not_perturb_results(self):
        points = _points()
        untraced = run_sweep(points, cache=None)
        traced = run_sweep(points, cache=None, telemetry=SweepTelemetry())
        assert [r.to_dict() for r in traced] == [
            r.to_dict() for r in untraced
        ]

    def test_process_backend_records_worker_pids(self):
        telemetry = SweepTelemetry()
        run_sweep(
            _points(), jobs=2, backend="process", cache=None,
            telemetry=telemetry,
        )
        assert len(telemetry.spans) == 3
        assert all(s["worker"] is not None for s in telemetry.spans)
        assert all(
            s["queue_wait_s"] >= 0 and s["start_s"] is not None
            for s in telemetry.spans
        )

    def test_cache_hits_become_zero_cost_spans(self, tmp_path):
        cache = ResultCache(tmp_path / "sweeps")
        run_sweep(_points(), cache=cache)  # warm
        telemetry = SweepTelemetry()
        run_sweep(_points(), cache=cache, telemetry=telemetry)
        assert len(telemetry.spans) == 3
        assert all(s["cache_hit"] for s in telemetry.spans)
        assert all(s["sim_s"] == 0.0 and s["attempts"] == 0
                   for s in telemetry.spans)

    def test_summary_and_chrome_events(self):
        telemetry = SweepTelemetry()
        run_sweep(_points(), cache=None, telemetry=telemetry)
        summary = telemetry.summary()
        assert summary["points"] == 3
        assert summary["cache_hits"] == 0
        assert summary["errors"] == 0
        assert summary["total_sim_s"] > 0
        events = telemetry.chrome_trace_events()
        assert len(events) == 3
        assert all(e["ph"] == "X" and e["dur"] > 0 for e in events)


class TestSearchTrace:
    def test_sa_trace_is_rng_neutral(self):
        evaluator = PlacementEvaluator(4)
        kwargs = dict(num_big=4, seed=7, steps=60, restarts=2, polish_top=1)
        untraced = simulated_annealing(evaluator, **kwargs)
        trace = SearchTrace(every=10)
        traced = simulated_annealing(
            PlacementEvaluator(4), telemetry=trace, **kwargs
        )
        assert traced.best_placement == untraced.best_placement
        assert traced.best.scalar == untraced.best.scalar
        assert traced.history == untraced.history
        assert trace.records
        assert all(r["kind"] == "search_step" for r in trace.records)
        curve = trace.best_curve()
        assert curve == sorted(curve)  # best-so-far is monotone

    def test_ga_trace_records_generations(self):
        trace = SearchTrace()
        evolutionary_search(
            PlacementEvaluator(4), num_big=4, seed=5, generations=4,
            population=8, telemetry=trace,
        )
        generations = [
            r for r in trace.records if r["kind"] == "search_generation"
        ]
        assert len(generations) == 4
        assert all("best" in r for r in generations)


class TestReplayIntegration:
    def test_span_file_round_trip(self, tmp_path):
        telemetry = SweepTelemetry()
        run_sweep(_points(), cache=None, telemetry=telemetry)
        trace = SearchTrace(every=20)
        simulated_annealing(
            PlacementEvaluator(4), num_big=4, seed=3, steps=40,
            restarts=1, polish_top=1, telemetry=trace,
        )
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(path, telemetry.spans + trace.records)
        events = load_events(path)
        trace_events, spans = split_records(events)
        assert trace_events == []
        assert len(spans) == len(telemetry.spans) + len(trace.records)
        summary = summarize_spans(spans)
        assert summary["sweep_points"] == 3
        assert summary["search_records"] == len(trace.records)
        assert summary["errors"] == 0
        chrome = spans_to_chrome(spans)
        assert len(chrome) == 3  # sweep spans only
        assert merge_chrome_events(chrome, []) == chrome


class TestRunManifest:
    def test_collect_and_round_trip(self, tmp_path):
        telemetry = SweepTelemetry()
        points = _points()
        run_sweep(points, cache=None, telemetry=telemetry)
        manifest = RunManifest.collect(
            "unit-test",
            created_at="2026-08-08T00:00:00Z",
            config={"rate": 0.05},
            points=points,
            telemetry=telemetry,
            argv=["prog", "--flag"],
            extra={"note": "hi"},
        )
        assert manifest.created_at == "2026-08-08T00:00:00Z"
        assert manifest.config_sha256 == config_digest({"rate": 0.05})
        assert [p["config_digest"] for p in manifest.points] == [
            p.key() for p in points
        ]
        assert manifest.sweep_summary["points"] == 3
        path = tmp_path / "manifest.json"
        manifest.write_json(path)
        loaded = RunManifest.read_json(path)
        assert loaded.name == "unit-test"
        assert loaded.points == manifest.points
        assert loaded.extra == {"note": "hi"}
        # git_sha is best-effort; in this repo it should resolve.
        document = json.loads(path.read_text())
        assert "git_sha" in document and "python" in document

    def test_git_sha_shape(self):
        sha = git_sha()
        assert sha is None or (len(sha) == 40 and set(sha) <= set(
            "0123456789abcdef"
        ))
