"""Tests for the placement design-space exploration (footnote 4)."""

from repro.core.design_space import (
    PlacementExplorer,
    router_traversal_counts,
    xy_path_routers,
)
from repro.core.layouts import diagonal_positions
from repro.noc.topology import Mesh


class TestXYPaths:
    def test_straight_line(self):
        mesh = Mesh(4)
        assert xy_path_routers(mesh, 0, 3) == [0, 1, 2, 3]

    def test_l_shape(self):
        mesh = Mesh(4)
        assert xy_path_routers(mesh, 0, 13) == [0, 1, 5, 9, 13]

    def test_same_router(self):
        assert xy_path_routers(Mesh(4), 6, 6) == [6]

    def test_length_is_minimal(self):
        mesh = Mesh(8)
        for src, dst in ((0, 63), (17, 42), (7, 56)):
            path = xy_path_routers(mesh, src, dst)
            sr, sc = mesh.coords(src)
            dr, dc = mesh.coords(dst)
            assert len(path) == abs(sr - dr) + abs(sc - dc) + 1


class TestTraversalCounts:
    def test_center_hotter_than_edges(self):
        counts = router_traversal_counts(Mesh(8))
        center = counts[3 * 8 + 3]
        corner = counts[0]
        assert center > 2 * corner

    def test_symmetry(self):
        counts = router_traversal_counts(Mesh(4))
        # 180-degree rotational symmetry of the mesh + X-Y routing.
        for rid in range(16):
            assert counts[rid] == counts[15 - rid]


class TestPlacementExplorer:
    def test_footnote4_counts(self):
        explorer = PlacementExplorer(4)
        assert explorer.count_placements(4) == 1820
        assert explorer.count_placements(6) == 8008
        assert explorer.count_placements(8) == 12870

    def test_score_components_bounded(self):
        explorer = PlacementExplorer(4)
        score = explorer.score(diagonal_positions(4))
        assert 0 < score.load_coverage < 1
        assert 0 < score.flow_coverage <= 1
        assert 0 < score.spread <= 1

    def test_diagonal_beats_random_corner_cluster(self):
        explorer = PlacementExplorer(4)
        diagonal = explorer.score(diagonal_positions(4))
        corner_cluster = explorer.score({0, 1, 4, 5, 2, 8, 3, 12})
        assert diagonal.score > corner_cluster.score

    def test_diagonal_ranks_above_average(self):
        """The paper's 4x4 exhaustive search (simulation-based) found
        diagonal-style placements best.  Our fast analytic proxy is only a
        pre-filter, but it should still place the diagonal clearly above
        the median placement."""
        explorer = PlacementExplorer(4)
        rank = explorer.rank_of(diagonal_positions(4))
        assert rank <= 0.35 * explorer.count_placements(8)

    def test_named_placements_scored(self):
        explorer = PlacementExplorer(4)
        named = explorer.named_placements(8)
        assert "diagonal" in named and "center" in named
        # Diagonal spreads across all rows and columns; center does not.
        assert named["diagonal"].spread > named["center"].spread

    def test_top_placements_sorted(self):
        explorer = PlacementExplorer(4)
        top = explorer.top_placements(4, k=5)
        scores = [s.score for s in top]
        assert scores == sorted(scores, reverse=True)
        assert len(top) == 5

    def test_simulate_placements_ranks_by_latency(self):
        explorer = PlacementExplorer(4)
        candidates = [diagonal_positions(4), {0, 1, 2, 3, 4, 5, 6, 7}]
        results = explorer.simulate_placements(
            candidates, rate=0.05, measure_packets=150
        )
        assert len(results) == 2
        latencies = [r["latency_cycles"] for r in results]
        assert latencies == sorted(latencies)
        assert all(r["throughput"] > 0 for r in results)


class TestEnumerationGuard:
    def test_large_mesh_enumeration_refused(self):
        import pytest

        explorer = PlacementExplorer(8)
        with pytest.raises(ValueError, match="repro.search"):
            explorer.enumerate(16)
        with pytest.raises(ValueError, match="488,526,937,079,580"):
            list(explorer.enumerate(16))

    def test_top_placements_and_rank_of_guarded(self):
        import pytest

        explorer = PlacementExplorer(8)
        with pytest.raises(ValueError, match="exceed"):
            explorer.top_placements(16)
        with pytest.raises(ValueError, match="exceed"):
            explorer.rank_of(diagonal_positions(8))

    def test_explicit_limit_overrides_default(self):
        import pytest

        explorer = PlacementExplorer(4)
        with pytest.raises(ValueError, match="exceed"):
            explorer.enumerate(8, max_enumeration=100)
        # The footnote-4 spaces stay enumerable under the default.
        assert len(list(explorer.enumerate(8))) == 12870

    def test_simulate_placements_reports_cache_flag(self):
        explorer = PlacementExplorer(4)
        results = explorer.simulate_placements(
            [diagonal_positions(4)], rate=0.05, measure_packets=100,
            cache=None,
        )
        assert len(results) == 1
        assert "from_cache" in results[0]
        assert results[0]["scalar_score"] > 0
