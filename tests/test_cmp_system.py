"""Integration tests for the full CMP (cores + caches + MESI + NoC)."""

import pytest

from repro.cmp.cache import EXCLUSIVE, MODIFIED, SHARED, CacheConfig
from repro.cmp.system import CmpConfig, CmpSystem
from repro.core.layouts import layout_by_name
from repro.traffic.trace import TraceRecord
from repro.traffic.workloads import WORKLOADS, generate_core_trace


def _small_cmp_config():
    """Shrunken caches: a 4x4 CMP that runs fast and still exercises
    evictions and the directory."""
    return CmpConfig(
        l1=CacheConfig(size_bytes=4 * 1024, associativity=2, block_bytes=128),
        l2_bank=CacheConfig(
            size_bytes=32 * 1024, associativity=8, block_bytes=128, latency=6
        ),
        start_stagger_window=16,
    )


def _system(layout_name="baseline", mesh_size=4, traces=None, **kwargs):
    layout = layout_by_name(layout_name, mesh_size) if layout_name != "baseline" else None
    if layout is None:
        from repro.core.layouts import baseline_layout

        layout = baseline_layout(mesh_size)
    if traces is None:
        profile = WORKLOADS["SPECjbb"]
        traces = {
            core: generate_core_trace(profile, core, 60, seed=3)
            for core in range(mesh_size * mesh_size)
        }
    return CmpSystem(layout, traces, config=kwargs.pop("config", _small_cmp_config()), **kwargs)


def _check_mesi_invariants(system):
    """Quiesced-state MESI checks: single writer, directory consistency."""
    num_nodes = system.network.topology.num_nodes
    blocks = set()
    for l1 in system.l1s.values():
        blocks.update(line.block for line in l1.cache.lines())
    for block in blocks:
        states = {
            node: l1.state_of(block)
            for node, l1 in system.l1s.items()
            if l1.state_of(block) != "I"
        }
        owners = [n for n, s in states.items() if s in (MODIFIED, EXCLUSIVE)]
        sharers = [n for n, s in states.items() if s == SHARED]
        # Single-writer: at most one M/E copy, and never alongside sharers.
        assert len(owners) <= 1, f"block {block:#x} has owners {owners}"
        if owners:
            assert not sharers, (
                f"block {block:#x} owned by {owners} but shared by {sharers}"
            )
        # Directory agreement at the home node.
        home = system.home_of(block)
        entry = system.l2s[home].directory.get(block)
        if owners:
            assert entry is not None and entry.owner == owners[0]
        for sharer in sharers:
            assert entry is not None
            assert sharer in entry.sharers or entry.owner == sharer
        # Inclusive L2 holds every block with L1 copies.
        if states:
            assert system.l2s[home].cache.probe(block) is not None


class TestEndToEnd:
    def test_runs_to_completion(self):
        system = _system()
        cycles = system.run(max_cycles=200_000)
        assert cycles > 0
        assert all(core.done for core in system.cores.values())

    def test_positive_ipc(self):
        system = _system()
        system.warm_caches()
        system.run(max_cycles=200_000)
        ipc = system.per_core_ipc()
        assert len(ipc) == 16
        assert all(v > 0 for v in ipc.values())
        assert 0 < system.mean_ipc() <= 3.0

    def test_miss_records_collected(self):
        system = _system()
        system.run(max_cycles=200_000)
        stats = system.miss_latency_stats()
        assert stats["count"] > 0
        assert stats["mean"] > 0
        assert stats["std"] >= 0

    def test_mesi_invariants_after_quiesce(self):
        system = _system()
        system.run(max_cycles=200_000)
        # Let all in-flight protocol traffic settle.
        for _ in range(3000):
            system.tick()
        _check_mesi_invariants(system)

    @pytest.mark.parametrize("seed", [0, 14, 24, 27, 101])
    def test_mesi_invariants_across_seeds(self, seed):
        """Stress the protocol with varied interleavings; seeds 0/14/24/27
        historically exposed forward-overtakes-fill and stale-writeback
        races."""
        profile = WORKLOADS["TPC-C"]
        traces = {
            core: generate_core_trace(profile, core, 60, seed=seed)
            for core in range(16)
        }
        system = _system(traces=traces)
        system.run(max_cycles=300_000)
        for _ in range(3000):
            system.tick()
        _check_mesi_invariants(system)

    def test_deterministic(self):
        results = []
        for _ in range(2):
            system = _system()
            system.run(max_cycles=200_000)
            results.append(
                (system.cycle, tuple(sorted(system.per_core_ipc().items())))
            )
        assert results[0] == results[1]

    def test_warm_caches_preserves_invariants(self):
        system = _system()
        system.warm_caches()
        _check_mesi_invariants(system)

    def test_warmup_improves_ipc(self):
        cold = _system()
        cold.run(max_cycles=300_000)
        warm = _system()
        warm.warm_caches()
        warm.run(max_cycles=300_000)
        assert warm.mean_ipc() > cold.mean_ipc()

    def test_hetero_layout_runs(self):
        system = _system("diagonal+BL", mesh_size=4)
        system.warm_caches()
        system.run(max_cycles=300_000)
        assert all(core.done for core in system.cores.values())

    def test_sharing_produces_coherence_traffic(self):
        mesh = 4
        block = 1 << 45  # one shared block
        traces = {}
        for core in range(mesh * mesh):
            traces[core] = [
                TraceRecord(gap=2, is_write=core % 2 == 0, address=block)
                for _ in range(20)
            ]
        system = _system(traces=traces)
        system.run(max_cycles=200_000)
        home = system.home_of(block)
        # Ownership ping-pongs between writers: the home must grant the
        # block far more often than once per core.
        assert system.l2s[home].requests_served > 16

    def test_run_deadline_raises(self):
        system = _system()
        with pytest.raises(RuntimeError):
            system.run(max_cycles=5)


class TestPlacements:
    def test_mc_placement_nodes(self):
        system = _system(config=_small_cmp_config())
        assert system.mc_nodes == [0, 3, 12, 15]

    def test_memory_traffic_reaches_mcs(self):
        system = _system()
        system.run(max_cycles=200_000)
        served = sum(mc.reads_served for mc in system.mcs.values())
        assert served > 0

    def test_unknown_traces_rejected(self):
        from repro.core.layouts import baseline_layout

        with pytest.raises(ValueError):
            CmpSystem(baseline_layout(4), {99: []})


class TestInterleaveConfig:
    def test_l2_interleave_shift_set_automatically(self):
        system = _system()
        assert system.config.l2_bank.interleave_shift == 4  # 16 nodes
