"""Observability null-object fast path.

When no observer is attached the hot simulation loops must not pay for
tracing: the kernel checks a single ``Network._tracing`` boolean per
phase instead of calling into hook dispatch.  These tests prove the
contract both ways -- an attached observer sees a rich event stream, a
detached run makes *zero* hook calls -- and that tracing never perturbs
the simulation itself.
"""

import random

from repro.core.layouts import build_network, layout_by_name
from repro.noc.flit import reset_packet_ids
from repro.obs.hooks import Observer


class _CountingObserver(Observer):
    """Counts every hook invocation, keyed by hook name."""

    def __init__(self):
        self.calls = {}

    def _bump(self, name):
        self.calls[name] = self.calls.get(name, 0) + 1

    @property
    def total(self):
        return sum(self.calls.values())


def _make_counting_observer():
    obs = _CountingObserver()
    for name in dir(Observer):
        if name.startswith("on_"):
            setattr(
                obs, name,
                (lambda n: lambda *a, **k: obs._bump(n))(name),
            )
    return obs


def _drive(net, seed=5, cycles=150, rate=0.1):
    rng = random.Random(seed)
    num_nodes = net.topology.num_nodes
    for _ in range(cycles):
        for node in range(num_nodes):
            if rng.random() < rate:
                dst = rng.randrange(num_nodes)
                if dst != node:
                    net.enqueue(net.make_packet(node, dst))
        net.step()
    net.drain()


def test_attached_observer_sees_the_event_stream():
    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 3))
    obs = _make_counting_observer()
    net.attach_observer(obs)
    assert net._tracing is True
    _drive(net)
    assert obs.total > 0
    # The structural hooks all fire on a traffic-bearing run.
    for hook in (
        "on_packet_enqueued",
        "on_flit_injected",
        "on_vc_allocated",
        "on_switch_grant",
        "on_link_traversal",
        "on_credit_return",
        "on_packet_delivered",
        "on_cycle_end",
    ):
        assert obs.calls.get(hook, 0) > 0, f"{hook} never fired"


def test_detached_run_makes_zero_hook_calls():
    """The whole point of the fast path: obs-disabled runs must not
    touch the observer machinery at all."""
    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 3))
    obs = _make_counting_observer()
    net.attach_observer(obs)
    net.detach_observer()
    assert net._tracing is False
    assert net.obs is None
    _drive(net)
    assert obs.total == 0, f"hooks fired while detached: {obs.calls}"


def test_tracing_flag_follows_attach_detach():
    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 2))
    assert net._tracing is False
    obs = _make_counting_observer()
    net.attach_observer(obs)
    assert net._tracing is True
    net.detach_observer()
    assert net._tracing is False
    net.attach_observer(obs)
    assert net._tracing is True


def test_tracing_does_not_perturb_the_simulation():
    """A traced run and an untraced run are byte-identical."""

    def run(traced):
        reset_packet_ids()
        net = build_network(layout_by_name("diagonal+BL", 3))
        if traced:
            net.attach_observer(_make_counting_observer())
        delivered = []
        net.on_delivery = lambda packet, cycle: delivered.append(
            (packet.packet_id, packet.src, packet.dst, cycle, packet.hops)
        )
        _drive(net, seed=13, cycles=200, rate=0.15)
        return net.cycle, net.total_delivered, delivered

    assert run(True) == run(False)


def _make_counting_metrics(net):
    """A KernelMetrics whose every hook also counts its invocations."""
    from repro.obs.metrics import KernelMetrics

    metrics = KernelMetrics(net)
    metrics.hook_calls = 0
    for name in dir(KernelMetrics):
        if name.startswith("on_"):
            bound = getattr(metrics, name)

            def counted(*args, _bound=bound, _m=metrics, **kwargs):
                _m.hook_calls += 1
                return _bound(*args, **kwargs)

            setattr(metrics, name, counted)
    return metrics


def test_detached_metrics_make_zero_calls():
    """Metrics "off" is the same null-object fast path: once detached,
    the kernel performs zero metric calls and no instrument moves."""
    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 3))
    metrics = _make_counting_metrics(net)
    net.attach_observer(metrics)
    net.detach_observer()
    assert net.obs is None and net._tracing is False
    _drive(net)
    assert metrics.hook_calls == 0
    snap = metrics.snapshot()
    assert snap["flits_injected"] == 0
    assert snap["link_flits_total"] == 0
    assert snap["link_flits"] == [] and snap["pair_flits"] == []


def test_attached_metrics_see_the_event_stream():
    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 3))
    metrics = _make_counting_metrics(net)
    net.attach_observer(metrics)
    _drive(net)
    assert metrics.hook_calls > 0
    assert metrics.snapshot()["flits_injected"] > 0


def test_metrics_do_not_perturb_the_simulation():
    """A metrics-instrumented run and a bare run are byte-identical."""
    from repro.obs.metrics import KernelMetrics

    def run(instrumented):
        reset_packet_ids()
        net = build_network(layout_by_name("diagonal+BL", 3))
        if instrumented:
            net.attach_observer(KernelMetrics(net))
        delivered = []
        net.on_delivery = lambda packet, cycle: delivered.append(
            (packet.packet_id, packet.src, packet.dst, cycle, packet.hops)
        )
        _drive(net, seed=13, cycles=200, rate=0.15)
        return net.cycle, net.total_delivered, delivered

    assert run(True) == run(False)
