"""Tests for the metaheuristic placement searches (repro.search)."""

import pytest

from repro.core.layouts import diagonal_positions
from repro.search.canonical import canonical_placement, is_diagonal_family
from repro.search.objectives import PlacementEvaluator, PlacementObjectives
from repro.search.optimize import (
    evolutionary_search,
    exhaustive_search,
    pareto_frontier,
    simulated_annealing,
)

DIAG4 = canonical_placement(diagonal_positions(4), 4)


@pytest.fixture(scope="module")
def exhaustive_4x4():
    return exhaustive_search(PlacementEvaluator(4), 8)


class TestExhaustive:
    def test_optimum_is_the_diagonal(self, exhaustive_4x4):
        assert exhaustive_4x4.best_placement == DIAG4

    def test_leader_set_contains_diagonal_shape(self, exhaustive_4x4):
        assert any(
            is_diagonal_family(record.canonical, 4)
            for record in exhaustive_4x4.top
        )

    def test_counts_every_placement(self, exhaustive_4x4):
        assert exhaustive_4x4.proposals == 12870
        # Canonical dedup: ~8x fewer real evaluations than placements.
        assert exhaustive_4x4.evaluations < 12870 / 4

    def test_top_is_sorted_and_distinct(self, exhaustive_4x4):
        scalars = [r.scalar for r in exhaustive_4x4.top]
        assert scalars == sorted(scalars, reverse=True)
        canons = [r.canonical for r in exhaustive_4x4.top]
        assert len(set(canons)) == len(canons)

    def test_too_large_space_rejected(self):
        with pytest.raises(ValueError, match="exhaustive"):
            exhaustive_search(PlacementEvaluator(8), 16)


class TestSimulatedAnnealing:
    def test_refinds_exhaustive_optimum_on_4x4(self, exhaustive_4x4):
        """The regression the CI smoke job pins: a seeded annealing run
        lands on the exhaustive optimum exactly (same canonical
        placement), in a fraction of the evaluations."""
        result = simulated_annealing(
            PlacementEvaluator(4), 8, seed=0, steps=400, restarts=4
        )
        assert result.best_placement == exhaustive_4x4.best_placement
        assert result.evaluations < 12870 / 4

    @pytest.mark.parametrize("seed", [1, 2])
    def test_refinds_optimum_across_seeds(self, seed, exhaustive_4x4):
        result = simulated_annealing(
            PlacementEvaluator(4), 8, seed=seed, steps=400, restarts=4
        )
        assert result.best_placement == exhaustive_4x4.best_placement

    def test_deterministic_per_seed(self):
        runs = [
            simulated_annealing(
                PlacementEvaluator(4), 8, seed=7, steps=150, restarts=2
            )
            for _ in range(2)
        ]
        assert runs[0].best_placement == runs[1].best_placement
        assert runs[0].history == runs[1].history
        assert runs[0].proposals == runs[1].proposals

    def test_history_is_monotone(self):
        result = simulated_annealing(
            PlacementEvaluator(4), 8, seed=3, steps=100, restarts=1
        )
        assert all(
            a <= b for a, b in zip(result.history, result.history[1:])
        )

    def test_every_candidate_respects_the_budget(self):
        result = simulated_annealing(
            PlacementEvaluator(4), 6, seed=0, steps=100, restarts=1
        )
        for record in result.top:
            assert len(record.canonical) == 6

    def test_bad_num_big_rejected(self):
        with pytest.raises(ValueError, match="num_big"):
            simulated_annealing(PlacementEvaluator(4), 0)
        with pytest.raises(ValueError, match="num_big"):
            simulated_annealing(PlacementEvaluator(4), 16)

    def test_bad_steps_rejected(self):
        with pytest.raises(ValueError, match="steps"):
            simulated_annealing(PlacementEvaluator(4), 8, steps=0)


class TestEvolutionarySearch:
    def test_finds_strong_4x4_placement(self, exhaustive_4x4):
        result = evolutionary_search(
            PlacementEvaluator(4), 8, seed=0, generations=25, population=24
        )
        # Within half a percent of the global optimum (usually exact).
        assert result.best.scalar >= 0.995 * exhaustive_4x4.best.scalar

    def test_deterministic_per_seed(self):
        runs = [
            evolutionary_search(
                PlacementEvaluator(4), 8, seed=5, generations=6, population=12
            )
            for _ in range(2)
        ]
        assert runs[0].best_placement == runs[1].best_placement
        assert runs[0].history == runs[1].history

    def test_initial_population_seeds_the_search(self):
        """Seeding with the known optimum keeps it: the elite preserves
        the best member, so the result can never be worse than the seed."""
        evaluator = PlacementEvaluator(4)
        result = evolutionary_search(
            evaluator,
            8,
            seed=0,
            generations=4,
            population=8,
            initial=[DIAG4],
        )
        assert result.best.scalar >= evaluator.evaluate(DIAG4).scalar

    def test_wrong_size_initial_rejected(self):
        with pytest.raises(ValueError, match="initial placement"):
            evolutionary_search(
                PlacementEvaluator(4), 8, initial=[(0, 1, 2)]
            )

    def test_bad_population_rejected(self):
        with pytest.raises(ValueError, match="population"):
            evolutionary_search(PlacementEvaluator(4), 8, population=2)
        with pytest.raises(ValueError, match="mutation_rate"):
            evolutionary_search(PlacementEvaluator(4), 8, mutation_rate=1.5)


def _record(canonical, **axes):
    defaults = dict(
        positions=canonical,
        canonical=canonical,
        load_coverage=0.0,
        flow_coverage=0.0,
        spread=0.0,
        analytic=0.0,
        fairness=0.0,
        contention=0.0,
        balance=0.0,
        resilience=0.0,
        power_slack=0.0,
        scalar=0.0,
    )
    defaults.update(axes)
    return PlacementObjectives(**defaults)


class TestParetoFrontier:
    def test_dominated_points_drop(self):
        a = _record((0,), analytic=1.0, resilience=0.2, scalar=1.0)
        b = _record((1,), analytic=0.5, resilience=0.8, scalar=2.0)
        c = _record((2,), analytic=0.4, resilience=0.1, scalar=0.1)  # dominated
        frontier = pareto_frontier([a, b, c])
        assert [r.canonical for r in frontier] == [(0,), (1,)]

    def test_duplicate_canonicals_deduplicate(self):
        a = _record((0,), analytic=1.0, resilience=0.2, scalar=1.0)
        dup = _record((0,), analytic=1.0, resilience=0.2, scalar=0.5)
        assert len(pareto_frontier([a, dup])) == 1

    def test_single_axis_gives_the_max(self):
        a = _record((0,), analytic=1.0)
        b = _record((1,), analytic=2.0)
        frontier = pareto_frontier([a, b], axes=("analytic",))
        assert [r.canonical for r in frontier] == [(1,)]

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="axis"):
            pareto_frontier([], axes=())
