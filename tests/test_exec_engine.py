"""Engine and cache-layer behaviour: hits, misses, corruption, resume.

The headline property: a warm cache makes :func:`repro.exec.run_sweep`
execute *zero* simulations (proved here by stubbing ``execute_point`` to
raise), and any damaged cache entry -- truncated, corrupt JSON, wrong
version, wrong spec, wrong field set -- silently degrades to a recompute,
never an exception.  That combination is what lets an interrupted
``run_all --full`` sweep resume from where it crashed.
"""

import dataclasses
import json

import pytest

import repro.exec.engine as engine_mod
from repro.exec import (
    ExecDefaults,
    ResultCache,
    SweepPoint,
    configure,
    default_cache_dir,
    execute_point,
    run_sweep,
)

POINT = SweepPoint(
    layout="baseline", mesh_size=4, pattern="uniform_random",
    rate=0.05, seed=3, warmup_packets=20, measure_packets=120,
)


def _points(n=3):
    rates = (0.03, 0.05, 0.08)
    return [dataclasses.replace(POINT, rate=rates[i]) for i in range(n)]


@pytest.fixture(autouse=True)
def _isolated_defaults(monkeypatch):
    """Keep configure() side effects out of the other tests."""
    monkeypatch.setattr(engine_mod, "_defaults", ExecDefaults())


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "sweeps")


class TestCacheRoundTrip:
    def test_put_then_get(self, cache):
        result = execute_point(POINT)
        path = cache.put(POINT, result)
        assert path.exists() and path.name == f"{POINT.key()}.json"
        hit = cache.get(POINT)
        assert hit is not None
        assert hit.to_dict() == result.to_dict()

    def test_miss_on_empty_cache(self, cache):
        assert cache.get(POINT) is None
        assert len(cache) == 0

    def test_different_spec_misses(self, cache):
        cache.put(POINT, execute_point(POINT))
        assert cache.get(dataclasses.replace(POINT, seed=POINT.seed + 1)) is None

    def test_no_stray_tmp_files(self, cache):
        cache.put(POINT, execute_point(POINT))
        assert not list(cache.directory.glob("*.tmp"))
        assert len(cache) == 1


class TestCacheCorruptionFallsBackToRecompute:
    """Satellite 3: damaged entries are misses, and the damaged file is
    discarded so it cannot poison later runs."""

    def _seed_entry(self, cache):
        result = execute_point(POINT)
        return cache.put(POINT, result), result

    @pytest.mark.parametrize(
        "damage",
        [
            lambda path: path.write_text(""),                      # truncated empty
            lambda path: path.write_text(path.read_text()[: len(path.read_text()) // 2]),
            lambda path: path.write_text("{not json"),
            lambda path: path.write_text(json.dumps({"version": 999})),
            lambda path: path.write_text(json.dumps(
                {"version": 1, "spec": {"rate": 9.9}, "result": {}})),
            lambda path: path.write_text(json.dumps(
                {"version": 1, "spec": None, "result": None})),
        ],
        ids=["empty", "truncated", "not-json", "bad-version", "spec-mismatch",
             "null-payload"],
    )
    def test_damaged_entry_is_a_miss_and_discarded(self, cache, damage):
        path, _ = self._seed_entry(cache)
        damage(path)
        assert cache.get(POINT) is None
        assert not path.exists()  # discarded, not left to fail again

    def test_result_with_wrong_fields_is_a_miss(self, cache):
        path, result = self._seed_entry(cache)
        payload = json.loads(path.read_text())
        del payload["result"]["packet_id_sum"]
        path.write_text(json.dumps(payload))
        assert cache.get(POINT) is None

    def test_run_sweep_recovers_from_corrupt_entry(self, cache):
        """End to end: corrupt one entry of a swept cache; the sweep
        recomputes exactly that point and still returns correct results."""
        points = _points()
        first = run_sweep(points, jobs=1, cache=cache)
        cache.path_for(points[1]).write_text("garbage")
        second = run_sweep(points, jobs=1, cache=cache)
        assert [r.to_dict() for r in second] == [r.to_dict() for r in first]
        assert [r.from_cache for r in second] == [True, False, True]
        # ... and the recompute repaired the entry.
        assert cache.get(points[1]) is not None


class TestWarmCacheExecutesNothing:
    def test_second_run_simulates_zero_points(self, cache, monkeypatch):
        points = _points()
        cold = run_sweep(points, jobs=1, cache=cache)
        assert all(not r.from_cache for r in cold)
        assert len(cache) == len(points)

        def _boom(point):
            raise AssertionError(f"simulated {point.label} despite warm cache")

        monkeypatch.setattr(engine_mod, "execute_point", _boom)
        warm = run_sweep(points, jobs=1, cache=cache)
        assert all(r.from_cache for r in warm)
        assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]

    def test_partial_cache_executes_only_misses(self, cache, monkeypatch):
        points = _points()
        run_sweep([points[0], points[2]], jobs=1, cache=cache)
        executed = []
        real = engine_mod.execute_point

        def _spy(point):
            executed.append(point.key())
            return real(point)

        monkeypatch.setattr(engine_mod, "execute_point", _spy)
        results = run_sweep(points, jobs=1, cache=cache)
        assert executed == [points[1].key()]
        assert [r.from_cache for r in results] == [True, False, True]

    def test_no_cache_always_executes(self, cache, monkeypatch):
        run_sweep(_points(1), jobs=1, cache=cache)
        calls = []
        real = engine_mod.execute_point
        monkeypatch.setattr(
            engine_mod, "execute_point",
            lambda point: calls.append(point.key()) or real(point),
        )
        run_sweep(_points(1), jobs=1, cache=None)
        assert len(calls) == 1


class TestEngineConfiguration:
    def test_configure_sets_defaults(self, tmp_path):
        defaults = configure(jobs=3, cache_dir=tmp_path)
        assert defaults.jobs == 3 and defaults.cache_dir == str(tmp_path)
        # Omitted args keep their values.
        assert configure().jobs == 3

    def test_configure_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            configure(jobs=0)

    def test_configured_cache_used_by_default(self, tmp_path, monkeypatch):
        configure(cache_dir=tmp_path / "sweeps")
        run_sweep(_points(1), jobs=1)
        assert len(ResultCache(tmp_path / "sweeps")) == 1
        # cache=None opts a single call out even when a default is set.
        monkeypatch.setattr(
            engine_mod, "execute_point",
            lambda point: (_ for _ in ()).throw(AssertionError("executed")),
        )
        assert all(r.from_cache for r in run_sweep(_points(1), jobs=1))
        with pytest.raises(AssertionError, match="executed"):
            run_sweep(_points(1), jobs=1, cache=None)

    def test_env_defaults(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "env-cache"))
        defaults = engine_mod._defaults_from_env()
        assert defaults.jobs == 4
        assert defaults.cache_dir == str(tmp_path / "env-cache")
        assert default_cache_dir() == tmp_path / "env-cache"

    def test_env_junk_jobs_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert engine_mod._defaults_from_env().jobs == 1

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_sweep(_points(1), backend="threads", cache=None)


class TestProgressHeartbeats:
    def test_one_heartbeat_per_point_including_cache_hits(self, cache):
        points = _points()
        beats = []
        run_sweep(points, jobs=1, cache=cache, progress=beats.append)
        assert [p.done for p in beats] == [1, 2, 3]
        assert all(p.phase == "sweep" and p.target == 3 for p in beats)
        warm = []
        run_sweep(points, jobs=1, cache=cache, progress=warm.append)
        assert [p.done for p in warm] == [1, 2, 3]

    def test_process_backend_writes_cache_and_reports(self, cache):
        points = _points(2)
        beats = []
        results = run_sweep(
            points, jobs=2, backend="process", cache=cache, progress=beats.append
        )
        assert len(cache) == 2
        assert sorted(p.done for p in beats) == [1, 2]
        assert [r.key for r in results] == [p.key() for p in points]
