"""Golden-run regression tests: fixed-seed reference results, exact match.

``tests/golden/golden_runs.json`` commits the complete
:class:`repro.exec.PointResult` payloads of four small fixed-seed runs --
homogeneous and HeteroNoC (Diagonal+BL) 4x4 meshes under uniform-random
and nearest-neighbour traffic.  The tests assert today's simulator
reproduces them *exactly* (integer checksums and floats alike), through
both the serial and the process backends, which pins three things at
once:

* the simulator's packet streams and latency accounting per seed (any
  change to injection order, routing, arbitration or stats shows up as a
  golden diff, deliberately);
* ``process`` backend == ``serial`` backend, bit for bit;
* ``naive`` == ``event`` == ``soa`` == ``c`` cycle kernels, bit for
  bit, via the :class:`SweepPoint` ``kernel`` override (only the spec
  hash may differ -- the override is part of the cache key);
* the ``_offer_load`` injection path: packet ids are creation-ordered,
  so the measured window is exactly ids ``[warmup, warmup + measure)``.

Regenerate after an *intentional* simulator change::

    PYTHONPATH=src python tests/test_golden_runs.py --regen
"""

import json
import pathlib
from dataclasses import replace

import pytest

from repro.exec import SweepPoint, execute_point, run_sweep

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "golden_runs.json"

#: the four reference configurations (kept tiny: a 4x4 mesh, 350 packets).
GOLDEN_POINTS = {
    "homogeneous-4x4-UR": SweepPoint(
        layout="baseline", mesh_size=4, pattern="uniform_random",
        rate=0.05, seed=7, warmup_packets=50, measure_packets=300,
    ),
    "homogeneous-4x4-NN": SweepPoint(
        layout="baseline", mesh_size=4, pattern="nearest_neighbor",
        rate=0.08, seed=7, warmup_packets=50, measure_packets=300,
    ),
    "heteronoc-4x4-UR": SweepPoint(
        layout="diagonal+BL", mesh_size=4, pattern="uniform_random",
        rate=0.05, seed=7, warmup_packets=50, measure_packets=300,
    ),
    "heteronoc-4x4-NN": SweepPoint(
        layout="diagonal+BL", mesh_size=4, pattern="nearest_neighbor",
        rate=0.08, seed=7, warmup_packets=50, measure_packets=300,
    ),
}


def _load_golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def golden():
    return _load_golden()


@pytest.fixture(scope="module")
def serial_results():
    points = list(GOLDEN_POINTS.values())
    return dict(zip(GOLDEN_POINTS, run_sweep(points, jobs=1, cache=None)))


class TestGoldenReferences:
    def test_specs_unchanged(self, golden):
        """The committed spec must match the in-code spec (else the hash
        keys silently diverge and the reference proves nothing)."""
        for name, point in GOLDEN_POINTS.items():
            assert golden[name]["spec"] == point.spec_dict(), name

    @pytest.mark.parametrize("name", list(GOLDEN_POINTS))
    def test_serial_reproduces_golden_exactly(self, golden, serial_results, name):
        assert serial_results[name].to_dict() == golden[name]["result"], (
            f"{name} diverged from its golden reference; if the simulator "
            "change is intentional, regenerate with "
            "`PYTHONPATH=src python tests/test_golden_runs.py --regen`"
        )

    def test_none_saturated(self, golden):
        """Golden points must sit below saturation: a saturated reference
        would pin drain-truncation artefacts instead of steady state."""
        for name, payload in golden.items():
            assert payload["result"]["saturated"] is False, name
            assert payload["result"]["measured_packets"] == 300, name

    def test_measured_window_is_exact_packet_id_range(self, serial_results):
        """Pins the `_offer_load` injection path: packets are numbered in
        creation order, so the measured ids are exactly the contiguous
        block after warmup."""
        for name, point in GOLDEN_POINTS.items():
            lo = point.warmup_packets
            hi = lo + point.measure_packets
            expected = sum(range(lo, hi))
            assert serial_results[name].packet_id_sum == expected, name


class TestKernelsMatchGolden:
    """All four cycle kernels reproduce the golden payloads exactly.

    The ``kernel`` field is part of the spec (and hence the cache key)
    whenever it is set, so only the ``key`` field of the payload may
    differ from the kernel-free golden reference -- every simulated
    number must be byte-identical.
    """

    @staticmethod
    def _without_key(payload):
        payload = dict(payload)
        del payload["key"]
        return payload

    @pytest.mark.parametrize("kernel", ["naive", "event", "soa", "c"])
    @pytest.mark.parametrize("name", list(GOLDEN_POINTS))
    def test_kernel_override_reproduces_golden(self, golden, name, kernel):
        point = replace(GOLDEN_POINTS[name], kernel=kernel)
        assert point.spec_dict()["kernel"] == kernel
        result = execute_point(point).to_dict()
        assert result["key"] == point.key()
        assert self._without_key(result) == self._without_key(
            golden[name]["result"]
        ), f"{name} diverged under the {kernel} kernel"

    @pytest.mark.parametrize("kernel", ["soa", "c"])
    def test_batch_kernel_process_backend_bit_identical(self, golden, kernel):
        """soa and c through the pool workers still equal the golden
        serial event-kernel reference: kernels x backends all agree
        (each worker process compiles/loads the shared object itself)."""
        points = [replace(p, kernel=kernel) for p in GOLDEN_POINTS.values()]
        results = run_sweep(points, jobs=2, backend="process", cache=None)
        for name, result in zip(GOLDEN_POINTS, results):
            assert not result.from_cache
            assert self._without_key(result.to_dict()) == self._without_key(
                golden[name]["result"]
            ), name

    def test_kernel_omitted_from_spec_when_unset(self):
        """A kernel-free spec serializes exactly as it did before the
        field existed (golden/cache stability), and setting it changes
        the content hash."""
        base = GOLDEN_POINTS["homogeneous-4x4-UR"]
        assert "kernel" not in base.spec_dict()
        assert replace(base, kernel="soa").key() != base.key()
        with pytest.raises(ValueError, match="kernel"):
            replace(base, kernel="vectorized")


class TestProcessBackendMatchesGolden:
    def test_process_backend_bit_identical(self, golden):
        """Two pool workers, same specs: every payload equals the golden
        serial reference, proving process == serial bit for bit."""
        points = list(GOLDEN_POINTS.values())
        results = run_sweep(points, jobs=2, backend="process", cache=None)
        for name, result in zip(GOLDEN_POINTS, results):
            assert not result.from_cache
            assert result.to_dict() == golden[name]["result"], name


class TestStoreBackendMatchesGolden:
    """The durable SQLite store backend (``.sqlite`` cache path) serves
    and stores the golden payloads exactly: store == cache-file == no
    cache, bit for bit, computed or replayed."""

    def test_store_computed_and_replayed_match_golden(self, golden, tmp_path):
        points = list(GOLDEN_POINTS.values())
        store_path = str(tmp_path / "golden.sqlite")
        computed = run_sweep(points, jobs=1, cache=store_path)
        for name, result in zip(GOLDEN_POINTS, computed):
            assert not result.from_cache
            assert result.to_dict() == golden[name]["result"], name
        replayed = run_sweep(points, jobs=1, cache=store_path)
        for name, result in zip(GOLDEN_POINTS, replayed):
            assert result.from_cache
            payload = result.to_dict()
            payload.pop("from_cache", None)
            assert payload == golden[name]["result"], name

    def test_store_and_cache_file_backends_agree(self, tmp_path):
        points = list(GOLDEN_POINTS.values())
        via_cache = run_sweep(points, cache=str(tmp_path / "loose"))
        via_store = run_sweep(points, cache=str(tmp_path / "golden.sqlite"))
        assert [r.to_dict() for r in via_cache] == [
            r.to_dict() for r in via_store
        ]


def _regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        name: {"spec": point.spec_dict(), "result": execute_point(point).to_dict()}
        for name, point in GOLDEN_POINTS.items()
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
