"""Unit tests for router and network configuration records."""

import pytest

from repro.noc.config import (
    BASELINE_FLIT_WIDTH,
    HETERO_FLIT_WIDTH,
    MESH_PORTS,
    NARROW_LINK_WIDTH,
    WIDE_LINK_WIDTH,
    NetworkConfig,
    RouterConfig,
    baseline_router,
    big_router,
    big_router_buffer_only,
    big_router_paper_mode,
    router_config_summary,
    small_router,
    small_router_buffer_only,
    small_router_paper_mode,
)


class TestRouterConfig:
    def test_baseline_defaults(self):
        config = baseline_router()
        assert config.num_vcs == 3
        assert config.buffer_depth == 5
        assert config.flit_width == 192
        assert config.link_width == 192
        assert config.kind == "baseline"
        assert config.lanes == 1

    def test_small_router(self):
        config = small_router()
        assert (config.num_vcs, config.flit_width, config.link_width) == (2, 128, 128)
        assert config.lanes == 1

    def test_big_router_has_two_lanes(self):
        config = big_router()
        assert (config.num_vcs, config.flit_width, config.link_width) == (6, 128, 256)
        assert config.lanes == 2

    def test_buffer_only_variants_keep_baseline_width(self):
        assert small_router_buffer_only().flit_width == BASELINE_FLIT_WIDTH
        assert big_router_buffer_only().link_width == BASELINE_FLIT_WIDTH
        assert big_router_buffer_only().num_vcs == 6

    def test_paper_mode_hardware_widths(self):
        small = small_router_paper_mode()
        big = big_router_paper_mode()
        # Simulation widths follow baseline flit accounting...
        assert small.flit_width == BASELINE_FLIT_WIDTH
        assert big.lanes == 2
        # ...but the power model sees the physical datapath.
        assert small.hw_flit_width == HETERO_FLIT_WIDTH
        assert small.hw_link_width == NARROW_LINK_WIDTH
        assert big.hw_link_width == WIDE_LINK_WIDTH

    def test_hw_widths_default_to_simulation_widths(self):
        config = baseline_router()
        assert config.hw_flit_width == config.flit_width
        assert config.hw_link_width == config.link_width

    def test_buffer_bits_matches_table1(self):
        # 3 VCs x 5 ports x 5 deep x 192 b = 14,400 bits per router.
        assert baseline_router().buffer_bits(MESH_PORTS) == 14_400
        assert small_router().buffer_bits(MESH_PORTS) == 6_400
        assert big_router().buffer_bits(MESH_PORTS) == 19_200

    def test_paper_mode_buffer_bits_use_hardware_width(self):
        assert small_router_paper_mode().buffer_bits(MESH_PORTS) == 6_400
        assert big_router_paper_mode().buffer_bits(MESH_PORTS) == 19_200

    def test_rejects_bad_vcs(self):
        with pytest.raises(ValueError):
            RouterConfig(num_vcs=0)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            RouterConfig(buffer_depth=0)

    def test_rejects_link_not_multiple_of_flit(self):
        with pytest.raises(ValueError):
            RouterConfig(flit_width=192, link_width=256)

    def test_summary_counts_kinds(self):
        configs = {0: big_router(), 1: small_router(), 2: small_router()}
        assert router_config_summary(configs) == {"big": 1, "small": 2}


class TestNetworkConfig:
    def test_defaults(self):
        config = NetworkConfig()
        assert config.router_pipeline_stages == 2
        assert config.link_delay == 1
        assert config.frequency_ghz == pytest.approx(2.20)

    def test_cycle_time(self):
        assert NetworkConfig(frequency_ghz=2.0).cycle_time_ns == pytest.approx(0.5)

    def test_zero_load_hop_cycles(self):
        assert NetworkConfig().zero_load_hop_cycles() == 3

    def test_with_frequency(self):
        config = NetworkConfig().with_frequency(2.07)
        assert config.frequency_ghz == pytest.approx(2.07)
        assert config.link_delay == 1

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            NetworkConfig(router_pipeline_stages=0)
        with pytest.raises(ValueError):
            NetworkConfig(link_delay=0)
        with pytest.raises(ValueError):
            NetworkConfig(credit_delay=-1)
        with pytest.raises(ValueError):
            NetworkConfig(frequency_ghz=0.0)
