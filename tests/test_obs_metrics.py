"""Metrics registry semantics and the kernel metrics observer.

The registry is a flat (name, labels) namespace of counters / gauges /
histograms; :class:`~repro.obs.metrics.KernelMetrics` populates one from
kernel events.  The headline invariant -- total link-flit crossings equal
``sum(num_flits * hops)`` over delivered packets once the network drains
-- gets its own exhaustive treatment in ``test_obs_attribution.py``; here
we check the instruments themselves and the whole-run accounting.
"""

import json
import random

import pytest

from repro.core.layouts import build_network, layout_by_name
from repro.noc.flit import reset_packet_ids
from repro.obs.metrics import Histogram, KernelMetrics, MetricsRegistry


def _drive(net, seed=5, cycles=150, rate=0.1):
    rng = random.Random(seed)
    num_nodes = net.topology.num_nodes
    for _ in range(cycles):
        for node in range(num_nodes):
            if rng.random() < rate:
                dst = rng.randrange(num_nodes)
                if dst != node:
                    net.enqueue(net.make_packet(node, dst))
        net.step()
    net.drain()


class TestRegistry:
    def test_counter_identity_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("flits", router=1, port=2)
        b = reg.counter("flits", port=2, router=1)  # label order irrelevant
        c = reg.counter("flits", router=1, port=3)
        assert a is b and a is not c
        a.inc()
        a.value += 2
        assert b.value == 3 and c.value == 0
        assert len(reg) == 2

    def test_gauge_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("occupancy")
        g.set(17)
        assert reg.gauge("occupancy").value == 17

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x", (1.0, 2.0))

    def test_snapshot_rows(self):
        reg = MetricsRegistry()
        reg.counter("b", router=1).inc(5)
        reg.gauge("a").set(2.5)
        rows = reg.snapshot()
        assert [r["name"] for r in rows] == ["a", "b"]  # sorted
        assert rows[0] == {"name": "a", "labels": {}, "kind": "gauge",
                           "value": 2.5}
        assert rows[1]["labels"] == {"router": 1}
        assert rows[1]["value"] == 5

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc(4)
        path = tmp_path / "reg.json"
        reg.write_json(path)
        assert json.loads(path.read_text())[0]["value"] == 4


class TestHistogram:
    def test_bucketing_and_stats(self):
        h = Histogram((10.0, 20.0))
        for v in (5, 10, 11, 25):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1]  # <=10, <=20, overflow
        assert h.count == 4
        assert h.min == 5 and h.max == 25
        assert h.mean == pytest.approx(51 / 4)

    def test_empty_mean_is_zero(self):
        assert Histogram((1.0,)).mean == 0.0

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram((5.0, 2.0))

    def test_to_dict_round_trips_json(self):
        h = Histogram((2.0,))
        h.observe(1)
        assert json.loads(json.dumps(h.to_dict()))["count"] == 1


class TestKernelMetrics:
    def _run(self, size=3, **drive):
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", size))
        metrics = KernelMetrics(net, sample_every=8)
        net.attach_observer(metrics)
        _drive(net, **drive)
        return net, metrics

    def test_sample_every_validated(self):
        net = build_network(layout_by_name("baseline", 2))
        with pytest.raises(ValueError):
            KernelMetrics(net, sample_every=0)

    def test_whole_run_accounting(self):
        net, metrics = self._run()
        snap = metrics.snapshot()
        # Drained and fault-free: everything injected was delivered and
        # every delivered flit's link crossings are accounted for.
        assert snap["packets_delivered"] == snap["packets_offered"] > 0
        assert snap["flits_injected"] == snap["flits_delivered"] > 0
        assert snap["conserved"] is True
        assert metrics.conserved is True
        assert snap["link_flits_total"] == snap["expected_link_flits"]
        assert metrics.cycles == net.cycle

    def test_pair_matrix_consistent_with_totals(self):
        _, metrics = self._run(seed=7)
        snap = metrics.snapshot()
        assert sum(metrics.pair_packets().values()) == snap["packets_delivered"]
        assert sum(metrics.pair_flits().values()) == snap["flits_delivered"]
        assert metrics._latency_hist.count == snap["packets_delivered"]

    def test_link_and_vc_views_agree(self):
        _, metrics = self._run(seed=9)
        # Every link flit came from a switch grant on the same (router,
        # port); ejection grants (vc == -1) never cross a link.
        grants_by_link = {}
        for (router, port, vc), n in metrics.vc_grants().items():
            if vc >= 0:
                key = (router, port)
                grants_by_link[key] = grants_by_link.get(key, 0) + n
        assert grants_by_link == metrics.link_flits()

    def test_link_busy_bounded_by_cycles(self):
        _, metrics = self._run(seed=3)
        for key, busy in metrics.link_busy().items():
            assert 0 < busy <= metrics.cycles
            # A busy cycle moves at least one flit over the link.
            assert busy <= metrics.link_flits()[key]

    def test_contention_counters_are_deltas_since_attach(self):
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 3))
        _drive(net, seed=2, cycles=80)  # un-instrumented prefix
        metrics = KernelMetrics(net)
        net.attach_observer(metrics)
        rows = metrics.router_contention()
        assert all(
            r["credit_stalls"] == 0 and r["arbitration_conflicts"] == 0
            and r["buffer_writes"] == 0
            for r in rows
        ), "pre-attach activity leaked into the delta"
        _drive(net, seed=4, cycles=120, rate=0.2)
        rows = metrics.router_contention()
        assert sum(r["buffer_writes"] for r in rows) > 0

    def test_occupancy_samples_taken(self):
        _, metrics = self._run(seed=1)
        assert metrics._occupancy_hist.count > 0
        assert metrics._active_hist.count == metrics._occupancy_hist.count

    def test_write_json(self, tmp_path):
        _, metrics = self._run()
        path = tmp_path / "metrics.json"
        metrics.write_json(path)
        snap = json.loads(path.read_text())
        assert snap["conserved"] is True
        assert snap["link_flits"] == sorted(
            snap["link_flits"], key=lambda r: (r["router"], r["port"])
        )
