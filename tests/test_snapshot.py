"""Checkpoint/restore must be bit-identical, and corruption detectable.

The crash-safety contract of :mod:`repro.noc.snapshot`:

* restoring a snapshot and continuing reproduces an uninterrupted run
  *exactly* -- same deep per-cycle state digests (the differential
  harness from ``test_kernel_differential``), same delivered-packet
  records, for all four cycle kernels;
* the binary container detects truncation, bit flips, bad magic and
  format-version skew loudly (``SnapshotCorrupt`` /
  ``SnapshotVersionMismatch``) instead of half-restoring;
* the runner integration (``run_synthetic(checkpoint_every=...)``)
  perturbs nothing, resumes bit-identically mid-run, and refuses
  snapshots taken under different run parameters;
* ``execute_point`` auto-resumes from its checkpoint and falls back to
  scratch -- still bit-identically -- when the checkpoint is damaged.
"""

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.layouts import build_network, layout_by_name
from repro.exec.point import SweepPoint, checkpoint_path_for, execute_point
from repro.noc.config import NetworkConfig
from repro.noc.flit import packet_id_marker, reset_packet_ids, seed_packet_ids
from repro.noc.snapshot import (
    SNAPSHOT_VERSION,
    SimSnapshot,
    SnapshotCorrupt,
    SnapshotError,
    SnapshotVersionMismatch,
    capture,
    dumps,
    load_snapshot,
    loads,
    save_snapshot,
)
from repro.traffic.patterns import pattern_by_name
from repro.traffic.runner import run_synthetic
from tests.test_kernel_differential import _digest

KERNELS = NetworkConfig.KERNELS  # ("event", "soa", "naive")


def _fresh_network(kernel, mesh_size=4, layout="baseline"):
    reset_packet_ids()
    net = build_network(layout_by_name(layout, mesh_size))
    net.use_kernel(kernel)
    return net


def _drive(net, rng, cycles, rate, record=None):
    """Inject seeded random traffic and step; returns per-cycle digests."""
    digests = []
    num_nodes = net.topology.num_nodes
    for _ in range(cycles):
        for node in range(num_nodes):
            if rng.random() < rate:
                dst = rng.randrange(num_nodes)
                if dst != node:
                    net.enqueue(net.make_packet(node, dst, payload_bits=256))
        net.step()
        digests.append(_digest(net))
        if record is not None:
            record.append(_digest(net))
    return digests


class TestPacketIdMarker:
    def test_marker_is_a_peek(self):
        reset_packet_ids()
        from repro.noc.flit import Packet

        Packet(src=0, dst=1, num_flits=1, created_at=0)
        marker = packet_id_marker()
        assert marker == 1
        # The marker consumed nothing: the next issued id is the marker.
        pkt = Packet(src=0, dst=1, num_flits=1, created_at=0)
        assert pkt.packet_id == marker

    def test_seed_rewinds(self):
        from repro.noc.flit import Packet

        seed_packet_ids(41)
        assert Packet(src=0, dst=1, num_flits=1, created_at=0).packet_id == 41

    def test_seed_rejects_negative(self):
        with pytest.raises(ValueError):
            seed_packet_ids(-1)
        reset_packet_ids()


class TestContainer:
    def _snapshot(self):
        net = _fresh_network("event")
        rng = random.Random(3)
        _drive(net, rng, 20, 0.1)
        return capture(net, rng=rng, extra={"phase": "load"})

    def test_dumps_loads_round_trip(self):
        blob = dumps(self._snapshot())
        snapshot = loads(blob)
        assert isinstance(snapshot, SimSnapshot)
        assert snapshot.extra == {"phase": "load"}
        assert snapshot.network.cycle == 20

    def test_save_load_file_round_trip(self, tmp_path):
        path = tmp_path / "sim.ckpt"
        save_snapshot(self._snapshot(), path)
        assert load_snapshot(path).network.cycle == 20
        # No temp files left behind by the atomic write.
        assert [p.name for p in tmp_path.iterdir()] == ["sim.ckpt"]

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "sim.ckpt"
        save_snapshot(self._snapshot(), path)
        data = path.read_bytes()
        for keep in (0, 10, len(data) // 2, len(data) - 1):
            with pytest.raises(SnapshotCorrupt):
                loads(data[:keep])

    def test_bit_flips_detected(self, tmp_path):
        blob = dumps(self._snapshot())
        rng = random.Random(7)
        for _ in range(8):
            damaged = bytearray(blob)
            offset = rng.randrange(len(damaged))
            damaged[offset] ^= 1 << rng.randrange(8)
            with pytest.raises(SnapshotCorrupt):
                loads(bytes(damaged))

    def test_bad_magic_detected(self):
        blob = dumps(self._snapshot())
        with pytest.raises(SnapshotCorrupt, match="magic"):
            loads(b"NOTASNAP" + blob[8:])

    def test_version_skew_detected(self):
        import struct

        blob = bytearray(dumps(self._snapshot()))
        blob[8:12] = struct.pack(">I", SNAPSHOT_VERSION + 1)
        with pytest.raises(SnapshotVersionMismatch):
            loads(bytes(blob))

    def test_wrong_payload_type_detected(self):
        import hashlib
        import pickle
        import struct

        payload = pickle.dumps({"not": "a snapshot"}, protocol=4)
        blob = (
            struct.pack(
                ">8sIQ32s",
                b"RNOCSNAP",
                SNAPSHOT_VERSION,
                len(payload),
                hashlib.sha256(payload).digest(),
            )
            + payload
        )
        with pytest.raises(SnapshotCorrupt, match="SimSnapshot"):
            loads(blob)

    def test_observer_refused(self):
        from repro.obs.hooks import Observer

        net = _fresh_network("event")
        net.attach_observer(Observer())
        with pytest.raises(SnapshotError, match="observer"):
            capture(net)


class TestBitIdenticalResume:
    """The tentpole property, differentially, across all kernels."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(
        kernel=st.sampled_from(KERNELS),
        mesh_size=st.sampled_from([3, 4]),
        layout=st.sampled_from(["baseline", "center+BL"]),
        rate=st.sampled_from([0.05, 0.12]),
        seed=st.integers(min_value=0, max_value=2**16),
        split=st.integers(min_value=5, max_value=40),
    )
    def test_capture_continue_equals_uninterrupted(
        self, tmp_path, kernel, mesh_size, layout, rate, seed, split
    ):
        tail_cycles = 30
        # Uninterrupted run: split + tail cycles of seeded traffic.
        net = _fresh_network(kernel, mesh_size, layout)
        rng = random.Random(seed)
        head = _drive(net, rng, split, rate)
        expected_tail = _drive(net, rng, tail_cycles, rate)

        # Interrupted run: same head, checkpoint to disk, then scramble
        # every piece of process state the snapshot claims to restore.
        net = _fresh_network(kernel, mesh_size, layout)
        rng = random.Random(seed)
        head2 = _drive(net, rng, split, rate)
        assert head2 == head
        path = tmp_path / f"{kernel}.ckpt"
        save_snapshot(capture(net, rng=rng), path)
        seed_packet_ids(999_983)  # a restored process starts cold
        del net, rng

        snapshot = load_snapshot(path)
        snapshot.restore_packet_ids()
        restored_tail = _drive(
            snapshot.network, snapshot.make_rng(), tail_cycles, rate
        )
        assert restored_tail == expected_tail

    def test_capture_does_not_perturb_the_captured_run(self):
        for kernel in KERNELS:
            net = _fresh_network(kernel)
            rng = random.Random(5)
            plain = _drive(net, rng, 25, 0.1) + _drive(net, rng, 25, 0.1)

            net = _fresh_network(kernel)
            rng = random.Random(5)
            first = _drive(net, rng, 25, 0.1)
            dumps(capture(net, rng=rng))  # snapshot mid-run, keep going
            second = _drive(net, rng, 25, 0.1)
            assert first + second == plain, kernel


class TestRunnerCheckpointing:
    POINT = dict(
        rate=0.08, warmup_packets=15, measure_packets=40, seed=11
    )

    def _network(self, kernel="event"):
        return _fresh_network(kernel)

    def _summary(self, result):
        return (
            [tuple(vars(record).values()) for record in result.stats.records],
            result.total_cycles,
            result.measured_packets,
            result.saturated,
            result.unfinished_measured_packets,
        )

    def test_checkpointed_run_is_unperturbed(self, tmp_path):
        net = self._network()
        pattern = pattern_by_name("uniform_random", net.topology)
        plain = run_synthetic(net, pattern, **self.POINT)

        net = self._network()
        checkpointed = run_synthetic(
            net,
            pattern_by_name("uniform_random", net.topology),
            checkpoint_every=20,
            checkpoint_path=tmp_path / "run.ckpt",
            **self.POINT,
        )
        assert (tmp_path / "run.ckpt").exists()
        assert self._summary(checkpointed) == self._summary(plain)

    def test_resume_from_checkpoint_matches(self, tmp_path):
        net = self._network()
        pattern = pattern_by_name("uniform_random", net.topology)
        plain = run_synthetic(net, pattern, **self.POINT)

        path = tmp_path / "run.ckpt"
        net = self._network()
        run_synthetic(
            net,
            pattern_by_name("uniform_random", net.topology),
            checkpoint_every=25,
            checkpoint_path=path,
            **self.POINT,
        )
        seed_packet_ids(424_243)
        resumed_net = _fresh_network("event")  # ignored: snapshot wins
        resumed = run_synthetic(
            resumed_net,
            pattern_by_name("uniform_random", resumed_net.topology),
            resume_from=path,
            **self.POINT,
        )
        assert self._summary(resumed) == self._summary(plain)

    def test_resume_rejects_mismatched_spec(self, tmp_path):
        path = tmp_path / "run.ckpt"
        net = self._network()
        run_synthetic(
            net,
            pattern_by_name("uniform_random", net.topology),
            checkpoint_every=25,
            checkpoint_path=path,
            **self.POINT,
        )
        other = dict(self.POINT, rate=0.2)
        net = self._network()
        with pytest.raises(SnapshotError, match="different run"):
            run_synthetic(
                net,
                pattern_by_name("uniform_random", net.topology),
                resume_from=path,
                **other,
            )

    def test_checkpoint_every_requires_path(self):
        net = self._network()
        with pytest.raises(ValueError, match="checkpoint_path"):
            run_synthetic(
                net,
                pattern_by_name("uniform_random", net.topology),
                checkpoint_every=10,
                **self.POINT,
            )


class TestExecutePointCheckpointing:
    POINT = SweepPoint(
        layout="baseline",
        mesh_size=4,
        topology="mesh",
        flit_mode="paper",
        pattern="uniform_random",
        rate=0.08,
        seed=7,
        warmup_packets=15,
        measure_packets=40,
    )

    def test_checkpointed_execution_matches_and_cleans_up(self, tmp_path):
        expected = execute_point(self.POINT).to_dict()
        got = execute_point(
            self.POINT, checkpoint_every=20, checkpoint_dir=tmp_path
        ).to_dict()
        assert got == expected
        assert not checkpoint_path_for(self.POINT, tmp_path).exists()

    def test_interrupted_point_resumes_bit_identically(
        self, tmp_path, monkeypatch
    ):
        from repro.chaos.sites import reset_chaos_sites, write_site_plan

        expected = execute_point(self.POINT).to_dict()
        plan = write_site_plan(
            tmp_path / "plan.json",
            {"runner.checkpoint": {"exc": "OSError", "calls": [1]}},
        )
        monkeypatch.setenv("REPRO_CHAOS_PLAN", str(plan))
        reset_chaos_sites()
        with pytest.raises(OSError):
            execute_point(
                self.POINT, checkpoint_every=20, checkpoint_dir=tmp_path
            )
        monkeypatch.delenv("REPRO_CHAOS_PLAN")
        checkpoint = checkpoint_path_for(self.POINT, tmp_path)
        assert checkpoint.exists()
        resumed = execute_point(
            self.POINT, checkpoint_every=20, checkpoint_dir=tmp_path
        ).to_dict()
        assert resumed == expected
        assert not checkpoint.exists()

    def test_corrupt_checkpoint_falls_back_to_scratch(
        self, tmp_path, monkeypatch
    ):
        from repro.chaos.corrupt import flip_bits
        from repro.chaos.sites import reset_chaos_sites, write_site_plan

        expected = execute_point(self.POINT).to_dict()
        plan = write_site_plan(
            tmp_path / "plan.json",
            {"runner.checkpoint": {"exc": "OSError", "calls": [1]}},
        )
        monkeypatch.setenv("REPRO_CHAOS_PLAN", str(plan))
        reset_chaos_sites()
        with pytest.raises(OSError):
            execute_point(
                self.POINT, checkpoint_every=20, checkpoint_dir=tmp_path
            )
        monkeypatch.delenv("REPRO_CHAOS_PLAN")
        flip_bits(checkpoint_path_for(self.POINT, tmp_path), seed=1, flips=3)
        recovered = execute_point(
            self.POINT, checkpoint_every=20, checkpoint_dir=tmp_path
        ).to_dict()
        assert recovered == expected
