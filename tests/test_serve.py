"""The sweep job server: queue semantics, HTTP API, dedup, bit-identity.

What must hold:

* results fetched through the server are bit-identical to a serial
  local ``run_sweep`` of the same points -- the engine invariant carried
  across the HTTP boundary;
* submission is content-addressed: an equivalent sweep joins the
  existing job (queued, running or done) instead of recomputing, and
  points any earlier job committed serve from the store;
* the queue claims by priority then FIFO, one worker per job, and
  crash recovery requeues ``running`` rows without duplicating work;
* failures are captured per point (job ``failed``, error recorded) and
  the client reconstructs engine-style NaN results;
* the engine's server-facing hooks work standalone: ``cancel_event``
  aborts between points, a ``submit`` hook reroutes whole sweeps, and
  the per-point timeout degrades safely off the main thread.

The SIGKILL/restart scenario lives in ``tests/test_serve_chaos.py``
(driving ``repro.serve.smoke``); this file stays in-process.
"""

import threading
import time

import pytest

from repro.exec.engine import SweepCancelled, run_sweep, sweep_points
from repro.exec.store import ResultStore
from repro.serve import (
    JobQueue,
    ServeClient,
    ServeError,
    SweepServer,
    install_submit,
    job_id_for,
)


def _points(n=2, seed=7):
    rates = [0.04 + 0.02 * i for i in range(n)]
    return sweep_points(
        ["baseline"],
        "uniform_random",
        rates,
        seed=seed,
        warmup_packets=10,
        measure_packets=30,
        mesh_size=4,
    )


def _comparable(results):
    rows = []
    for result in results:
        row = result.to_dict()
        row.pop("from_cache", None)
        rows.append(row)
    return rows


@pytest.fixture(autouse=True)
def _no_ambient_defaults(monkeypatch):
    """Pin engine defaults so the environment can't leak into tests."""
    monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CHAOS_KILL", raising=False)
    import repro.exec.engine as engine_mod

    saved = engine_mod._defaults
    engine_mod._defaults = engine_mod.ExecDefaults()
    yield
    engine_mod._defaults = saved


class TestJobQueue:
    def test_submit_is_content_addressed(self, tmp_path):
        queue = JobQueue(tmp_path / "s.sqlite")
        points = _points(2)
        job_id, deduped = queue.submit(points, tag="fig07")
        assert job_id == job_id_for(points, "fig07")
        assert not deduped
        again, deduped = queue.submit(points, tag="fig07")
        assert again == job_id and deduped
        # A different tag is a different job.
        other, deduped = queue.submit(points, tag="fig09")
        assert other != job_id and not deduped
        assert queue.counts() == {"queued": 2}

    def test_submit_journals_points(self, tmp_path):
        queue = JobQueue(tmp_path / "s.sqlite")
        points = _points(2)
        job_id, _ = queue.submit(points, tag="fig07")
        job = queue.get(job_id)
        assert job["progress"] == {"total": 2, "committed": 0, "pending": 2}
        assert job["num_points"] == 2
        assert job["point_keys"] == [p.key() for p in points]

    def test_empty_job_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one point"):
            JobQueue(tmp_path / "s.sqlite").submit([])

    def test_claim_priority_then_fifo(self, tmp_path):
        queue = JobQueue(tmp_path / "s.sqlite")
        low_a, _ = queue.submit(_points(1, seed=1), priority=0)
        high, _ = queue.submit(_points(1, seed=2), priority=5)
        low_b, _ = queue.submit(_points(1, seed=3), priority=0)
        claimed = [queue.claim("w")["job_id"] for _ in range(3)]
        assert claimed == [high, low_a, low_b]
        assert queue.claim("w") is None

    def test_claim_marks_running_and_finish_guards(self, tmp_path):
        queue = JobQueue(tmp_path / "s.sqlite")
        job_id, _ = queue.submit(_points(1))
        job = queue.claim("worker-0")
        assert job["job_id"] == job_id
        assert job["state"] == "running" and job["worker"] == "worker-0"
        assert job["points"] == [p.spec_dict() for p in _points(1)]
        queue.finish(job_id, "done")
        assert queue.get(job_id)["state"] == "done"
        # finish() only transitions running rows: a done job stays done.
        queue.finish(job_id, "failed", error="late")
        assert queue.get(job_id)["state"] == "done"
        with pytest.raises(ValueError, match="terminal"):
            queue.finish(job_id, "queued")

    def test_failed_job_requeues_in_place(self, tmp_path):
        queue = JobQueue(tmp_path / "s.sqlite")
        job_id, _ = queue.submit(_points(1))
        queue.claim("w")
        queue.finish(job_id, "failed", error="boom")
        again, deduped = queue.submit(_points(1))
        assert again == job_id and not deduped
        job = queue.get(job_id)
        assert job["state"] == "queued"
        assert job["error"] is None and job["worker"] is None

    def test_requeue_running_recovers_orphans(self, tmp_path):
        queue = JobQueue(tmp_path / "s.sqlite")
        job_id, _ = queue.submit(_points(1))
        queue.claim("w")
        assert queue.get(job_id)["state"] == "running"
        # Simulate the post-SIGKILL startup path.
        assert queue.requeue_running() == 1
        job = queue.get(job_id)
        assert job["state"] == "queued" and job["worker"] is None
        assert queue.requeue_running() == 0

    def test_cancel_only_flips_queued(self, tmp_path):
        queue = JobQueue(tmp_path / "s.sqlite")
        job_id, _ = queue.submit(_points(1))
        assert queue.cancel(job_id) == "cancelled"
        other, _ = queue.submit(_points(1, seed=9))
        queue.claim("w")
        assert queue.cancel(other) == "running"
        assert queue.cancel("no-such-job") is None

    def test_list_jobs_recent_first_with_state_filter(self, tmp_path):
        queue = JobQueue(tmp_path / "s.sqlite")
        first, _ = queue.submit(_points(1, seed=1))
        second, _ = queue.submit(_points(1, seed=2))
        assert [j["job_id"] for j in queue.list_jobs()] == [second, first]
        queue.claim("w")
        assert [j["job_id"] for j in queue.list_jobs(state="running")] == [
            first
        ]

    def test_results_for_reports_missing_rows(self, tmp_path):
        queue = JobQueue(tmp_path / "s.sqlite")
        points = _points(2)
        job_id, _ = queue.submit(points)
        [result] = run_sweep(points[:1], cache=None)
        queue.store.put(points[0], result)
        rows = queue.results_for(job_id)
        assert rows[0].to_dict() == result.to_dict()
        assert rows[1] is None
        assert queue.results_for("no-such-job") is None


@pytest.fixture
def server(tmp_path):
    instance = SweepServer(tmp_path / "serve.sqlite", port=0, workers=2)
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture
def client(server):
    return ServeClient(f"http://127.0.0.1:{server.port}")


class TestServerAPI:
    def test_health_and_metrics(self, server, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["schema_version"] == 2
        assert health["workers"] == 2
        metrics = client.metrics()
        assert set(metrics) == {"queue", "derived", "instruments"}
        assert "worker_utilization" in metrics["derived"]

    def test_served_results_bit_identical_to_serial(self, server, client):
        points = _points(2)
        expected = _comparable(run_sweep(points, cache=None))
        submitted = client.submit(points, tag="fig07")
        assert not submitted["deduped"]
        job = client.wait(submitted["job_id"], timeout=120)
        assert job["state"] == "done"
        assert job["progress"] == {"total": 2, "committed": 2, "pending": 0}
        assert _comparable(client.results(submitted["job_id"])) == expected

    def test_resubmission_joins_finished_job(self, server, client):
        points = _points(1)
        first = client.submit(points, tag="t")
        client.wait(first["job_id"], timeout=120)
        second = client.submit(points, tag="t")
        assert second["deduped"] and second["job_id"] == first["job_id"]
        instruments = {
            row["name"]: row for row in client.metrics()["instruments"]
            if not row["labels"]
        }
        assert instruments["serve.jobs_deduped"]["value"] == 1
        assert instruments["serve.points_executed"]["value"] == 1

    def test_overlapping_points_serve_from_store(self, server, client):
        points = _points(3)
        first = client.submit(points[:2], tag="a")
        client.wait(first["job_id"], timeout=120)
        # The second job shares points[1]; only points[2] may compute.
        second = client.submit(points[1:], tag="b")
        assert not second["deduped"]
        client.wait(second["job_id"], timeout=120)
        expected = _comparable(run_sweep(points[1:], cache=None))
        assert _comparable(client.results(second["job_id"])) == expected
        instruments = {
            row["name"]: row for row in client.metrics()["instruments"]
            if not row["labels"]
        }
        assert instruments["serve.points_executed"]["value"] == 3
        assert instruments["serve.point_cache_hits"]["value"] >= 1

    def test_event_stream_narrates_the_job(self, server, client):
        points = _points(2)
        submitted = client.submit(points)
        client.wait(submitted["job_id"], timeout=120)
        events = list(client.stream_events(submitted["job_id"]))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "snapshot"
        assert kinds[-1] == "end"
        assert "job_started" in kinds and "job_done" in kinds
        point_events = [e for e in events if e["event"] == "point"]
        assert [e["seq"] for e in point_events] == [0, 1]
        assert all(e["source"] == "computed" for e in point_events)
        assert all(e["error"] is None for e in point_events)
        spans = [e for e in events if e["event"] == "span"]
        assert len(spans) == 2

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError, match="404"):
            client.job("deadbeef")
        with pytest.raises(ServeError, match="404"):
            client.cancel("deadbeef")

    def test_bad_submission_is_400(self, client):
        with pytest.raises(ServeError, match="400"):
            client._request("POST", "/jobs", {"points": []})
        with pytest.raises(ServeError, match="400"):
            client._request(
                "POST", "/jobs", {"points": [{"no_such_field": 1}]}
            )

    def test_result_before_terminal_is_409(self, server, client):
        # Stall the queue with an artificial running job so a queued
        # job's result can be asked for deterministically.
        queue = JobQueue(server.store_path)
        points = _points(1)
        job_id, _ = queue.submit(points)
        queue.store.close()
        # The workers may have claimed it already; either way the job is
        # not terminal until waited on, so poll the error path quickly.
        try:
            client._request("GET", f"/jobs/{job_id}/result")
        except ServeError as exc:
            assert "409" in str(exc)
        client.wait(job_id, timeout=120)
        assert client.results(job_id)

    def test_cancel_queued_job(self, tmp_path, monkeypatch):
        # Pin the single worker inside the blocker's point so the victim
        # is deterministically still queued when cancelled.
        import repro.exec.engine as engine_mod

        release = threading.Event()
        real = engine_mod.execute_point

        def gated(point, *args, **kwargs):
            if point.seed == 11:
                release.wait(timeout=60)
            return real(point, *args, **kwargs)

        monkeypatch.setattr(engine_mod, "execute_point", gated)
        server = SweepServer(tmp_path / "c.sqlite", port=0, workers=1)
        server.start()
        try:
            client = ServeClient(f"http://127.0.0.1:{server.port}")
            blocker = client.submit(_points(1, seed=11), priority=5)
            victim = client.submit(_points(1, seed=12), priority=0)
            cancelled = client.cancel(victim["job_id"])
            assert cancelled["state"] == "cancelled"
            release.set()
            job = client.wait(victim["job_id"], timeout=120)
            assert job["state"] == "cancelled"
            assert client.wait(blocker["job_id"], timeout=120)[
                "state"
            ] == "done"
        finally:
            release.set()
            server.stop()

    def test_failed_points_captured_not_lost(
        self, server, client, monkeypatch
    ):
        import repro.exec.engine as engine_mod

        real = engine_mod.execute_point

        def explode(point, *args, **kwargs):
            if point.rate == 0.04:
                raise RuntimeError("injected fault")
            return real(point, *args, **kwargs)

        monkeypatch.setattr(engine_mod, "execute_point", explode)
        points = _points(2)  # rates 0.04 (fails) and 0.06 (succeeds)
        submitted = client.submit(points, tag="faulty")
        job = client.wait(submitted["job_id"], timeout=120)
        assert job["state"] == "failed"
        assert "injected fault" in job["error"]
        assert job["progress"]["committed"] == 1
        results = client.results(submitted["job_id"], points=points)
        assert results[0].error is not None
        assert results[0].latency_cycles != results[0].latency_cycles  # NaN
        assert results[1].error is None
        # Without the points the missing row is an explicit error.
        with pytest.raises(ServeError, match="no result"):
            client.results(submitted["job_id"])
        # Store only holds the good row; the journal shows the gap.
        store = ResultStore(server.store_path)
        assert store.get(points[0]) is None
        assert store.get(points[1]) is not None

    def test_inflight_point_joined_not_raced(
        self, server, client, monkeypatch
    ):
        """Two jobs (different tags) sharing one point, two workers:
        the second worker joins the first's in-flight simulation
        instead of racing it -- the point executes exactly once."""
        import repro.exec.engine as engine_mod

        entered, release = threading.Event(), threading.Event()
        real = engine_mod.execute_point

        def gated(point, *args, **kwargs):
            entered.set()
            release.wait(timeout=60)
            return real(point, *args, **kwargs)

        monkeypatch.setattr(engine_mod, "execute_point", gated)
        points = _points(1)
        first = client.submit(points, tag="a")
        # The leader registers the in-flight key before execute_point
        # runs, so once we are inside it the follower can only join.
        assert entered.wait(timeout=60)
        second = client.submit(points, tag="b")
        assert second["job_id"] != first["job_id"]
        deadline = time.monotonic() + 60
        while server.metrics.point_inflight_joins.value < 1:
            assert time.monotonic() < deadline, "follower never joined"
            time.sleep(0.02)
        release.set()
        assert client.wait(first["job_id"], timeout=120)["state"] == "done"
        assert client.wait(second["job_id"], timeout=120)["state"] == "done"
        assert server.metrics.points_executed.value == 1
        assert server.metrics.point_inflight_joins.value == 1
        assert _comparable(client.results(first["job_id"])) == _comparable(
            client.results(second["job_id"])
        )

    def test_client_run_sweep_is_drop_in(self, server, client):
        points = _points(2)
        expected = _comparable(run_sweep(points, cache=None))
        assert _comparable(client.run_sweep(points)) == expected


class TestCrashRecovery:
    def test_restart_requeues_and_completes(self, tmp_path):
        """An in-process rehearsal of the smoke scenario: stop() leaves
        the claimed job ``running`` (crash semantics), the next start
        requeues it and completes without recomputing committed points.
        """
        store_path = tmp_path / "crash.sqlite"
        points = _points(3)
        expected = _comparable(run_sweep(points, cache=None))
        # Pre-commit the first point, as if a crash followed it.
        queue = JobQueue(store_path)
        job_id, _ = queue.submit(points, tag="crash")
        queue.claim("w0")
        [first] = run_sweep(points[:1], cache=None)
        queue.store.put(points[0], first)
        queue.store.mark_committed(job_id, points[0])
        queue.store.close()

        server = SweepServer(store_path, port=0, workers=1)
        server.start()
        try:
            client = ServeClient(f"http://127.0.0.1:{server.port}")
            job = client.wait(job_id, timeout=120)
            assert job["state"] == "done"
            assert job["progress"]["committed"] == 3
            assert _comparable(client.results(job_id)) == expected
            instruments = {
                row["name"]: row
                for row in client.metrics()["instruments"]
                if not row["labels"]
            }
            # The pre-crash point replayed from the store.
            assert instruments["serve.points_executed"]["value"] == 2
            assert instruments["serve.point_cache_hits"]["value"] == 1
        finally:
            server.stop()


class TestRunAllFlags:
    def test_list_enumerates_harnesses_and_tags(self, capsys):
        from repro.experiments.run_all import HARNESSES, main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "sweep tag" in out
        for name in HARNESSES:
            assert name in out

    def test_submit_requires_reachable_server(self, capsys):
        from repro.experiments.run_all import main

        assert main(["--submit", "http://127.0.0.1:1", "table1"]) == 2
        assert "--submit" in capsys.readouterr().out

    def test_submit_flag_needs_a_value(self, capsys):
        from repro.experiments.run_all import main

        assert main(["--submit"]) == 2
        assert "needs a value" in capsys.readouterr().out


class TestEngineHooks:
    def test_cancel_event_aborts_between_points(self):
        points = _points(3)
        seen = []

        class TripAfterOne:
            def is_set(self):
                return len(seen) >= 1

        with pytest.raises(SweepCancelled, match="after 1/3"):
            run_sweep(
                points,
                cache=None,
                progress=lambda p: seen.append(p.done),
                cancel_event=TripAfterOne(),
            )
        assert seen == [1]  # exactly one point ran before the abort

    def test_submit_hook_reroutes_whole_sweep(self):
        points = _points(2)
        expected = run_sweep(points, cache=None)
        calls = []

        def fake_submit(submitted_points, tag=None):
            calls.append((list(submitted_points), tag))
            return list(expected)

        results = run_sweep(points, cache=None, submit=fake_submit)
        assert _comparable(results) == _comparable(expected)
        assert calls == [(points, None)]

    def test_install_submit_configures_engine(self, monkeypatch):
        points = _points(1)
        expected = run_sweep(points, cache=None)
        captured = {}

        def fake_run_sweep(self, pts, tag=None, client=None, **kwargs):
            captured["tag"] = tag
            captured["client"] = client
            return list(expected)

        monkeypatch.setattr(ServeClient, "run_sweep", fake_run_sweep)
        from repro.exec.engine import configure

        install_submit("http://127.0.0.1:1", client="test")
        try:
            results = run_sweep(points, cache=None)
        finally:
            configure(submit=None)
        assert _comparable(results) == _comparable(expected)
        assert captured == {"tag": None, "client": "test"}

    def test_timeout_degrades_off_main_thread(self):
        # SIGALRM only works on the main thread; a worker thread must
        # run the point unenforced instead of crashing on signal().
        points = _points(1)
        box = {}

        def worker():
            box["results"] = run_sweep(points, cache=None, timeout=60.0)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=120)
        assert not thread.is_alive()
        expected = _comparable(run_sweep(points, cache=None))
        assert _comparable(box["results"]) == expected
