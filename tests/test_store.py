"""The durable SQLite result store: parity, atomicity, quarantine, journal.

What must hold:

* drop-in parity with the loose-file cache -- same results bit for bit,
  ``run_sweep`` selects the backend purely from the cache path suffix;
* corrupt rows are quarantined and recomputed, never served and never a
  crash; a corrupt *file* is moved aside and the store starts fresh;
* the sweep journal tracks committed/pending points across interrupted
  sweeps, keyed deterministically so a relaunch re-attaches;
* the migration CLI imports loose cache entries, skipping damaged ones.
"""

import json
import sqlite3

import pytest

from repro.exec.cache import ResultCache
from repro.exec.engine import configure, run_sweep, sweep_points
from repro.exec.store import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    StoreSchemaError,
    is_store_path,
    open_result_backend,
    sweep_id_for,
)


def _points(n=2):
    rates = [0.04 + 0.02 * i for i in range(n)]
    return sweep_points(
        ["baseline"],
        "uniform_random",
        rates,
        seed=7,
        warmup_packets=10,
        measure_packets=30,
        mesh_size=4,
    )


def _comparable(results):
    rows = []
    for result in results:
        row = result.to_dict()
        row.pop("from_cache", None)
        rows.append(row)
    return rows


@pytest.fixture(autouse=True)
def _no_ambient_defaults(monkeypatch):
    """Pin engine defaults so the environment can't leak into tests."""
    monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    import repro.exec.engine as engine_mod

    saved = engine_mod._defaults
    engine_mod._defaults = engine_mod.ExecDefaults()
    yield
    engine_mod._defaults = saved


class TestBackendSelection:
    def test_is_store_path(self):
        assert is_store_path("sweeps.sqlite")
        assert is_store_path("a/b/c.db")
        assert is_store_path("x.SQLITE3")
        assert not is_store_path("plain-directory")
        assert not is_store_path(None)

    def test_open_result_backend(self, tmp_path):
        assert isinstance(
            open_result_backend(tmp_path / "s.sqlite"), ResultStore
        )
        assert isinstance(open_result_backend(tmp_path / "dir"), ResultCache)

    def test_run_sweep_routes_by_suffix(self, tmp_path):
        points = _points(1)
        run_sweep(points, cache=str(tmp_path / "s.sqlite"))
        assert (tmp_path / "s.sqlite").exists()
        assert len(ResultStore(tmp_path / "s.sqlite")) == 1


class TestParityWithCache:
    def test_store_and_cache_results_identical(self, tmp_path):
        points = _points(2)
        expected = _comparable(run_sweep(points, cache=None))
        via_cache = _comparable(
            run_sweep(points, cache=str(tmp_path / "loose"))
        )
        via_store = _comparable(
            run_sweep(points, cache=str(tmp_path / "s.sqlite"))
        )
        assert via_cache == expected
        assert via_store == expected

    def test_hits_are_bit_identical_and_flagged(self, tmp_path):
        points = _points(2)
        first = run_sweep(points, cache=str(tmp_path / "s.sqlite"))
        second = run_sweep(points, cache=str(tmp_path / "s.sqlite"))
        assert all(r.from_cache for r in second)
        assert not any(r.from_cache for r in first)
        assert _comparable(first) == _comparable(second)

    def test_get_put_round_trip(self, tmp_path):
        points = _points(1)
        [result] = run_sweep(points, cache=None)
        store = ResultStore(tmp_path / "s.sqlite")
        assert store.get(points[0]) is None
        store.put(points[0], result)
        assert len(store) == 1
        assert store.get(points[0]).to_dict() == result.to_dict()


class TestCorruption:
    def _seeded_store(self, tmp_path):
        points = _points(2)
        run_sweep(points, cache=str(tmp_path / "s.sqlite"))
        return points, tmp_path / "s.sqlite"

    def test_checksum_mismatch_quarantines_and_recomputes(self, tmp_path):
        points, path = self._seeded_store(tmp_path)
        expected = _comparable(run_sweep(points, cache=None))
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE results SET result = '{\"torn\":' WHERE key = ?",
                (points[0].key(),),
            )
        conn.close()
        with pytest.warns(UserWarning, match="quarantined"):
            recomputed = run_sweep(points, cache=str(path))
        assert _comparable(recomputed) == expected
        quarantined = ResultStore(path).quarantined()
        assert [row["key"] for row in quarantined] == [points[0].key()]
        # The quarantined row was removed from results and recomputed.
        assert len(ResultStore(path)) == 2

    def test_spec_version_skew_quarantines(self, tmp_path):
        points, path = self._seeded_store(tmp_path)
        store = ResultStore(path)
        conn = store._connect()
        row = conn.execute(
            "SELECT spec, result FROM results WHERE key = ?",
            (points[0].key(),),
        ).fetchone()
        from repro.exec.store import _checksum

        with conn:
            conn.execute(
                "UPDATE results SET version = 999, checksum = ? "
                "WHERE key = ?",
                (_checksum(999, row[0], row[1]), points[0].key()),
            )
        with pytest.warns(UserWarning, match="spec version"):
            assert store.get(points[0]) is None

    def test_wal_survives_main_file_damage(self, tmp_path):
        # Damage only the main database file while the WAL sidecar (all
        # recent commits) is intact: SQLite serves every row from the
        # WAL.  This is the crash window the store's WAL mode exists
        # for, so pin it.
        points, path = self._seeded_store(tmp_path)
        assert path.with_name(path.name + "-wal").exists()
        path.write_bytes(b"this is not a sqlite database, sorry")
        store = ResultStore(path)
        assert store.get(points[0]) is not None

    def test_corrupt_database_file_moved_aside(self, tmp_path):
        points, path = self._seeded_store(tmp_path)
        path.write_bytes(b"this is not a sqlite database, sorry")
        # Kill the WAL sidecars too: nothing left to recover from.
        for suffix in ("-wal", "-shm"):
            sidecar = path.with_name(path.name + suffix)
            if sidecar.exists():
                sidecar.unlink()
        with pytest.warns(UserWarning, match="moved aside"):
            store = ResultStore(path)
            assert store.get(points[0]) is None
        assert path.with_name(path.name + ".corrupt").exists()
        # And the fresh store works.
        expected = _comparable(run_sweep(points, cache=None))
        assert _comparable(run_sweep(points, cache=str(path))) == expected

    def test_newer_schema_refused(self, tmp_path):
        _, path = self._seeded_store(tmp_path)
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(STORE_SCHEMA_VERSION + 1),),
            )
        conn.close()
        with pytest.raises(StoreSchemaError):
            len(ResultStore(path))


class TestJournal:
    def test_sweep_id_deterministic_and_tag_sensitive(self):
        points = _points(2)
        assert sweep_id_for(points) == sweep_id_for(list(points))
        assert sweep_id_for(points) != sweep_id_for(points[::-1])
        assert sweep_id_for(points, tag="fig07") != sweep_id_for(points)

    def test_run_sweep_journals_progress(self, tmp_path):
        points = _points(2)
        path = tmp_path / "s.sqlite"
        run_sweep(points, cache=str(path))
        store = ResultStore(path)
        progress = store.sweep_progress(sweep_id_for(points))
        assert progress == {"total": 2, "committed": 2, "pending": 0}

    def test_interrupted_sweep_reports_pending(self, tmp_path):
        points = _points(3)
        path = tmp_path / "s.sqlite"
        store = ResultStore(path)
        sweep_id = store.begin_sweep(points, tag="fig07")
        # Simulate a crash after one commit.
        [result] = run_sweep(points[:1], cache=None)
        store.put(points[0], result)
        store.mark_committed(sweep_id, points[0])
        progress = store.sweep_progress(sweep_id)
        assert progress == {"total": 3, "committed": 1, "pending": 2}
        [summary] = store.journal_summary()
        assert summary["tag"] == "fig07"
        assert summary["pending"] == 2
        # The relaunched sweep re-derives the same id and completes the
        # journal; the committed point replays from the store.
        configure(sweep_tag="fig07")
        try:
            results = run_sweep(points, cache=str(path))
        finally:
            configure(sweep_tag=None)
        assert results[0].from_cache
        assert not results[1].from_cache and not results[2].from_cache
        assert store.sweep_progress(sweep_id)["pending"] == 0

    def test_cache_hits_mark_committed(self, tmp_path):
        points = _points(2)
        path = tmp_path / "s.sqlite"
        run_sweep(points, cache=str(path))
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE sweep_journal SET status = 'pending'")
        conn.close()
        results = run_sweep(points, cache=str(path))
        assert all(r.from_cache for r in results)
        store = ResultStore(path)
        assert store.sweep_progress(sweep_id_for(points))["pending"] == 0


class TestMigration:
    def test_import_cache_directory(self, tmp_path):
        points = _points(2)
        cache_dir = tmp_path / "loose"
        expected = _comparable(run_sweep(points, cache=str(cache_dir)))
        # One damaged entry and one foreign file must be skipped.
        (cache_dir / "not-a-hash.json").write_text("{'torn")
        store_path = tmp_path / "s.sqlite"
        store = ResultStore(store_path)
        with pytest.warns(UserWarning, match="skipping cache entry"):
            report = store.import_cache(cache_dir)
        assert report["imported"] == 2
        assert report["skipped"] == 1
        # Imported rows serve as hits, bit-identically.
        results = run_sweep(points, cache=str(store_path))
        assert all(r.from_cache for r in results)
        assert _comparable(results) == expected
        # Re-import is a no-op.
        report = store.import_cache(cache_dir)
        assert report["imported"] == 0 and report["existing"] == 2

    def test_cli_info_and_import(self, tmp_path, capsys):
        from repro.exec.store import main

        points = _points(1)
        cache_dir = tmp_path / "loose"
        run_sweep(points, cache=str(cache_dir))
        store_path = tmp_path / "s.sqlite"
        assert main([str(store_path), "import", str(cache_dir)]) == 0
        assert "imported 1 entries" in capsys.readouterr().out
        assert main([str(store_path), "info"]) == 0
        out = capsys.readouterr().out
        assert "results: 1" in out
        assert main([str(store_path), "quarantine"]) == 0
        assert "quarantine is empty" in capsys.readouterr().out


class TestSchemaV2:
    def test_v1_store_migrates_in_place(self, tmp_path):
        points = _points(2)
        path = tmp_path / "s.sqlite"
        run_sweep(points, cache=str(path))
        # Rewind the file to schema v1: no jobs table, version stamp 1.
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("DROP TABLE jobs")
            conn.execute(
                "UPDATE meta SET value = '1' WHERE key = 'schema_version'"
            )
        conn.close()
        store = ResultStore(path)
        # The migration is additive: results survive, the jobs table is
        # back, and the version stamp is current.
        assert store.get(points[0]) is not None
        assert store.job_counts() == {}
        stamped = store._connect().execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()[0]
        assert stamped == str(STORE_SCHEMA_VERSION)

    def test_migrated_store_serves_the_job_queue(self, tmp_path):
        from repro.serve import JobQueue

        points = _points(1)
        path = tmp_path / "s.sqlite"
        run_sweep(points, cache=str(path))
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("DROP TABLE jobs")
            conn.execute(
                "UPDATE meta SET value = '1' WHERE key = 'schema_version'"
            )
        conn.close()
        queue = JobQueue(path)
        job_id, deduped = queue.submit(points, tag="fig07")
        assert not deduped
        assert queue.store.job_counts() == {"queued": 1}
        # The point is already in the store (the pre-migration sweep),
        # but the job's own journal starts pending: a worker commits it
        # by replaying the row, never by recomputing.
        assert queue.get(job_id)["progress"] == {
            "total": 1, "committed": 0, "pending": 1,
        }

    def test_tag_progress_aggregates_across_sweeps(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        first, second, third = _points(3)
        # Two sweeps under one tag, one untagged sweep.
        sweep_a = store.begin_sweep([first, second], tag="fig07")
        store.begin_sweep([third], tag="fig07")
        store.begin_sweep([first])
        [result] = run_sweep([first], cache=None)
        store.put(first, result)
        store.mark_committed(sweep_a, first)
        rows = {row["tag"]: row for row in store.tag_progress()}
        assert rows["fig07"] == {
            "tag": "fig07", "total": 3, "committed": 1, "pending": 2,
        }
        assert rows[None]["total"] == 1 and rows[None]["committed"] == 0

    def test_info_cli_reports_tags_and_jobs(self, tmp_path, capsys):
        from repro.exec.store import main
        from repro.serve import JobQueue

        points = _points(2)
        path = tmp_path / "s.sqlite"
        configure(sweep_tag="fig07")
        try:
            run_sweep(points, cache=str(path))
        finally:
            configure(sweep_tag=None)
        queue = JobQueue(path)
        queue.submit(points, tag="fig07")
        done_id, _ = queue.submit(_points(1), tag="other")
        queue.claim("w")
        assert main([str(path), "info"]) == 0
        out = capsys.readouterr().out
        assert "progress by tag:" in out
        assert "fig07  2/2 committed, 0 pending" in out
        assert "jobs: 1 queued, 1 running" in out


def _stress_writer(store_path, rates):
    """Child-process body for the concurrent-writer stress test."""
    points = sweep_points(
        ["baseline"],
        "uniform_random",
        rates,
        seed=7,
        warmup_packets=10,
        measure_packets=30,
        mesh_size=4,
    )
    run_sweep(points, cache=store_path)


class TestConcurrentWriters:
    def test_two_processes_share_one_store(self, tmp_path):
        """Two writer processes, one store file, overlapping points.

        WAL mode plus the 30 s busy timeout must serialize the commits:
        no corruption, no quarantined rows, every stored result
        bit-identical to a serial recompute, both journals complete --
        and the shared point (rate 0.06) lands exactly once.
        """
        import multiprocessing

        path = tmp_path / "s.sqlite"
        rates_a = [0.04, 0.05, 0.06]
        rates_b = [0.06, 0.07, 0.08]  # overlaps rates_a at 0.06
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(target=_stress_writer, args=(str(path), rates))
            for rates in (rates_a, rates_b)
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        all_points = sweep_points(
            ["baseline"],
            "uniform_random",
            [0.04, 0.05, 0.06, 0.07, 0.08],
            seed=7,
            warmup_packets=10,
            measure_packets=30,
            mesh_size=4,
        )
        store = ResultStore(path)
        assert len(store) == len(all_points)
        assert store.quarantined() == []
        expected = _comparable(run_sweep(all_points, cache=None))
        stored = _comparable(
            [store.get(point) for point in all_points]
        )
        assert stored == expected
        for row in store.journal_summary():
            assert row["pending"] == 0


class TestDurability:
    def test_put_never_raises(self, tmp_path, monkeypatch):
        points = _points(1)
        [result] = run_sweep(points, cache=None)
        store = ResultStore(tmp_path / "s.sqlite")

        def boom(*args, **kwargs):
            raise sqlite3.OperationalError("disk I/O error")

        monkeypatch.setattr(store, "_connect", boom)
        with pytest.warns(UserWarning, match="write failed"):
            store.put(points[0], result)

    def test_wal_mode_active(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        mode = store._connect().execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
