"""Edge cases of the event-driven kernel's active-set scheduling.

The active sets (`Network._active_routers` / `_active_sources`) are
conservative supersets that are lazily pruned; these tests pin the
corner cases where a too-eager prune or a missing wake would silently
corrupt a run:

* a credit returning to a router *after* it drained (and was pruned)
  must still be applied -- credits are delivered from the event queue,
  not the active set;
* a source stalled mid-packet on a full VC must stay scheduled until
  the wormhole finishes injecting;
* a transient router fault that empties part of the mesh must not
  prevent traffic from re-activating the repaired router;
* the watchdog still observes every cycle (it runs unconditionally in
  the event kernel), so a wedged network is detected even when the
  active set goes quiet -- and a genuinely idle network never
  false-positives.
"""

import pytest

from repro.core.layouts import build_network, layout_by_name
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    SimulationStalled,
    Watchdog,
)
from repro.noc.config import RouterConfig
from repro.noc.flit import reset_packet_ids
from repro.noc.network import Network
from repro.noc.routing import Routing
from repro.noc.topology import Mesh


def _settle(net, extra=None):
    """Run to idle, then keep stepping so in-flight credits land."""
    net.drain()
    for _ in range(extra if extra is not None else net.config.credit_delay + 8):
        net.step()


class TestDrainedRouterCredits:
    def test_late_credits_reach_pruned_routers(self):
        """A router is pruned the moment its buffers empty, which can be
        *before* the credits for its last forwarded flits return.  Those
        credit events must still be applied or the channel leaks."""
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 3))
        # A long wormhole across the full diagonal touches many routers.
        net.enqueue(net.make_packet(0, 8, payload_bits=net.flit_width * 12))
        _settle(net)
        assert net.total_delivered == 1
        # Every router drained and was lazily pruned ...
        assert net._active_routers == set()
        assert net._active_sources == set()
        for router in net.routers:
            assert router.occupied_flits == 0
            # ... and every credit made it home, pruned or not.
            for port in range(router.num_ports):
                ceiling = router._credit_ceiling[port]
                if ceiling == 0:
                    continue
                for vc in range(router.out_vc_count[port]):
                    assert router.out_credits[port][vc] == ceiling, (
                        f"router {router.router_id} port {port} vc {vc} "
                        "leaked a credit after pruning"
                    )

    def test_idle_steps_are_cheap_and_stable(self):
        """Stepping an idle network keeps the active sets empty."""
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 4))
        for _ in range(100):
            net.step()
        assert net._active_routers == set()
        assert net._active_sources == set()
        assert net.cycle == 100


class TestSourceStall:
    def test_source_stalled_mid_packet_stays_scheduled(self):
        """With tiny buffers a long packet cannot inject in one go; the
        stalled source must stay in the active set until the tail flit
        leaves, or the wormhole is truncated forever."""
        reset_packet_ids()
        topo = Mesh(2)
        configs = {
            rid: RouterConfig(num_vcs=2, buffer_depth=2)
            for rid in range(topo.num_routers)
        }
        net = Network(topo, configs)
        net.enqueue(net.make_packet(0, 3, payload_bits=net.flit_width * 24))
        stalled_cycles = 0
        for _ in range(1_000):
            if net.idle():
                break
            net.step()
            source = net.sources[0]
            if source.mid_packet:
                assert 0 in net._active_sources, (
                    "source dropped from the active set mid-packet"
                )
                stalled_cycles += 1
        assert net.total_delivered == 1
        assert net.total_buffered_flits() == 0
        # The packet is far longer than the local buffering, so injection
        # necessarily spanned many cycles.
        assert stalled_cycles > 10


class TestFaultReactivation:
    def test_transient_router_fault_then_reactivation(self):
        """A drained (pruned) router revived by a fault repair must be
        re-activated by the first flit routed through it."""
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 3))
        schedule = FaultSchedule(
            specs=(
                FaultSpec(
                    kind="router", router=4, mode="transient",
                    at=60, repair_after=100,
                ),
            ),
            seed=1,
        )
        net.attach_faults(FaultInjector(schedule, net.topology))
        # Phase 1: route 3 -> 5 through the center router (X-first).
        net.enqueue(net.make_packet(3, 5))
        net.drain()
        assert net.total_delivered == 1
        # Let the lazy prune run: one more step iterates-and-discards.
        for _ in range(4):
            net.step()
        assert 4 not in net._active_routers
        # Phase 2: step through the fault window (apply at 60, repair at
        # 160) with no traffic -- the dead router must stay pruned.
        while net.cycle < 200:
            net.step()
        assert 4 not in net._active_routers
        # Phase 3: new traffic through the repaired router.
        net.enqueue(net.make_packet(3, 5))
        reactivated = False
        for _ in range(1_000):
            if net.idle():
                break
            net.step()
            reactivated = reactivated or 4 in net._active_routers
        assert reactivated, "repaired router never re-entered the active set"
        assert net.total_delivered == 2


class _ClockwiseRing(Routing):
    """Adversarial routing that forms a cyclic channel dependency on a
    2x2 mesh (same construction as tests/test_faults.py)."""

    ORDER = (0, 1, 3, 2)

    def __init__(self, topology):
        super().__init__(topology)
        self._port_to = {
            (src, dst): sport for src, sport, dst, _ in topology.channels()
        }

    def output_port(self, router, packet):
        dst_router = self.topology.router_of_node(packet.dst)
        if router == dst_router:
            return self.topology.local_port_of_node(packet.dst)
        here = self.ORDER.index(router)
        return self._port_to[(router, self.ORDER[(here + 1) % 4])]


class TestWatchdogUnderEventKernel:
    def _wedged_network(self):
        reset_packet_ids()
        topo = Mesh(2)
        configs = {
            rid: RouterConfig(num_vcs=1, buffer_depth=2)
            for rid in range(topo.num_routers)
        }
        net = Network(topo, configs)
        net.routing = _ClockwiseRing(topo)
        for i in range(4):
            src = _ClockwiseRing.ORDER[i]
            dst = _ClockwiseRing.ORDER[(i + 3) % 4]
            net.enqueue(net.make_packet(src, dst, payload_bits=net.flit_width * 8))
        return net

    def test_deadlock_detected_by_event_kernel(self):
        """The watchdog runs every cycle regardless of the active set, so
        a cyclic wormhole wedge is still detected and diagnosed."""
        net = self._wedged_network()
        assert net.naive_step is False
        net.attach_watchdog(Watchdog(stall_window=64, check_interval=16))
        with pytest.raises(SimulationStalled) as excinfo:
            for _ in range(5_000):
                net.step()
        assert excinfo.value.diagnosis.kind == "deadlock"
        assert excinfo.value.diagnosis.packets_in_flight == 4
        # The wedged routers hold flits, so they are *in* the active set:
        # the event kernel never pruned the evidence the diagnosis needs.
        assert net._active_routers == set(_ClockwiseRing.ORDER)

    def test_no_false_positive_on_idle_network(self):
        """An idle network (empty active set) resets the progress clocks;
        a tight stall window must not fire."""
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 2))
        net.attach_watchdog(Watchdog(stall_window=32, check_interval=8))
        for _ in range(2_000):
            net.step()
        assert net.cycle == 2_000
