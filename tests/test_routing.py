"""Unit and property tests for routing disciplines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.flit import Packet
from repro.noc.routing import (
    FlattenedButterflyRouting,
    RoutingError,
    TableRouting,
    TorusXYRouting,
    XYRouting,
    max_big_router_path,
    minimal_routing_for,
)
from repro.noc.topology import (
    ConcentratedMesh,
    FlattenedButterfly,
    Mesh,
    Torus,
)
from repro.core.layouts import diagonal_positions


def _walk(topology, routing, packet, max_hops=64):
    """Follow routing decisions until ejection; return router path."""
    router = topology.router_of_node(packet.src)
    path = [router]
    for _ in range(max_hops):
        port = routing.output_port(router, packet)
        if topology.is_local_port(router, port):
            assert topology.node_at(router, port) == packet.dst
            return path
        neighbor = topology.neighbor(router, port)
        assert neighbor is not None, "routed off the edge of the network"
        router = neighbor[0]
        path.append(router)
    raise AssertionError("packet did not reach its destination")


class TestXYRouting:
    def test_reaches_destination_minimally(self):
        mesh = Mesh(8)
        routing = XYRouting(mesh)
        packet = Packet(src=0, dst=63, num_flits=1, created_at=0)
        path = _walk(mesh, routing, packet)
        assert len(path) - 1 == 14  # manhattan distance

    def test_x_before_y(self):
        mesh = Mesh(8)
        routing = XYRouting(mesh)
        packet = Packet(src=0, dst=58, num_flits=1, created_at=0)  # (7, 2)
        path = _walk(mesh, routing, packet)
        rows = [mesh.coords(r)[0] for r in path]
        cols = [mesh.coords(r)[1] for r in path]
        # Column settles to its final value before the row starts moving.
        first_row_move = next(i for i, r in enumerate(rows) if r != rows[0])
        assert all(c == cols[-1] for c in cols[first_row_move:])

    def test_ejection_at_destination_router(self):
        mesh = Mesh(4)
        routing = XYRouting(mesh)
        packet = Packet(src=5, dst=5, num_flits=1, created_at=0)
        assert routing.output_port(5, packet) == mesh.LOCAL

    def test_rejects_torus(self):
        with pytest.raises(TypeError):
            XYRouting(Torus(4))

    def test_works_on_cmesh(self):
        cmesh = ConcentratedMesh(4, concentration=4)
        routing = XYRouting(cmesh)
        packet = Packet(src=0, dst=63, num_flits=1, created_at=0)
        path = _walk(cmesh, routing, packet)
        assert path[-1] == cmesh.router_of_node(63)

    @given(
        src=st.integers(min_value=0, max_value=63),
        dst=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_minimal(self, src, dst):
        if src == dst:
            return
        mesh = Mesh(8)
        routing = XYRouting(mesh)
        packet = Packet(src=src, dst=dst, num_flits=1, created_at=0)
        path = _walk(mesh, routing, packet)
        sr, sc = mesh.coords(src)
        dr, dc = mesh.coords(dst)
        assert len(path) - 1 == abs(sr - dr) + abs(sc - dc)


class TestTorusXYRouting:
    def test_takes_shortest_way_around(self):
        torus = Torus(8)
        routing = TorusXYRouting(torus)
        packet = Packet(src=0, dst=7, num_flits=1, created_at=0)
        path = _walk(torus, routing, packet)
        assert len(path) - 1 == 1  # wraps west

    def test_dateline_class_changes_on_wrap(self):
        torus = Torus(8)
        routing = TorusXYRouting(torus)
        packet = Packet(src=0, dst=6, num_flits=1, created_at=0)
        assert packet.vc_class == 0
        _walk(torus, routing, packet)
        # 0 -> 7 -> 6 heading west; the 0 -> 7 hop is the wrap.
        assert packet.vc_class == 1

    def test_class_resets_on_dimension_turn(self):
        torus = Torus(8)
        routing = TorusXYRouting(torus)
        # Wraps in X (0 -> 7...), then turns into Y without wrapping.
        packet = Packet(src=0, dst=14, num_flits=1, created_at=0)  # (1, 6)
        _walk(torus, routing, packet)
        assert packet.vc_class == 0

    def test_allowed_vcs_split(self):
        torus = Torus(4)
        routing = TorusXYRouting(torus)
        packet = Packet(src=0, dst=2, num_flits=1, created_at=0)
        packet.vc_class = 0
        # Class 0 (pre-dateline, the common case) gets the larger share.
        assert list(routing.allowed_vcs(0, 2, packet, 4)) == [0, 1, 2]
        packet.vc_class = 1
        assert list(routing.allowed_vcs(0, 2, packet, 4)) == [3]
        packet.vc_class = 0
        assert list(routing.allowed_vcs(0, 2, packet, 3)) == [0, 1]
        packet.vc_class = 1
        assert list(routing.allowed_vcs(0, 2, packet, 3)) == [2]

    def test_needs_two_vcs(self):
        torus = Torus(4)
        routing = TorusXYRouting(torus)
        packet = Packet(src=0, dst=2, num_flits=1, created_at=0)
        with pytest.raises(RoutingError):
            routing.allowed_vcs(0, 2, packet, 1)

    @given(
        src=st.integers(min_value=0, max_value=63),
        dst=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_reaches(self, src, dst):
        if src == dst:
            return
        torus = Torus(8)
        routing = TorusXYRouting(torus)
        packet = Packet(src=src, dst=dst, num_flits=1, created_at=0)
        path = _walk(torus, routing, packet)
        from repro.noc.topology import torus_distance

        assert len(path) - 1 == torus_distance(torus, src, dst)


class TestFlattenedButterflyRouting:
    def test_at_most_two_hops(self):
        fbfly = FlattenedButterfly(4, concentration=4)
        routing = FlattenedButterflyRouting(fbfly)
        for src in range(0, 64, 7):
            for dst in range(0, 64, 5):
                if fbfly.router_of_node(src) == fbfly.router_of_node(dst):
                    continue
                packet = Packet(src=src, dst=dst, num_flits=1, created_at=0)
                path = _walk(fbfly, routing, packet)
                assert len(path) - 1 <= 2


class TestMinimalRoutingFactory:
    def test_dispatch(self):
        assert isinstance(minimal_routing_for(Mesh(4)), XYRouting)
        assert isinstance(minimal_routing_for(Torus(4)), TorusXYRouting)
        assert isinstance(
            minimal_routing_for(FlattenedButterfly(4)), FlattenedButterflyRouting
        )
        assert isinstance(minimal_routing_for(ConcentratedMesh(4)), XYRouting)


class TestMaxBigRouterPath:
    def test_path_is_minimal_and_monotone(self):
        mesh = Mesh(8)
        big = diagonal_positions(8)
        path = max_big_router_path(mesh, 0, 63, big)
        assert path[0] == 0 and path[-1] == 63
        assert len(path) - 1 == 14
        # Monotone: every hop moves toward the destination.
        for a, b in zip(path, path[1:]):
            ar, ac = mesh.coords(a)
            br, bc = mesh.coords(b)
            assert (br - ar, bc - ac) in ((1, 0), (0, 1))

    def test_visits_at_least_as_many_big_as_xy(self):
        mesh = Mesh(8)
        big = diagonal_positions(8)
        from repro.core.design_space import xy_path_routers

        for src, dst in ((0, 62), (8, 55), (16, 31), (1, 62)):
            staircase = max_big_router_path(mesh, src, dst, big)
            xy = xy_path_routers(mesh, src, dst)
            assert sum(1 for r in staircase if r in big) >= sum(
                1 for r in xy if r in big
            )

    def test_degenerate_same_row(self):
        mesh = Mesh(8)
        path = max_big_router_path(mesh, 0, 7, set())
        assert path == list(range(8))


class TestTableRouting:
    def _routing(self):
        mesh = Mesh(8)
        return mesh, TableRouting(
            mesh,
            big_routers=diagonal_positions(8),
            table_nodes={0, 7, 56, 63},
            escape_vc=0,
        )

    def test_tabled_packet_reaches_destination(self):
        mesh, routing = self._routing()
        packet = Packet(src=0, dst=34, num_flits=1, created_at=0)
        path = _walk(mesh, routing, packet)
        assert path[-1] == 34

    def test_untabled_packet_uses_xy(self):
        mesh, routing = self._routing()
        packet = Packet(src=10, dst=34, num_flits=1, created_at=0)
        xy_packet = Packet(src=10, dst=34, num_flits=1, created_at=0)
        assert _walk(mesh, routing, packet) == _walk(
            mesh, XYRouting(mesh), xy_packet
        )

    def test_tabled_path_maximizes_big_routers(self):
        mesh, routing = self._routing()
        big = diagonal_positions(8)
        path = routing.path_routers(0, 62)
        from repro.core.design_space import xy_path_routers

        xy = xy_path_routers(mesh, 0, 62)
        assert sum(r in big for r in path) >= sum(r in big for r in xy)

    def test_escaped_packet_restricted_to_escape_vc(self):
        mesh, routing = self._routing()
        packet = Packet(src=0, dst=34, num_flits=1, created_at=0)
        packet.on_escape = True
        candidates = routing.va_candidates(8, packet, 2, [3] * 5)
        assert all(vc == 0 for _port, vc, _esc in candidates)

    def test_escape_candidate_is_last_and_xy_directed(self):
        mesh, routing = self._routing()
        packet = Packet(src=0, dst=63, num_flits=1, created_at=0)
        route_port = routing.output_port(0, packet)
        candidates = list(
            routing.va_candidates(0, packet, route_port, [3] * 5)
        )
        *normal, escape = candidates
        assert all(not esc for _p, _v, esc in normal)
        assert all(vc != 0 for _p, vc, _e in normal)
        port, vc, escaped = escape
        assert escaped and vc == 0
        xy = XYRouting(mesh)
        assert port == xy.output_port(
            0, Packet(src=0, dst=63, num_flits=1, created_at=0)
        )

    def test_uses_table_predicate(self):
        _, routing = self._routing()
        assert routing.uses_table(Packet(src=0, dst=30, num_flits=1, created_at=0))
        assert routing.uses_table(Packet(src=30, dst=63, num_flits=1, created_at=0))
        assert not routing.uses_table(Packet(src=30, dst=31, num_flits=1, created_at=0))

    def test_rejects_torus(self):
        with pytest.raises(TypeError):
            TableRouting(Torus(8), set(), set())


class TestRouteTables:
    """``build_route_tables``: the precomputed routing tensors.

    The network (and the structure-of-arrays kernel, which refuses to
    run without them) installs ``tables[router][dst] -> out_port`` when
    the discipline is a pure function of (router, destination).  These
    tests pin which disciplines publish tables, that every entry agrees
    with the dynamic ``output_port`` lookup, and that probing never
    consumes global packet ids (which would break bit-identical replay).
    """

    PURE = [
        (Mesh(4), XYRouting),
        (ConcentratedMesh(4, concentration=4), XYRouting),
        (FlattenedButterfly(4, concentration=4), FlattenedButterflyRouting),
    ]

    @pytest.mark.parametrize(
        "topology,routing_cls", PURE,
        ids=["mesh", "cmesh", "fbfly"],
    )
    def test_tables_match_dynamic_output_port(self, topology, routing_cls):
        routing = routing_cls(topology)
        tables = routing.build_route_tables()
        assert tables is not None
        assert len(tables) == topology.num_routers
        for router, row in enumerate(tables):
            assert len(row) == topology.num_nodes
            for dst, port in enumerate(row):
                packet = Packet(src=0, dst=dst, num_flits=1, created_at=0)
                assert port == routing.output_port(router, packet)

    def test_table_entries_are_legal_ports(self):
        cmesh = ConcentratedMesh(4, concentration=4)
        tables = XYRouting(cmesh).build_route_tables()
        for router, row in enumerate(tables):
            nports = cmesh.num_ports(router)
            assert all(0 <= port < nports for port in row)
            # Destinations attached here map to distinct local ports.
            local = [
                row[dst] for dst in range(cmesh.num_nodes)
                if cmesh.router_of_node(dst) == router
            ]
            assert len(set(local)) == len(local)
            assert all(cmesh.is_local_port(router, p) for p in local)

    def test_stateful_disciplines_publish_no_tables(self):
        """Torus dateline classes and table/escape routing mutate
        per-packet state, so they must keep the dynamic lookup."""
        assert TorusXYRouting(Torus(4)).build_route_tables() is None
        table = TableRouting(
            Mesh(8),
            big_routers=diagonal_positions(8),
            table_nodes={0, 63},
        )
        assert table.build_route_tables() is None

    def test_probe_does_not_consume_packet_ids(self):
        from repro.noc.flit import reset_packet_ids

        reset_packet_ids()
        XYRouting(Mesh(4)).build_route_tables()
        fresh = Packet(src=0, dst=1, num_flits=1, created_at=0)
        assert fresh.packet_id == 0, (
            "probe packets must carry explicit ids; drawing from the "
            "global counter breaks bit-identical sweep replay"
        )
        reset_packet_ids()

    def test_uses_default_va_flags(self):
        """VA-candidate tables are only precomputable for disciplines
        that keep the base-class allowed_vcs/va_candidates."""
        assert XYRouting(Mesh(4)).uses_default_va()
        assert FlattenedButterflyRouting(
            FlattenedButterfly(4, concentration=4)
        ).uses_default_va()
        assert not TorusXYRouting(Torus(4)).uses_default_va()
        assert not TableRouting(
            Mesh(8), big_routers=diagonal_positions(8), table_nodes={0},
        ).uses_default_va()

    def test_table_routing_builds_both_directions_per_endpoint(self):
        mesh = Mesh(8)
        routing = TableRouting(
            mesh,
            big_routers=diagonal_positions(8),
            table_nodes={0, 63},
        )
        for endpoint in (0, 63):
            endpoint_router = mesh.router_of_node(endpoint)
            for other in range(mesh.num_routers):
                if other == endpoint_router:
                    continue
                to = routing.path_routers(endpoint_router, other)
                fro = routing.path_routers(other, endpoint_router)
                assert to[0] == endpoint_router and to[-1] == other
                assert fro[0] == other and fro[-1] == endpoint_router
