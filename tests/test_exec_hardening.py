"""Engine hardening: per-point timeouts, bounded retries, error capture.

One bad point must not abort a long parallel sweep: with
``on_error="capture"`` (the process backend's default) a failing point
comes back as a placeholder result carrying the error string and NaN
metrics, is never written to the cache, and every other point completes
normally.
"""

import math
import time

import pytest

import repro.exec.engine as engine_mod
from repro.exec import SweepPoint, run_sweep
from repro.exec.cache import ResultCache


def _tiny_point(**overrides) -> SweepPoint:
    params = dict(
        layout="baseline", mesh_size=4, pattern="uniform_random",
        rate=0.05, seed=7, warmup_packets=10, measure_packets=30,
    )
    params.update(overrides)
    return SweepPoint(**params)


class TestSerialHardening:
    def test_capture_returns_placeholder_with_error(self, monkeypatch):
        def _boom(point):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(engine_mod, "execute_point", _boom)
        point = _tiny_point()
        result = run_sweep([point], cache=None, on_error="capture")[0]
        assert result.error == "RuntimeError: synthetic failure"
        assert math.isnan(result.latency_cycles)
        assert result.key == point.key()
        assert result.label == point.label

    def test_serial_default_still_raises(self, monkeypatch):
        def _boom(point):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(engine_mod, "execute_point", _boom)
        with pytest.raises(RuntimeError, match="synthetic failure"):
            run_sweep([_tiny_point()], cache=None)

    def test_bounded_retry_recovers_flaky_point(self, monkeypatch):
        calls = {"n": 0}
        real = engine_mod.execute_point

        def _flaky(point):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient failure")
            return real(point)

        monkeypatch.setattr(engine_mod, "execute_point", _flaky)
        result = run_sweep(
            [_tiny_point()], cache=None, retries=1, retry_backoff_s=0
        )[0]
        assert result.error is None
        assert calls["n"] == 2
        assert result.measured_packets == 30

    def test_per_point_timeout_enforced(self, monkeypatch):
        def _hang(point):
            time.sleep(5)

        monkeypatch.setattr(engine_mod, "execute_point", _hang)
        result = run_sweep(
            [_tiny_point()], cache=None, timeout=0.2, on_error="capture"
        )[0]
        assert result.error is not None
        assert "PointTimeout" in result.error

    def test_failed_points_never_cached(self, tmp_path, monkeypatch):
        calls = {"n": 0}
        real = engine_mod.execute_point

        def _fail_once(point):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first run fails")
            return real(point)

        monkeypatch.setattr(engine_mod, "execute_point", _fail_once)
        point = _tiny_point()
        cache = ResultCache(str(tmp_path))
        failed = run_sweep([point], cache=cache, on_error="capture")[0]
        assert failed.error is not None
        assert cache.get(point) is None
        recovered = run_sweep([point], cache=cache, on_error="capture")[0]
        assert recovered.error is None
        assert not recovered.from_cache
        assert cache.get(point) is not None

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([_tiny_point()], cache=None, retries=-1)
        with pytest.raises(ValueError):
            run_sweep([_tiny_point()], cache=None, on_error="shrug")


class TestProcessHardening:
    def test_one_bad_point_does_not_sink_the_sweep(self):
        # The bad point only fails at execution time (pattern lookup),
        # so it pickles fine and dies inside the worker.
        good = _tiny_point()
        bad = _tiny_point(pattern="no_such_pattern")
        results = run_sweep(
            [good, bad, good], jobs=2, backend="process", cache=None
        )
        assert results[0].error is None
        assert results[2].error is None
        assert results[0].measured_packets == 30
        assert results[1].error is not None
        assert "no_such_pattern" in results[1].error

    def test_process_backend_on_error_raise(self):
        bad = _tiny_point(pattern="no_such_pattern")
        with pytest.raises(RuntimeError, match="no_such_pattern"):
            run_sweep(
                [bad, bad], jobs=2, backend="process", cache=None,
                on_error="raise",
            )
