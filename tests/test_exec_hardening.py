"""Engine hardening: per-point timeouts, bounded retries, error capture.

One bad point must not abort a long parallel sweep: with
``on_error="capture"`` (the process backend's default) a failing point
comes back as a placeholder result carrying the error string and NaN
metrics, is never written to the cache, and every other point completes
normally.
"""

import math
import time

import pytest

import repro.exec.engine as engine_mod
from repro.exec import SweepPoint, run_sweep
from repro.exec.cache import ResultCache


def _tiny_point(**overrides) -> SweepPoint:
    params = dict(
        layout="baseline", mesh_size=4, pattern="uniform_random",
        rate=0.05, seed=7, warmup_packets=10, measure_packets=30,
    )
    params.update(overrides)
    return SweepPoint(**params)


class TestSerialHardening:
    def test_capture_returns_placeholder_with_error(self, monkeypatch):
        def _boom(point):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(engine_mod, "execute_point", _boom)
        point = _tiny_point()
        result = run_sweep([point], cache=None, on_error="capture")[0]
        assert result.error == "RuntimeError: synthetic failure"
        assert math.isnan(result.latency_cycles)
        assert result.key == point.key()
        assert result.label == point.label

    def test_serial_default_still_raises(self, monkeypatch):
        def _boom(point):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(engine_mod, "execute_point", _boom)
        with pytest.raises(RuntimeError, match="synthetic failure"):
            run_sweep([_tiny_point()], cache=None)

    def test_bounded_retry_recovers_flaky_point(self, monkeypatch):
        calls = {"n": 0}
        real = engine_mod.execute_point

        def _flaky(point):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient failure")
            return real(point)

        monkeypatch.setattr(engine_mod, "execute_point", _flaky)
        result = run_sweep(
            [_tiny_point()], cache=None, retries=1, retry_backoff_s=0
        )[0]
        assert result.error is None
        assert calls["n"] == 2
        assert result.measured_packets == 30

    def test_per_point_timeout_enforced(self, monkeypatch):
        def _hang(point):
            time.sleep(5)

        monkeypatch.setattr(engine_mod, "execute_point", _hang)
        result = run_sweep(
            [_tiny_point()], cache=None, timeout=0.2, on_error="capture"
        )[0]
        assert result.error is not None
        assert "PointTimeout" in result.error

    def test_failed_points_never_cached(self, tmp_path, monkeypatch):
        calls = {"n": 0}
        real = engine_mod.execute_point

        def _fail_once(point):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first run fails")
            return real(point)

        monkeypatch.setattr(engine_mod, "execute_point", _fail_once)
        point = _tiny_point()
        cache = ResultCache(str(tmp_path))
        failed = run_sweep([point], cache=cache, on_error="capture")[0]
        assert failed.error is not None
        assert cache.get(point) is None
        recovered = run_sweep([point], cache=cache, on_error="capture")[0]
        assert recovered.error is None
        assert not recovered.from_cache
        assert cache.get(point) is not None

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([_tiny_point()], cache=None, retries=-1)
        with pytest.raises(ValueError):
            run_sweep([_tiny_point()], cache=None, on_error="shrug")


class TestProcessHardening:
    def test_one_bad_point_does_not_sink_the_sweep(self):
        # The bad point only fails at execution time (pattern lookup),
        # so it pickles fine and dies inside the worker.
        good = _tiny_point()
        bad = _tiny_point(pattern="no_such_pattern")
        results = run_sweep(
            [good, bad, good], jobs=2, backend="process", cache=None
        )
        assert results[0].error is None
        assert results[2].error is None
        assert results[0].measured_packets == 30
        assert results[1].error is not None
        assert "no_such_pattern" in results[1].error

    def test_process_backend_on_error_raise(self):
        bad = _tiny_point(pattern="no_such_pattern")
        with pytest.raises(RuntimeError, match="no_such_pattern"):
            run_sweep(
                [bad, bad], jobs=2, backend="process", cache=None,
                on_error="raise",
            )


class TestNestedAlarms:
    """The SIGALRM guard must save/restore the *timer*, not just the
    handler: an outer deadline keeps counting down across a guarded
    inner call instead of being silently cancelled."""

    def test_outer_itimer_survives_guarded_call(self):
        import signal

        fired = []
        previous_handler = signal.signal(
            signal.SIGALRM, lambda signum, frame: fired.append(signum)
        )
        try:
            signal.setitimer(signal.ITIMER_REAL, 5.0)
            engine_mod._execute_point_guarded(_tiny_point(), timeout_s=0.5)
            remaining, _ = signal.getitimer(signal.ITIMER_REAL)
            # The outer timer is re-armed with (roughly) its remaining
            # budget -- not cancelled, not reset to the full 5 s.
            assert 0 < remaining < 5.0
            assert not fired
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous_handler)

    def test_expired_outer_timer_fires_after_inner_call(self):
        import signal
        import time as time_mod

        fired = []
        previous_handler = signal.signal(
            signal.SIGALRM, lambda signum, frame: fired.append(signum)
        )
        try:
            # Outer deadline shorter than the inner call's runtime: the
            # guard must re-arm it so it fires (late), not swallow it.
            signal.setitimer(signal.ITIMER_REAL, 0.05)
            engine_mod._execute_point_guarded(_tiny_point(), timeout_s=30.0)
            deadline = time_mod.monotonic() + 2.0
            while not fired and time_mod.monotonic() < deadline:
                time_mod.sleep(0.01)
            assert fired
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous_handler)

    def test_nested_guarded_calls_inner_times_out(self, monkeypatch):
        from repro.exec.engine import PointTimeout, _execute_point_guarded

        point = _tiny_point()
        real = engine_mod.execute_point
        depth = {"n": 0}

        def _nesting(inner_point):
            # First (outer) call: run a *nested* guarded point with a
            # tiny budget, then finish the outer point normally.
            depth["n"] += 1
            if depth["n"] == 1:
                with pytest.raises(PointTimeout):
                    _execute_point_guarded(inner_point, timeout_s=0.1)
                return real(inner_point)
            time.sleep(5)  # the nested call: must hit its 0.1 s budget

        monkeypatch.setattr(engine_mod, "execute_point", _nesting)
        result = _execute_point_guarded(point, timeout_s=30.0)
        assert result.error is None
        assert result.measured_packets == 30


class TestWorkerSigkillChaos:
    def test_sigkilled_worker_retry_bit_identical_to_serial(
        self, tmp_path, monkeypatch
    ):
        """SIGKILL a pool worker mid-point; the retry round must finish
        the sweep with results bit-identical to an undisturbed serial
        run, and the store journal must show every point committed."""
        from repro.chaos.kill import write_kill_plan
        from repro.exec.store import ResultStore, sweep_id_for

        points = [_tiny_point(), _tiny_point(rate=0.08)]
        expected = []
        for result in run_sweep(points, cache=None, backend="serial"):
            row = result.to_dict()
            row.pop("from_cache", None)
            expected.append(row)

        store_path = tmp_path / "sweeps.sqlite"
        plan = write_kill_plan(
            tmp_path / "kill.json", [points[0]], tmp_path / "tokens"
        )
        monkeypatch.setenv("REPRO_CHAOS_KILL", str(plan))
        survived = run_sweep(
            points,
            cache=str(store_path),
            jobs=2,
            backend="process",
            retries=2,
            retry_backoff_s=0,
        )
        got = []
        for result in survived:
            row = result.to_dict()
            row.pop("from_cache", None)
            got.append(row)
        assert got == expected
        assert all(result.error is None for result in survived)
        # The kill really happened: its one-shot token was claimed.
        assert not (tmp_path / "tokens" / f"{points[0].key()}.token").exists()
        progress = ResultStore(store_path).sweep_progress(
            sweep_id_for(points)
        )
        assert progress == {"total": 2, "committed": 2, "pending": 0}
