"""Tests for the ablation knobs, custom layouts and sensitivity helpers."""

import pytest

from repro.core.hetero import min_small_routers
from repro.core.layouts import (
    custom_layout,
    diagonal_positions,
    extended_diagonal_positions,
    layout_by_name,
    build_network,
)
from repro.experiments.ablation_mechanisms import _scattered_positions
from repro.noc.config import NetworkConfig
from repro.traffic.patterns import UniformRandom
from repro.traffic.runner import run_synthetic
from repro.core.merging import merge_report


class TestCustomLayout:
    def test_arbitrary_positions(self):
        layout = custom_layout("mine", {0, 9, 18, 27}, mesh_size=8)
        configs = layout.router_configs()
        assert sum(1 for c in configs.values() if c.kind == "big") == 4
        assert layout.frequency_ghz == pytest.approx(2.07)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            custom_layout("bad", {64}, mesh_size=8)

    def test_buffer_only_custom(self):
        layout = custom_layout("mine+B", {5}, mesh_size=4, redistribute_links=False)
        configs = layout.router_configs()
        assert all(c.link_width == 192 for c in configs.values())


class TestExtendedDiagonal:
    def test_canonical_budget_matches_diagonal(self):
        assert extended_diagonal_positions(8, 16) == diagonal_positions(8)

    def test_smaller_budget_is_diagonal_subset(self):
        positions = extended_diagonal_positions(8, 8)
        assert positions <= diagonal_positions(8)
        assert len(positions) == 8

    def test_larger_budget_extends_by_load(self):
        positions = extended_diagonal_positions(8, 24)
        assert diagonal_positions(8) <= positions
        assert len(positions) == 24

    def test_bounds(self):
        with pytest.raises(ValueError):
            extended_diagonal_positions(8, 65)
        assert extended_diagonal_positions(8, 0) == set()

    def test_power_neutrality_bound(self):
        # Section 2: at most 64 - 38 = 26 big routers stay power neutral.
        assert 64 - min_small_routers(8) == 26


class TestMergingAblation:
    def _run(self, flit_merging):
        network = build_network(
            layout_by_name("diagonal+BL"), flit_merging=flit_merging
        )
        result = run_synthetic(
            network, UniformRandom(64), rate=0.04,
            warmup_packets=50, measure_packets=300, seed=8,
        )
        return network, result

    def test_disabled_merging_produces_no_pairs(self):
        network, result = self._run(flit_merging=False)
        assert merge_report(network, result.stats).merged_pairs == 0

    def test_disabled_merging_is_slower(self):
        _, with_merge = self._run(flit_merging=True)
        _, without = self._run(flit_merging=False)
        assert (
            with_merge.stats.avg_latency_cycles
            < without.stats.avg_latency_cycles
        )

    def test_transfer_model_consistent_without_merging(self):
        # With merging off, min_lanes is pinned to 1, so the analytic
        # transfer uses full serialization and blocking stays >= 0.
        _, result = self._run(flit_merging=False)
        for record in result.stats.records:
            assert record.blocking >= 0

    def test_config_flag_default_on(self):
        assert NetworkConfig().flit_merging


class TestScatteredPlacement:
    def test_positions_on_boundary(self):
        positions = _scattered_positions(8)
        assert len(positions) == 16
        for rid in positions:
            row, col = divmod(rid, 8)
            assert row in (0, 7) or col in (0, 7)

    def test_deterministic(self):
        assert _scattered_positions(8) == _scattered_positions(8)
