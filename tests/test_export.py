"""Tests for the CSV export helpers."""

import csv

import pytest

from repro.experiments.export import (
    export_experiment,
    flatten_curves,
    flatten_grid,
    write_rows,
)


class TestWriteRows:
    def test_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = write_rows(tmp_path / "out.csv", rows)
        with path.open() as handle:
            back = list(csv.DictReader(handle))
        assert back == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_creates_directories(self, tmp_path):
        path = write_rows(tmp_path / "deep" / "nested" / "out.csv", [{"a": 1}])
        assert path.exists()

    def test_explicit_fieldnames_subset(self, tmp_path):
        path = write_rows(
            tmp_path / "out.csv", [{"a": 1, "b": 2}], fieldnames=["b"]
        )
        with path.open() as handle:
            assert list(csv.DictReader(handle)) == [{"b": "2"}]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_rows(tmp_path / "out.csv", [])


class TestFlatteners:
    def test_flatten_grid(self):
        records = flatten_grid([[0.1, 0.2], [0.3, 0.4]], value_name="util")
        assert records[0] == {"row": 0, "col": 0, "util": 0.1}
        assert records[-1] == {"row": 1, "col": 1, "util": 0.4}
        assert len(records) == 4

    def test_flatten_curves(self):
        records = flatten_curves(
            {"baseline": [{"rate": 0.01, "lat": 10.0}]}, series_name="layout"
        )
        assert records == [{"layout": "baseline", "rate": 0.01, "lat": 10.0}]


class TestExportExperiment:
    def test_exports_recognized_shapes(self, tmp_path):
        data = {
            "curves": {"baseline": [{"rate": 0.01, "latency_ns": 9.0}]},
            "buffer_utilization": [[0.1, 0.2], [0.3, 0.4]],
            "rows": [{"num_big": 8, "power_w": 20.0}],
            "scalar_ignored": 42,
        }
        written = export_experiment("fig", data, tmp_path)
        names = {p.name for p in written}
        assert names == {
            "fig_curves.csv",
            "fig_buffer_utilization.csv",
            "fig_rows.csv",
        }

    def test_real_harness_output_exports(self, tmp_path):
        from repro.experiments import fig01_utilization

        data = fig01_utilization.run(fast=True)
        written = export_experiment("fig01", data, tmp_path)
        assert any("buffer_utilization" in p.name for p in written)
        # Each heat-map CSV has 64 data rows for the 8x8 mesh.
        target = next(p for p in written if "buffer_utilization" in p.name)
        with target.open() as handle:
            assert len(list(csv.DictReader(handle))) == 64
