"""Unit tests for the router microarchitecture.

These manipulate a single router directly (with hand-wired outputs) to
check buffer write/credit bookkeeping, lazy route computation, VC
allocation and the switch-allocation eligibility rules in isolation from
the network.
"""

import pytest

from repro.noc.config import NetworkConfig, RouterConfig
from repro.noc.flit import Packet
from repro.noc.link import Link, link_width_between
from repro.noc.network import Network
from repro.noc.router import Router
from repro.noc.topology import Mesh


def _standalone_router(num_vcs=3, depth=3):
    """A router with 5 ports; port 0 local, others wired to dummies."""
    config = RouterConfig(num_vcs=num_vcs, buffer_depth=depth)
    router = Router(
        router_id=0,
        config=config,
        num_ports=5,
        local_ports=[0],
        network_config=NetworkConfig(),
    )
    for port in range(5):
        if port == 0:
            router.attach_output(port, None, 0, 0)
        else:
            link = Link(
                src_router=0, src_port=port, dst_router=1, dst_port=port,
                width_bits=config.link_width, flit_width_bits=config.flit_width,
            )
            router.attach_output(port, link, num_vcs, depth)
    return router


def _flit(src=0, dst=1, num_flits=1):
    return Packet(src=src, dst=dst, num_flits=num_flits, created_at=0).make_flits()


class TestBufferWrite:
    def test_write_sets_ready_cycle(self):
        router = _standalone_router()
        (flit,) = _flit()
        router.write_flit(1, 0, flit, cycle=10)
        assert flit.ready_at == 11  # 2-stage pipeline: eligible next cycle
        assert router.occupied_flits == 1
        assert router.activity.buffer_writes == 1

    def test_overflow_detected(self):
        router = _standalone_router(depth=2)
        flits = _flit(num_flits=3)
        router.write_flit(1, 0, flits[0], 0)
        router.write_flit(1, 0, flits[1], 0)
        with pytest.raises(RuntimeError):
            router.write_flit(1, 0, flits[2], 0)

    def test_free_slots(self):
        router = _standalone_router(depth=3)
        assert router.free_slots(1, 0) == 3
        (flit,) = _flit()
        router.write_flit(1, 0, flit, 0)
        assert router.free_slots(1, 0) == 2

    def test_input_vc_free_logic(self):
        router = _standalone_router()
        assert router.input_vc_free(0, 0)
        (flit,) = _flit()
        router.write_flit(0, 0, flit, 0)
        assert not router.input_vc_free(0, 0)


class TestCredits:
    def test_return_credit_bounded(self):
        router = _standalone_router(depth=3)
        router.out_credits[1][0] = 2
        router.return_credit(1, 0)
        assert router.out_credits[1][0] == 3
        with pytest.raises(RuntimeError):
            router.return_credit(1, 0)  # above the downstream depth

    def test_release_vc(self):
        router = _standalone_router()
        router.out_vc_owner[1][0] = 42
        router.release_vc(1, 0)
        assert router.out_vc_owner[1][0] is None


class TestWormholeProtocolChecks:
    def test_body_flit_without_head_rejected(self):
        network = Network(
            Mesh(2),
            {r: RouterConfig() for r in range(4)},
            NetworkConfig(),
        )
        router = network.routers[0]
        flits = _flit(src=0, dst=1, num_flits=3)
        # Write a body flit with no preceding head into an empty VC.
        router.write_flit(0, 0, flits[1], 0)
        with pytest.raises(RuntimeError):
            router.allocate_vcs(network.routing, 1)


class TestLinkWidthRule:
    def test_wider_endpoint_wins(self):
        from repro.noc.config import baseline_router, big_router, small_router

        assert link_width_between(small_router(), small_router()) == 128
        assert link_width_between(small_router(), big_router()) == 256
        assert link_width_between(big_router(), big_router()) == 256
        assert link_width_between(baseline_router(), baseline_router()) == 192

    def test_link_validation(self):
        with pytest.raises(ValueError):
            Link(0, 1, 1, 1, width_bits=64, flit_width_bits=128)
        with pytest.raises(ValueError):
            Link(0, 1, 1, 1, width_bits=128, flit_width_bits=128, delay=0)


class TestSwitchAllocationThroughNetwork:
    """SA behaviours that need real routing: via a 2x2 network."""

    @staticmethod
    def _network():
        return Network(
            Mesh(2), {r: RouterConfig(num_vcs=2) for r in range(4)}, NetworkConfig()
        )

    def test_flit_not_eligible_before_ready(self):
        network = self._network()
        router = network.routers[0]
        packet = network.make_packet(0, 1)
        packet.num_flits = 1
        (flit,) = packet.make_flits()
        router.write_flit(0, 0, flit, cycle=0)
        router.allocate_vcs(network.routing, 0)
        assert router.allocate_switch(0) == []  # stage 1 not finished
        router.allocate_vcs(network.routing, 1)
        grants = router.allocate_switch(1)
        assert len(grants) == 1
        assert grants[0].out_port == network.topology.direction_port(1)  # east

    def test_grant_consumes_credit_and_holds_vc(self):
        network = self._network()
        router = network.routers[0]
        packet = network.make_packet(0, 1)
        packet.num_flits = 2
        head, tail = packet.make_flits()
        router.write_flit(0, 0, head, 0)
        router.write_flit(0, 0, tail, 0)
        router.allocate_vcs(network.routing, 1)
        grants = router.allocate_switch(1)
        router.commit_grant(grants[0])
        out_port, out_vc = grants[0].out_port, grants[0].out_vc
        assert router.out_credits[out_port][out_vc] == 4  # depth 5 - 1
        assert router.out_vc_owner[out_port][out_vc] == packet.packet_id
        # Tail departs next round; the VC is still held (conservative
        # reallocation: released only when the tail drains downstream).
        router.allocate_vcs(network.routing, 2)
        grants = router.allocate_switch(2)
        router.commit_grant(grants[0])
        assert router.out_vc_owner[out_port][out_vc] == packet.packet_id

    def test_two_packets_different_vcs_share_link(self):
        network = self._network()
        router = network.routers[0]
        for _ in range(2):
            packet = network.make_packet(0, 1)
            packet.num_flits = 1
            (flit,) = packet.make_flits()
            vc = 0 if router.input_vc_free(0, 0) else 1
            router.write_flit(0, vc, flit, 0)
        router.allocate_vcs(network.routing, 1)
        # Narrow output: only one flit per cycle despite two eligible VCs.
        grants = router.allocate_switch(1)
        assert len(grants) == 1
