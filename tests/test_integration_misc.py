"""Cross-module integration tests: alternative topologies end to end,
self-similar injection through the network, CMP memory-controller
placements, and the asymmetric-CMP harness on a small mesh."""

import pytest

from repro.cmp.cache import CacheConfig
from repro.cmp.system import CmpConfig, CmpSystem
from repro.core.layouts import baseline_layout
from repro.experiments import run_all
from repro.noc.config import NetworkConfig, RouterConfig
from repro.noc.network import Network
from repro.noc.topology import ConcentratedMesh, FlattenedButterfly
from repro.traffic.patterns import UniformRandom
from repro.traffic.runner import run_synthetic
from repro.traffic.selfsimilar import SelfSimilarInjector
from repro.traffic.workloads import WORKLOADS, generate_core_trace


class TestAlternativeTopologiesEndToEnd:
    def _run(self, topology, rate=0.02):
        configs = {r: RouterConfig() for r in range(topology.num_routers)}
        network = Network(topology, configs, NetworkConfig())
        return run_synthetic(
            network, UniformRandom(topology.num_nodes), rate=rate,
            warmup_packets=30, measure_packets=200, seed=12,
        )

    def test_concentrated_mesh_delivers(self):
        result = self._run(ConcentratedMesh(4, concentration=4))
        assert result.measured_packets == 200
        assert not result.saturated

    def test_flattened_butterfly_delivers_with_low_hop_count(self):
        result = self._run(FlattenedButterfly(4, concentration=4))
        assert result.measured_packets == 200
        # Minimal fbfly routing: at most 2 network hops per packet.
        assert result.stats.avg_hops <= 2.0

    def test_fbfly_beats_cmesh_latency(self):
        """Richer connectivity -> lower zero-ish-load latency."""
        cmesh = self._run(ConcentratedMesh(4, concentration=4))
        fbfly = self._run(FlattenedButterfly(4, concentration=4))
        assert fbfly.stats.avg_latency_cycles < cmesh.stats.avg_latency_cycles


class TestSelfSimilarEndToEnd:
    def test_network_survives_bursts(self):
        from repro.noc.topology import Mesh

        network = Network(
            Mesh(8), {r: RouterConfig() for r in range(64)}, NetworkConfig()
        )
        injector = SelfSimilarInjector(num_nodes=64, rate=0.02, seed=4)
        result = run_synthetic(
            network, UniformRandom(64), rate=0.02,
            warmup_packets=50, measure_packets=300, seed=4, injector=injector,
        )
        assert result.measured_packets == 300
        # Bursty arrivals push the latency tail beyond the Bernoulli case.
        assert result.stats.latency_percentile(0.95) >= result.stats.avg_latency_cycles


class TestCmpMemoryPlacements:
    def _system(self, placement):
        config = CmpConfig(
            l1=CacheConfig(size_bytes=4 * 1024, associativity=2),
            l2_bank=CacheConfig(size_bytes=32 * 1024, associativity=8, latency=6),
            mc_placement=placement,
            start_stagger_window=32,
        )
        profile = WORKLOADS["SAP"]
        traces = {
            core: generate_core_trace(profile, core, 60, seed=6)
            for core in range(64)
        }
        return CmpSystem(baseline_layout(8), traces, config=config)

    @pytest.mark.parametrize("placement", ["corners", "diamond", "diagonal"])
    def test_all_placements_complete(self, placement):
        system = self._system(placement)
        system.warm_caches()
        system.run(max_cycles=400_000)
        assert all(core.done for core in system.cores.values())
        assert sum(mc.reads_served for mc in system.mcs.values()) > 0

    def test_distributed_controllers_reduce_memory_latency(self):
        results = {}
        for placement in ("corners", "diamond"):
            system = self._system(placement)
            system.warm_caches()
            system.run(max_cycles=400_000)
            results[placement] = system.miss_latency_stats(via_memory_only=True)
        assert results["diamond"]["mean"] < results["corners"]["mean"]


class TestAsymmetricHarnessSmall:
    def test_fig14_on_4x4(self):
        from repro.experiments.fig14_asymmetric import run

        data = run(records_large=60, records_small=40, fast=False, mesh_size=4)
        assert set(data["results"]) == {
            "HomoNoC-XY", "HeteroNoC-XY", "HeteroNoC-Table+XY",
        }
        for r in data["results"].values():
            assert r["weighted_speedup"] > 0
            assert r["harmonic_speedup"] > 0


class TestRunAllCli:
    def test_dispatch_unknown(self):
        assert run_all.main(["not-an-experiment"]) == 2

    def test_dispatch_single(self, capsys):
        assert run_all.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_resume_reports_journal_and_writes_manifest(
        self, tmp_path, capsys, monkeypatch
    ):
        import json

        monkeypatch.setenv(
            "REPRO_SWEEP_CACHE", str(tmp_path / "sweeps.sqlite")
        )
        # table1 runs no sweeps, so the first --resume pass sees an
        # empty journal; the flag must still report and continue.
        assert run_all.main(["--resume", "table1"]) == 0
        err = capsys.readouterr().err
        assert "[resume] no journalled sweeps yet" in err
        manifest_path = tmp_path / "sweeps.resume.json"
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["name"] == "run_all_resume"
        assert manifest["extra"]["resume"]["harnesses"] == ["table1"]

    def test_resume_without_cache_rejected(self, capsys):
        assert run_all.main(["--resume", "--no-cache", "table1"]) == 2
        assert "--resume needs the cache" in capsys.readouterr().out
