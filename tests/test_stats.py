"""Unit tests for statistics collection."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layouts import baseline_layout, build_network
from repro.noc.stats import LatencyRecord, NetworkStats, RouterActivity
from repro.traffic.patterns import UniformRandom
from repro.traffic.runner import run_synthetic


def _record(packet_id=0, total=20, queuing=2, transfer=15, **kwargs):
    blocking = total - queuing - transfer
    return LatencyRecord(
        packet_id=packet_id,
        src=0,
        dst=5,
        num_flits=6,
        hops=4,
        total=total,
        queuing=queuing,
        transfer=transfer,
        blocking=blocking,
        **kwargs,
    )


class TestLatencyRecord:
    def test_components_must_sum(self):
        with pytest.raises(ValueError):
            LatencyRecord(
                packet_id=0, src=0, dst=1, num_flits=1, hops=1,
                total=10, queuing=1, transfer=5, blocking=5,
            )

    def test_valid_record(self):
        record = _record()
        assert record.blocking == 3


class TestRouterActivity:
    def test_snapshot_and_delta(self):
        activity = RouterActivity(buffer_capacity_flits=75)
        activity.buffer_writes = 10
        activity.merged_flit_pairs = 2
        snap = activity.snapshot()
        activity.buffer_writes = 25
        activity.merged_flit_pairs = 5
        delta = activity.delta_since(snap)
        assert delta.buffer_writes == 15
        assert delta.merged_flit_pairs == 3
        assert delta.buffer_capacity_flits == 75

    def test_snapshot_is_independent(self):
        activity = RouterActivity()
        snap = activity.snapshot()
        activity.buffer_reads = 7
        assert snap.buffer_reads == 0


class TestNetworkStats:
    def _stats_with_records(self, totals):
        stats = NetworkStats(num_routers=4, num_nodes=4)
        for i, total in enumerate(totals):
            stats.record_packet(_record(packet_id=i, total=total))
        return stats

    def test_mean_latency(self):
        stats = self._stats_with_records([20, 30, 40])
        assert stats.avg_latency_cycles == pytest.approx(30.0)

    def test_latency_components(self):
        stats = self._stats_with_records([20, 20])
        assert stats.avg_queuing_cycles == pytest.approx(2.0)
        assert stats.avg_transfer_cycles == pytest.approx(15.0)
        assert stats.avg_blocking_cycles == pytest.approx(3.0)
        assert stats.avg_network_latency_cycles == pytest.approx(18.0)

    def test_latency_ns_scaling(self):
        stats = self._stats_with_records([22])
        assert stats.avg_latency_ns(2.2) == pytest.approx(10.0)

    def test_empty_stats_raise(self):
        stats = NetworkStats(4, 4)
        with pytest.raises(ValueError):
            _ = stats.avg_latency_cycles

    def test_percentile(self):
        stats = self._stats_with_records([10, 20, 30, 40, 50, 60, 70, 80, 90, 100])
        assert stats.latency_percentile(0.5) == pytest.approx(50.0)
        assert stats.latency_percentile(1.0) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            stats.latency_percentile(1.5)

    def test_percentile_zero_is_minimum(self):
        stats = self._stats_with_records([70, 10, 40])
        assert stats.latency_percentile(0.0) == pytest.approx(10.0)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            NetworkStats(4, 4).latency_percentile(0.5)

    def test_std(self):
        stats = self._stats_with_records([20, 40])
        assert stats.latency_std_cycles() == pytest.approx(10.0)

    def test_throughput_uses_window(self):
        stats = self._stats_with_records([20])
        stats.measured_cycles = 100
        stats.window_packet_deliveries = 40
        stats.window_flit_deliveries = 240
        assert stats.accepted_packets_per_node_per_cycle == pytest.approx(0.1)
        assert stats.accepted_flits_per_node_per_cycle == pytest.approx(0.6)

    def test_throughput_needs_window(self):
        stats = NetworkStats(4, 4)
        with pytest.raises(ValueError):
            _ = stats.accepted_packets_per_node_per_cycle

    def test_buffer_utilization(self):
        stats = NetworkStats(2, 2)
        stats.measured_cycles = 10
        stats.router_activity[0].buffer_capacity_flits = 30
        stats.router_activity[0].occupancy_integral = 60
        assert stats.buffer_utilization(0) == pytest.approx(0.2)
        assert stats.buffer_utilization(1) == 0.0

    def test_link_utilization(self):
        stats = NetworkStats(2, 2)
        stats.measured_cycles = 20
        stats.link_lanes[(0, 2)] = 1
        stats.link_busy_cycles[(0, 2)] = 5
        assert stats.link_utilization(0, 2) == pytest.approx(0.25)
        assert stats.router_link_utilization(0, 5) == pytest.approx(0.25)
        assert stats.router_link_utilization(1, 5) == 0.0

    def test_summary_keys(self):
        stats = self._stats_with_records([20])
        stats.measured_cycles = 10
        stats.window_packet_deliveries = 1
        summary = stats.summary(2.2)
        assert set(summary) >= {
            "avg_latency_cycles",
            "avg_latency_ns",
            "throughput_packets_per_node_cycle",
            "p95_latency_cycles",
            "p99_latency_cycles",
            "measured_packets",
            "saturated",
        }
        assert summary["measured_packets"] == 1.0
        assert summary["saturated"] is False

    def test_summary_percentiles(self):
        stats = self._stats_with_records(list(range(10, 1010, 10)))
        summary = stats.summary()
        assert summary["p95_latency_cycles"] == pytest.approx(950.0)
        assert summary["p99_latency_cycles"] == pytest.approx(990.0)

    def test_summary_empty_window_is_nan_not_raise(self):
        stats = NetworkStats(4, 4)
        stats.saturated = True
        summary = stats.summary()
        assert summary["measured_packets"] == 0.0
        assert summary["saturated"] is True
        for key in (
            "avg_latency_cycles",
            "avg_latency_ns",
            "avg_queuing_cycles",
            "avg_blocking_cycles",
            "avg_transfer_cycles",
            "avg_hops",
            "p95_latency_cycles",
            "p99_latency_cycles",
            "throughput_packets_per_node_cycle",
        ):
            assert math.isnan(summary[key]), key

    def test_summary_of_saturated_run_does_not_crash(self):
        network = build_network(baseline_layout(4))
        result = run_synthetic(
            network, UniformRandom(16), rate=0.5,
            warmup_packets=10, measure_packets=200, seed=3,
            drain_cycle_cap=100,
        )
        assert result.saturated
        summary = result.stats.summary()
        assert summary["saturated"] is True
        assert summary["measured_packets"] == float(len(result.stats.records))


class TestStatisticalProperties:
    """Property-style invariants under random traffic."""

    @staticmethod
    def _run(seed: int, rate: float):
        network = build_network(baseline_layout(4))
        result = run_synthetic(
            network, UniformRandom(16), rate=rate,
            warmup_packets=20, measure_packets=80, seed=seed,
            drain_cycle_cap=30_000,
        )
        return network, result

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rate=st.floats(min_value=0.01, max_value=0.10),
    )
    def test_latency_decomposition_invariant(self, seed, rate):
        _, result = self._run(seed, rate)
        assert result.stats.records
        for record in result.stats.records:
            assert record.total == (
                record.queuing + record.transfer + record.blocking
            )
            assert record.queuing >= 0
            assert record.transfer > 0
            assert record.blocking >= 0
            assert record.hops >= 0

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rate=st.floats(min_value=0.01, max_value=0.10),
    )
    def test_utilization_bounds(self, seed, rate):
        network, result = self._run(seed, rate)
        stats = result.stats
        for router in range(network.topology.num_routers):
            assert 0.0 <= stats.buffer_utilization(router) <= 1.0
        for router, port in stats.link_lanes:
            assert 0.0 <= stats.link_utilization(router, port) <= 1.0
        for router in range(network.topology.num_routers):
            n_ports = network.topology.num_ports(router)
            assert 0.0 <= stats.router_link_utilization(router, n_ports) <= 1.0
