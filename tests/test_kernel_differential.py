"""Differential testing: the four cycle kernels against each other.

:meth:`Network.step` can be driven by four kernels -- the event-driven
active-set kernel (default), the structure-of-arrays batch kernel
(``repro.noc.soa``), the compiled C kernel (``repro.noc.ckernel``,
skipped here only when no C compiler exists) and the retained full-scan
reference stepper -- and they must be *bit-identical*: same flit
movements, same arbitration pointer evolution, same activity counters,
same delivered packets, every cycle.  These tests drive all four over a
randomized matrix of mesh sizes, layouts, injection rates, payload
sizes and seeds (plus faulty and observed configurations, which
exercise the soa and c kernels' automatic fallback) and compare a deep
per-cycle digest of the complete simulation state.  Mid-run kernel
switches mirror ``tests/test_active_set.py``: flipping kernels while
wormholes are in flight must not perturb a single bit.
"""

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.layouts import build_network, layout_by_name
from repro.noc.ckernel import ckernel_available, unavailable_reason
from repro.noc.config import NetworkConfig
from repro.noc.flit import reset_packet_ids

KERNELS = NetworkConfig.KERNELS  # ("event", "soa", "naive", "c")

#: skip-or-run marker for tests that *require* the compiled kernel: on a
#: compilerless host they skip (the fallback ladder has its own tests in
#: tests/test_ckernel.py), everywhere else they must really run it.
needs_ckernel = pytest.mark.skipif(
    not ckernel_available(),
    reason=f"compiled kernel unavailable: {unavailable_reason()}",
)


def _kernel_param(name):
    return (
        pytest.param(name, marks=needs_ckernel) if name == "c" else name
    )


def _digest(net):
    """Deep per-cycle state digest: anything that can diverge shows here."""
    net.sync_kernel()
    routers = []
    for router in net.routers:
        allocator = router.allocator
        routers.append((
            router.occupied_flits,
            router._va_offset,
            tuple(router._port_active),
            tuple(tuple(credits) for credits in router.out_credits),
            tuple(tuple(owners) for owners in router.out_vc_owner),
            tuple(arb._next for arb in allocator.input_stage),
            tuple(arb._next for arb in allocator.output_stage),
            tuple(arb._next for arb in allocator.second_output_stage),
            tuple(vars(router.activity).values()),
            tuple(
                (
                    port,
                    vc,
                    state.packet_id,
                    state.route_port,
                    state.out_vc,
                    tuple(
                        (f.packet.packet_id, f.index, f.ready_at)
                        for f in state.queue
                    ),
                )
                for port in range(router.num_ports)
                for vc in range(router.num_vcs)
                if (state := router._vc_states[port][vc]).queue
                or state.packet_id is not None
            ),
        ))
    events = tuple(
        (when, tuple((r, p, v, f.packet.packet_id, f.index) for r, p, v, f in evs))
        for when, evs in sorted(net._arrivals.items())
    )
    credits = tuple(
        (when, tuple(evs)) for when, evs in sorted(net._credits.items())
    )
    return (
        net.cycle,
        net.packets_in_flight,
        net.total_delivered,
        tuple(routers),
        events,
        credits,
    )


def _run_one(kernel, mesh_size, layout, rate, seed, cycles, payload_bits):
    """Drive one kernel with deterministic traffic; return digests."""
    reset_packet_ids()
    net = build_network(layout_by_name(layout, mesh_size))
    net.use_kernel(kernel)
    assert net.kernel == kernel
    rng = random.Random(seed)
    num_nodes = net.topology.num_nodes
    digests = []
    delivered = []
    net.on_delivery = lambda packet, cycle: delivered.append(
        (packet.packet_id, packet.src, packet.dst, cycle, packet.hops,
         packet.min_lanes)
    )
    for _ in range(cycles):
        for node in range(num_nodes):
            if rng.random() < rate:
                dst = rng.randrange(num_nodes)
                if dst != node:
                    net.enqueue(
                        net.make_packet(node, dst, payload_bits=payload_bits)
                    )
        net.step()
        digests.append(_digest(net))
    # Let in-flight traffic settle (bounded, in case of congestion).
    settle = 0
    while not net.idle() and settle < 3000:
        net.step()
        digests.append(_digest(net))
        settle += 1
    return digests, delivered


def _assert_same(reference, other, name):
    assert reference[1] == other[1], (
        f"delivered-packet records diverged (event vs {name})"
    )
    assert len(reference[0]) == len(other[0]), (
        f"kernels ran different cycle counts (event vs {name})"
    )
    for cycle_index, (a, b) in enumerate(zip(reference[0], other[0])):
        assert a == b, f"state digest diverged at step {cycle_index} ({name})"


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    mesh_size=st.sampled_from([2, 3, 4]),
    layout=st.sampled_from(["baseline", "diagonal+BL"]),
    rate=st.floats(min_value=0.01, max_value=0.35),
    seed=st.integers(min_value=0, max_value=2**16),
    payload_bits=st.sampled_from([64, 1024]),
)
def test_four_kernels_bit_identical(mesh_size, layout, rate, seed, payload_bits):
    cycles = 120
    event = _run_one(
        "event", mesh_size, layout, rate, seed, cycles, payload_bits
    )
    others = ["soa", "naive"]
    if ckernel_available():
        others.append("c")
    for name in others:
        other = _run_one(
            name, mesh_size, layout, rate, seed, cycles, payload_bits
        )
        _assert_same(event, other, name)


@pytest.mark.parametrize("layout", ["baseline", "diagonal+B", "diagonal+BL"])
def test_four_kernels_loaded_smoke(layout):
    """One fixed loaded point per layout, all kernels (fast determinism
    check that runs without hypothesis -- the CI soa-/ckernel-smoke
    subset).  On a compilerless host the ``"c"`` run transparently
    degrades to soa, which must *still* be bit-identical."""
    runs = {
        name: _run_one(name, 4, layout, 0.20, 1234, 150, 1024)
        for name in KERNELS
    }
    _assert_same(runs["event"], runs["soa"], "soa")
    _assert_same(runs["event"], runs["naive"], "naive")
    _assert_same(runs["event"], runs["c"], "c")


@pytest.mark.parametrize("kernel", ["naive", "soa", "c"])
def test_kernels_match_event_under_faults(kernel):
    """Faulty runs: naive really steps, a requested soa or c kernel
    transparently falls back to the event kernel -- all must match it
    bit-for-bit."""
    from repro.faults.schedule import FaultSchedule, FaultSpec
    from repro.traffic.patterns import pattern_by_name
    from repro.traffic.runner import run_synthetic

    def run(name):
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 4))
        net.use_kernel(name)
        faults = FaultSchedule(
            specs=(
                FaultSpec(kind="link", router=5, port=2, mode="transient",
                          at=150, repair_after=200),
                FaultSpec(kind="router", router=10, mode="transient",
                          at=260, repair_after=120),
            ),
            seed=3,
        )
        result = run_synthetic(
            net, pattern_by_name("uniform_random", net.topology),
            0.08, seed=11, faults=faults,
            warmup_packets=80, measure_packets=300,
        )
        if name in ("soa", "c"):
            # Dynamic (fault-aware) routing forces the fallback.
            assert net.soa_active is False
            assert net.active_kernel == "event"
        stats = net.stats
        return (
            result.total_cycles,
            stats.packets_offered,
            len(stats.records),
            sorted(
                (r.packet_id, r.total, r.hops, r.transfer, r.blocking)
                for r in stats.records
            ),
            _digest(net),
        )

    assert run("event") == run(kernel)


def test_switching_kernels_mid_run_is_safe():
    """Active sets and packed state are maintained by every kernel, so
    flipping mid-run (e.g. to bisect a divergence) must not lose any
    traffic."""
    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 3))
    rng = random.Random(7)
    num_nodes = net.topology.num_nodes
    offered = 0
    schedule = {60: "soa", 120: "naive", 180: "c", 240: "event"}
    for step_index in range(300):
        if step_index in schedule:
            net.use_kernel(schedule[step_index])
        for node in range(num_nodes):
            if rng.random() < 0.1:
                dst = rng.randrange(num_nodes)
                if dst != node:
                    if net.enqueue(net.make_packet(node, dst)):
                        offered += 1
        net.step()
    net.drain()
    assert net.total_delivered == offered
    assert net.total_buffered_flits() == 0


@pytest.mark.parametrize("pivot", ["soa", "naive", _kernel_param("c")])
def test_mid_run_switch_is_bit_identical(pivot):
    """A kernel hand-off mid-wormhole must not perturb a single bit:
    event-for-the-whole-run == switch-away-and-back."""

    def run(switch):
        reset_packet_ids()
        net = build_network(layout_by_name("diagonal+BL", 4))
        rng = random.Random(99)
        num_nodes = net.topology.num_nodes
        for step_index in range(240):
            if switch:
                if step_index == 80:
                    net.use_kernel(pivot)
                elif step_index == 160:
                    net.use_kernel("event")
            for node in range(num_nodes):
                if rng.random() < 0.15:
                    dst = rng.randrange(num_nodes)
                    if dst != node:
                        net.enqueue(net.make_packet(node, dst))
            net.step()
        net.drain()
        return _digest(net)

    assert run(False) == run(True)


def test_kernel_env_overrides():
    """REPRO_KERNEL selects the kernel at construction; the legacy
    REPRO_NAIVE_STEP=1 still wins for backwards compatibility."""
    try:
        os.environ["REPRO_KERNEL"] = "c"
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 2))
        assert net.kernel == "c"
        assert net.naive_step is False
        os.environ["REPRO_KERNEL"] = "soa"
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 2))
        assert net.kernel == "soa"
        assert net.naive_step is False
        os.environ["REPRO_NAIVE_STEP"] = "1"
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 2))
        assert net.kernel == "naive"
        assert net.naive_step is True
        # Dynamic lookups only: no precomputed tables in naive mode.
        assert all(r._route_table is None for r in net.routers)
    finally:
        del os.environ["REPRO_KERNEL"]
        del os.environ["REPRO_NAIVE_STEP"]
    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 2))
    assert net.kernel == "event"
    assert all(r._route_table is not None for r in net.routers)


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError, match="kernel"):
        NetworkConfig(kernel="vectorized")
    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 2))
    with pytest.raises(ValueError, match="unknown kernel"):
        net.use_kernel("vectorized")
    os.environ["REPRO_KERNEL"] = "bogus"
    try:
        with pytest.raises(ValueError):
            build_network(layout_by_name("baseline", 2))
    finally:
        del os.environ["REPRO_KERNEL"]


def test_soa_falls_back_when_hooks_attached():
    """Observation hooks and watchdogs need per-flit callbacks: a
    requested soa kernel must hand the cycle back to the event kernel
    while they are attached, and resume batching when detached."""
    from repro.faults import Watchdog

    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 3))
    net.use_kernel("soa")
    net.enqueue(net.make_packet(0, 8))
    net.step()
    assert net.soa_active is True

    watchdog = Watchdog(stall_window=10_000, check_interval=64)
    net.attach_watchdog(watchdog)
    net.step()
    assert net.soa_active is False, "watchdog must force the event kernel"
    assert net.kernel == "soa", "the *requested* kernel is unchanged"
    net.detach_watchdog()
    net.step()
    assert net.soa_active is True, "fallback must lift on detach"
    net.drain()
    assert net.total_delivered == 1
    assert net.total_buffered_flits() == 0


@needs_ckernel
def test_ckernel_falls_back_when_hooks_attached():
    """Same contract as the soa fallback: a requested c kernel hands the
    cycle to the event kernel while a watchdog is attached, and resumes
    compiled stepping when detached."""
    from repro.faults import Watchdog

    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 3))
    net.use_kernel("c")
    net.enqueue(net.make_packet(0, 8))
    net.step()
    assert net.active_kernel == "c"

    watchdog = Watchdog(stall_window=10_000, check_interval=64)
    net.attach_watchdog(watchdog)
    net.step()
    assert net.active_kernel == "event", "watchdog must force the event kernel"
    assert net.kernel == "c", "the *requested* kernel is unchanged"
    net.detach_watchdog()
    net.step()
    assert net.active_kernel == "c", "fallback must lift on detach"
    net.drain()
    assert net.total_delivered == 1
    assert net.total_buffered_flits() == 0


def test_route_tables_match_dynamic_routing():
    """Precomputed (router, dest) tables agree with per-packet RC."""
    reset_packet_ids()
    net = build_network(layout_by_name("diagonal+BL", 4))
    routing = net.routing
    for router in net.routers:
        table = router._route_table
        assert table is not None
        for dst in range(net.topology.num_nodes):
            probe = net.make_packet(src=0, dst=dst)
            assert table[dst] == routing.output_port(router.router_id, probe)


def test_route_tables_cleared_under_faults_and_restored():
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule

    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 3))
    assert all(r._route_table is not None for r in net.routers)
    injector = FaultInjector(FaultSchedule(specs=()), net.topology)
    net.attach_faults(injector)
    assert all(r._route_table is None for r in net.routers)
    net.detach_faults()
    assert all(r._route_table is not None for r in net.routers)


@pytest.mark.parametrize("layout", ["baseline", "diagonal+BL"])
def test_va_tables_follow_routing_kind(layout):
    """XY routing precomputes VA candidates; probe one router's table."""
    reset_packet_ids()
    net = build_network(layout_by_name(layout, 3))
    router = net.routers[0]
    assert router._va_table is not None
    for port in range(router.num_ports):
        expected = [(port, vc, False) for vc in range(router.out_vc_count[port])]
        assert list(router._va_table[port]) == expected
