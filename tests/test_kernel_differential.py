"""Differential testing: event-driven kernel vs the naive reference stepper.

The event-driven :meth:`Network.step` must be *bit-identical* to the
retained full-scan :meth:`Network._step_naive` -- same flit movements, same
arbitration pointer evolution, same delivered packets, every cycle.  These
tests drive both kernels over a randomized matrix of mesh sizes, layouts,
injection rates and seeds (plus a faulty configuration) and compare a deep
per-cycle digest of the complete simulation state.
"""

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.layouts import build_network, layout_by_name
from repro.noc.flit import reset_packet_ids


def _digest(net):
    """Deep per-cycle state digest: anything that can diverge shows here."""
    routers = []
    for router in net.routers:
        allocator = router.allocator
        routers.append((
            router.occupied_flits,
            router._va_offset,
            tuple(router._port_active),
            tuple(tuple(credits) for credits in router.out_credits),
            tuple(tuple(owners) for owners in router.out_vc_owner),
            tuple(arb._next for arb in allocator.input_stage),
            tuple(arb._next for arb in allocator.output_stage),
            tuple(arb._next for arb in allocator.second_output_stage),
            tuple(
                (
                    port,
                    vc,
                    state.packet_id,
                    state.route_port,
                    state.out_vc,
                    tuple(
                        (f.packet.packet_id, f.index, f.ready_at)
                        for f in state.queue
                    ),
                )
                for port in range(router.num_ports)
                for vc in range(router.num_vcs)
                if (state := router._vc_states[port][vc]).queue
                or state.packet_id is not None
            ),
        ))
    events = tuple(
        (when, tuple((r, p, v, f.packet.packet_id, f.index) for r, p, v, f in evs))
        for when, evs in sorted(net._arrivals.items())
    )
    credits = tuple(
        (when, tuple(evs)) for when, evs in sorted(net._credits.items())
    )
    return (
        net.cycle,
        net.packets_in_flight,
        net.total_delivered,
        tuple(routers),
        events,
        credits,
    )


def _run_one(naive, mesh_size, layout, rate, seed, cycles, payload_bits):
    """Drive one kernel with deterministic traffic; return digests."""
    reset_packet_ids()
    net = build_network(layout_by_name(layout, mesh_size))
    net.naive_step = naive
    assert net.naive_step is naive
    rng = random.Random(seed)
    num_nodes = net.topology.num_nodes
    digests = []
    delivered = []
    net.on_delivery = lambda packet, cycle: delivered.append(
        (packet.packet_id, packet.src, packet.dst, cycle, packet.hops,
         packet.min_lanes)
    )
    for _ in range(cycles):
        for node in range(num_nodes):
            if rng.random() < rate:
                dst = rng.randrange(num_nodes)
                if dst != node:
                    net.enqueue(
                        net.make_packet(node, dst, payload_bits=payload_bits)
                    )
        net.step()
        digests.append(_digest(net))
    # Let in-flight traffic settle (bounded, in case of congestion).
    settle = 0
    while not net.idle() and settle < 3000:
        net.step()
        digests.append(_digest(net))
        settle += 1
    return digests, delivered


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    mesh_size=st.sampled_from([2, 3, 4]),
    layout=st.sampled_from(["baseline", "diagonal+BL"]),
    rate=st.floats(min_value=0.01, max_value=0.35),
    seed=st.integers(min_value=0, max_value=2**16),
    payload_bits=st.sampled_from([64, 1024]),
)
def test_event_kernel_matches_naive(mesh_size, layout, rate, seed, payload_bits):
    cycles = 120
    event = _run_one(False, mesh_size, layout, rate, seed, cycles, payload_bits)
    naive = _run_one(True, mesh_size, layout, rate, seed, cycles, payload_bits)
    assert event[1] == naive[1], "delivered-packet records diverged"
    assert len(event[0]) == len(naive[0]), "kernels ran different cycle counts"
    for cycle_index, (a, b) in enumerate(zip(event[0], naive[0])):
        assert a == b, f"state digest diverged at step {cycle_index}"


def test_event_kernel_matches_naive_under_faults():
    """The dynamic-routing fallback path must also be identical."""
    from repro.faults.schedule import FaultSchedule, FaultSpec
    from repro.traffic.patterns import pattern_by_name
    from repro.traffic.runner import run_synthetic

    def run(naive):
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 4))
        net.naive_step = naive
        faults = FaultSchedule(
            specs=(
                FaultSpec(kind="link", router=5, port=2, mode="transient",
                          at=150, repair_after=200),
                FaultSpec(kind="router", router=10, mode="transient",
                          at=260, repair_after=120),
            ),
            seed=3,
        )
        result = run_synthetic(
            net, pattern_by_name("uniform_random", net.topology),
            0.08, seed=11, faults=faults,
            warmup_packets=80, measure_packets=300,
        )
        stats = net.stats
        return (
            result.total_cycles,
            stats.packets_offered,
            len(stats.records),
            sorted(
                (r.packet_id, r.total, r.hops, r.transfer, r.blocking)
                for r in stats.records
            ),
            _digest(net),
        )

    assert run(False) == run(True)


def test_switching_kernels_mid_run_is_safe():
    """Active sets are maintained by both kernels, so flipping mid-run
    (e.g. to bisect a divergence) must not lose any traffic."""
    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 3))
    rng = random.Random(7)
    num_nodes = net.topology.num_nodes
    offered = 0
    for step_index in range(300):
        if step_index == 90:
            net.naive_step = True
        if step_index == 180:
            net.naive_step = False
        for node in range(num_nodes):
            if rng.random() < 0.1:
                dst = rng.randrange(num_nodes)
                if dst != node:
                    if net.enqueue(net.make_packet(node, dst)):
                        offered += 1
        net.step()
    net.drain()
    assert net.total_delivered == offered
    assert net.total_buffered_flits() == 0


def test_naive_step_env_var():
    """REPRO_NAIVE_STEP=1 selects the reference stepper at construction."""
    os.environ["REPRO_NAIVE_STEP"] = "1"
    try:
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 2))
        assert net.naive_step is True
        # Dynamic lookups only: no precomputed tables in naive mode.
        assert all(r._route_table is None for r in net.routers)
    finally:
        del os.environ["REPRO_NAIVE_STEP"]
    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 2))
    assert net.naive_step is False
    assert all(r._route_table is not None for r in net.routers)


def test_route_tables_match_dynamic_routing():
    """Precomputed (router, dest) tables agree with per-packet RC."""
    reset_packet_ids()
    net = build_network(layout_by_name("diagonal+BL", 4))
    routing = net.routing
    for router in net.routers:
        table = router._route_table
        assert table is not None
        for dst in range(net.topology.num_nodes):
            probe = net.make_packet(src=0, dst=dst)
            assert table[dst] == routing.output_port(router.router_id, probe)


def test_route_tables_cleared_under_faults_and_restored():
    from repro.faults.injector import FaultInjector
    from repro.faults.schedule import FaultSchedule

    reset_packet_ids()
    net = build_network(layout_by_name("baseline", 3))
    assert all(r._route_table is not None for r in net.routers)
    injector = FaultInjector(FaultSchedule(specs=()), net.topology)
    net.attach_faults(injector)
    assert all(r._route_table is None for r in net.routers)
    net.detach_faults()
    assert all(r._route_table is not None for r in net.routers)


@pytest.mark.parametrize("layout", ["baseline", "diagonal+BL"])
def test_va_tables_follow_routing_kind(layout):
    """XY routing precomputes VA candidates; probe one router's table."""
    reset_packet_ids()
    net = build_network(layout_by_name(layout, 3))
    router = net.routers[0]
    assert router._va_table is not None
    for port in range(router.num_ports):
        expected = [(port, vc, False) for vc in range(router.out_vc_count[port])]
        assert list(router._va_table[port]) == expected
