"""Attribution correctness: exact link/pair counts and flit conservation.

The hand-built cases pin the per-link accounting to the X-Y route by
construction: a packet from router 0 to router 3 on a 4x4 mesh crosses
exactly the three east links (0,east), (1,east), (2,east) with all its
flits, and nothing else.  The hypothesis property then checks the global
invariant on random traffic: once the network drains, total link-flit
crossings equal ``sum(num_flits * hops)`` over delivered packets exactly.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.layouts import build_network, layout_by_name
from repro.noc.flit import reset_packet_ids
from repro.noc.topology import manhattan_distance
from repro.obs.attribution import (
    AttributionReport,
    attribute_metrics,
    attribute_stats,
    port_name,
)
from repro.obs.metrics import KernelMetrics

EAST, SOUTH = 2, 3  # mesh port indices (1 + direction)


def _instrumented(size=4):
    reset_packet_ids()
    net = build_network(layout_by_name("baseline", size))
    metrics = KernelMetrics(net)
    net.attach_observer(metrics)
    return net, metrics


def _send(net, src, dst, num_flits):
    packet = net.make_packet(src, dst)
    packet.num_flits = num_flits
    net.enqueue(packet)
    return packet


class TestHandBuiltRoutes:
    def test_single_row_packet_touches_exactly_its_east_links(self):
        net, metrics = _instrumented()
        _send(net, 0, 3, num_flits=5)
        net.drain()
        assert metrics.link_flits() == {
            (0, EAST): 5, (1, EAST): 5, (2, EAST): 5,
        }
        assert metrics.pair_flits() == {(0, 3): 5}
        assert metrics.pair_packets() == {(0, 3): 1}
        assert metrics.conserved  # 15 crossings == 5 flits x 3 hops

    def test_corner_to_corner_goes_x_then_y(self):
        net, metrics = _instrumented()
        _send(net, 0, 15, num_flits=2)
        net.drain()
        # X first along row 0 (0->1->2->3), then Y down column 3.
        assert metrics.link_flits() == {
            (0, EAST): 2, (1, EAST): 2, (2, EAST): 2,
            (3, SOUTH): 2, (7, SOUTH): 2, (11, SOUTH): 2,
        }
        assert metrics.conserved

    def test_overlapping_packets_sum_per_link(self):
        net, metrics = _instrumented()
        _send(net, 0, 3, num_flits=4)
        _send(net, 1, 3, num_flits=3)
        net.drain()
        assert metrics.link_flits() == {
            (0, EAST): 4, (1, EAST): 7, (2, EAST): 7,
        }
        assert metrics.pair_flits() == {(0, 3): 4, (1, 3): 3}

    def test_report_views_match_the_construction(self):
        net, metrics = _instrumented()
        _send(net, 0, 3, num_flits=4)
        _send(net, 1, 3, num_flits=3)
        net.drain()
        report = attribute_metrics(metrics)
        assert (report.width, report.height) == (4, 4)
        assert report.source == "metrics"
        assert report.conserved is True
        assert report.router_outgoing_flits() == {0: 4, 1: 7, 2: 7}
        grid = report.router_grid()
        assert len(grid) == 4 and all(len(row) == 4 for row in grid)
        assert grid[0] == [4, 7, 7, 0]
        assert all(cell == 0 for row in grid[1:] for cell in row)
        top = report.top_links(2)
        assert [(t["router"], t["port"], t["flits"]) for t in top] == [
            (1, EAST, 7), (2, EAST, 7),
        ]
        assert top[0]["direction"] == "east"
        assert report.top_pairs(1) == [
            {"src": 0, "dst": 3, "flits": 4, "packets": 1}
        ]
        assert report.top_routers(1)[0]["router"] == 1

    def test_port_names(self):
        assert port_name(0) == "local"
        assert [port_name(p) for p in (1, 2, 3, 4)] == [
            "north", "east", "south", "west",
        ]
        assert port_name(9) == "port9"


class TestSerialization:
    def _report(self):
        net, metrics = _instrumented()
        _send(net, 0, 15, num_flits=3)
        _send(net, 5, 6, num_flits=2)
        net.drain()
        return attribute_metrics(metrics)

    def test_json_round_trip(self, tmp_path):
        report = self._report()
        path = tmp_path / "attr.json"
        report.write_json(path)
        loaded = AttributionReport.read_json(path)
        assert loaded.link_flits == report.link_flits
        assert loaded.link_busy == report.link_busy
        assert loaded.pair_flits == report.pair_flits
        assert loaded.pair_packets == report.pair_packets
        assert loaded.conserved is True
        assert loaded.router_grid() == report.router_grid()

    def test_csv_export(self, tmp_path):
        report = self._report()
        links = tmp_path / "links.csv"
        pairs = tmp_path / "pairs.csv"
        report.write_csv(links, pairs)
        header, *rows = links.read_text().strip().splitlines()
        assert header.startswith("src_router,src_port,direction,flits")
        assert len(rows) == len(report.link_flits)
        assert len(pairs.read_text().strip().splitlines()) == 3  # header + 2


class TestStatsSource:
    def test_measurement_window_report(self):
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 4))
        net.begin_measurement()
        packet = net.make_packet(0, 3)
        packet.num_flits = 2
        packet.measured = True
        net.enqueue(packet)
        net.drain()
        net.end_measurement()
        report = attribute_stats(net)
        assert report.source == "stats"
        assert report.conserved is None  # not computable from a window
        assert report.link_flits[(0, EAST)] == 2
        assert report.pair_flits == {(0, 3): 2}
        assert report.pair_packets == {(0, 3): 1}


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=2, max_value=5),
    n_packets=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=20, deadline=None)
def test_link_flit_conservation_property(seed, size, n_packets):
    """Injected == delivered x hops, exactly, on any drained run."""
    rng = random.Random(seed)
    reset_packet_ids()
    net = build_network(layout_by_name("baseline", size))
    metrics = KernelMetrics(net)
    net.attach_observer(metrics)
    nodes = net.topology.num_nodes
    expected = 0
    for _ in range(n_packets):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        packet = _send(net, src, dst, rng.randint(1, 8))
        expected += packet.num_flits * manhattan_distance(
            net.topology, src, dst
        )
        if rng.random() < 0.5:
            net.step()
    net.drain(max_cycles=50_000)
    report = attribute_metrics(metrics)
    assert report.conserved is True
    assert report.link_flits_total == expected
    assert sum(report.link_flits.values()) == expected
