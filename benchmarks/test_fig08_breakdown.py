"""Benchmark: regenerate Figure 8 (latency and power breakdowns)."""

from benchmarks.conftest import print_banner
from repro.experiments import fig08_breakdown


def test_fig08_breakdown(benchmark):
    data = benchmark.pedantic(
        lambda: fig08_breakdown.run(rate=0.045, fast=True), rounds=1, iterations=1
    )
    print_banner("Figure 8: UR breakdowns, normalized to baseline")
    base_lat = data["latency"]["baseline"]["total"]
    base_pow = data["power"]["baseline"]["total"]
    for layout in data["latency"]:
        lat = data["latency"][layout]
        pow_ = data["power"][layout]
        print(
            f"{layout:12s} latency {100 * lat['total'] / base_lat:5.1f}% "
            f"(blk {100 * lat['blocking'] / base_lat:4.1f} / "
            f"que {100 * lat['queuing'] / base_lat:4.1f} / "
            f"xfer {100 * lat['transfer'] / base_lat:4.1f})   "
            f"power {100 * pow_['total'] / base_pow:5.1f}% "
            f"(buf {100 * pow_['buffers'] / base_pow:4.1f} / "
            f"xbar {100 * pow_['crossbar'] / base_pow:4.1f})"
        )
    hetero = data["power"]["diagonal+BL"]
    base = data["power"]["baseline"]
    assert hetero["total"] < base["total"]
    assert hetero["buffers"] < base["buffers"]
