"""Benchmarks: mechanism ablations and the big-router-count sensitivity
study (the paper's footnote-2 future work)."""

from benchmarks.conftest import print_banner
from repro.experiments import ablation_mechanisms, sensitivity_big_routers


def test_ablation_mechanisms(benchmark):
    data = benchmark.pedantic(
        lambda: ablation_mechanisms.run(fast=True), rounds=1, iterations=1
    )
    print_banner("Ablations: merging / flit accounting / placement")
    for name, v in data.items():
        print(
            f"{name:26s} latency {v['latency_ns']:6.1f} ns  "
            f"thpt {v['throughput']:.4f}  power {v['power_w']:5.1f} W  "
            f"merged {100 * v['merge_fraction']:.0f}%"
        )
    # Merging is load-bearing: disabling it costs latency on the same
    # layout, and the strict flit accounting costs much more.
    assert (
        data["diagonal+BL"]["latency_cycles"]
        < data["diagonal+BL/no-merging"]["latency_cycles"]
    )
    assert (
        data["diagonal+BL"]["latency_cycles"]
        < data["diagonal+BL/strict-flits"]["latency_cycles"]
    )
    # Placement is load-bearing: the same router mix scattered along the
    # boundary is slower than the diagonal placement.
    assert (
        data["diagonal+BL"]["latency_cycles"]
        < data["scattered+BL"]["latency_cycles"]
    )


def test_sensitivity_big_routers(benchmark):
    data = benchmark.pedantic(
        lambda: sensitivity_big_routers.run(budgets=(0, 8, 16, 24, 32), fast=True),
        rounds=1,
        iterations=1,
    )
    print_banner("Sensitivity: big-router budget (diagonal-first placements)")
    print(f"power-neutrality bound: <= {data['max_big_power_neutral']} big routers")
    for row in data["rows"]:
        print(
            f"  {row['num_big']:2d} big: latency {row['latency_ns']:6.1f} ns, "
            f"power {row['power_w']:5.1f} W, bisection {row['bisection_bits']} b, "
            f"power-neutral: {row['power_neutral']}"
        )
    assert data["max_big_power_neutral"] == 26  # the Section 2 bound
    by_budget = {row["num_big"]: row for row in data["rows"]}
    # More big routers always cost more power...
    assert by_budget[32]["power_w"] > by_budget[16]["power_w"] > by_budget[8]["power_w"]
    # ...and a 32-big network breaks power neutrality.
    assert not by_budget[32]["power_neutral"]
    assert by_budget[16]["power_neutral"]
