"""Benchmark: regenerate Figure 13 (memory-controller co-design)."""

from benchmarks.conftest import print_banner
from repro.experiments import fig13_memctrl


def test_fig13_memctrl(benchmark):
    def runner():
        return {
            name: fig13_memctrl.run_closed_loop_ur(
                placement, layout, num_requests=1280, seed=13
            )
            for name, (placement, layout) in fig13_memctrl.CONFIGURATIONS.items()
        }

    results = benchmark.pedantic(runner, rounds=1, iterations=1)
    print_banner("Figure 13: closed-loop UR request-response latency")
    reference = results["corners_homo"].mean_latency
    for name, result in results.items():
        reduction = 100.0 * (reference - result.mean_latency) / reference
        paper = fig13_memctrl.PAPER_REDUCTIONS.get(name)
        paper_txt = f"(paper {paper:+.0f}%)" if paper else "(reference)"
        print(
            f"{name:16s} mean {result.mean_latency:7.1f} cyc  "
            f"norm-std {result.normalized_std:.2f}  reduction {reduction:+6.1f}% {paper_txt}"
        )
    # Shapes: distributed controllers beat corners; the hetero network with
    # diagonal controllers is the best configuration.
    assert results["diamond_homo"].mean_latency < results["corners_homo"].mean_latency
    assert (
        results["diagonal_hetero"].mean_latency
        <= results["diamond_homo"].mean_latency * 1.02
    )
