"""Benchmark: regenerate Figure 11 (application latency/power, CMP mode)."""

from benchmarks.conftest import print_banner
from repro.experiments import fig11_applications
from repro.experiments.common import percent_reduction


def test_fig11_applications(benchmark):
    workloads = ("SPECjbb", "frrt")
    layouts = ("baseline", "diagonal+B", "diagonal+BL")
    data = benchmark.pedantic(
        lambda: fig11_applications.run(
            workloads=workloads, layouts=layouts, fast=True
        ),
        rounds=1,
        iterations=1,
    )
    print_banner("Figure 11: full-system network latency & power")
    for workload in workloads:
        base = data["results"][workload]["baseline"]
        for layout in layouts[1:]:
            r = data["results"][workload][layout]
            print(
                f"{workload:8s} {layout:12s} "
                f"net latency {percent_reduction(r['net_latency_cycles'], base['net_latency_cycles']):+6.1f}% "
                f"(paper ~+18.5%)  power {percent_reduction(r['power_w'], base['power_w']):+6.1f}% "
                f"(paper ~+22%)"
            )
    # Robust shape: the +BL layout always cuts network power.
    diag = data["summary"]["diagonal+BL"]
    assert diag["avg_power_reduction_pct"] > 5.0
