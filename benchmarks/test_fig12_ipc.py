"""Benchmark: regenerate Figure 12 (IPC improvement, CMP mode)."""

from benchmarks.conftest import print_banner
from repro.experiments import fig12_ipc


def test_fig12_ipc(benchmark):
    data = benchmark.pedantic(
        lambda: fig12_ipc.run(
            commercial=("SPECjbb",),
            parsec=("frrt",),
            layouts=("baseline", "diagonal+BL"),
            fast=True,
        ),
        rounds=1,
        iterations=1,
    )
    print_banner("Figure 12: IPC improvement over baseline")
    for workload, per_layout in data["improvements"]["diagonal+BL"].items():
        print(
            f"{workload:10s} diagonal+BL {per_layout:+6.1f}% "
            "(paper: +12% commercial / +10% PARSEC)"
        )
    # The CMP runs complete and report IPCs for every configuration.
    for workload, ipcs in data["ipc"].items():
        assert all(v > 0 for v in ipcs.values())
