"""Shared fixtures for the per-figure benchmark harnesses.

Each benchmark regenerates one paper table or figure at a reduced scale
(DESIGN.md's performance note) and prints the rows/series the paper
reports, so `pytest benchmarks/ --benchmark-only` both times the harness
and emits the reproduction numbers.
"""

def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
