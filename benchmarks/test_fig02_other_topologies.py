"""Benchmark: regenerate Figure 2 (cmesh + flattened butterfly maps)."""

from benchmarks.conftest import print_banner
from repro.experiments import fig02_other_topologies


def test_fig02_other_topologies(benchmark):
    data = benchmark.pedantic(
        lambda: fig02_other_topologies.run(fast=True), rounds=1, iterations=1
    )
    print_banner("Figure 2: non-uniform utilization in other topologies")
    cm_hi, cm_lo = data["cmesh_max_min"]
    fb_hi, fb_lo = data["fbfly_max_min"]
    print(f"cmesh buffer util spread: {100 * cm_hi:.1f}% .. {100 * cm_lo:.1f}%")
    print(f"fbfly buffer util spread: {100 * fb_hi:.1f}% .. {100 * fb_lo:.1f}%")
    assert cm_hi > cm_lo
    assert fb_hi > fb_lo
