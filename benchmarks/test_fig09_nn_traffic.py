"""Benchmark: regenerate Figure 9 (nearest-neighbour anomaly)."""

from benchmarks.conftest import print_banner
from repro.experiments import fig09_nn_traffic


def test_fig09_nn_traffic(benchmark):
    data = benchmark.pedantic(
        lambda: fig09_nn_traffic.run(rates=(0.04, 0.08, 0.11), fast=True),
        rounds=1,
        iterations=1,
    )
    print_banner("Figure 9: NN traffic (the HeteroNoC anomaly)")
    for layout, summary in data["summary"].items():
        print(
            f"{layout:12s} avg latency {summary['avg_latency_change_pct']:+6.1f}% "
            f"(paper: +7%), throughput {summary['throughput_change_pct']:+6.1f}% "
            f"(paper: -9.5%), power {summary['power_reduction_pct']:+6.1f}% (paper: ~7%)"
        )
    # The anomaly: one-hop traffic makes hetero WORSE on latency and
    # throughput (every path crosses the de-provisioned edge routers).
    diag = data["summary"]["diagonal+BL"]
    assert diag["avg_latency_change_pct"] > 0.0
    assert diag["throughput_change_pct"] < 0.0
