"""Benchmark: regenerate Figure 14 (asymmetric CMP + table routing)."""

from benchmarks.conftest import print_banner
from repro.experiments import fig14_asymmetric


def test_fig14_asymmetric(benchmark):
    data = benchmark.pedantic(
        lambda: fig14_asymmetric.run(fast=True), rounds=1, iterations=1
    )
    print_banner("Figure 14: asymmetric CMP (4 large + 60 small cores)")
    for name, result in data["results"].items():
        summary = data["summary"].get(name, {})
        print(
            f"{name:20s} WS {result['weighted_speedup']:.3f} "
            f"({summary.get('ws_improvement_pct', 0.0):+.1f}%; paper +6/+11%)  "
            f"HS {result['harmonic_speedup']:.3f} "
            f"({summary.get('hs_improvement_pct', 0.0):+.1f}%; paper +11.5%)"
        )
    # All three network configurations complete and report sane speedups.
    for result in data["results"].values():
        assert 0 < result["weighted_speedup"] <= 2.0
        assert 0 < result["harmonic_speedup"] <= 1.2
    # Shape: the heterogeneous network does not hurt the asymmetric CMP.
    assert data["summary"]["HeteroNoC-XY"]["ws_improvement_pct"] > -3.0
