"""Benchmark: regenerate Figure 7 (UR load-latency/throughput/power)."""

from benchmarks.conftest import print_banner
from repro.experiments import fig07_ur_traffic


def test_fig07_ur_traffic(benchmark):
    data = benchmark.pedantic(
        lambda: fig07_ur_traffic.run(
            rates=(0.02, 0.04, 0.06),
            layouts=("baseline", "center+B", "diagonal+B", "center+BL", "diagonal+BL"),
            fast=True,
        ),
        rounds=1,
        iterations=1,
    )
    print_banner("Figure 7: UR traffic (measured vs paper in parentheses)")
    for layout, summary in data["summary"].items():
        paper = fig07_ur_traffic.PAPER_SUMMARY.get(layout, (0, 0, 0))
        print(
            f"{layout:12s} throughput {summary['throughput_improvement_pct']:+6.1f}% "
            f"({paper[0]:+.0f}%), avg latency {summary['avg_latency_reduction_pct']:+6.1f}% "
            f"({paper[1]:+.0f}%), power {summary['power_reduction_pct']:+6.1f}% (~+22..28%)"
        )
    # Robust headline shapes: +BL layouts save power and accept at least
    # as much traffic as the baseline at the highest offered load.
    diag = data["summary"]["diagonal+BL"]
    assert diag["power_reduction_pct"] > 10.0
    assert diag["throughput_improvement_pct"] > -5.0
