"""Benchmark: raw cycle-kernel speed across traffic regimes.

Times the event-driven cycle kernel on the same frozen case matrix the
``python -m repro.noc.bench`` CLI records into ``BENCH_kernel.json``:
empty meshes (active-set fast path), uniform-random traffic at low, mid
and saturation rates on 4x4 and 8x8 meshes, and one faulty point (the
dynamic-routing fallback path).  Under ``--benchmark-disable`` each case
still runs once, which keeps the suite usable as a smoke test.
"""

import pytest

from repro.noc.bench import CASES, run_case

_CASES = {name: (kind, params) for name, kind, params in CASES}

SPEED_CASES = [
    "empty-4x4",
    "empty-8x8",
    "ur-4x4-r0.05",
    "ur-4x4-r0.15",
    "ur-4x4-r0.30",
    "ur-8x8-r0.05",
    "ur-8x8-r0.15",
    "ur-8x8-r0.30",
    "faulty-4x4-r0.05",
]


@pytest.mark.parametrize("name", SPEED_CASES)
def test_kernel_speed(benchmark, name):
    kind, params = _CASES[name]
    cycles, _wall = benchmark.pedantic(
        lambda: run_case(name, kind, params), rounds=1, iterations=1
    )
    assert cycles > 0


def test_naive_kernel_still_runs(benchmark):
    """The retained full-scan reference stepper stays exercised."""
    kind, params = _CASES["ur-4x4-r0.05"]
    cycles, _wall = benchmark.pedantic(
        lambda: run_case("ur-4x4-r0.05", kind, params, naive=True),
        rounds=1,
        iterations=1,
    )
    assert cycles > 0


@pytest.mark.parametrize("name", ["ur-8x8-r0.05", "faulty-4x4-r0.05"])
def test_soa_kernel_speed(benchmark, name):
    """The structure-of-arrays batch kernel stays exercised, including
    the faulty case where it must transparently fall back to the event
    kernel."""
    kind, params = _CASES[name]
    cycles, _wall = benchmark.pedantic(
        lambda: run_case(name, kind, params, kernel="soa"),
        rounds=1,
        iterations=1,
    )
    assert cycles > 0


def test_metrics_off_overhead():
    """Metrics disabled must cost <= 5% on the hot path.

    "Disabled" is the shipped lifecycle: construct a KernelMetrics,
    attach it, detach it before the run (the null-object fast path from
    ``tests/test_obs_fastpath.py``).  Interleaved best-of-N A/B timing
    cancels machine noise; the guard allows 5% plus a small absolute
    slack so sub-millisecond jitter cannot fail a fast machine.
    """
    import time

    from repro.core.layouts import build_network, layout_by_name
    from repro.noc.flit import reset_packet_ids
    from repro.obs.metrics import KernelMetrics
    from repro.traffic.patterns import pattern_by_name
    from repro.traffic.runner import run_synthetic

    def run_once(with_lifecycle):
        reset_packet_ids()
        net = build_network(layout_by_name("baseline", 4))
        if with_lifecycle:
            metrics = KernelMetrics(net)
            net.attach_observer(metrics)
            net.detach_observer()
        pattern = pattern_by_name("uniform_random", net.topology)
        t0 = time.perf_counter()
        run_synthetic(
            net, pattern, 0.05, seed=11,
            warmup_packets=100, measure_packets=600,
        )
        return time.perf_counter() - t0

    run_once(True)  # warm caches before timing
    plain = lifecycle = float("inf")
    for _ in range(5):
        plain = min(plain, run_once(False))
        lifecycle = min(lifecycle, run_once(True))
    assert lifecycle <= plain * 1.05 + 0.010, (
        f"metrics-off lifecycle {lifecycle:.4f}s vs plain "
        f"{plain:.4f}s exceeds the 5% budget"
    )
