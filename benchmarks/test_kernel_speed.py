"""Benchmark: raw cycle-kernel speed across traffic regimes.

Times the event-driven cycle kernel on the same frozen case matrix the
``python -m repro.noc.bench`` CLI records into ``BENCH_kernel.json``:
empty meshes (active-set fast path), uniform-random traffic at low, mid
and saturation rates on 4x4 and 8x8 meshes, and one faulty point (the
dynamic-routing fallback path).  Under ``--benchmark-disable`` each case
still runs once, which keeps the suite usable as a smoke test.
"""

import pytest

from repro.noc.bench import CASES, run_case

_CASES = {name: (kind, params) for name, kind, params in CASES}

SPEED_CASES = [
    "empty-4x4",
    "empty-8x8",
    "ur-4x4-r0.05",
    "ur-4x4-r0.15",
    "ur-4x4-r0.30",
    "ur-8x8-r0.05",
    "ur-8x8-r0.15",
    "ur-8x8-r0.30",
    "faulty-4x4-r0.05",
]


@pytest.mark.parametrize("name", SPEED_CASES)
def test_kernel_speed(benchmark, name):
    kind, params = _CASES[name]
    cycles, _wall = benchmark.pedantic(
        lambda: run_case(name, kind, params), rounds=1, iterations=1
    )
    assert cycles > 0


def test_naive_kernel_still_runs(benchmark):
    """The retained full-scan reference stepper stays exercised."""
    kind, params = _CASES["ur-4x4-r0.05"]
    cycles, _wall = benchmark.pedantic(
        lambda: run_case("ur-4x4-r0.05", kind, params, naive=True),
        rounds=1,
        iterations=1,
    )
    assert cycles > 0
