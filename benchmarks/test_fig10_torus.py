"""Benchmark: regenerate Figure 10 (mesh vs torus heterogeneity benefit)."""

from benchmarks.conftest import print_banner
from repro.experiments import fig10_torus


def test_fig10_torus(benchmark):
    data = benchmark.pedantic(
        lambda: fig10_torus.run(
            workloads=("SAP", "SPECjbb", "frrt", "sclst"), fast=True
        ),
        rounds=1,
        iterations=1,
    )
    print_banner("Figure 10: Diagonal+BL latency reduction, mesh vs torus")
    for workload in data["reductions"]["mesh"]:
        print(
            f"{workload:10s} mesh {data['reductions']['mesh'][workload]:+6.1f}%   "
            f"torus {data['reductions']['torus'][workload]:+6.1f}%"
        )
    print(
        f"average: mesh {data['mesh_avg_reduction_pct']:+.1f}%, "
        f"torus {data['torus_avg_reduction_pct']:+.1f}% "
        f"(paper: torus benefit ~44% smaller)"
    )
    # Shape: heterogeneity buys less on the edge-symmetric torus.
    assert data["torus_avg_reduction_pct"] <= data["mesh_avg_reduction_pct"] + 1.0


def test_fig10_torus_ur_crosscheck(benchmark):
    from repro.experiments.fig10_torus import run_uniform_random

    ur = benchmark.pedantic(
        lambda: run_uniform_random(fast=True), rounds=1, iterations=1
    )
    print_banner("Figure 10 (UR cross-check): mesh vs torus latency reduction")
    print(
        f"mesh {ur['mesh_reduction_pct']:+.1f}%   torus "
        f"{ur['torus_reduction_pct']:+.1f}%   (paper: torus ~44% smaller)"
    )
    assert ur["torus_reduction_pct"] < ur["mesh_reduction_pct"]
