"""Benchmark: regenerate Figure 1 (mesh buffer/link utilization maps)."""

from benchmarks.conftest import print_banner
from repro.experiments import fig01_utilization


def test_fig01_utilization(benchmark):
    data = benchmark.pedantic(
        lambda: fig01_utilization.run(fast=True), rounds=1, iterations=1
    )
    print_banner("Figure 1: 8x8 mesh utilization under UR (near saturation)")
    print(
        f"buffer util: center {100 * data['center_buffer_util']:.1f}% vs "
        f"edge {100 * data['edge_buffer_util']:.1f}% (paper: ~75% vs ~35%)"
    )
    print(
        f"link util:   center {100 * data['center_link_util']:.1f}% vs "
        f"edge {100 * data['edge_link_util']:.1f}%"
    )
    assert data["center_buffer_util"] > data["edge_buffer_util"]
    assert data["center_link_util"] > data["edge_link_util"]
