"""Benchmark: regenerate Table 1 (router power/area/frequency)."""

import pytest

from benchmarks.conftest import print_banner
from repro.experiments import table1_router_model


def test_table1_router_model(benchmark):
    data = benchmark.pedantic(table1_router_model.run, rounds=1, iterations=1)
    print_banner("Table 1: router characteristics")
    for label, values in data["routers"].items():
        paper = table1_router_model.PAPER_VALUES[label]
        print(
            f"{label:22s} {values['power_w']:.2f} W (paper {paper[0]:.2f}), "
            f"{values['area_mm2']:.3f} mm2 (paper {paper[1]:.3f}), "
            f"{values['frequency_ghz']:.2f} GHz (paper {paper[2]:.2f})"
        )
    acc = data["accounting"]
    print(
        f"buffer bits {acc['baseline_buffer_bits']} -> {acc['hetero_buffer_bits']} "
        f"({100 * acc['buffer_bit_reduction']:.1f}% reduction; paper 33%)"
    )
    for label, paper in table1_router_model.PAPER_VALUES.items():
        assert data["routers"][label]["power_w"] == pytest.approx(paper[0], rel=0.03)
        assert data["routers"][label]["area_mm2"] == pytest.approx(paper[1], abs=0.002)
    assert acc["buffer_bit_reduction"] == pytest.approx(1 / 3)
