"""The end-to-end chaos scenario.

One function, :func:`run_chaos_scenario`, drives a real sweep through
every fault family and asserts the crash-safety contract at each step:
**whatever chaos does, the sweep completes with results byte-identical
to an undisturbed serial run.**

The scenario (all seeded, fully deterministic):

1. *Baseline* -- the sweep runs serially with no cache: the expected
   results.
2. *Worker SIGKILL* -- the sweep runs on the process backend against a
   :class:`~repro.exec.store.ResultStore` while a kill plan SIGKILLs the
   worker executing the first point; the retry round must recover and
   every result must match the baseline.  The store journal must show
   every point committed.
3. *Store corruption* -- seeded rows are mangled on disk; a re-run must
   quarantine them, recompute, and again match the baseline.
4. *Checkpoint interruption* -- a point runs with auto-checkpointing
   while an injected ``OSError`` aborts it mid-run; the resumed
   execution must be bit-identical.  Then the checkpoint is bit-flipped
   and the fall-back-to-scratch path must also be bit-identical.
5. *Store I/O faults* -- injected ``OSError`` / ``MemoryError`` at the
   ``store.put`` / ``store.get`` sites; the sweep must complete with
   correct results anyway (a failed cache write degrades to uncached).

Used by ``python -m repro.chaos --smoke`` (CI) and the chaos tests.
"""

from __future__ import annotations

import os
import pathlib
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.chaos.corrupt import corrupt_store_rows, flip_bits
from repro.chaos.kill import write_kill_plan
from repro.chaos.sites import reset_chaos_sites, write_site_plan
from repro.exec.engine import run_sweep, sweep_points
from repro.exec.point import checkpoint_path_for, execute_point
from repro.exec.store import ResultStore, sweep_id_for


class ChaosMismatch(AssertionError):
    """A chaos step produced results that differ from the baseline."""


@contextmanager
def _env(**overrides):
    saved = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = str(value)
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _comparable(results) -> List[dict]:
    rows = []
    for result in results:
        row = result.to_dict()
        row.pop("from_cache", None)
        rows.append(row)
    return rows


def _check(step: str, got, expected, report: Dict[str, str]) -> None:
    if got != expected:
        raise ChaosMismatch(f"chaos step '{step}': results differ from baseline")
    report[step] = "ok"


def run_chaos_scenario(
    workdir,
    seed: int = 7,
    jobs: int = 2,
    warmup_packets: int = 10,
    measure_packets: int = 30,
    log=print,
) -> Dict[str, str]:
    """Run the full scenario under ``workdir``; returns a step report.

    Raises :class:`ChaosMismatch` (or the underlying exception) as soon
    as any step violates the contract, so a non-zero exit from the CLI
    means a real crash-safety regression.
    """
    workdir = pathlib.Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    report: Dict[str, str] = {}
    points = sweep_points(
        ["baseline", "center+BL"],
        "uniform_random",
        [0.05, 0.1],
        seed=seed,
        warmup_packets=warmup_packets,
        measure_packets=measure_packets,
        mesh_size=4,
    )

    log(f"chaos: baseline serial run ({len(points)} points)")
    baseline = _comparable(run_sweep(points, cache=None, backend="serial"))
    report["baseline"] = "ok"

    log("chaos: SIGKILL a pool worker mid-sweep")
    store_path = workdir / "sweeps.sqlite"
    kill_plan = write_kill_plan(
        workdir / "kill.json", [points[0]], workdir / "kill-tokens"
    )
    with _env(REPRO_CHAOS_KILL=kill_plan):
        survived = run_sweep(
            points,
            cache=str(store_path),
            jobs=max(2, jobs),
            backend="process",
            retries=2,
        )
    _check("worker-sigkill", _comparable(survived), baseline, report)
    progress = ResultStore(store_path).sweep_progress(sweep_id_for(points))
    if progress["pending"] != 0:
        raise ChaosMismatch(
            f"journal still shows pending points after recovery: {progress}"
        )
    report["journal"] = "ok"

    log("chaos: mangle store rows, expect quarantine + recompute")
    mangled = corrupt_store_rows(store_path, count=2, seed=seed)
    requarantined = run_sweep(points, cache=str(store_path), backend="serial")
    _check("store-corruption", _comparable(requarantined), baseline, report)
    quarantined = {row["key"] for row in ResultStore(store_path).quarantined()}
    if not set(mangled) <= quarantined:
        raise ChaosMismatch(
            f"mangled rows {mangled} not quarantined (got {quarantined})"
        )

    log("chaos: interrupt a checkpointed point, resume bit-identically")
    point = points[1]
    expected = execute_point(point).to_dict()
    ckpt_dir = workdir / "checkpoints"
    ckpt_dir.mkdir(exist_ok=True)
    site_plan = write_site_plan(
        workdir / "sites.json",
        {"runner.checkpoint": {"exc": "OSError", "calls": [1],
                               "message": "chaos: torn write"}},
    )
    with _env(REPRO_CHAOS_PLAN=site_plan):
        reset_chaos_sites()
        try:
            execute_point(point, checkpoint_every=25, checkpoint_dir=ckpt_dir)
            raise ChaosMismatch("injected checkpoint fault never fired")
        except OSError:
            pass
    checkpoint = checkpoint_path_for(point, ckpt_dir)
    if not checkpoint.exists():
        raise ChaosMismatch("no checkpoint survived the interruption")
    resumed = execute_point(
        point, checkpoint_every=25, checkpoint_dir=ckpt_dir
    ).to_dict()
    _check("checkpoint-resume", resumed, expected, report)

    log("chaos: bit-flip a checkpoint, expect detected + scratch fallback")
    with _env(REPRO_CHAOS_PLAN=site_plan):
        reset_chaos_sites()
        try:
            execute_point(point, checkpoint_every=25, checkpoint_dir=ckpt_dir)
            raise ChaosMismatch("injected checkpoint fault never fired")
        except OSError:
            pass
    flip_bits(checkpoint, seed=seed, flips=4)
    recovered = execute_point(
        point, checkpoint_every=25, checkpoint_dir=ckpt_dir
    ).to_dict()
    _check("checkpoint-corruption", recovered, expected, report)

    log("chaos: inject store I/O faults, sweep must still complete")
    faulty_store = workdir / "faulty.sqlite"
    io_plan = write_site_plan(
        workdir / "io-sites.json",
        {
            "store.put": {"exc": "OSError", "calls": [0],
                          "message": "chaos: disk full"},
            "store.get": {"exc": "MemoryError", "calls": [0]},
        },
    )
    with _env(REPRO_CHAOS_PLAN=io_plan):
        reset_chaos_sites()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            faulted = run_sweep(
                points, cache=str(faulty_store), backend="serial"
            )
    _check("store-io-faults", _comparable(faulted), baseline, report)

    log("chaos: all steps ok")
    return report
