"""``python -m repro.chaos`` -- run the chaos scenario from the shell.

Exits non-zero on the first crash-safety violation, so CI can gate on
it (the ``chaos-smoke`` job).  ``--smoke`` keeps the default tiny
workload explicit on the command line.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional

from repro.chaos.harness import ChaosMismatch, run_chaos_scenario


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic chaos scenario: SIGKILLed workers, "
        "corrupted stores and checkpoints, injected I/O faults -- the "
        "sweep must still produce bit-identical results.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the tiny CI-sized workload (currently also the default)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--jobs", type=int, default=2,
                        help="pool size for the SIGKILL step (min 2)")
    parser.add_argument(
        "--workdir",
        default=None,
        help="directory for stores/checkpoints/plans "
        "(default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)

    try:
        if args.workdir is not None:
            report = run_chaos_scenario(
                args.workdir, seed=args.seed, jobs=args.jobs
            )
        else:
            with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
                report = run_chaos_scenario(
                    tmp, seed=args.seed, jobs=args.jobs
                )
    except ChaosMismatch as exc:
        print(f"CHAOS FAILURE: {exc}", file=sys.stderr)
        return 1
    for step, status in report.items():
        print(f"  {step}: {status}")
    print("chaos scenario passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
