"""Seeded on-disk corruption.

Damage generators for the chaos tests: every function is deterministic
given its ``seed``, so a failing chaos run replays exactly.  These are
the *attacks*; the defenses under test are the snapshot container's
sha256 verification (:mod:`repro.noc.snapshot`) and the result store's
row quarantine (:mod:`repro.exec.store`).
"""

from __future__ import annotations

import pathlib
import random
import sqlite3
from typing import List


def truncate_file(path, keep_fraction: float = 0.5) -> int:
    """Truncate ``path`` to ``keep_fraction`` of its size; returns new size.

    Models a torn write / dirty shutdown.  ``keep_fraction=0`` empties
    the file.
    """
    if not 0.0 <= keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in [0, 1], got {keep_fraction}")
    path = pathlib.Path(path)
    keep = int(path.stat().st_size * keep_fraction)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


def flip_bits(path, seed: int = 0, flips: int = 1) -> List[int]:
    """Flip ``flips`` seeded-random bits in ``path``; returns byte offsets.

    Models bit rot.  Offsets are drawn from ``random.Random(seed)`` so
    the damage replays exactly.
    """
    path = pathlib.Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return []
    rng = random.Random(seed)
    offsets = []
    for _ in range(flips):
        offset = rng.randrange(len(data))
        data[offset] ^= 1 << rng.randrange(8)
        offsets.append(offset)
    path.write_bytes(bytes(data))
    return offsets


def corrupt_store_rows(
    store_path, count: int = 1, seed: int = 0
) -> List[str]:
    """Mangle ``count`` seeded-random rows of a result store in place.

    The result JSON of each chosen row is overwritten with garbage while
    its checksum column is left alone, so the store's read-side checksum
    verification must catch it.  Returns the mangled keys.
    """
    conn = sqlite3.connect(store_path)
    try:
        keys = [
            row[0]
            for row in conn.execute("SELECT key FROM results ORDER BY key")
        ]
        if not keys:
            return []
        rng = random.Random(seed)
        chosen = rng.sample(keys, min(count, len(keys)))
        with conn:
            for key in chosen:
                conn.execute(
                    "UPDATE results SET result = ? WHERE key = ?",
                    ('{"mangled by chaos":', key),
                )
        return chosen
    finally:
        conn.close()
