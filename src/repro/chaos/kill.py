"""SIGKILL injection for sweep workers.

The plan is a JSON file named by ``REPRO_CHAOS_KILL``::

    {
      "keys": ["<point.key()>", ...],
      "tokens_dir": "/tmp/kill-tokens",
      "parent_pid": 12345,
      "signal": 9
    }

:func:`maybe_kill_self` is called by the engine at the top of every
point execution (worker side).  If the current point is planned, the
process claims the point's one-shot token by atomic ``os.unlink`` and
then SIGKILLs *itself* -- no cleanup handlers, no atexit, exactly what a
machine crash looks like to the parent.  The unlink-first ordering makes
the kill fire exactly once: the retry round finds the token gone and
runs the point normally.

``parent_pid`` is a safety interlock: the orchestrating process records
its own pid when writing the plan, and :func:`maybe_kill_self` refuses
to kill it, so a sweep that happens to run a planned point serially
degrades to "no kill" instead of taking the whole run down.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
from typing import Optional, Sequence


def maybe_kill_self(point) -> None:
    """SIGKILL the current process if the kill plan targets ``point``."""
    plan_path = os.environ.get("REPRO_CHAOS_KILL")
    if not plan_path:
        return
    try:
        plan = json.loads(pathlib.Path(plan_path).read_text())
    except (OSError, ValueError):
        return
    if not isinstance(plan, dict):
        return
    if os.getpid() == plan.get("parent_pid"):
        return
    key = point.key()
    if key not in plan.get("keys", ()):
        return
    tokens_dir = plan.get("tokens_dir")
    if tokens_dir:
        try:
            (pathlib.Path(tokens_dir) / f"{key}.token").unlink()
        except OSError:
            return  # already fired for this point
    os.kill(os.getpid(), int(plan.get("signal", signal.SIGKILL)))


def write_kill_plan(
    path,
    points: Sequence,
    tokens_dir,
    parent_pid: Optional[int] = None,
    kill_signal: int = signal.SIGKILL,
) -> pathlib.Path:
    """Write a kill plan targeting ``points`` and arm one token each.

    Returns the plan path; point ``REPRO_CHAOS_KILL`` at it to enable.
    ``parent_pid`` defaults to the calling process, which is the usual
    orchestrator-protecting choice.
    """
    path = pathlib.Path(path)
    tokens_dir = pathlib.Path(tokens_dir)
    tokens_dir.mkdir(parents=True, exist_ok=True)
    keys = [point.key() for point in points]
    for key in keys:
        (tokens_dir / f"{key}.token").touch()
    path.write_text(
        json.dumps(
            {
                "keys": keys,
                "tokens_dir": str(tokens_dir),
                "parent_pid": (
                    os.getpid() if parent_pid is None else parent_pid
                ),
                "signal": int(kill_signal),
            },
            indent=2,
        )
    )
    return path
