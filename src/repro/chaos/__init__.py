"""Deterministic chaos harness for the crash-safety layer.

Three fault families, all seeded and reproducible:

* :mod:`repro.chaos.kill` -- SIGKILL a sweep worker mid-point, exactly
  once per planned point (one-shot token files claimed by atomic
  ``unlink``), so retry rounds prove the pool rebuild and the result
  store recover with bit-identical results.
* :mod:`repro.chaos.sites` -- named fault sites compiled into the
  production code (``store.get``, ``store.put``, ``runner.checkpoint``)
  that raise a planned ``OSError`` / ``MemoryError`` on planned call
  indices, gated entirely by the ``REPRO_CHAOS_PLAN`` environment
  variable: zero cost and zero behaviour change when unset.
* :mod:`repro.chaos.corrupt` -- seeded on-disk damage: truncation,
  bit-flips and SQL-level row mangling, used to prove snapshot loads
  *detect* corruption and the store quarantines rather than serves it.

``python -m repro.chaos --smoke`` runs the end-to-end scenario
(:mod:`repro.chaos.harness`): a sweep survives a worker SIGKILL, store
row corruption, a torn checkpoint and injected store I/O faults, and
still produces results byte-identical to an undisturbed serial run.
"""

from repro.chaos.corrupt import corrupt_store_rows, flip_bits, truncate_file
from repro.chaos.kill import maybe_kill_self, write_kill_plan
from repro.chaos.sites import chaos_site, reset_chaos_sites, write_site_plan

__all__ = [
    "chaos_site",
    "corrupt_store_rows",
    "flip_bits",
    "maybe_kill_self",
    "reset_chaos_sites",
    "truncate_file",
    "write_kill_plan",
    "write_site_plan",
]
