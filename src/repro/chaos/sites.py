"""Named, plan-driven fault sites.

A *site* is a point in production code that may raise an injected
exception -- ``chaos_site("store.put")`` and friends.  The sites do
nothing unless ``REPRO_CHAOS_PLAN`` names a JSON plan file::

    {
      "sites": {
        "store.put": {"exc": "OSError", "calls": [0],
                      "message": "chaos: disk full"},
        "runner.checkpoint": {"exc": "MemoryError",
                              "once_dir": "/tmp/tokens"}
      }
    }

Determinism comes from two mechanisms, usable together:

* ``calls`` -- a list of per-process call indices (0-based) at which the
  site fires; other calls pass through.
* ``once_dir`` -- a directory of one-shot token files.  A firing call
  must first *claim* its token via atomic ``os.unlink``; whichever
  process claims it fires, every later attempt passes through.  This is
  what makes "fail exactly once, then succeed on retry" exact even
  across SIGKILLed and respawned pool workers.

Production call sites are wrapped in ``if os.environ.get(
"REPRO_CHAOS_PLAN")`` so the disabled path costs one dict lookup.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict, Optional

_EXCEPTIONS = {
    "OSError": OSError,
    "IOError": OSError,
    "MemoryError": MemoryError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
}

_plan_cache: Dict[str, dict] = {}
_call_counts: Dict[str, int] = {}


def reset_chaos_sites() -> None:
    """Forget cached plans and per-process call counters (tests)."""
    _plan_cache.clear()
    _call_counts.clear()


def _load_plan() -> Optional[dict]:
    path = os.environ.get("REPRO_CHAOS_PLAN")
    if not path:
        return None
    plan = _plan_cache.get(path)
    if plan is not None:
        return plan
    try:
        plan = json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError):
        # A torn plan never takes the workload down with it.
        return None
    if not isinstance(plan, dict):
        return None
    _plan_cache[path] = plan
    return plan


def token_path(once_dir, site: str, index: int) -> pathlib.Path:
    """The one-shot token file for firing ``site`` at call ``index``."""
    return pathlib.Path(once_dir) / f"{site.replace('.', '_')}.{index}.token"


def chaos_site(site: str) -> None:
    """Raise the planned fault for ``site``, if the plan says so now.

    No plan, site not planned, wrong call index, or token already
    claimed: returns without side effects (beyond the call counter).
    """
    plan = _load_plan()
    if plan is None:
        return
    spec = plan.get("sites", {}).get(site)
    index = _call_counts.get(site, 0)
    _call_counts[site] = index + 1
    if not spec:
        return
    calls = spec.get("calls")
    if calls is not None and index not in calls:
        return
    once_dir = spec.get("once_dir")
    if once_dir:
        try:
            token_path(once_dir, site, index if calls is not None else 0).unlink()
        except OSError:
            return  # already claimed (or never armed): pass through
    exc_type = _EXCEPTIONS.get(spec.get("exc", "OSError"), RuntimeError)
    raise exc_type(spec.get("message", f"chaos fault injected at {site}"))


def write_site_plan(path, sites: Dict[str, dict]) -> pathlib.Path:
    """Write a site plan and arm one token per ``once_dir`` site.

    Returns the plan path; point ``REPRO_CHAOS_PLAN`` at it to enable.
    """
    path = pathlib.Path(path)
    for site, spec in sites.items():
        once_dir = spec.get("once_dir")
        if not once_dir:
            continue
        pathlib.Path(once_dir).mkdir(parents=True, exist_ok=True)
        calls = spec.get("calls")
        indices = calls if calls is not None else [0]
        for index in indices:
            token_path(once_dir, site, index if calls is not None else 0).touch()
    path.write_text(json.dumps({"sites": sites}, indent=2))
    return path
