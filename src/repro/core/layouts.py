"""The evaluated HeteroNoC layouts (paper Figure 3) and placements.

A :class:`Layout` names a set of *big* router positions on an N x N mesh
and whether links are redistributed along with buffers:

* ``baseline`` -- all 64 routers are the homogeneous 3-VC/192 b design;
* ``center+B`` / ``row2_5+B`` / ``diagonal+B`` -- buffer-only
  redistribution: big routers get 6 VCs, small get 2, every link stays
  192 b wide (Figure 3 b-d);
* ``center+BL`` / ``row2_5+BL`` / ``diagonal+BL`` -- buffers *and* links:
  big routers additionally drive 256 b links and small routers 128 b
  links, with the network flit width dropping to 128 b (Figure 3 e-g).

The module also provides the memory-controller placements of the Abts et
al. co-evaluation (Section 6) and the asymmetric-CMP floorplan
(Section 7).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.core.power import heteronoc_frequency_ghz
from repro.noc.config import (
    BASELINE_FREQUENCY_GHZ,
    NetworkConfig,
    RouterConfig,
    baseline_router,
    big_router,
    big_router_buffer_only,
    big_router_paper_mode,
    small_router,
    small_router_buffer_only,
    small_router_paper_mode,
)
from repro.noc.network import Network
from repro.noc.routing import Routing
from repro.noc.topology import Mesh, Topology

LAYOUT_NAMES = (
    "baseline",
    "center+B",
    "row2_5+B",
    "diagonal+B",
    "center+BL",
    "row2_5+BL",
    "diagonal+BL",
)


# -- big-router position sets -------------------------------------------------
def diagonal_positions(n: int) -> Set[int]:
    """Routers on both diagonals of an n x n mesh (2n for even n)."""
    positions = set()
    for r in range(n):
        positions.add(r * n + r)
        positions.add(r * n + (n - 1 - r))
    return positions


def center_positions(n: int) -> Set[int]:
    """The 2n routers closest to the mesh centre (the central 4x4 for n=8)."""
    target = 2 * n
    centre = (n - 1) / 2.0
    ranked = sorted(
        range(n * n),
        key=lambda rid: (
            (rid // n - centre) ** 2 + (rid % n - centre) ** 2,
            rid,
        ),
    )
    return set(ranked[:target])


def row2_5_positions(n: int) -> Set[int]:
    """Big routers filling two rows (the 2nd and 5th rows for n=8).

    The paper picks rows chosen to minimise the average hop count to a big
    router; for other mesh sizes we space the two rows half a mesh apart.
    """
    if n == 8:
        rows = (1, 4)
    else:
        first = max(0, (n - 2) // 4)
        rows = (first, min(n - 1, first + n // 2))
    return {r * n + c for r in rows for c in range(n)}


_POSITION_BUILDERS = {
    "center": center_positions,
    "row2_5": row2_5_positions,
    "diagonal": diagonal_positions,
}


@dataclass(frozen=True)
class Layout:
    """One network configuration: topology size + big-router placement."""

    name: str
    mesh_size: int
    big_positions: FrozenSet[int]
    redistribute_links: bool

    @property
    def is_baseline(self) -> bool:
        return not self.big_positions and not self.redistribute_links

    @property
    def num_big(self) -> int:
        return len(self.big_positions)

    @property
    def num_small(self) -> int:
        if self.is_baseline:
            return 0
        return self.mesh_size * self.mesh_size - self.num_big

    def router_configs(self, flit_mode: str = "paper") -> Dict[int, RouterConfig]:
        """Per-router provisioning for this layout.

        ``flit_mode`` selects how the +BL link redistribution is simulated
        (it does not affect the baseline or +B layouts):

        * ``"paper"`` (default) -- the paper's flit accounting: packets
          keep the baseline 192 b flit decomposition (6 flits per cache
          line), narrow links move one flit per cycle and wide links two.
          This reproduces the throughput/latency *shape* the paper
          reports.  Power and area still use the physical 128 b/256 b
          datapath widths.
        * ``"strict"`` -- physically strict 128 b flits: a cache line is
          8 flits and a narrow link carries only 128 b/cycle.  Under this
          interpretation the edge rows of the mesh lose a third of their
          bandwidth and the paper's throughput gains are not achievable
          (see EXPERIMENTS.md for the conservation argument); provided as
          an ablation.
        """
        if flit_mode not in ("paper", "strict"):
            raise ValueError(f"flit_mode must be 'paper' or 'strict', got {flit_mode!r}")
        n_routers = self.mesh_size * self.mesh_size
        if self.is_baseline:
            return {rid: baseline_router() for rid in range(n_routers)}
        if self.redistribute_links:
            if flit_mode == "paper":
                big, small = big_router_paper_mode(), small_router_paper_mode()
            else:
                big, small = big_router(), small_router()
        else:
            big, small = big_router_buffer_only(), small_router_buffer_only()
        return {
            rid: big if rid in self.big_positions else small
            for rid in range(n_routers)
        }

    def network_config(self, **overrides) -> NetworkConfig:
        """Network parameters; heterogeneous layouts run at the big-router
        (worst-case) clock per Section 3.4."""
        if self.is_baseline:
            frequency = BASELINE_FREQUENCY_GHZ
        else:
            frequency = heteronoc_frequency_ghz()
        return NetworkConfig(frequency_ghz=frequency, **overrides)

    @property
    def frequency_ghz(self) -> float:
        return self.network_config().frequency_ghz


def baseline_layout(mesh_size: int = 8) -> Layout:
    return Layout(
        name="baseline",
        mesh_size=mesh_size,
        big_positions=frozenset(),
        redistribute_links=False,
    )


def layout_by_name(name: str, mesh_size: int = 8) -> Layout:
    """Build one of the paper's seven configurations by name."""
    if name == "baseline":
        return baseline_layout(mesh_size)
    try:
        placement, flavour = name.rsplit("+", 1)
        builder = _POSITION_BUILDERS[placement]
        redistribute_links = {"B": False, "BL": True}[flavour]
    except (ValueError, KeyError):
        raise ValueError(
            f"unknown layout {name!r}; choose from {LAYOUT_NAMES}"
        ) from None
    return Layout(
        name=name,
        mesh_size=mesh_size,
        big_positions=frozenset(builder(mesh_size)),
        redistribute_links=redistribute_links,
    )


def all_layouts(mesh_size: int = 8) -> List[Layout]:
    return [layout_by_name(name, mesh_size) for name in LAYOUT_NAMES]


def custom_layout(
    name: str,
    big_positions: Iterable[int],
    mesh_size: int = 8,
    redistribute_links: bool = True,
    check_power: bool = False,
) -> Layout:
    """A heterogeneous layout with an arbitrary big-router placement.

    Used by the design-space exploration and the sensitivity studies; the
    named Figure 3 layouts are special cases.  Positions must be distinct
    integers inside the mesh.  With ``check_power=True`` the layout must
    also satisfy the Section 2 power inequality (at most
    ``mesh_size**2 - repro.core.hetero.min_small_routers(mesh_size)`` big
    routers); by default the check is skipped, since the footnote-4
    4x4 sweeps deliberately explore over-budget mixes.
    """
    positions = list(big_positions)
    non_int = [p for p in positions if not isinstance(p, int) or isinstance(p, bool)]
    if non_int:
        raise ValueError(
            f"big positions must be plain ints, got {non_int!r}"
        )
    duplicates = sorted(p for p, c in Counter(positions).items() if c > 1)
    if duplicates:
        raise ValueError(f"duplicate big positions: {duplicates}")
    n_routers = mesh_size * mesh_size
    bad = [p for p in positions if not 0 <= p < n_routers]
    if bad:
        raise ValueError(f"big positions outside the mesh: {sorted(bad)}")
    if check_power:
        from repro.core.hetero import min_small_routers

        max_big = n_routers - min_small_routers(mesh_size)
        if len(positions) > max_big:
            raise ValueError(
                f"{len(positions)} big routers exceed the power budget: the "
                f"Section 2 inequality allows at most {max_big} on a "
                f"{mesh_size}x{mesh_size} mesh "
                f"(needs >= {min_small_routers(mesh_size)} small routers)"
            )
    return Layout(
        name=name,
        mesh_size=mesh_size,
        big_positions=frozenset(positions),
        redistribute_links=redistribute_links,
    )


def extended_diagonal_positions(n: int, num_big: int) -> Set[int]:
    """``num_big`` routers chosen diagonal-first, then by X-Y traversal load.

    Generalizes the paper's diagonal placement to other big-router
    budgets: the 2n diagonal seats fill first (fewest-first for budgets
    under 2n, ordered by centrality), then additional routers are added
    in decreasing order of the analytic traversal count used by
    :mod:`repro.core.design_space`.
    """
    if not 0 <= num_big <= n * n:
        raise ValueError(f"num_big must be in [0, {n * n}], got {num_big}")
    from repro.core.design_space import router_traversal_counts
    from repro.noc.topology import Mesh

    counts = router_traversal_counts(Mesh(n))
    diagonal = sorted(
        diagonal_positions(n), key=lambda r: (-counts[r], r)
    )
    rest = sorted(
        (r for r in range(n * n) if r not in set(diagonal)),
        key=lambda r: (-counts[r], r),
    )
    ordered = diagonal + rest
    return set(ordered[:num_big])


def build_network(
    layout: Layout,
    topology: Optional[Topology] = None,
    routing: Optional[Routing] = None,
    flit_mode: str = "paper",
    **config_overrides,
) -> Network:
    """Instantiate the simulator network for a layout.

    ``topology`` defaults to the layout-sized mesh; pass a
    :class:`~repro.noc.topology.Torus` of the same size for the
    Section 5.1.1 comparison (big-router positions carry over unchanged).
    ``flit_mode`` is forwarded to :meth:`Layout.router_configs`.
    """
    topo = topology or Mesh(layout.mesh_size)
    if topo.num_routers != layout.mesh_size**2:
        raise ValueError(
            f"layout is for {layout.mesh_size}^2 routers but topology has "
            f"{topo.num_routers}"
        )
    return Network(
        topology=topo,
        router_configs=layout.router_configs(flit_mode),
        network_config=layout.network_config(**config_overrides),
        routing=routing,
    )


# -- memory-controller placements (Section 6, after Abts et al.) -------------
def memory_controller_placement(name: str, n: int = 8) -> List[int]:
    """Node ids hosting memory controllers.

    * ``"corners"`` -- the baseline Table 2 arrangement: 4 controllers at
      the mesh corners.
    * ``"diamond"`` -- 16 controllers on a diamond lattice (two per row and
      per column, staggered), the best symmetric arrangement of Abts et
      al.; we use the anti-diagonal stripe pattern ``(row + col) % 4 == 2``
      which realises exactly that 2-per-row/2-per-column stagger.
    * ``"diagonal"`` -- 16 controllers along both mesh diagonals,
      coinciding with the Diagonal+BL big routers.
    """
    if name == "corners":
        return [0, n - 1, n * (n - 1), n * n - 1]
    if name == "diamond":
        if n % 4:
            raise ValueError("diamond placement needs the width divisible by 4")
        return sorted(
            r * n + c
            for r in range(n)
            for c in range(n)
            if (r + c) % 4 == 2
        )
    if name == "diagonal":
        return sorted(diagonal_positions(n))
    raise ValueError(
        f"unknown placement {name!r}; choose corners, diamond or diagonal"
    )


# -- asymmetric CMP floorplan (Section 7) ------------------------------------
def asymmetric_cmp_layout(n: int = 8) -> Dict[str, List[int]]:
    """Node assignment for the asymmetric CMP: 4 large out-of-order cores
    at the mesh corners (far apart: they are the hottest and host
    single-threaded work), small in-order cores everywhere else."""
    large = [0, n - 1, n * (n - 1), n * n - 1]
    small = [node for node in range(n * n) if node not in large]
    return {"large": large, "small": small}
