"""The HeteroNoC resource-redistribution arithmetic (Section 2).

Three pieces of design math govern the heterogeneous network:

* the **link-width equation** keeps bisection bandwidth constant:
  ``W_homo * n = W_hetero * N_narrow + 2 * W_hetero * N_wide``;
* **VC stripping** keeps the total VC count constant: three baseline
  routers each donate one VC (3 -> 2) to turn a fourth baseline router
  into a big one (3 + 3 -> 6), so every big router is paired with exactly
  three small routers;
* the **power inequality** bounds the number of big routers so the
  heterogeneous network never consumes more than the homogeneous one:
  ``P_base * N^2 >= P_small * n_s + P_big * (N^2 - n_s)``.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.power import TABLE1_POWER_W
from repro.noc.config import MESH_PORTS, RouterConfig
from repro.noc.link import link_width_between
from repro.noc.topology import Topology


def hetero_link_width(
    homo_width: int, bisection_links: int, narrow_links: int, wide_links: int
) -> int:
    """Solve the Section 2 link-width equation for the narrow width.

    >>> hetero_link_width(192, 8, 4, 4)
    128
    """
    if bisection_links <= 0 or narrow_links < 0 or wide_links < 0:
        raise ValueError("link counts must be positive")
    if narrow_links + wide_links != bisection_links:
        raise ValueError(
            "narrow + wide links must equal the bisection link count "
            f"({narrow_links}+{wide_links} != {bisection_links})"
        )
    denominator = narrow_links + 2 * wide_links
    width = homo_width * bisection_links / denominator
    if not width.is_integer():
        raise ValueError(
            f"link-width equation has no integral solution ({width})"
        )
    return int(width)


def min_small_routers(
    mesh_size: int,
    base_power: float = TABLE1_POWER_W["baseline"],
    small_power: float = TABLE1_POWER_W["small"],
    big_power: float = TABLE1_POWER_W["big"],
) -> int:
    """Minimum small-router count for a power-neutral heterogeneous mesh.

    From ``P_base*N^2 >= P_small*n_s + P_big*(N^2 - n_s)``:
    ``n_s >= N^2 * (P_big - P_base) / (P_big - P_small)``.

    >>> min_small_routers(8)
    38
    """
    if big_power <= small_power:
        raise ValueError("big routers must consume more than small ones")
    n_routers = mesh_size * mesh_size
    bound = n_routers * (big_power - base_power) / (big_power - small_power)
    return math.ceil(bound)


def power_inequality_ratio(
    base_power: float = TABLE1_POWER_W["baseline"],
    small_power: float = TABLE1_POWER_W["small"],
    big_power: float = TABLE1_POWER_W["big"],
) -> float:
    """The paper's ``1.71 >= N^2 / n_s`` threshold ratio.

    >>> round(power_inequality_ratio(), 2)
    1.71
    """
    return (big_power - small_power) / (big_power - base_power)


def total_vcs(configs: Dict[int, RouterConfig], num_ports: int = MESH_PORTS) -> int:
    """Network-wide VC count (the redistribution invariant)."""
    return sum(cfg.num_vcs * num_ports for cfg in configs.values())


def total_buffer_bits(
    configs: Dict[int, RouterConfig], num_ports: int = MESH_PORTS
) -> int:
    """Network-wide buffer storage in bits (Table 1's bottom rows)."""
    return sum(cfg.buffer_bits(num_ports) for cfg in configs.values())


def total_buffer_flits(
    configs: Dict[int, RouterConfig], num_ports: int = MESH_PORTS
) -> int:
    """Network-wide buffer slot count (4,800 in both Table 1 networks)."""
    return sum(
        cfg.num_vcs * num_ports * cfg.buffer_depth for cfg in configs.values()
    )


def bisection_bandwidth_bits(
    topology: Topology, configs: Dict[int, RouterConfig]
) -> int:
    """Total width (bits/cycle, one direction) across the vertical bisection."""
    return sum(
        link_width_between(configs[src], configs[dst])
        for src, _sp, dst, _dp in topology.bisection_channels()
    )


def buffer_reduction_fraction(
    hetero: Dict[int, RouterConfig],
    baseline: Dict[int, RouterConfig],
    num_ports: int = MESH_PORTS,
) -> float:
    """Fractional buffer-bit saving of a hetero layout over the baseline.

    The paper's +BL networks save exactly one third (614,400 vs 921,600
    bits, Table 1).
    """
    base_bits = total_buffer_bits(baseline, num_ports)
    hetero_bits = total_buffer_bits(hetero, num_ports)
    return 1.0 - hetero_bits / base_bits
