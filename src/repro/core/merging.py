"""Flit-combining (merging) statistics.

Section 3.3 reports that two flits can share a wide link about 40 % of the
time at low loads and about 80 % at moderate-to-high loads.  The router
model counts every merged pair (``RouterActivity.merged_flit_pairs``); this
module turns those counts into the paper's combinable-fraction metric and
provides a small helper used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.noc.network import Network
from repro.noc.stats import NetworkStats


@dataclass(frozen=True)
class MergeReport:
    """Network-wide flit-combining summary for one measurement window."""

    wide_link_flits: int
    merged_pairs: int

    @property
    def merged_flits(self) -> int:
        return 2 * self.merged_pairs

    @property
    def merge_fraction(self) -> float:
        """Fraction of wide-link flits that travelled as half of a pair."""
        if self.wide_link_flits == 0:
            return 0.0
        return self.merged_flits / self.wide_link_flits


def merge_report(network: Network, stats: NetworkStats) -> MergeReport:
    """Collect merging statistics after a measured run.

    ``wide_link_flits`` counts flits sent through two-lane output ports
    (where pairing was possible at all); ``merged_pairs`` counts the SA
    second-grant successes.
    """
    wide_flits = 0
    for (src, port), count in stats.link_flits.items():
        lanes = stats.link_lanes.get((src, port), 1)
        if lanes >= 2:
            wide_flits += count
    merged = sum(
        activity.merged_flit_pairs for activity in stats.router_activity
    )
    return MergeReport(wide_link_flits=wide_flits, merged_pairs=merged)


def per_router_merge_counts(stats: NetworkStats) -> Dict[int, int]:
    """Merged-pair counts by router id (diagnostics for layout studies)."""
    return {
        rid: activity.merged_flit_pairs
        for rid, activity in enumerate(stats.router_activity)
        if activity.merged_flit_pairs
    }
