"""Router power, area and frequency models calibrated to the paper's
Table 1.

The authors synthesized their router in structural RTL (Synopsys, 65 nm)
and fed Orion-derived dynamic/leakage numbers into the simulator.  Neither
tool chain is available here, so we build an *analytical* model with
physically-motivated scalings and calibrate its free constants against the
paper's own anchors:

====================  ========  ==========  =========
router                power     area        frequency
====================  ========  ==========  =========
baseline 3VC/192b     0.67 W    0.290 mm2   2.20 GHz
small    2VC/128b     0.30 W    0.235 mm2   2.25 GHz
big      6VC/256b     1.19 W    0.425 mm2   2.07 GHz
====================  ========  ==========  =========

(power quoted at a 50 % activity factor, the paper's footnote 3).

Component scalings (per router, P ports, V VCs/PC, flit width Wf, crossbar
/link width Wl, clock f):

* buffer dynamic -- per-flit read+write energy proportional to ``Wf``;
* buffer leakage -- proportional to total buffer bits ``V*P*D*Wf``;
* crossbar -- per-flit traversal energy proportional to ``Wl**2`` (wire
  capacitance grows with both crossbar dimensions);
* VC/switch allocation -- per-flit energy proportional to ``(P*V)**2``
  (the VA matching logic is the dominating, fastest-growing stage,
  Section 3.4);
* link -- per-flit energy proportional to ``Wf``;
* baseline leakage -- proportional to router area.

The six baseline component weights are fitted (non-negative least squares)
so that the three Table 1 power anchors are matched tightly and the
component shares stay near the paper's reported breakdown (buffers ~= 35 %
of router power).  The *anchors* are reproduced to about a percent; the
component shares are approximate, which is fine because every HeteroNoC
power claim is about totals and relative deltas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

import numpy as np
from scipy.optimize import lsq_linear

from repro.noc.config import (
    BASELINE_FREQUENCY_GHZ,
    BIG_FREQUENCY_GHZ,
    BIG_VCS,
    MESH_PORTS,
    SMALL_FREQUENCY_GHZ,
    SMALL_VCS,
    RouterConfig,
    baseline_router,
    big_router,
    small_router,
)

TABLE1_POWER_W = {"baseline": 0.67, "small": 0.30, "big": 1.19}
TABLE1_AREA_MM2 = {"baseline": 0.290, "small": 0.235, "big": 0.425}
TABLE1_FREQUENCY_GHZ = {
    "baseline": BASELINE_FREQUENCY_GHZ,
    "small": SMALL_FREQUENCY_GHZ,
    "big": BIG_FREQUENCY_GHZ,
}
CALIBRATION_ACTIVITY = 0.5
#: fraction of port traversals that continue over an inter-router link
#: (4 of 5 mesh ports are network ports).
_LINK_FRACTION = 4.0 / 5.0

_COMPONENTS = ("buf_dyn", "buf_leak", "xbar", "allocator", "link", "base_leak")


# -- frequency model (Section 3.4) --------------------------------------------
def router_frequency_ghz(num_vcs: int) -> float:
    """Clock achievable by a router with ``num_vcs`` VCs per channel.

    The three Table 1 points are returned exactly; other VC counts use the
    critical-path model ``t = a + b*log2(V)`` fitted through the 3-VC and
    6-VC anchors (the VA stage dominates and grows with the VC count).
    """
    if num_vcs < 1:
        raise ValueError(f"num_vcs must be >= 1, got {num_vcs}")
    anchors = {SMALL_VCS: 2.25, 3: 2.20, BIG_VCS: 2.07}
    if num_vcs in anchors:
        return anchors[num_vcs]
    t3 = 1.0 / 2.20
    t6 = 1.0 / 2.07
    slope = (t6 - t3) / (math.log2(6) - math.log2(3))
    intercept = t3 - slope * math.log2(3)
    return 1.0 / (intercept + slope * math.log2(num_vcs))


def heteronoc_frequency_ghz() -> float:
    """Worst-case clock of a heterogeneous network: the big router's."""
    return router_frequency_ghz(BIG_VCS)


# -- area model (Section 3.5) ---------------------------------------------------
@lru_cache(maxsize=1)
def _area_coefficients() -> np.ndarray:
    """Solve area = c0 + c_bits*buffer_bits + c_alloc*(P*V)^2 through the
    three Table 1 areas (an exact 3x3 linear solve; all terms positive)."""
    rows = []
    targets = []
    for cfg, kind in (
        (baseline_router(), "baseline"),
        (small_router(), "small"),
        (big_router(), "big"),
    ):
        bits = cfg.buffer_bits(MESH_PORTS)
        alloc = (MESH_PORTS * cfg.num_vcs) ** 2
        rows.append([1.0, bits, alloc])
        targets.append(TABLE1_AREA_MM2[kind])
    coeffs = np.linalg.solve(np.array(rows), np.array(targets))
    if (coeffs < 0).any():
        raise RuntimeError(f"area model produced negative coefficients: {coeffs}")
    return coeffs


def router_area_mm2(config: RouterConfig, num_ports: int = MESH_PORTS) -> float:
    """Router area under the calibrated three-term model."""
    c0, c_bits, c_alloc = _area_coefficients()
    bits = config.buffer_bits(num_ports)
    alloc = (num_ports * config.num_vcs) ** 2
    return float(c0 + c_bits * bits + c_alloc * alloc)


# -- power model ------------------------------------------------------------------
def _component_raw_values(
    config: RouterConfig, frequency_ghz: float, num_ports: int = MESH_PORTS
) -> Dict[str, float]:
    """Unnormalized per-component magnitudes at the calibration activity.

    Dynamic terms carry ``frequency * flits_per_cycle * energy_scaling``;
    leakage terms carry their capacity scaling only.
    """
    flits_per_cycle = CALIBRATION_ACTIVITY * num_ports
    dyn = frequency_ghz * flits_per_cycle
    return {
        "buf_dyn": dyn * config.hw_flit_width,
        "buf_leak": float(config.buffer_bits(num_ports)),
        "xbar": dyn * config.hw_link_width**2,
        "allocator": dyn * (num_ports * config.num_vcs) ** 2,
        "link": dyn * _LINK_FRACTION * config.hw_flit_width,
        "base_leak": router_area_mm2(config, num_ports),
    }


@lru_cache(maxsize=1)
def _calibrated_weights() -> Dict[str, float]:
    """Baseline power fractions per component, fitted to Table 1.

    Solves a bounded least-squares problem: hard constraints (heavily
    weighted) pin the three router power anchors; soft constraints keep
    the component shares near the paper's reported breakdown.
    """
    base = _component_raw_values(baseline_router(), BASELINE_FREQUENCY_GHZ)
    small = _component_raw_values(small_router(), SMALL_FREQUENCY_GHZ)
    big = _component_raw_values(big_router(), BIG_FREQUENCY_GHZ)
    ratio_small = np.array(
        [small[c] / base[c] for c in _COMPONENTS]
    )
    ratio_big = np.array([big[c] / base[c] for c in _COMPONENTS])

    ones = np.ones(len(_COMPONENTS))
    buf_row = np.array(
        [1.0 if c.startswith("buf") else 0.0 for c in _COMPONENTS]
    )

    def pick(name: str) -> np.ndarray:
        return np.array([1.0 if c == name else 0.0 for c in _COMPONENTS])

    rows = [
        (ones, 1.0, 200.0),
        (ratio_small, TABLE1_POWER_W["small"] / TABLE1_POWER_W["baseline"], 200.0),
        (ratio_big, TABLE1_POWER_W["big"] / TABLE1_POWER_W["baseline"], 200.0),
        (buf_row, 0.35, 20.0),  # "buffers consume about 35% of router power"
        (pick("xbar"), 0.28, 3.0),
        # The three power anchors leave little room for link energy (its
        # frequency-x-width scaling moves the wrong way between router
        # types), so the fitted link share lands well under the paper's
        # ~17-20%; the weight below keeps it nonzero at ~2% anchor error.
        (pick("link"), 0.17, 25.0),
        (pick("base_leak"), 0.08, 1.0),
    ]
    matrix = np.array([w * row for row, _t, w in rows])
    target = np.array([w * t for _row, t, w in rows])
    solution = lsq_linear(matrix, target, bounds=(0.0, np.inf))
    weights = dict(zip(_COMPONENTS, solution.x))
    return weights


@dataclass(frozen=True)
class RouterPower:
    """One router's modelled power, split by component (Watts)."""

    buffers: float
    crossbar: float
    arbiters_logic: float
    links: float

    @property
    def total(self) -> float:
        return self.buffers + self.crossbar + self.arbiters_logic + self.links


class RouterPowerModel:
    """Calibrated per-event power model.

    ``power_at_activity`` reproduces the Table 1 methodology (a router at a
    given activity factor); ``power_from_counts`` converts simulation event
    counts (from :class:`repro.noc.stats.RouterActivity`) into Watts, which
    is how the simulator "uses the actual utilization of a router to
    calculate its power consumption" (footnote 3).
    """

    def __init__(self, num_ports: int = MESH_PORTS) -> None:
        self.num_ports = num_ports
        weights = _calibrated_weights()
        base_raw = _component_raw_values(
            baseline_router(), BASELINE_FREQUENCY_GHZ, MESH_PORTS
        )
        base_power = TABLE1_POWER_W["baseline"]
        # Per-unit coefficients: component power = coeff * raw value.
        self._coeff = {
            c: weights[c] * base_power / base_raw[c] for c in _COMPONENTS
        }

    # -- activity-factor interface (Table 1 reproduction) ---------------------
    def power_at_activity(
        self,
        config: RouterConfig,
        activity: float,
        frequency_ghz: float = None,
    ) -> RouterPower:
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity must be in [0, 1], got {activity}")
        frequency = (
            frequency_ghz
            if frequency_ghz is not None
            else router_frequency_ghz(config.num_vcs)
        )
        raw = _component_raw_values(config, frequency, self.num_ports)
        scale = activity / CALIBRATION_ACTIVITY
        component = {
            c: self._coeff[c]
            * raw[c]
            * (scale if not c.endswith("leak") else 1.0)
            for c in _COMPONENTS
        }
        return RouterPower(
            buffers=component["buf_dyn"] + component["buf_leak"],
            crossbar=component["xbar"],
            arbiters_logic=component["allocator"] + component["base_leak"],
            links=component["link"],
        )

    def table1_power(self, config: RouterConfig) -> float:
        """Power at the paper's 50 % activity reference point."""
        return self.power_at_activity(config, CALIBRATION_ACTIVITY).total

    # -- event-count interface (simulation power) ------------------------------
    def power_from_counts(
        self,
        config: RouterConfig,
        frequency_ghz: float,
        cycles: int,
        flit_traversals: int,
        link_flits: int,
    ) -> RouterPower:
        """Power from measured flit traversals over a window of ``cycles``.

        ``flit_traversals`` counts flits through the router (buffer read +
        write + crossbar + allocation each); ``link_flits`` counts flits
        that continued over this router's outgoing inter-router links.
        """
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        per_cycle = flit_traversals / cycles
        link_per_cycle = link_flits / cycles
        dyn = frequency_ghz * per_cycle
        dyn_link = frequency_ghz * link_per_cycle
        coeff = self._coeff
        buf_dyn = coeff["buf_dyn"] * dyn * config.hw_flit_width
        buf_leak = coeff["buf_leak"] * config.buffer_bits(self.num_ports)
        xbar = coeff["xbar"] * dyn * config.hw_link_width**2
        allocator = coeff["allocator"] * dyn * (self.num_ports * config.num_vcs) ** 2
        link = coeff["link"] * dyn_link * config.hw_flit_width
        base_leak = coeff["base_leak"] * router_area_mm2(config, self.num_ports)
        return RouterPower(
            buffers=buf_dyn + buf_leak,
            crossbar=xbar,
            arbiters_logic=allocator + base_leak,
            links=link,
        )


def network_power_breakdown(network, stats) -> Dict[str, float]:
    """Total network power (Watts) by component from a measured run.

    Args:
        network: a :class:`repro.noc.network.Network` after a run.
        stats: the :class:`repro.noc.stats.NetworkStats` of the
            measurement window.

    Returns a dict with ``buffers``, ``crossbar``, ``arbiters_logic``,
    ``links`` and ``total`` entries (the Figure 8b categories).
    """
    cycles = stats.measured_cycles
    if cycles == 0:
        raise ValueError("stats has an empty measurement window")
    model = RouterPowerModel()
    frequency = network.config.frequency_ghz
    totals = {"buffers": 0.0, "crossbar": 0.0, "arbiters_logic": 0.0, "links": 0.0}
    for rid, router in enumerate(network.routers):
        activity = stats.router_activity[rid]
        link_flits = sum(
            count
            for (src, _port), count in stats.link_flits.items()
            if src == rid
        )
        power = model.power_from_counts(
            config=router.config,
            frequency_ghz=frequency,
            cycles=cycles,
            flit_traversals=activity.buffer_reads,
            link_flits=link_flits,
        )
        totals["buffers"] += power.buffers
        totals["crossbar"] += power.crossbar
        totals["arbiters_logic"] += power.arbiters_logic
        totals["links"] += power.links
    totals["total"] = sum(totals.values())
    return totals
