"""HeteroNoC: the paper's primary contribution.

* :mod:`repro.core.layouts` -- the seven evaluated network configurations
  (baseline plus Center/Row2_5/Diagonal in +B and +BL flavours), memory
  controller placements and the asymmetric-CMP floorplan.
* :mod:`repro.core.hetero` -- the resource-redistribution math: the
  link-width equation, VC stripping and the power inequality bounding the
  big-router count.
* :mod:`repro.core.power` -- router power/area/frequency models calibrated
  to the paper's Table 1.
* :mod:`repro.core.design_space` -- the exhaustive small-network placement
  exploration of footnote 4.
* :mod:`repro.core.merging` -- flit-combining statistics (Section 3.3).
"""

from repro.core.hetero import (
    hetero_link_width,
    min_small_routers,
    power_inequality_ratio,
    total_buffer_bits,
    total_vcs,
)
from repro.core.layouts import (
    LAYOUT_NAMES,
    Layout,
    asymmetric_cmp_layout,
    baseline_layout,
    build_network,
    layout_by_name,
    memory_controller_placement,
)
from repro.core.power import (
    RouterPowerModel,
    network_power_breakdown,
    router_area_mm2,
    router_frequency_ghz,
)

__all__ = [
    "LAYOUT_NAMES",
    "Layout",
    "RouterPowerModel",
    "asymmetric_cmp_layout",
    "baseline_layout",
    "build_network",
    "hetero_link_width",
    "layout_by_name",
    "memory_controller_placement",
    "min_small_routers",
    "network_power_breakdown",
    "power_inequality_ratio",
    "router_area_mm2",
    "router_frequency_ghz",
    "total_buffer_bits",
    "total_vcs",
]
