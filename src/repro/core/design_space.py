"""Exhaustive placement exploration on small meshes (paper footnote 4).

The authors searched all placements of (12 big, 4 small), (10, 6) and
(8, 8) routers on a 4x4 mesh -- 1820, 8008 and 12870 configurations -- and
extrapolated the winning *shapes* (diagonal / center / rows) to 8x8.  A
cycle simulation of every placement is impractical in Python, so the
search ranks placements with a fast analytical cost model and the harness
then cycle-simulates only the leaders.

Cost model: under deterministic X-Y routing and a given traffic pattern,
every source-destination flow crosses a known set of routers.  A big
router benefits every flow that traverses it, with benefit proportional to
the router's offered load (the congestion it relieves).  The score of a
placement is the load-weighted coverage of flows by big routers; the
constraint set mirrors the paper's (fixed big-router count, power
inequality satisfied by construction).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.core.layouts import (
    center_positions,
    diagonal_positions,
    row2_5_positions,
)
from repro.noc.topology import Mesh


def xy_path_routers(mesh: Mesh, src: int, dst: int) -> List[int]:
    """Routers an X-Y-routed packet traverses from src to dst (inclusive)."""
    src_row, src_col = mesh.coords(src)
    dst_row, dst_col = mesh.coords(dst)
    path = []
    col_step = 1 if dst_col >= src_col else -1
    for col in range(src_col, dst_col + col_step, col_step):
        path.append(mesh.router_at(src_row, col))
    row_step = 1 if dst_row >= src_row else -1
    for row in range(src_row + row_step, dst_row + row_step, row_step) if src_row != dst_row else []:
        path.append(mesh.router_at(row, dst_col))
    return path


def router_traversal_counts(mesh: Mesh) -> Dict[int, int]:
    """How many uniform-random flows traverse each router under X-Y.

    This is the analytic version of the Figure 1 heat map: central routers
    are crossed by far more (src, dst) pairs than peripheral ones.
    """
    counts = {rid: 0 for rid in range(mesh.num_routers)}
    for src in range(mesh.num_routers):
        for dst in range(mesh.num_routers):
            if src == dst:
                continue
            for router in xy_path_routers(mesh, src, dst):
                counts[router] += 1
    return counts


@dataclass(frozen=True)
class PlacementScore:
    """Analytic quality of one big-router placement."""

    big_positions: FrozenSet[int]
    load_coverage: float
    flow_coverage: float
    spread: float

    @property
    def score(self) -> float:
        """Combined rank key: load-weighted coverage dominates, the flow
        coverage and spatial spread break ties (the paper's stated
        rationale for the diagonal: big routers in every row/column let
        most flows use one)."""
        return self.load_coverage + 0.3 * self.flow_coverage + 0.05 * self.spread


class PlacementExplorer:
    """Scores and enumerates big-router placements on a small mesh."""

    def __init__(self, mesh_size: int = 4) -> None:
        self.mesh = Mesh(mesh_size)
        self._traversals = router_traversal_counts(self.mesh)
        total = sum(self._traversals.values())
        self._load = {rid: c / total for rid, c in self._traversals.items()}
        self._flows = [
            (src, dst)
            for src in range(self.mesh.num_routers)
            for dst in range(self.mesh.num_routers)
            if src != dst
        ]
        self._paths = {
            (src, dst): frozenset(xy_path_routers(self.mesh, src, dst))
            for src, dst in self._flows
        }

    def score(self, big_positions: Iterable[int]) -> PlacementScore:
        """Analytic score for one placement."""
        big = frozenset(big_positions)
        load_coverage = sum(self._load[rid] for rid in big)
        covered = sum(
            1 for flow in self._flows if self._paths[flow] & big
        )
        flow_coverage = covered / len(self._flows)
        rows = {self.mesh.coords(rid)[0] for rid in big}
        cols = {self.mesh.coords(rid)[1] for rid in big}
        spread = (len(rows) + len(cols)) / (2.0 * self.mesh.width)
        return PlacementScore(
            big_positions=big,
            load_coverage=load_coverage,
            flow_coverage=flow_coverage,
            spread=spread,
        )

    #: Exhaustive enumeration above this many placements is refused.
    #: Footnote 4's largest 4x4 space is 12,870; anything over the limit
    #: (e.g. C(64, 16) ~= 4.9e14 on 8x8) belongs to the metaheuristics
    #: in :mod:`repro.search`.
    MAX_ENUMERATION = 200_000

    def _check_enumerable(self, num_big: int, max_enumeration: Optional[int]) -> None:
        limit = self.MAX_ENUMERATION if max_enumeration is None else max_enumeration
        count = self.count_placements(num_big)
        if count > limit:
            raise ValueError(
                f"C({self.mesh.num_routers}, {num_big}) = {count:,} placements "
                f"exceed the exhaustive enumeration limit ({limit:,}); use "
                "repro.search (simulated_annealing / evolutionary_search) "
                "for meshes this large"
            )

    def enumerate(
        self, num_big: int, max_enumeration: Optional[int] = None
    ) -> Iterable[PlacementScore]:
        """Score every placement of ``num_big`` big routers (lazy).

        Raises :class:`ValueError` up front when the space is too large
        to enumerate (see :data:`MAX_ENUMERATION`).
        """
        self._check_enumerable(num_big, max_enumeration)
        return self._enumerate(num_big)

    def _enumerate(self, num_big: int) -> Iterable[PlacementScore]:
        for combo in itertools.combinations(range(self.mesh.num_routers), num_big):
            yield self.score(combo)

    def count_placements(self, num_big: int) -> int:
        """C(num_routers, num_big) -- footnote 4's 1820 / 8008 / 12870."""
        return math.comb(self.mesh.num_routers, num_big)

    def top_placements(
        self,
        num_big: int,
        k: int = 10,
        max_enumeration: Optional[int] = None,
    ) -> List[PlacementScore]:
        """The ``k`` best placements by analytic score."""
        ranked = sorted(
            self.enumerate(num_big, max_enumeration=max_enumeration),
            key=lambda s: s.score,
            reverse=True,
        )
        return ranked[:k]

    def named_placements(self, num_big: int) -> Dict[str, PlacementScore]:
        """Scores for the paper's named shapes, sized for this mesh.

        Only shapes whose canonical size matches ``num_big`` are included
        (diagonal/center/rows are all 2N-router shapes).
        """
        n = self.mesh.width
        shapes = {
            "diagonal": diagonal_positions(n),
            "center": center_positions(n),
            "row2_5": row2_5_positions(n),
        }
        return {
            name: self.score(positions)
            for name, positions in shapes.items()
            if len(positions) == num_big
        }

    def rank_of(
        self,
        big_positions: Iterable[int],
        num_big: Optional[int] = None,
        max_enumeration: Optional[int] = None,
    ) -> int:
        """1-based rank of a placement among all same-size placements."""
        target = self.score(big_positions)
        num_big = num_big if num_big is not None else len(target.big_positions)
        better = sum(
            1
            for s in self.enumerate(num_big, max_enumeration=max_enumeration)
            if s.score > target.score
        )
        return better + 1

    def simulate_placements(
        self,
        placements: Iterable[Iterable[int]],
        rate: float = 0.08,
        measure_packets: int = 400,
        seed: int = 5,
        **sweep_kwargs,
    ) -> List[dict]:
        """Cycle-simulate candidate placements and rank by measured latency.

        This is the second stage of the paper's methodology: the analytic
        score pre-filters the thousands of placements, and the survivors
        are compared with the real simulator.  Each candidate becomes a
        :class:`repro.exec.SweepPoint` executed through
        :func:`repro.exec.run_sweep`, so runs parallelize across
        ``REPRO_JOBS`` processes, hit the on-disk result cache, and stay
        bit-identical regardless of job count.  Extra keyword arguments
        (``jobs``, ``cache``, ``progress``, ...) pass through to
        ``run_sweep``.  Returns one record per placement, sorted by
        average latency.
        """
        from repro.search.refine import refine_placements

        records = refine_placements(
            list(placements),
            self.mesh.width,
            rate=rate,
            seed=seed,
            measure_packets=measure_packets,
            **sweep_kwargs,
        )
        for record in records:
            record["analytic_score"] = self.score(record["big_positions"]).score
        return records
