"""Fault-aware rerouting.

:class:`FaultAwareRouting` wraps a base discipline (normally X-Y) and
steers packets around dead links and routers.  The policy:

* with **no dead elements** it delegates every decision to the base
  discipline, bit for bit -- a fault schedule that never fires leaves
  routing identical to the healthy network (the golden-run and
  degradation-study baselines depend on this);
* with faults present it computes hop distances to each destination by
  breadth-first search over the *alive* channel graph, prefers the base
  (X-Y) output port whenever that port is alive and still strictly
  reduces the distance, and otherwise takes the alive port with the
  smallest distance (deterministic tie-break: lowest port index).

Preferring the dimension-ordered port keeps the common case
deadlock-free; the detours around faults can, in principle, close
channel-dependency cycles.  That is accepted rather than prevented:
the end-to-end retransmission timeout at the network interface purges
wedged packets (recovery-based deadlock handling, in the style of the
Alpha 21364), and the :class:`repro.faults.watchdog.Watchdog` converts
any residual stall into a structured diagnosis instead of a hang.

Distance tables are cached per destination and invalidated whenever the
fault injector changes the alive-channel graph (it bumps
``topology_epoch`` on every kill/repair).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.noc.flit import Packet
from repro.noc.routing import Routing, RoutingError


class UnreachableDestination(RoutingError):
    """No alive path exists between a packet's source and destination."""


class FaultAwareRouting(Routing):
    """Reroute around dead elements; identical to ``base`` when healthy.

    ``state`` is any object exposing ``dead_routers`` (set of router
    ids), ``dead_ports`` (set of ``(router, port)``) and an integer
    ``topology_epoch`` that changes whenever either set does -- in
    practice the :class:`repro.faults.injector.FaultInjector`.
    """

    def __init__(self, base: Routing, state) -> None:
        super().__init__(base.topology)
        self.base = base
        self.state = state
        self._epoch: Optional[int] = None
        self._alive_ports: List[List[Tuple[int, int]]] = []
        self._rev: List[List[int]] = []
        self._dist: Dict[int, List[Optional[int]]] = {}

    # -- alive-graph maintenance ----------------------------------------------
    def _refresh(self) -> None:
        if self._epoch == self.state.topology_epoch:
            return
        self._epoch = self.state.topology_epoch
        self._dist = {}
        topo = self.topology
        dead_routers = self.state.dead_routers
        dead_ports = self.state.dead_ports
        alive: List[List[Tuple[int, int]]] = [
            [] for _ in range(topo.num_routers)
        ]
        rev: List[List[int]] = [[] for _ in range(topo.num_routers)]
        for src, sport, dst, dport in topo.channels():
            if src in dead_routers or dst in dead_routers:
                continue
            if (src, sport) in dead_ports or (dst, dport) in dead_ports:
                continue
            alive[src].append((sport, dst))
            rev[dst].append(src)
        self._alive_ports = alive
        self._rev = rev

    def _distances(self, dst_router: int) -> List[Optional[int]]:
        dist = self._dist.get(dst_router)
        if dist is not None:
            return dist
        dist = [None] * self.topology.num_routers
        if dst_router not in self.state.dead_routers:
            dist[dst_router] = 0
            frontier = deque([dst_router])
            while frontier:
                here = frontier.popleft()
                step = dist[here] + 1
                for upstream in self._rev[here]:
                    if dist[upstream] is None:
                        dist[upstream] = step
                        frontier.append(upstream)
        self._dist[dst_router] = dist
        return dist

    def healthy(self) -> bool:
        """True when no element is currently dead (pure-delegate mode)."""
        return not self.state.dead_routers and not self.state.dead_ports

    def reachable(self, src_router: int, dst_router: int) -> bool:
        """Whether an alive path ``src_router -> dst_router`` exists now."""
        self._refresh()
        if src_router == dst_router:
            return src_router not in self.state.dead_routers
        return self._distances(dst_router)[src_router] is not None

    # -- Routing interface -----------------------------------------------------
    def output_port(self, router: int, packet: Packet) -> int:
        self._refresh()
        if self.healthy():
            return self.base.output_port(router, packet)
        ejection = self._ejection_port(router, packet)
        if ejection is not None:
            return ejection
        dst_router = self.topology.router_of_node(packet.dst)
        dist = self._distances(dst_router)
        here = dist[router]
        if here is None:
            raise UnreachableDestination(
                f"packet {packet.packet_id}: no alive path from router "
                f"{router} to router {dst_router}"
            )
        try:
            base_port: Optional[int] = self.base.output_port(router, packet)
        except RoutingError:
            base_port = None
        options: Dict[int, int] = {}
        for port, neighbor in self._alive_ports[router]:
            d = dist[neighbor]
            if d is not None:
                options[port] = d
        if base_port in options and options[base_port] < here:
            return base_port
        if not options:  # unreachable: the BFS above would have said so
            raise UnreachableDestination(
                f"packet {packet.packet_id}: router {router} has no alive "
                "output channel"
            )
        return min(options, key=lambda port: (options[port], port))

    def allowed_vcs(self, router, out_port, packet, num_vcs):
        return self.base.allowed_vcs(router, out_port, packet, num_vcs)
