"""Declarative fault schedules.

A :class:`FaultSpec` names one fault -- what breaks (a link, a whole
router, a single virtual channel, a bit-flipping link, a wide link
degraded to narrow operation), where, and *when* (permanently from a
cycle, transiently with repair after N cycles, or intermittently as a
seeded Poisson process of episodes).  A :class:`FaultSchedule` bundles a
tuple of specs with the seed that pins the intermittent arrivals, plus
the end-to-end resilience-policy knobs the network interface uses while
the schedule is active.

Both types are frozen, hashable and JSON-able, so a schedule can ride
inside a :class:`repro.exec.point.SweepPoint`: faulty configurations
hash, cache and parallelize exactly like healthy ones.

Fault kinds
===========

``link``
    The full-duplex channel at ``(router, port)`` fails in both
    directions.  Flits caught mid-wormhole are lost (their packets are
    purged and reported to the NI for retransmission); subsequent
    traffic reroutes around the dead channel.
``router``
    Fail-stop of a whole router: every incident channel dies, every
    buffered flit is lost, and nodes attached to it fall off the
    network until repair.
``vc_stuck``
    Input virtual channel ``(router, port, vc)`` stops arbitrating;
    flits inside it are wedged until the fault repairs or the NI's
    retransmission timeout purges them.
``bit_flip``
    While active, every flit traversing the directed output
    ``(router, port)`` has payload bits flipped; the packet arrives
    corrupted, is discarded by the destination NI and retransmitted.
``link_degrade``
    A wide (256 b merged) channel falls back to narrow (128 b,
    one-flit-per-cycle) operation -- the big-router degraded mode.
    Traffic keeps flowing at half link bandwidth; nothing is lost.

Timing modes
============

``permanent``   -- active from cycle ``at`` forever.
``transient``   -- active from ``at``, repaired ``repair_after`` cycles
                   later.
``intermittent``-- episodes of ``duration`` cycles whose start times
                   form a Poisson process of ``rate`` episodes/cycle,
                   drawn deterministically from the schedule seed.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

FAULT_KINDS = ("link", "router", "vc_stuck", "bit_flip", "link_degrade")
FAULT_MODES = ("permanent", "transient", "intermittent")

#: kinds that name a specific port on the target router
_PORT_KINDS = ("link", "vc_stuck", "bit_flip", "link_degrade")


@dataclass(frozen=True)
class FaultSpec:
    """One declared fault (see the module docstring for semantics)."""

    kind: str
    router: int
    port: Optional[int] = None
    vc: Optional[int] = None
    mode: str = "permanent"
    at: int = 0
    repair_after: Optional[int] = None
    rate: Optional[float] = None
    duration: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.mode not in FAULT_MODES:
            raise ValueError(f"mode must be one of {FAULT_MODES}, got {self.mode!r}")
        if self.router < 0:
            raise ValueError(f"router must be non-negative, got {self.router}")
        if self.kind in _PORT_KINDS and self.port is None:
            raise ValueError(f"{self.kind} faults need a port")
        if self.kind == "router" and self.port is not None:
            raise ValueError("router faults kill every port; do not give one")
        if self.kind == "vc_stuck" and self.vc is None:
            raise ValueError("vc_stuck faults need a vc")
        if self.kind != "vc_stuck" and self.vc is not None:
            raise ValueError(f"{self.kind} faults do not take a vc")
        if self.at < 0:
            raise ValueError(f"at must be non-negative, got {self.at}")
        if self.mode == "transient":
            if self.repair_after is None or self.repair_after < 1:
                raise ValueError("transient faults need repair_after >= 1")
        elif self.repair_after is not None:
            raise ValueError(f"{self.mode} faults do not take repair_after")
        if self.mode == "intermittent":
            if self.rate is None or not (0.0 < self.rate <= 1.0):
                raise ValueError(
                    "intermittent faults need a rate in (0, 1] episodes/cycle"
                )
            if self.duration < 1:
                raise ValueError(f"duration must be >= 1, got {self.duration}")
        elif self.rate is not None:
            raise ValueError(f"{self.mode} faults do not take a rate")

    def target(self) -> Tuple:
        """The identity of the faulted resource (for dedup/diagnostics)."""
        if self.kind == "router":
            return (self.kind, self.router)
        if self.kind == "vc_stuck":
            return (self.kind, self.router, self.port, self.vc)
        return (self.kind, self.router, self.port)

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        return cls(**payload)


@dataclass(frozen=True)
class FaultSchedule:
    """A deterministic set of faults plus the NI resilience policy.

    Attributes:
        specs: the declared faults.  An *empty* tuple is legal and
            useful: it enables the whole resilience stack (fault-aware
            routing, retransmission tracking, watchdog) with no faults,
            giving a like-for-like baseline for degradation studies.
        seed: pins the Poisson arrivals of every intermittent spec.
        retransmit_timeout: NI retransmission timeout in cycles
            (``None`` derives a default from the network's zero-load
            hop cost).
        max_retries: retransmission attempts before a packet is
            declared lost.
        backoff_factor: multiplier applied to the timeout per
            successive attempt (exponential backoff).
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    retransmit_timeout: Optional[int] = None
    max_retries: int = 8
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        # Accept any iterable of specs (or dicts) and freeze it.
        specs = tuple(
            spec if isinstance(spec, FaultSpec) else FaultSpec.from_dict(spec)
            for spec in self.specs
        )
        object.__setattr__(self, "specs", specs)
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retransmit_timeout is not None and self.retransmit_timeout < 1:
            raise ValueError("retransmit_timeout must be >= 1 when given")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1.0, got {self.backoff_factor}"
            )

    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-able dict (lists, not tuples) for spec hashing."""
        return {
            "specs": [spec.to_dict() for spec in self.specs],
            "seed": self.seed,
            "retransmit_timeout": self.retransmit_timeout,
            "max_retries": self.max_retries,
            "backoff_factor": self.backoff_factor,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSchedule":
        specs = tuple(FaultSpec.from_dict(s) for s in payload.get("specs", ()))
        return cls(
            specs=specs,
            seed=payload.get("seed", 0),
            retransmit_timeout=payload.get("retransmit_timeout"),
            max_retries=payload.get("max_retries", 8),
            backoff_factor=payload.get("backoff_factor", 2.0),
        )


def kill_routers(
    routers: Iterable[int], at: int = 0, **schedule_kwargs
) -> FaultSchedule:
    """Permanent fail-stop of ``routers`` from cycle ``at``."""
    specs = tuple(
        FaultSpec(kind="router", router=rid, mode="permanent", at=at)
        for rid in routers
    )
    return FaultSchedule(specs=specs, **schedule_kwargs)


def intermittent_link_faults(
    channels: Sequence[Tuple[int, int]],
    rate: float,
    duration: int,
    seed: int = 0,
    **schedule_kwargs,
) -> FaultSchedule:
    """Poisson-arrival transient faults on each ``(router, port)`` channel.

    Each channel independently suffers episodes of ``duration`` cycles at
    ``rate`` episodes/cycle -- the "X% transient link-fault rate" setting
    of the resilience studies.
    """
    specs = tuple(
        FaultSpec(
            kind="link",
            router=router,
            port=port,
            mode="intermittent",
            rate=rate,
            duration=duration,
        )
        for router, port in channels
    )
    return FaultSchedule(specs=specs, seed=seed, **schedule_kwargs)


def mesh_link_channels(topology) -> List[Tuple[int, int]]:
    """One ``(router, port)`` handle per full-duplex channel pair.

    ``topology.channels()`` yields both directions; faults kill channel
    pairs, so keep the direction with the lower endpoint to avoid
    declaring each physical link twice.
    """
    seen = set()
    handles: List[Tuple[int, int]] = []
    for src, sport, dst, dport in topology.channels():
        if (dst, dport, src, sport) in seen:
            continue
        seen.add((src, sport, dst, dport))
        handles.append((src, sport))
    return handles
