"""End-to-end retransmission at the network interface.

Under a fault schedule, packets can be lost (purged mid-wormhole by a
link/router kill), arrive corrupted (bit-flip faults), or wedge behind
a stuck VC.  The :class:`RetransmissionManager` is the NI-level
recovery layer the run driver wires in: every packet it sends is
tracked until a *clean* delivery, and

* a **corrupted delivery** is discarded and the packet retransmitted
  immediately;
* a **purge notification** (``Network.report_packet_lost``) triggers a
  retransmission, unless the destination is currently unreachable --
  then the packet waits and the timeout path retries it;
* a **timeout** (no delivery within the window) purges the packet from
  the network -- this is also the recovery path for packets wedged
  behind a stuck VC or a fault-induced routing cycle -- and
  retransmits it with the timeout grown by ``backoff_factor``
  (exponential backoff, so repeated losses of one flow thin out its
  pressure on the faulty region).

After ``max_retries`` failed attempts (or while the destination is
unreachable at retry time with no retries left), the packet is declared
**lost** and counted in :attr:`lost_packets` / :attr:`lost_measured` --
never silently dropped, which is what lets ``run_synthetic`` account
for every measured packet.

Retransmission reuses the *same* :class:`~repro.noc.flit.Packet` object
-- identity, ``packet_id`` and ``created_at`` (so latency measures
creation to final successful delivery, retries included) are preserved
while per-trip routing state is reset.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class _Outstanding:
    """Tracking record for one unacknowledged packet."""

    __slots__ = ("packet", "attempts", "deadline", "timeout")

    def __init__(self, packet, deadline: int, timeout: int) -> None:
        self.packet = packet
        self.attempts = 1
        self.deadline = deadline
        self.timeout = timeout


class RetransmissionManager:
    """ACK/timeout/retransmit bookkeeping for every in-flight packet.

    Args:
        network: the (fault-attached) network; the manager installs
            itself as ``network.on_delivery`` consumer via the runner.
        timeout: cycles to wait for a delivery before purging and
            retransmitting.
        max_retries: retransmissions before declaring a packet lost.
        backoff_factor: per-attempt timeout multiplier.
    """

    def __init__(
        self,
        network,
        timeout: int,
        max_retries: int = 8,
        backoff_factor: float = 2.0,
    ) -> None:
        if timeout < 1:
            raise ValueError(f"timeout must be >= 1, got {timeout}")
        self.network = network
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_factor = backoff_factor
        self._outstanding: Dict[int, _Outstanding] = {}
        #: packets ready to re-enter their source queue next tick
        self._retry_queue: List = []
        self.retransmissions = 0
        self.corrupt_deliveries = 0
        self.clean_deliveries = 0
        self.lost_packets = 0
        self.lost_measured = 0
        #: (packet_id, reason, cycle) for every declared-lost packet
        self.losses: List[Tuple[int, str, int]] = []

    # -- send path -------------------------------------------------------------
    def send(self, packet) -> bool:
        """Enqueue ``packet`` and start tracking it."""
        accepted = self.network.enqueue(packet)
        if not accepted:
            # Source queue full (closed-loop drop): nothing to track.
            return False
        entry = _Outstanding(
            packet, self.network.cycle + self.timeout, self.timeout
        )
        self._outstanding[packet.packet_id] = entry
        faults = self.network.faults
        if faults is not None:
            topo = self.network.topology
            if not faults.reachable(
                topo.router_of_node(packet.src),
                topo.router_of_node(packet.dst),
            ):
                # Destination currently unreachable (dead source/dest
                # router or a partition): hold the packet at the NI --
                # the timeout path retries it, in case the fault repairs.
                self.network.purge_packet(packet)
                packet.retry_timeout = self.timeout
                packet.retry_attempts = 1
        return True

    def outstanding(self) -> int:
        return len(self._outstanding) + len(self._retry_queue)

    def outstanding_measured(self) -> int:
        count = sum(
            1 for e in self._outstanding.values() if e.packet.measured
        )
        return count + sum(1 for p in self._retry_queue if p.measured)

    # -- network callbacks -----------------------------------------------------
    def on_delivery(self, packet, cycle: int) -> None:
        """Fired by the network for every completed packet (its
        ``on_delivery`` callback); corrupted arrivals retransmit."""
        entry = self._outstanding.get(packet.packet_id)
        if entry is None:
            return  # not ours (e.g. enqueued directly around the NI)
        if packet.corrupted:
            self.corrupt_deliveries += 1
            self._retry(entry, cycle, purge=False)
            return
        self.clean_deliveries += 1
        del self._outstanding[packet.packet_id]

    def on_loss(self, packet, reason: str, cycle: int) -> None:
        """Fired by the network when a fault purges ``packet``."""
        entry = self._outstanding.get(packet.packet_id)
        if entry is None:
            return
        self._retry(entry, cycle, purge=False)

    # -- per-cycle drive -------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Check timeouts and replay the retry queue; call every cycle."""
        if self._retry_queue:
            retries, self._retry_queue = self._retry_queue, []
            for packet in retries:
                self._resend(packet, cycle)
        if not self._outstanding:
            return
        expired = [
            entry
            for entry in self._outstanding.values()
            if cycle >= entry.deadline
        ]
        for entry in expired:
            # Timeout doubles as deadlock recovery: purge whatever is
            # left of the packet inside the network before resending.
            self._retry(entry, cycle, purge=True)

    # -- internals -------------------------------------------------------------
    def _retry(self, entry: _Outstanding, cycle: int, purge: bool) -> None:
        packet = entry.packet
        if purge:
            self.network.purge_packet(packet)
        if entry.attempts > self.max_retries:
            self._declare_lost(packet, "retries_exhausted", cycle)
            return
        del self._outstanding[packet.packet_id]
        entry.attempts += 1
        self._reset_for_retransmit(packet)
        # Grow the window before re-queueing (exponential backoff).
        entry.timeout = max(
            entry.timeout + 1, int(entry.timeout * self.backoff_factor)
        )
        packet.retry_timeout = entry.timeout
        packet.retry_attempts = entry.attempts
        self._retry_queue.append(packet)

    def _resend(self, packet, cycle: int) -> None:
        faults = self.network.faults
        src_router = self.network.topology.router_of_node(packet.src)
        dst_router = self.network.topology.router_of_node(packet.dst)
        if faults is not None and not faults.reachable(src_router, dst_router):
            # No alive path right now.  With retries left, park the packet
            # for one more timeout window (the fault may be transient);
            # otherwise it is lost.
            attempts = getattr(packet, "retry_attempts", self.max_retries + 1)
            if attempts > self.max_retries:
                self._declare_lost(packet, "unreachable", cycle)
                return
            entry = _Outstanding(
                packet, cycle + packet.retry_timeout, packet.retry_timeout
            )
            entry.attempts = attempts
            self._outstanding[packet.packet_id] = entry
            return
        entry = _Outstanding(
            packet, cycle + packet.retry_timeout, packet.retry_timeout
        )
        entry.attempts = packet.retry_attempts
        self._outstanding[packet.packet_id] = entry
        self.retransmissions += 1
        if not self.network.enqueue(packet, retransmit=True):
            # Source queue full: try again next cycle.
            del self._outstanding[packet.packet_id]
            self._retry_queue.append(packet)
            self.retransmissions -= 1
            return
        if self.network.obs is not None:
            self.network.obs.on_packet_retransmitted(
                packet, entry.attempts, cycle
            )

    @staticmethod
    def _reset_for_retransmit(packet) -> None:
        """Clear per-trip state; keep identity and ``created_at``."""
        packet.injected_at = None
        packet.received_at = None
        packet.hops = 0
        packet.min_lanes = None
        packet.vc_class = 0
        packet.on_escape = False
        packet.corrupted = False

    def _declare_lost(self, packet, reason: str, cycle: int) -> None:
        self._outstanding.pop(packet.packet_id, None)
        self.lost_packets += 1
        if packet.measured:
            self.lost_measured += 1
        self.losses.append((packet.packet_id, reason, cycle))
        if self.network.obs is not None:
            self.network.obs.on_packet_lost(packet, reason, cycle)

    def summary(self) -> Dict[str, int]:
        return {
            "clean_deliveries": self.clean_deliveries,
            "corrupt_deliveries": self.corrupt_deliveries,
            "retransmissions": self.retransmissions,
            "lost_packets": self.lost_packets,
            "lost_measured": self.lost_measured,
            "outstanding": self.outstanding(),
        }


def default_timeout(network) -> int:
    """A retransmission timeout derived from the network's scale.

    Generous enough that ordinary congestion never trips it: several
    times the zero-load corner-to-corner latency, floored at 256 cycles.
    """
    topo = network.topology
    stages = network.config.router_pipeline_stages
    hop_cost = (stages - 1) + network.config.link_delay
    # Worst-case minimal hop count across supported topologies is bounded
    # by num_routers; the mesh diameter bound keeps it tight there.
    diameter = getattr(topo, "width", 0) + getattr(topo, "height", 0)
    if diameter == 0:
        diameter = topo.num_routers
    zero_load = hop_cost * (diameter + 2) + stages + 16
    return max(256, 8 * zero_load)
