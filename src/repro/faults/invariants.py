"""Simulator invariant checks (the ``REPRO_CHECK=1`` layer).

Every check is *read-only*: running them cannot perturb a simulation, so
a run with checking enabled produces byte-identical results to one
without -- the golden-run tests pin this.  The checks:

* **credit conservation** -- for every inter-router channel and VC, the
  upstream credit count plus flits buffered downstream, flits in flight
  on the link, and credits in flight back upstream must equal the
  downstream buffer depth;
* **buffer accounting** -- each router's ``occupied_flits`` equals the
  sum of its VC queue lengths, and the active-VC index structures agree
  with the queues;
* **VC state machine** -- an input VC holding a downstream allocation
  must own the downstream VC it claims (``out_vc_owner`` agreement),
  and credit counts must sit inside ``[0, depth]``.

Channels incident to a dead router or dead link (when a fault injector
is attached) are exempt from credit conservation: a fail-stop
deliberately discards flits and the purge machinery reconciles the
healthy remainder of the network instead.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class InvariantViolation(RuntimeError):
    """A simulator invariant does not hold; the run is untrustworthy.

    Attributes:
        violations: one human-readable description per broken invariant.
        cycle: the cycle at which the check ran.
    """

    def __init__(self, violations: List[str], cycle: int) -> None:
        self.violations = list(violations)
        self.cycle = cycle
        preview = "; ".join(self.violations[:3])
        more = len(self.violations) - 3
        if more > 0:
            preview += f" (+{more} more)"
        super().__init__(
            f"{len(self.violations)} invariant violation(s) at cycle "
            f"{cycle}: {preview}"
        )


def _in_flight_counts(network) -> Tuple[Dict, Dict]:
    """Flits on links and credits on the wire, keyed by (router, port, vc).

    Arrival events are keyed by their *downstream* coordinates, credit
    events by their *upstream* coordinates -- exactly how the network
    schedules them.
    """
    arrivals: Dict[Tuple[int, int, int], int] = {}
    for events in network._arrivals.values():
        for router_id, port, vc, _flit in events:
            key = (router_id, port, vc)
            arrivals[key] = arrivals.get(key, 0) + 1
    credits: Dict[Tuple[int, int, int], int] = {}
    for events in network._credits.values():
        for router_id, port, vc, _release in events:
            key = (router_id, port, vc)
            credits[key] = credits.get(key, 0) + 1
    return arrivals, credits


def check_network_invariants(network) -> List[str]:
    """Return a description of every broken invariant (empty == healthy)."""
    violations: List[str] = []
    topo = network.topology
    faults = network.faults
    dead_routers = faults.dead_routers if faults is not None else frozenset()
    dead_ports = faults.dead_ports if faults is not None else frozenset()

    # -- per-router buffer and index accounting --------------------------------
    for router in network.routers:
        rid = router.router_id
        total = 0
        for port in range(router.num_ports):
            active = 0
            for vc in range(router.config.num_vcs):
                state = router._vc_states[port][vc]
                depth = len(state.queue)
                total += depth
                keyed = (port, vc) in router._active
                if depth > 0:
                    active += 1
                    if not keyed:
                        violations.append(
                            f"router {rid} port {port} vc {vc}: "
                            f"{depth} buffered flits but VC not in the "
                            "active index"
                        )
                elif keyed:
                    violations.append(
                        f"router {rid} port {port} vc {vc}: empty VC "
                        "still in the active index"
                    )
                if depth > router.config.buffer_depth:
                    violations.append(
                        f"router {rid} port {port} vc {vc}: {depth} flits "
                        f"exceed buffer depth {router.config.buffer_depth}"
                    )
                # VC state machine: a held downstream allocation must be
                # owned by this packet at the routed output port.
                if (
                    state.out_vc is not None
                    and state.out_vc >= 0
                    and state.packet_id is not None
                ):
                    owner = router.out_vc_owner[state.route_port][state.out_vc]
                    if owner != state.packet_id:
                        violations.append(
                            f"router {rid} port {port} vc {vc}: packet "
                            f"{state.packet_id} claims output vc "
                            f"{state.out_vc} of port {state.route_port} "
                            f"owned by {owner}"
                        )
            if router._port_active[port] != active:
                violations.append(
                    f"router {rid} port {port}: active-VC count "
                    f"{router._port_active[port]} != {active} non-empty VCs"
                )
        if router.occupied_flits != total:
            violations.append(
                f"router {rid}: occupied_flits {router.occupied_flits} != "
                f"{total} buffered flits"
            )

    # -- event-kernel active-set coverage --------------------------------------
    # The active sets are conservative supersets: every router holding
    # flits and every source with pending work must be a member, or the
    # event-driven stepper would skip them forever.  (Maintained in naive
    # mode too, so the kernels can be switched mid-run.)
    active_routers = network._active_routers
    for router in network.routers:
        if router.occupied_flits > 0 and router.router_id not in active_routers:
            violations.append(
                f"router {router.router_id}: {router.occupied_flits} "
                "buffered flits but not in the network's active-router set"
            )
    active_sources = network._active_sources
    for node, source in enumerate(network.sources):
        if (source.queue or source.mid_packet) and node not in active_sources:
            violations.append(
                f"source {node}: pending work but not in the network's "
                "active-source set"
            )

    # -- credit conservation per channel ---------------------------------------
    arrivals, credit_events = _in_flight_counts(network)
    for src, sport, dst, dport in topo.channels():
        if src in dead_routers or dst in dead_routers:
            continue
        if (src, sport) in dead_ports or (dst, dport) in dead_ports:
            continue
        upstream = network.routers[src]
        downstream = network.routers[dst]
        depth = upstream._credit_ceiling[sport]
        for vc in range(upstream.out_vc_count[sport]):
            held = upstream.out_credits[sport][vc]
            if held < 0 or held > depth:
                violations.append(
                    f"channel {src}:{sport}->{dst}:{dport} vc {vc}: credit "
                    f"count {held} outside [0, {depth}]"
                )
            buffered = len(downstream._vc_states[dport][vc].queue)
            on_link = arrivals.get((dst, dport, vc), 0)
            returning = credit_events.get((src, sport, vc), 0)
            conserved = held + buffered + on_link + returning
            if conserved != depth:
                violations.append(
                    f"channel {src}:{sport}->{dst}:{dport} vc {vc}: credits "
                    f"not conserved ({held} held + {buffered} buffered + "
                    f"{on_link} on link + {returning} returning != {depth})"
                )
    return violations
