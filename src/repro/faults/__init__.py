"""Fault injection and resilience for the NoC simulator.

The subsystem has four cooperating layers, all wired together by
``run_synthetic(..., faults=FaultSchedule(...))``:

* :mod:`repro.faults.schedule` -- declarative, deterministic fault
  schedules (:class:`FaultSpec` / :class:`FaultSchedule`) that travel
  inside a :class:`~repro.exec.point.SweepPoint`, so faulty configs
  cache and parallelize like any other sweep point;
* :mod:`repro.faults.injector` -- :class:`FaultInjector`, the runtime
  that applies/repairs faults on schedule and purges the casualties;
* :mod:`repro.faults.routing` / :mod:`repro.faults.retransmit` -- the
  resilience mechanisms: fault-aware rerouting around dead elements and
  NI-level end-to-end ACK/timeout/retransmission;
* :mod:`repro.faults.watchdog` / :mod:`repro.faults.invariants` -- the
  safety net: deadlock/livelock detection with structured diagnoses and
  the ``REPRO_CHECK=1`` state-machine invariant checks.

Everything here follows the observability layer's null-object discipline:
a network without an attached injector/watchdog pays a single ``is not
None`` check per hook and produces byte-identical results.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantViolation, check_network_invariants
from repro.faults.retransmit import RetransmissionManager, default_timeout
from repro.faults.routing import FaultAwareRouting, UnreachableDestination
from repro.faults.schedule import (
    FAULT_KINDS,
    FAULT_MODES,
    FaultSchedule,
    FaultSpec,
    intermittent_link_faults,
    kill_routers,
    mesh_link_channels,
)
from repro.faults.watchdog import (
    BlockedVC,
    SimulationStalled,
    StallDiagnosis,
    Watchdog,
    diagnose_blocked_vcs,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_MODES",
    "BlockedVC",
    "FaultAwareRouting",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "InvariantViolation",
    "RetransmissionManager",
    "SimulationStalled",
    "StallDiagnosis",
    "UnreachableDestination",
    "Watchdog",
    "check_network_invariants",
    "default_timeout",
    "diagnose_blocked_vcs",
    "intermittent_link_faults",
    "kill_routers",
    "mesh_link_channels",
]
