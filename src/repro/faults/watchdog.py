"""Deadlock/livelock watchdog.

The watchdog rides the network's cycle loop (``Network.step`` calls
:meth:`Watchdog.check` once per cycle when attached) and watches two
cheap progress signals:

* **deadlock** -- the flit-movement signature (crossbar traversals +
  buffer writes + packets in flight) is frozen for ``stall_window``
  cycles while packets are still in flight.  Wormhole networks deadlock
  silently: every blocked VC waits on a credit that can never come, so
  nothing raises and the old behaviour was an infinite hang inside
  ``drain()``.
* **livelock** -- flits keep moving but no packet completes for
  ``livelock_window`` cycles (e.g. a retransmission storm or a routing
  bug cycling packets forever).

Either condition raises :class:`SimulationStalled` carrying a
:class:`StallDiagnosis` that names every blocked virtual channel and
*why* it is blocked (no downstream VC won, or zero credits), so a CI
failure reads like a diagnosis instead of a timeout.

The watchdog is read-only: attaching it cannot change simulation
results, which the golden-run byte-identity tests rely on.  Invariant
checking (``check_invariants=True``, normally driven by the
``REPRO_CHECK=1`` environment flag) additionally runs
:func:`repro.faults.invariants.check_network_invariants` every
``check_interval`` cycles and raises
:class:`~repro.faults.invariants.InvariantViolation` on the first
breach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.faults.invariants import InvariantViolation, check_network_invariants


@dataclass(frozen=True)
class BlockedVC:
    """One input virtual channel that holds flits but cannot move them."""

    router: int
    port: int
    vc: int
    packet_id: Optional[int]
    buffered_flits: int
    route_port: Optional[int]
    out_vc: Optional[int]
    reason: str

    def describe(self) -> str:
        return (
            f"router {self.router} in({self.port},{self.vc}) "
            f"pkt {self.packet_id} x{self.buffered_flits} flits "
            f"-> port {self.route_port}: {self.reason}"
        )


@dataclass
class StallDiagnosis:
    """Structured picture of a stalled network."""

    kind: str  # "deadlock" or "livelock"
    cycle: int
    stalled_for: int
    packets_in_flight: int
    blocked: List[BlockedVC] = field(default_factory=list)
    queued_sources: List[int] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"{self.kind} at cycle {self.cycle}: no "
            f"{'flit movement' if self.kind == 'deadlock' else 'delivery'} "
            f"for {self.stalled_for} cycles with "
            f"{self.packets_in_flight} packets in flight",
        ]
        for entry in self.blocked[:16]:
            lines.append("  blocked: " + entry.describe())
        if len(self.blocked) > 16:
            lines.append(f"  ... and {len(self.blocked) - 16} more blocked VCs")
        if self.queued_sources:
            preview = ", ".join(str(n) for n in self.queued_sources[:8])
            lines.append(f"  sources with queued packets: {preview}")
        return "\n".join(lines)


class SimulationStalled(RuntimeError):
    """The watchdog gave up on the simulation making progress."""

    def __init__(self, diagnosis: StallDiagnosis) -> None:
        self.diagnosis = diagnosis
        super().__init__(diagnosis.describe())


def diagnose_blocked_vcs(network) -> List[BlockedVC]:
    """Name every non-empty input VC and why its head flit cannot move."""
    blocked: List[BlockedVC] = []
    for router in network.routers:
        for (port, vc) in router._active:
            state = router._vc_states[port][vc]
            if not state.queue:
                continue
            head = state.queue[0]
            if state.packet_id != head.packet.packet_id:
                reason = "head-of-queue packet still awaiting RC"
            elif state.out_vc is None:
                reason = "no downstream VC won (VA starvation or cycle)"
            elif state.out_vc >= 0 and not router.is_ejection[state.route_port]:
                credits = router.out_credits[state.route_port][state.out_vc]
                if credits == 0:
                    reason = (
                        f"zero credits on out vc {state.out_vc} "
                        "(downstream buffer full)"
                    )
                else:
                    reason = "eligible but losing switch allocation"
            else:
                reason = "eligible but losing switch allocation"
            blocked.append(
                BlockedVC(
                    router=router.router_id,
                    port=port,
                    vc=vc,
                    packet_id=state.packet_id,
                    buffered_flits=len(state.queue),
                    route_port=state.route_port,
                    out_vc=state.out_vc,
                    reason=reason,
                )
            )
    return blocked


class Watchdog:
    """Progress monitor attached via ``Network.attach_watchdog``.

    Args:
        stall_window: cycles without any flit movement before declaring
            deadlock.  Must comfortably exceed the longest legitimate
            quiet period (retransmission timeouts included) of the run
            it guards.
        livelock_window: cycles without any packet delivery (while
            packets are in flight) before declaring livelock.
        check_interval: cycles between progress samples; keeps the
            per-cycle cost to one modulo on the fast path.
        check_invariants: also run the ``REPRO_CHECK`` invariant suite
            at every sample.
    """

    def __init__(
        self,
        stall_window: int = 2_000,
        livelock_window: int = 50_000,
        check_interval: int = 64,
        check_invariants: bool = False,
    ) -> None:
        if stall_window < 1 or livelock_window < 1 or check_interval < 1:
            raise ValueError("watchdog windows and interval must be >= 1")
        self.stall_window = stall_window
        self.livelock_window = livelock_window
        self.check_interval = check_interval
        self.check_invariants = check_invariants
        self._movement: Optional[Tuple[int, int, int]] = None
        self._movement_cycle = 0
        self._delivered = -1
        self._delivered_cycle = 0

    def _movement_signature(self, network) -> Tuple[int, int, int]:
        traversals = 0
        writes = 0
        for router in network.routers:
            traversals += router.activity.crossbar_traversals
            writes += router.activity.buffer_writes
        return traversals, writes, network.packets_in_flight

    def check(self, network, cycle: int) -> None:
        """Sample progress; raise on deadlock/livelock/invariant breach."""
        if cycle % self.check_interval:
            return
        if self.check_invariants:
            violations = check_network_invariants(network)
            if violations:
                raise InvariantViolation(violations, cycle)
        in_flight = network.packets_in_flight
        signature = self._movement_signature(network)
        if signature != self._movement:
            self._movement = signature
            self._movement_cycle = cycle
        delivered = network.total_delivered
        if delivered != self._delivered:
            self._delivered = delivered
            self._delivered_cycle = cycle
        if in_flight == 0:
            # Idle is progress: an empty network cannot be stalled.
            self._movement_cycle = cycle
            self._delivered_cycle = cycle
            return
        stalled_for = cycle - self._movement_cycle
        if stalled_for >= self.stall_window:
            self._raise(network, "deadlock", cycle, stalled_for)
        starving_for = cycle - self._delivered_cycle
        if starving_for >= self.livelock_window:
            self._raise(network, "livelock", cycle, starving_for)

    def _raise(self, network, kind: str, cycle: int, stalled_for: int) -> None:
        diagnosis = StallDiagnosis(
            kind=kind,
            cycle=cycle,
            stalled_for=stalled_for,
            packets_in_flight=network.packets_in_flight,
            blocked=diagnose_blocked_vcs(network),
            queued_sources=[
                node
                for node, source in enumerate(network.sources)
                if source.queue or source.mid_packet
            ],
        )
        if network.obs is not None:
            network.obs.on_stall_diagnosed(diagnosis, cycle)
        raise SimulationStalled(diagnosis)
