"""The fault injector: turns a declarative schedule into live breakage.

A :class:`FaultInjector` is attached to a network
(``Network.attach_faults``) and ticked at the top of every cycle.  It
maintains the *live* fault state the simulator core consults on its
fast paths:

``dead_routers``
    routers currently failed-stop;
``dead_ports``
    ``(router, port)`` endpoints of currently dead channels (both
    directions of a link fault; every incident channel of a dead
    router);
``stuck_vcs``
    ``(router, port, vc)`` input virtual channels that stopped
    arbitrating;
``flaky_ports``
    directed outputs whose traversing flits get payload bits flipped;
``degraded_ports``
    wide (two-lane) channel endpoints operating in narrow fallback.

``topology_epoch`` increments whenever the alive-channel graph changes,
which is what :class:`repro.faults.routing.FaultAwareRouting` keys its
distance-table cache on.

Loss semantics (fail-stop at packet granularity): when a channel or
router dies, every packet whose wormhole currently occupies the dead
element -- flits buffered there, flits on the dead wire, or a claimed
downstream VC across it -- is purged from the entire network, with
credits restored at every live router, and reported via
``Network.report_packet_lost``.  Packets whose destination became
unreachable (or whose source/destination router died) are purged the
same way, so the simulation never wedges on an impossible route.
Packets still waiting with an unclaimed route simply re-route.  The
network interface (:class:`repro.faults.retransmit.RetransmissionManager`)
decides whether a lost packet is retransmitted or declared dead.

All timing is deterministic: permanent and transient events come
straight off the schedule, and intermittent episodes draw their
Poisson inter-arrival gaps from per-spec RNGs seeded by
``(schedule.seed, spec index)``, so a fault schedule inside a
``SweepPoint`` caches and parallelizes like any other spec.
"""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional, Set, Tuple

from repro.faults.schedule import FaultSchedule, FaultSpec

#: purge reasons reported to ``Network.report_packet_lost``
REASON_FAULT = "fault"
REASON_UNREACHABLE = "unreachable"


class FaultInjector:
    """Live fault state for one network, driven by a schedule."""

    def __init__(self, schedule: FaultSchedule, topology) -> None:
        self.schedule = schedule
        self.topology = topology
        self.dead_routers: Set[int] = set()
        self.dead_ports: Set[Tuple[int, int]] = set()
        self.stuck_vcs: Set[Tuple[int, int, int]] = set()
        self.flaky_ports: Set[Tuple[int, int]] = set()
        self.degraded_ports: Set[Tuple[int, int]] = set()
        self.topology_epoch = 0
        #: (cycle, "apply"|"repair", spec) log for diagnostics/tests
        self.events: List[Tuple[int, str, FaultSpec]] = []
        self._effects: Dict[Tuple, int] = {}
        self._rngs: Dict[int, random.Random] = {}
        # Timeline heap: (cycle, sequence, action, spec_index).
        self._timeline: List[Tuple[int, int, str, int]] = []
        self._seq = 0
        self._routing = None
        self._validate_specs()
        for index, spec in enumerate(schedule.specs):
            if spec.mode == "permanent":
                self._push(spec.at, "apply", index)
            elif spec.mode == "transient":
                self._push(spec.at, "apply", index)
                self._push(spec.at + spec.repair_after, "repair", index)
            else:  # intermittent: draw the first episode lazily-deterministic
                rng = random.Random(schedule.seed * 1_000_003 + index)
                self._rngs[index] = rng
                self._push(spec.at + self._gap(rng, spec), "apply", index)

    # -- construction helpers --------------------------------------------------
    def _validate_specs(self) -> None:
        topo = self.topology
        for spec in self.schedule.specs:
            if spec.router >= topo.num_routers:
                raise ValueError(
                    f"fault targets router {spec.router} but the topology "
                    f"has {topo.num_routers}"
                )
            if spec.port is not None:
                if spec.port >= topo.num_ports(spec.router):
                    raise ValueError(
                        f"fault targets port {spec.port} of router "
                        f"{spec.router}, which has "
                        f"{topo.num_ports(spec.router)} ports"
                    )
                if topo.is_local_port(spec.router, spec.port):
                    raise ValueError(
                        f"fault targets local port {spec.port} of router "
                        f"{spec.router}; only network channels can fault"
                    )
                if topo.neighbor(spec.router, spec.port) is None:
                    raise ValueError(
                        f"fault targets unconnected port {spec.port} of "
                        f"router {spec.router}"
                    )

    def _push(self, cycle: int, action: str, index: int) -> None:
        heapq.heappush(self._timeline, (cycle, self._seq, action, index))
        self._seq += 1

    @staticmethod
    def _gap(rng: random.Random, spec: FaultSpec) -> int:
        """One Poisson inter-episode gap, at least one cycle."""
        return max(1, round(rng.expovariate(spec.rate)))

    def set_routing(self, routing) -> None:
        """Give the injector the fault-aware routing for reachability."""
        self._routing = routing

    # -- queries used on simulator fast paths ---------------------------------
    def any_dead(self) -> bool:
        return bool(self.dead_routers or self.dead_ports)

    def port_dead(self, router: int, port: int) -> bool:
        return (router, port) in self.dead_ports

    def reachable(self, src_router: int, dst_router: int) -> bool:
        """Alive-path reachability (true when routing has no fault view)."""
        if self._routing is None:
            return (
                src_router not in self.dead_routers
                and dst_router not in self.dead_routers
            )
        return self._routing.reachable(src_router, dst_router)

    def next_event_cycle(self) -> Optional[int]:
        return self._timeline[0][0] if self._timeline else None

    # -- per-cycle drive -------------------------------------------------------
    def tick(self, network, cycle: int) -> None:
        """Apply/repair every fault event due at ``cycle``."""
        topo_changed = False
        revived: List[Tuple[int, int]] = []
        while self._timeline and self._timeline[0][0] <= cycle:
            when, _seq, action, index = heapq.heappop(self._timeline)
            spec = self.schedule.specs[index]
            if action == "apply":
                topo_changed |= self._apply(spec)
                self.events.append((cycle, "apply", spec))
                if network.obs is not None:
                    network.obs.on_fault_applied(spec, cycle)
                if spec.mode == "intermittent":
                    self._push(when + spec.duration, "repair", index)
            else:
                topo_changed |= self._repair(spec, revived)
                self.events.append((cycle, "repair", spec))
                if network.obs is not None:
                    network.obs.on_fault_repaired(spec, cycle)
                if spec.mode == "intermittent":
                    rng = self._rngs[index]
                    self._push(when + self._gap(rng, spec), "apply", index)
        if topo_changed:
            self.topology_epoch += 1
            self._purge_casualties(network, cycle)
        if revived:
            # Credits discarded while an element was dead are restored
            # here, so a repaired channel runs at full depth again (and
            # the conservation invariant holds on it once more).
            network.reconcile_channel_credits(revived)

    # -- fault effects ---------------------------------------------------------
    def _spec_effects(self, spec: FaultSpec) -> List[Tuple]:
        """Atomic live-state effects of one spec (refcounted)."""
        topo = self.topology
        if spec.kind == "router":
            effects: List[Tuple] = [("router", spec.router)]
            for port in range(topo.num_ports(spec.router)):
                neighbor = topo.neighbor(spec.router, port)
                if neighbor is None:
                    continue
                effects.append(("port", spec.router, port))
                effects.append(("port", neighbor[0], neighbor[1]))
            return effects
        neighbor = topo.neighbor(spec.router, spec.port)
        if spec.kind == "link":
            return [
                ("port", spec.router, spec.port),
                ("port", neighbor[0], neighbor[1]),
            ]
        if spec.kind == "vc_stuck":
            return [("vc", spec.router, spec.port, spec.vc)]
        if spec.kind == "bit_flip":
            return [("flaky", spec.router, spec.port)]
        # link_degrade: both directions fall back to one lane.
        return [
            ("degraded", spec.router, spec.port),
            ("degraded", neighbor[0], neighbor[1]),
        ]

    _SETS = {
        "router": "dead_routers",
        "port": "dead_ports",
        "vc": "stuck_vcs",
        "flaky": "flaky_ports",
        "degraded": "degraded_ports",
    }

    def _apply(self, spec: FaultSpec) -> bool:
        """Raise refcounts; returns True when the alive graph changed."""
        changed = False
        for effect in self._spec_effects(spec):
            count = self._effects.get(effect, 0)
            self._effects[effect] = count + 1
            if count == 0:
                live: Set = getattr(self, self._SETS[effect[0]])
                key = effect[1] if effect[0] == "router" else effect[1:]
                live.add(key)
                if effect[0] in ("router", "port"):
                    changed = True
        return changed

    def _repair(
        self, spec: FaultSpec, revived: Optional[List[Tuple[int, int]]] = None
    ) -> bool:
        changed = False
        for effect in self._spec_effects(spec):
            count = self._effects[effect] - 1
            self._effects[effect] = count
            if count == 0:
                live: Set = getattr(self, self._SETS[effect[0]])
                key = effect[1] if effect[0] == "router" else effect[1:]
                live.discard(key)
                if effect[0] in ("router", "port"):
                    changed = True
                    if effect[0] == "port" and revived is not None:
                        revived.append(key)
        return changed

    # -- casualty collection ---------------------------------------------------
    def _purge_casualties(self, network, cycle: int) -> None:
        """Purge every packet damaged or stranded by a topology change."""
        topo = self.topology
        dead_r = self.dead_routers
        dead_p = self.dead_ports
        casualties: Dict[int, Tuple[object, str]] = {}

        def condemn(packet, reason: str) -> None:
            casualties.setdefault(packet.packet_id, (packet, reason))

        # Flits buffered in routers (and routing claims across dead links).
        for router in network.routers:
            rid = router.router_id
            router_dead = rid in dead_r
            for (port, vc) in list(router._active):
                state = router._vc_states[port][vc]
                port_dead = (rid, port) in dead_p
                for flit in state.queue:
                    packet = flit.packet
                    if router_dead or port_dead:
                        condemn(packet, REASON_FAULT)
                    elif topo.router_of_node(packet.dst) in dead_r:
                        condemn(packet, REASON_UNREACHABLE)
                    elif not self.reachable(
                        rid, topo.router_of_node(packet.dst)
                    ):
                        condemn(packet, REASON_UNREACHABLE)
                if (
                    not router_dead
                    and state.out_vc is not None
                    and state.out_vc >= 0
                    and state.queue
                    and (rid, state.route_port) in dead_p
                ):
                    # Wormhole committed across a now-dead channel.
                    condemn(state.queue[0].packet, REASON_FAULT)
        # Flits on the wire.
        for events in network._arrivals.values():
            for router_id, port, _vc, flit in events:
                if router_id in dead_r or (router_id, port) in dead_p:
                    condemn(flit.packet, REASON_FAULT)
                elif not self.reachable(
                    router_id, topo.router_of_node(flit.packet.dst)
                ):
                    condemn(flit.packet, REASON_UNREACHABLE)
        # Source-side packets (queued or mid-injection).
        for node, source in enumerate(network.sources):
            if not source.queue and not source.mid_packet:
                continue
            src_router = topo.router_of_node(node)
            packets = list(source.queue)
            if source.mid_packet:
                packets.append(source.flits[0].packet)
            for packet in packets:
                dst_router = topo.router_of_node(packet.dst)
                if src_router in dead_r or dst_router in dead_r:
                    condemn(packet, REASON_UNREACHABLE)
                elif not self.reachable(src_router, dst_router):
                    condemn(packet, REASON_UNREACHABLE)

        for packet, reason in casualties.values():
            network.purge_packet(packet)
            network.report_packet_lost(packet, reason, cycle)
