"""The two-stage pipelined wormhole router.

Pipeline model (Section 4, after Peh & Dally):

* **stage 1** -- buffer write (BW) and route computation (RC): an arriving
  flit is written into its input virtual channel; the head flit's output
  port is computed.
* **stage 2** -- virtual-channel allocation (VA), switch allocation (SA) and
  switch traversal (ST): the head flit claims a downstream VC, flits at the
  heads of their queues bid for the crossbar, and winners traverse onto the
  output links.

A flit written in cycle ``t`` therefore becomes eligible for stage 2 in
cycle ``t + 1`` and, winning immediately, reaches the next router's buffer
in cycle ``t + 1 + link_delay``.

HeteroNoC additions (Section 3): output ports whose link is wide (two
lanes) may grant *two* flits per cycle -- the second supplied by a parallel
output arbiter -- provided credits exist for both.  The pair may be
(a) two VCs of one input port, (b) VCs of two different input ports, or the
straightforward continuation case of two consecutive flits of the same
packet (which needs two credits in one downstream VC, exactly the modified
credit rule of Section 3.2).

Flow control is credit-based: the upstream router holds one credit per
downstream buffer slot, consumed on ST and returned (after
``credit_delay``) when the downstream router forwards the flit.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.noc.arbiters import TwoStageAllocator
from repro.noc.config import NetworkConfig, RouterConfig
from repro.noc.flit import Flit
from repro.noc.link import Link
from repro.noc.routing import Routing
from repro.noc.stats import RouterActivity


class _VCState:
    """Per-input-VC bookkeeping (the head-of-queue packet's routing state)."""

    __slots__ = ("queue", "packet_id", "route_port", "out_vc")

    def __init__(self) -> None:
        self.queue: Deque[Flit] = deque()
        self.packet_id: Optional[int] = None
        self.route_port: Optional[int] = None
        self.out_vc: Optional[int] = None

    def reset_packet(self) -> None:
        self.packet_id = None
        self.route_port = None
        self.out_vc = None


class Grant:
    """One switch-traversal decision for the current cycle.

    A plain ``__slots__`` record rather than a dataclass: millions are
    created per run, so per-instance dict elimination and a hand-written
    ``__init__`` are measurable wins on the SA/ST hot path.
    """

    __slots__ = ("in_port", "in_vc", "flit", "out_port", "out_vc", "merged")

    def __init__(
        self,
        in_port: int,
        in_vc: int,
        flit: Flit,
        out_port: int,
        out_vc: Optional[int],  # None for ejection ports
        merged: bool = False,  # True for the second flit of a wide-link pair
    ) -> None:
        self.in_port = in_port
        self.in_vc = in_vc
        self.flit = flit
        self.out_port = out_port
        self.out_vc = out_vc
        self.merged = merged

    def __repr__(self) -> str:
        return (
            f"Grant(in_port={self.in_port}, in_vc={self.in_vc}, "
            f"flit={self.flit!r}, out_port={self.out_port}, "
            f"out_vc={self.out_vc}, merged={self.merged})"
        )


# Shared immutable sentinels so the all-idle SA path allocates nothing.
_NO_VCS: List[int] = []
_NO_GRANTS: List[Grant] = []


class Router:
    """One router instance; the network drives its per-cycle phases."""

    def __init__(
        self,
        router_id: int,
        config: RouterConfig,
        num_ports: int,
        local_ports: Sequence[int],
        network_config: NetworkConfig,
    ) -> None:
        self.router_id = router_id
        self.config = config
        self.num_ports = num_ports
        self.local_ports = frozenset(local_ports)
        self.network_config = network_config
        vcs = config.num_vcs
        self._vc_states = [
            [_VCState() for _ in range(vcs)] for _ in range(num_ports)
        ]
        # Output-side state, filled in by the network once links exist:
        self.out_links: List[Optional[Link]] = [None] * num_ports
        self.out_vc_count: List[int] = [0] * num_ports
        self.out_credits: List[List[int]] = [[] for _ in range(num_ports)]
        self.out_vc_owner: List[List[Optional[int]]] = [
            [] for _ in range(num_ports)
        ]
        self.is_ejection: List[bool] = [
            port in self.local_ports for port in range(num_ports)
        ]
        self.allocator = TwoStageAllocator(num_ports, [vcs] * num_ports)
        self.activity = RouterActivity(
            buffer_capacity_flits=vcs * num_ports * config.buffer_depth
        )
        # Hot-path constants hoisted out of the per-cycle loops.
        self.num_vcs = vcs
        self._pipeline_offset = network_config.router_pipeline_stages - 1
        self._merging = network_config.flit_merging
        # Lanes usable on injection/ejection at this router's local ports.
        self._local_lanes = config.lanes if network_config.flit_merging else 1
        # Static per-port lane count (link width / flit width; ejection uses
        # the router's own lane provisioning).  Fault-induced degradation is
        # layered on top by the callers that care.
        self._static_lanes: List[int] = [0] * num_ports
        # Precomputed routing tables, installed by the owning Network when
        # the routing discipline is a pure function of (router, dest).
        # _route_table[dst] -> output port; _va_table[out_port] -> the
        # default VA candidate tuple list.  Both None => dynamic lookups.
        self._route_table: Optional[List[int]] = None
        self._va_table: Optional[List[Tuple[Tuple[int, int, bool], ...]]] = None
        self.occupied_flits = 0
        # Number of non-empty VCs per input port (fast-path SA skip).
        self._port_active: List[int] = [0] * num_ports
        # Per-port maximum credit level (downstream buffer depth).
        self._credit_ceiling: List[int] = [0] * num_ports
        # Insertion-ordered set of (port, vc) with at least one buffered flit.
        self._active: Dict[Tuple[int, int], bool] = {}
        # Rotating offset for VA fairness across input VCs.
        self._va_offset = 0
        # Observation hooks, shared with the owning network (see
        # Network.attach_observer); None keeps the fast path.
        self.obs = None
        # Live fault state, shared with the owning network (see
        # Network.attach_faults); None keeps the fast path -- same
        # single-attribute-check discipline as ``obs``.
        self.faults = None

    # -- wiring (called by the network while building) ----------------------
    def attach_output(self, port: int, link: Optional[Link],
                      downstream_vcs: int, downstream_depth: int) -> None:
        """Configure an output port's link and downstream credit state."""
        self.out_links[port] = link
        self.out_vc_count[port] = downstream_vcs
        self.out_credits[port] = [downstream_depth] * downstream_vcs
        self.out_vc_owner[port] = [None] * downstream_vcs
        self._credit_ceiling[port] = downstream_depth
        if link is not None:
            self._static_lanes[port] = link.lanes
        elif self.is_ejection[port]:
            self._static_lanes[port] = self.config.lanes

    def set_routing_tables(
        self,
        route_table: Optional[List[int]],
        va_table: Optional[List[Tuple[Tuple[int, int, bool], ...]]],
    ) -> None:
        """Install (or clear, with ``None``) precomputed RC/VA tables."""
        self._route_table = route_table
        self._va_table = va_table

    # -- stage 1: buffer write ----------------------------------------------
    def write_flit(self, port: int, vc: int, flit: Flit, cycle: int) -> None:
        """BW: store an arriving (or injected) flit; it is SA-eligible next
        cycle (the second pipeline stage)."""
        state = self._vc_states[port][vc]
        if len(state.queue) >= self.config.buffer_depth:
            raise RuntimeError(
                f"buffer overflow at router {self.router_id} "
                f"port {port} vc {vc}: credit protocol violated"
            )
        flit.ready_at = cycle + self._pipeline_offset
        state.queue.append(flit)
        if (port, vc) not in self._active:
            self._active[(port, vc)] = True
            self._port_active[port] += 1
        self.occupied_flits += 1
        self.activity.buffer_writes += 1

    def free_slots(self, port: int, vc: int) -> int:
        """Remaining buffer capacity of an input VC (used for injection)."""
        return self.config.buffer_depth - len(self._vc_states[port][vc].queue)

    # -- stage 2a: route computation + VC allocation -------------------------
    def allocate_vcs(self, routing: Routing, cycle: int) -> None:
        """RC for new head-of-queue packets, then VA for head flits.

        RC is logically part of stage 1 but is performed lazily when a head
        flit reaches the front of its queue (equivalent for a FIFO VC, and
        it handles back-to-back packets sharing a VC correctly).
        """
        active = list(self._active.keys())
        count = len(active)
        offset = self._va_offset % max(1, count)
        self._va_offset += 1
        if offset:
            # Rotate once by slicing instead of taking a modulo per element.
            active = active[offset:] + active[:offset]
        obs = self.obs
        faults = self.faults
        router_id = self.router_id
        vc_states = self._vc_states
        is_ejection = self.is_ejection
        out_vc_owner = self.out_vc_owner
        activity = self.activity
        route_table = self._route_table
        va_table = self._va_table
        for port, vc in active:
            state = vc_states[port][vc]
            queue = state.queue
            if not queue:
                continue
            flit = queue[0]
            packet = flit.packet
            if state.packet_id != packet.packet_id:
                if not flit.is_head:
                    raise RuntimeError(
                        f"wormhole violation at router {router_id}: "
                        f"body flit of packet {packet.packet_id} at queue "
                        "head without its head flit"
                    )
                state.packet_id = packet.packet_id
                if route_table is not None:
                    state.route_port = route_table[packet.dst]
                else:
                    state.route_port = routing.output_port(router_id, packet)
                state.out_vc = None
                activity.route_computations += 1
            if (
                faults is not None
                and state.out_vc is None
                and flit.is_head
                and faults.port_dead(router_id, state.route_port)
            ):
                # The routed channel died before the wormhole committed:
                # re-run RC (the fault-aware routing detours around it).
                state.route_port = routing.output_port(router_id, packet)
                activity.route_computations += 1
            if state.out_vc is not None or flit.ready_at > cycle:
                continue
            out_port = state.route_port
            if is_ejection[out_port]:
                # Ejection needs no downstream VC; mark with a sentinel so
                # SA treats the flit as allocated.
                state.out_vc = -1
                continue
            if not flit.is_head:
                continue
            if va_table is not None:
                candidates = va_table[out_port]
            else:
                candidates = routing.va_candidates(
                    router_id, packet, out_port, self.out_vc_count
                )
            for cand_port, cand_vc, escaped in candidates:
                if faults is not None and not self._candidate_alive(
                    faults, cand_port, cand_vc
                ):
                    continue
                owners = out_vc_owner[cand_port]
                if owners[cand_vc] is None:
                    owners[cand_vc] = packet.packet_id
                    state.out_vc = cand_vc
                    if escaped:
                        packet.on_escape = True
                        state.route_port = cand_port
                    activity.vc_allocations += 1
                    if obs is not None:
                        obs.on_vc_allocated(
                            router_id, port, vc, state.route_port,
                            cand_vc, packet, cycle,
                        )
                    break

    # -- stage 2b: switch allocation ------------------------------------------
    def _candidate_alive(self, faults, cand_port: int, cand_vc: int) -> bool:
        """Whether a VA candidate's channel and downstream VC are usable."""
        if faults.port_dead(self.router_id, cand_port):
            return False
        link = self.out_links[cand_port]
        if link is not None and (
            (link.dst_router, link.dst_port, cand_vc) in faults.stuck_vcs
        ):
            return False
        return True

    def _eligible_vcs(self, port: int, cycle: int) -> List[int]:
        """VCs of ``port`` whose head flit could traverse the switch now.

        VC ascending order is load-bearing: ``_pick_second_flit`` scans the
        returned list in order when choosing a same-port companion flit.
        """
        if self.faults is not None:
            return self._eligible_vcs_faulty(port, cycle)
        eligible = []
        states = self._vc_states[port]
        is_ejection = self.is_ejection
        out_credits = self.out_credits
        for vc in range(self.num_vcs):
            state = states[vc]
            queue = state.queue
            if not queue:
                continue
            flit = queue[0]
            if flit.ready_at > cycle:
                continue
            out_vc = state.out_vc
            if out_vc is None:
                continue
            if state.packet_id != flit.packet.packet_id:
                continue  # new packet still needs RC/VA
            out_port = state.route_port
            if is_ejection[out_port]:
                eligible.append(vc)
            elif out_credits[out_port][out_vc] > 0:
                eligible.append(vc)
            else:
                self.activity.credit_stalls += 1
        return eligible

    def _eligible_vcs_faulty(self, port: int, cycle: int) -> List[int]:
        """Fault-aware variant of ``_eligible_vcs`` (off the fast path)."""
        eligible = []
        faults = self.faults
        for vc in range(self.num_vcs):
            if (self.router_id, port, vc) in faults.stuck_vcs:
                continue  # this input VC stopped arbitrating
            state = self._vc_states[port][vc]
            if not state.queue:
                continue
            flit = state.queue[0]
            if flit.ready_at > cycle:
                continue
            if state.out_vc is None:
                continue
            if state.packet_id != flit.packet.packet_id:
                continue  # new packet still needs RC/VA
            out_port = state.route_port
            if not self.is_ejection[out_port]:
                if faults.port_dead(self.router_id, out_port):
                    continue  # committed across a dead channel; purge pending
            if self.is_ejection[out_port]:
                eligible.append(vc)
            elif self.out_credits[out_port][state.out_vc] > 0:
                eligible.append(vc)
            else:
                self.activity.credit_stalls += 1
        return eligible

    def _output_lanes(self, port: int) -> int:
        if self.is_ejection[port]:
            return self.config.lanes
        link = self.out_links[port]
        if link is None:
            return 0
        if (
            self.faults is not None
            and (self.router_id, port) in self.faults.degraded_ports
        ):
            return 1  # wide link fallen back to narrow operation
        return link.lanes

    def allocate_switch(self, cycle: int) -> List[Grant]:
        """SA (both sub-stages) and the wide-link second-grant pass."""
        num_ports = self.num_ports
        port_active = self._port_active
        vc_states = self._vc_states
        allocator = self.allocator
        activity = self.activity
        num_vcs = self.num_vcs
        faulty = self.faults is not None
        is_ejection = self.is_ejection
        out_credits = self.out_credits
        eligible_by_port: List[List[int]] = [_NO_VCS] * num_ports
        bids: List[Optional[int]] = [None] * num_ports  # per input port
        bidders: Optional[Dict[int, List[int]]] = None
        for port in range(num_ports):
            if port_active[port] == 0:
                continue
            if faulty:
                eligible = self._eligible_vcs_faulty(port, cycle)
            else:
                # _eligible_vcs inlined: one method call per active port
                # per cycle is measurable at mesh scale.
                eligible = []
                states = vc_states[port]
                for vc in range(num_vcs):
                    state = states[vc]
                    queue = state.queue
                    if not queue:
                        continue
                    flit = queue[0]
                    if flit.ready_at > cycle:
                        continue
                    out_vc = state.out_vc
                    if out_vc is None:
                        continue
                    if state.packet_id != flit.packet.packet_id:
                        continue  # new packet still needs RC/VA
                    out_port = state.route_port
                    if is_ejection[out_port]:
                        eligible.append(vc)
                    elif out_credits[out_port][out_vc] > 0:
                        eligible.append(vc)
                    else:
                        activity.credit_stalls += 1
            if not eligible:
                continue
            eligible_by_port[port] = eligible
            if len(eligible) == 1:
                # Single requester: a round-robin scan always grants it and
                # parks priority just past it (see RoundRobinArbiter.
                # grant_from); apply the pointer update directly.
                bid = eligible[0]
                arbiter = allocator.input_stage[port]
                nxt = bid + 1
                arbiter._next = nxt if nxt < arbiter.num_requesters else 0
            else:
                bid = allocator.pick_input_vc(port, eligible)
                activity.arbitration_conflicts += len(eligible) - 1
            activity.arbitrations += 1
            bids[port] = bid
            # Group bids by requested output port (same insertion order as
            # a separate pass over ``bids`` -- ports ascend).
            out_port = vc_states[port][bid].route_port
            if bidders is None:
                bidders = {out_port: [port]}
            elif out_port in bidders:
                bidders[out_port].append(port)
            else:
                bidders[out_port] = [port]
        if bidders is None:
            return _NO_GRANTS

        static_lanes = self._static_lanes
        merging = self._merging
        faults = self.faults
        grants: List[Grant] = []
        for out_port, ports in bidders.items():
            if len(ports) == 1:
                # Same single-requester shortcut as the input stage.
                winner_port = ports[0]
                arbiter = allocator.output_stage[out_port]
                nxt = winner_port + 1
                arbiter._next = nxt if nxt < arbiter.num_requesters else 0
            else:
                winner_port = allocator.pick_output_winner(out_port, ports)
                activity.arbitration_conflicts += len(ports) - 1
            activity.arbitrations += 1
            if winner_port is None:
                continue
            winner_vc = bids[winner_port]
            winner_state = vc_states[winner_port][winner_vc]
            first = Grant(
                in_port=winner_port,
                in_vc=winner_vc,
                flit=winner_state.queue[0],
                out_port=out_port,
                out_vc=None if is_ejection[out_port] else winner_state.out_vc,
            )
            grants.append(first)
            if not merging or static_lanes[out_port] < 2:
                continue
            if (
                faults is not None
                and (self.router_id, out_port) in faults.degraded_ports
            ):
                continue  # wide link fallen back to narrow operation
            second = self._pick_second_flit(
                out_port, first, bids, eligible_by_port, cycle
            )
            if second is not None:
                second.merged = True
                grants.append(second)
                activity.merged_flit_pairs += 1
        return grants

    def _pick_second_flit(
        self,
        out_port: int,
        first: Grant,
        bids: List[Optional[int]],
        eligible_by_port: List[List[int]],
        cycle: int,
    ) -> Optional[Grant]:
        """Second parallel output arbiter for a wide (two-lane) output.

        Candidates, per Section 3.2/3.3:

        * the next flit of the same packet in the winner's VC (needs a
          second credit in the same downstream VC);
        * another eligible VC of the winner's input port routed to the same
          output (case a);
        * the losing bid of a different input port routed to the same
          output (case b).
        """
        state = self._vc_states[first.in_port][first.in_vc]
        # Same-packet continuation: the following flit of the same VC.
        if len(state.queue) > 1:
            nxt = state.queue[1]
            same_packet = nxt.packet.packet_id == state.packet_id
            if (
                same_packet
                and nxt.ready_at <= cycle
                and not self.is_ejection[out_port]
                and self.out_credits[out_port][state.out_vc] >= 2
            ):
                return Grant(
                    in_port=first.in_port,
                    in_vc=first.in_vc,
                    flit=nxt,
                    out_port=out_port,
                    out_vc=state.out_vc,
                )
            if same_packet and self.is_ejection[out_port] and nxt.ready_at <= cycle:
                return Grant(
                    in_port=first.in_port,
                    in_vc=first.in_vc,
                    flit=nxt,
                    out_port=out_port,
                    out_vc=None,
                )
        # Cross-VC candidates (cases a and b), arbitrated by input port.
        candidate_vc_by_port: Dict[int, int] = {}
        for vc in eligible_by_port[first.in_port]:
            if vc == first.in_vc:
                continue
            if self._vc_states[first.in_port][vc].route_port == out_port:
                candidate_vc_by_port[first.in_port] = vc
                break
        for port, vc in enumerate(bids):
            if vc is None or port == first.in_port:
                continue
            if self._vc_states[port][vc].route_port == out_port:
                candidate_vc_by_port.setdefault(port, vc)
        if not candidate_vc_by_port:
            return None
        chosen_port = self.allocator.pick_second_winner(
            out_port, candidate_vc_by_port.keys()
        )
        self.activity.arbitrations += 1
        if chosen_port is None:
            return None
        vc = candidate_vc_by_port[chosen_port]
        chosen_state = self._vc_states[chosen_port][vc]
        return Grant(
            in_port=chosen_port,
            in_vc=vc,
            flit=chosen_state.queue[0],
            out_port=out_port,
            out_vc=None if self.is_ejection[out_port] else chosen_state.out_vc,
        )

    # -- stage 2c: switch traversal --------------------------------------------
    def commit_grant(self, grant: Grant) -> None:
        """Pop the granted flit, spend a credit, release tail resources."""
        state = self._vc_states[grant.in_port][grant.in_vc]
        flit = state.queue.popleft()
        if flit is not grant.flit:
            raise RuntimeError("switch traversal popped an unexpected flit")
        self.occupied_flits -= 1
        activity = self.activity
        activity.buffer_reads += 1
        activity.crossbar_traversals += 1
        if not state.queue:
            if self._active.pop((grant.in_port, grant.in_vc), None):
                self._port_active[grant.in_port] -= 1
        out_vc = grant.out_vc
        if out_vc is not None and out_vc >= 0:
            credits = self.out_credits[grant.out_port]
            credits[out_vc] -= 1
            if credits[out_vc] < 0:
                raise RuntimeError(
                    f"negative credits at router {self.router_id} "
                    f"port {grant.out_port} vc {out_vc}"
                )
        if flit.is_tail:
            # The input VC is free for a new packet now, but the *output*
            # VC (the downstream buffer) stays allocated until the tail
            # drains out of the downstream router: the network delivers a
            # release_vc() when that happens.  This conservative VC state
            # machine is what makes VC count a binding resource at hot
            # routers -- the effect HeteroNoC's buffer redistribution
            # exploits.
            state.reset_packet()

    def return_credit(self, port: int, vc: int) -> None:
        """Upstream credit increment for a slot freed downstream."""
        self.out_credits[port][vc] += 1
        if self.out_credits[port][vc] > self._credit_ceiling[port]:
            raise RuntimeError(
                f"credit overflow at router {self.router_id} port {port} vc {vc}"
            )

    def release_vc(self, port: int, vc: int) -> None:
        """Downstream VC drained its packet: it may host a new one."""
        self.out_vc_owner[port][vc] = None

    def input_vc_free(self, port: int, vc: int) -> bool:
        """Whether an input VC can accept a *new* packet (used by the
        injection logic at local ports, which has no upstream router to
        track ownership for it)."""
        state = self._vc_states[port][vc]
        return not state.queue and state.packet_id is None

    # -- introspection -----------------------------------------------------------
    def buffered_flits(self) -> int:
        """Flits currently buffered in this router (all ports, all VCs)."""
        return self.occupied_flits

    def sample_occupancy(self) -> None:
        """Accumulate one cycle of buffer-occupancy integral."""
        self.activity.occupancy_integral += self.occupied_flits
