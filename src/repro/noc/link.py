"""Links (directed channels) between routers.

A link's width relative to the network flit width decides how many flits it
moves per cycle (its *lanes*): baseline 192 b links carry one 192 b flit,
HeteroNoC narrow 128 b links carry one 128 b flit, and wide 256 b links
carry up to two merged 128 b flits (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.config import RouterConfig


@dataclass(frozen=True, slots=True)
class Link:
    """One directed router-to-router (or router-to-node) channel."""

    src_router: int
    src_port: int
    dst_router: int
    dst_port: int
    width_bits: int
    flit_width_bits: int
    delay: int = 1

    def __post_init__(self) -> None:
        if self.width_bits < self.flit_width_bits:
            raise ValueError(
                f"link width {self.width_bits} narrower than flit "
                f"width {self.flit_width_bits}"
            )
        if self.delay < 1:
            raise ValueError(f"link delay must be >= 1, got {self.delay}")

    @property
    def lanes(self) -> int:
        """Flits this link can carry per cycle."""
        return self.width_bits // self.flit_width_bits


def link_width_between(a: RouterConfig, b: RouterConfig) -> int:
    """Width of the channel joining routers provisioned as ``a`` and ``b``.

    Per Section 3.2: a 256 b (wide) link exists between a small and a big
    router and between two big routers; small-small pairs get narrow links.
    Expressed generally: the channel is as wide as the wider endpoint.
    In the baseline and +B layouts every router drives 192 b links, so the
    rule degenerates to 192 b everywhere.
    """
    return max(a.link_width, b.link_width)
