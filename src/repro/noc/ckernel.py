"""Compiled (C) cycle kernel: on-demand build, ctypes bridge, dispatch.

The fourth cycle kernel, selected with ``NetworkConfig(kernel="c")``,
``REPRO_KERNEL=c`` or ``network.use_kernel("c")``.  The per-cycle walk
itself lives in ``_ckernel.c`` (shipped in-repo next to this module) and
replicates :meth:`repro.noc.soa.SoaKernel.step` over the same flat
integer layout; this module owns everything around it:

* **build** -- the C source is compiled on first use with the system C
  compiler (discovered via :func:`shutil.which` over the ``sysconfig``
  ``CC`` plus ``cc``/``gcc``/``clang``) into a shared object cached
  under ``~/.cache/repro-ckernel/`` (override with
  ``REPRO_CKERNEL_CACHE``).  The cache key is the sha256 of the source,
  compiler and flags, so editing the C file or switching toolchains
  rebuilds automatically; concurrent builders race benignly through an
  atomic ``os.replace``.  No build-time dependency, no wheel machinery.
* **bridge** -- :class:`CKernel` packs the network state into the C
  side's arrays (queues as packet-handle/flit-index rings, calendars of
  pending arrival/credit events, per-node source queues, packet
  records), steps it one cycle per call, and mirrors everything back on
  :meth:`CKernel.sync` -- including rebuilding the shared
  :class:`~repro.noc.flit.Flit` deques and the event buckets -- so
  mid-run kernel switches, snapshots and the differential digests stay
  bit-identical.
* **fallback** -- when no compiler is available (or the compile or a
  precondition fails), :func:`load_kernel_library` raises
  :class:`CKernelUnavailable`; the network warns once per process and
  silently falls back to the ``soa`` kernel, which in turn falls back to
  ``event`` whenever faults/observers/watchdogs attach.  The ladder is
  ``c -> soa -> event`` and every rung is bit-identical.

Packets cross the FFI as integer handles into a Python-side table;
completed packets flush back through ``Network._complete_packet`` every
step, so latency records, callbacks and ``packets_in_flight`` behave
exactly as under the other kernels.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sysconfig
import warnings
from pathlib import Path
from typing import Dict, List, Optional

from repro.noc.flit import Flit, FlitType, Packet

_SOURCE = Path(__file__).with_name("_ckernel.c")
_CFLAGS = ("-O2", "-shared", "-fPIC")

#: process-wide build memo: the loaded library, or the failure reason.
_LIB: Optional[ctypes.CDLL] = None
_FAILED: Optional[str] = None
_WARNED = False

_MASK64 = (1 << 64) - 1


class CKernelUnavailable(RuntimeError):
    """The compiled kernel cannot be built or used here; fall back."""


def find_compiler() -> Optional[str]:
    """Locate a C compiler on PATH (sysconfig's CC first, then common
    names).  Returns an absolute executable path or ``None``."""
    candidates = []
    cc = (sysconfig.get_config_var("CC") or "").split()
    if cc:
        candidates.append(cc[0])
    candidates.extend(("cc", "gcc", "clang"))
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def cache_dir() -> Path:
    override = os.environ.get("REPRO_CKERNEL_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-ckernel"


def _build_library() -> ctypes.CDLL:
    compiler = find_compiler()
    if compiler is None:
        raise CKernelUnavailable("no C compiler found on PATH")
    try:
        source = _SOURCE.read_bytes()
    except OSError as exc:
        raise CKernelUnavailable(f"cannot read {_SOURCE.name}: {exc}")
    key = hashlib.sha256(
        source + compiler.encode() + " ".join(_CFLAGS).encode()
    ).hexdigest()[:20]
    directory = cache_dir()
    so_path = directory / f"ckernel-{key}.so"
    if not so_path.exists():
        try:
            directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CKernelUnavailable(f"cannot create {directory}: {exc}")
        tmp = directory / f"ckernel-{key}.{os.getpid()}.tmp.so"
        cmd = [compiler, *_CFLAGS, "-o", str(tmp), str(_SOURCE)]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True)
        except OSError as exc:
            raise CKernelUnavailable(f"compiler failed to launch: {exc}")
        if proc.returncode != 0:
            tmp.unlink(missing_ok=True)
            tail = (proc.stderr or proc.stdout or "").strip()[-500:]
            raise CKernelUnavailable(
                f"compile failed (rc={proc.returncode}): {tail}"
            )
        os.replace(tmp, so_path)
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError as exc:
        raise CKernelUnavailable(f"cannot load {so_path.name}: {exc}")
    _bind(lib)
    return lib


def _bind(lib: ctypes.CDLL) -> None:
    i64 = ctypes.c_int64
    p_i64 = ctypes.POINTER(ctypes.c_int64)
    void_p = ctypes.c_void_p

    def sig(name, restype, *argtypes):
        fn = getattr(lib, name)
        fn.restype = restype
        fn.argtypes = list(argtypes)

    sig("ck_new", void_p, *([i64] * 9))
    sig("ck_free", None, void_p)
    sig("ck_arr", p_i64, void_p, i64)
    sig("ck_get", i64, void_p, i64)
    sig("ck_set", None, void_p, i64, i64)
    sig("ck_step", i64, void_p, i64)
    sig("ck_ensure_packets", i64, void_p, i64)
    sig("ck_set_packet", None, void_p, *([i64] * 8))
    sig("ck_source_push", i64, void_p, i64, i64)
    sig("ck_source_len", i64, void_p, i64)
    sig("ck_source_at", i64, void_p, i64, i64)
    sig("ck_src_wake", None, void_p, i64)
    sig("ck_queue_push", i64, void_p, i64, i64, i64, i64)
    sig("ck_act_clear", None, void_p, i64)
    sig("ck_act_push", None, void_p, i64, i64)
    sig("ck_act_len", i64, void_p, i64)
    sig("ck_act_at", i64, void_p, i64, i64)
    sig("ck_sched_arrival", i64, void_p, *([i64] * 6))
    sig("ck_sched_credit", i64, void_p, *([i64] * 5))
    sig("ck_bucket_len", i64, void_p, i64, i64)
    sig("ck_bucket_ptr", p_i64, void_p, i64, i64)
    sig("ck_wake", None, void_p, i64)
    sig("ck_total_buffered", i64, void_p)


def load_kernel_library() -> ctypes.CDLL:
    """The compiled kernel library, building it on first call.

    Raises :class:`CKernelUnavailable` (and memoizes the failure) when
    no compiler exists or the build fails; a later call fails fast.
    """
    global _LIB, _FAILED
    if _LIB is not None:
        return _LIB
    if _FAILED is not None:
        raise CKernelUnavailable(_FAILED)
    try:
        _LIB = _build_library()
    except CKernelUnavailable as exc:
        _FAILED = str(exc)
        raise
    return _LIB


def ckernel_available() -> bool:
    """True when the compiled kernel can be built and loaded here."""
    try:
        load_kernel_library()
    except CKernelUnavailable:
        return False
    return True


def unavailable_reason() -> Optional[str]:
    """Why the compiled kernel is unusable, or ``None`` if it loads."""
    try:
        load_kernel_library()
    except CKernelUnavailable as exc:
        return str(exc)
    return None


def warn_unavailable(reason: str) -> None:
    """One warning per process when ``kernel="c"`` degrades to soa."""
    global _WARNED
    if _WARNED:
        return
    _WARNED = True
    warnings.warn(
        f"compiled cycle kernel unavailable ({reason}); "
        "falling back to the soa kernel",
        RuntimeWarning,
        stacklevel=3,
    )


# -- array / scalar ids (must mirror the _ckernel.c enums exactly) ---------
(
    A_NPORTS, A_NVCS, A_DEPTH, A_EJ_PMASK, A_EJ_LANES, A_HAS_WIDE,
    A_ROUTE_TAB, A_OVC_CNT, A_CEIL, A_SLANES,
    A_LINK_R, A_LINK_P, A_LINK_DELAY, A_LINK_LANES, A_UP_R, A_UP_P,
    A_NODE_RID, A_NODE_PORT, A_NODE_LANES,
    A_ST_PID, A_ST_ROUTE, A_ST_OUTVC, A_NEED, A_CRED, A_OWNER,
    A_OCC, A_AM, A_CREDOK, A_IN_NEXT, A_OUT_NEXT, A_SEC_NEXT,
    A_NVA, A_OCCUPIED, A_VA_OFF,
    A_ACTW, A_SRCW,
    A_QS_PKT, A_QS_SEQ, A_QS_READY, A_QHEAD, A_QLEN,
    A_SRC_PKT, A_SRC_NEXT, A_SRC_VC,
    A_BW, A_BR, A_XB, A_RC, A_VA, A_ARB, A_CF, A_CS, A_MG, A_OC,
    A_LF, A_LB,
    A_PK_ID, A_PK_SRC, A_PK_DST, A_PK_NFLITS, A_PK_MINLANES, A_PK_HOPS,
    A_PK_INJ,
    A_COMP,
) = range(64)

S_CYCLE, S_ERR, S_ERR_A, S_ERR_B, S_ERR_C, S_NCOMP, S_PEND, S_PK_CAP = (
    range(8)
)

#: soa delta-array name per C activity-counter id, in flush order.
_ACTIVITY_ARRS = (
    (A_BW, "a_bw"), (A_BR, "a_br"), (A_XB, "a_xb"), (A_RC, "a_rc"),
    (A_VA, "a_va"), (A_ARB, "a_arb"), (A_CF, "a_cf"), (A_CS, "a_cs"),
    (A_MG, "a_mg"), (A_OC, "a_oc"),
)


def _to_i64(word: int) -> int:
    """Reinterpret an unsigned 64-bit word as ctypes' signed int64."""
    word &= _MASK64
    return word - (1 << 64) if word >= (1 << 63) else word


class CKernel:
    """The live compiled kernel bound to one network.

    Constructed by :meth:`Network._activate_ck` when ``kernel="c"`` is
    requested and eligible; raises :class:`CKernelUnavailable` when the
    library cannot load or the network shape breaks a kernel
    precondition (credit/link delays below 1 cycle, more than 62 ports
    or VCs per router).  A :class:`~repro.noc.soa.SoaKernel` instance is
    embedded purely as the pack/sync codec between the Router objects
    and the flat layout -- it never steps.
    """

    def __init__(self, net) -> None:
        from repro.noc.soa import SoaKernel

        lib = load_kernel_library()
        soa = SoaKernel(net)  # packs router scalars; shares queues
        R, P, V = soa.R, soa.P, soa.V
        if P > 62 or V > 62:
            raise CKernelUnavailable(
                f"router shape too wide for the bitmask kernel "
                f"(ports={P}, vcs={V}, limit 62)"
            )
        cd = net._credit_delay
        delays = [info[2] for info in soa.linkinfo if info is not None]
        if cd < 1 or (delays and min(delays) < 1):
            raise CKernelUnavailable(
                "credit/link delays below 1 cycle break the calendar ring"
            )
        self.net = net
        self.soa = soa
        self.lib = lib
        self.R, self.P, self.V = R, P, V
        self.L = R * P * V
        self.RP = R * P
        self.D = max(max(soa.depth), 1)
        self.nnodes = net.topology.num_nodes
        self.cal_sz = max([cd] + delays) + 1
        po = net.config.router_pipeline_stages - 1
        ck = lib.ck_new(
            R, P, V, self.nnodes, po, cd,
            1 if net._merging else 0, self.cal_sz, self.D,
        )
        if not ck:
            raise CKernelUnavailable("ck_new returned NULL (out of memory)")
        self._ck = ck
        #: handle table: Python stays authoritative for Packet identity.
        self._handles: List[Optional[Packet]] = []
        self._free: List[int] = []
        self._hmap: Dict[int, int] = {}  # id(packet) -> handle
        self._ccap = 0
        #: True while net._arrivals/_credits hold a sync() mirror of the
        #: C calendars; the next step() drops it (C stays authoritative).
        self._mirrored = False
        try:
            self._pack()
        except Exception:
            lib.ck_free(ck)
            self._ck = None
            raise

    # -- raw accessors ----------------------------------------------------
    def _arr(self, aid: int):
        return self.lib.ck_arr(self._ck, aid)

    def _view(self, aid: int, n: int):
        """A sized ctypes array over array ``aid`` (pointers only support
        slice *reads*; views support slice assignment too)."""
        ptr = self.lib.ck_arr(self._ck, aid)
        return ctypes.cast(
            ptr, ctypes.POINTER(ctypes.c_int64 * n)
        ).contents

    def free(self) -> None:
        if self._ck is not None:
            self.lib.ck_free(self._ck)
            self._ck = None

    # -- packet handles ---------------------------------------------------
    def _handle(self, packet: Packet) -> int:
        h = self._hmap.get(id(packet))
        if h is not None:
            return h
        if self._free:
            h = self._free.pop()
        else:
            h = len(self._handles)
            self._handles.append(None)
            if h >= self._ccap:
                if self.lib.ck_ensure_packets(self._ck, h + 1):
                    raise MemoryError("ck_ensure_packets failed")
                self._ccap = self.lib.ck_get(self._ck, S_PK_CAP)
                self._refresh_pk()
        self._handles[h] = packet
        self._hmap[id(packet)] = h
        self.lib.ck_set_packet(
            self._ck, h, packet.packet_id, packet.src, packet.dst,
            packet.num_flits,
            -1 if packet.injected_at is None else packet.injected_at,
            -1 if packet.min_lanes is None else packet.min_lanes,
            packet.hops,
        )
        return h

    def _release(self, h: int, packet: Packet) -> None:
        del self._hmap[id(packet)]
        self._handles[h] = None
        self._free.append(h)

    def _refresh_pk(self) -> None:
        self._pk_id = self._arr(A_PK_ID)
        self._pk_minlanes = self._arr(A_PK_MINLANES)
        self._pk_hops = self._arr(A_PK_HOPS)
        self._pk_inj = self._arr(A_PK_INJ)

    def _mirror_packet(self, h: int, packet: Packet) -> None:
        """Copy the C-side record of handle ``h`` back onto ``packet``."""
        packet.hops = self._pk_hops[h]
        ml = self._pk_minlanes[h]
        packet.min_lanes = None if ml < 0 else ml
        inj = self._pk_inj[h]
        packet.injected_at = None if inj < 0 else inj

    # -- pack: Python -> C ------------------------------------------------
    def _pack(self) -> None:
        net = self.net
        soa = self.soa
        lib = self.lib
        ck = self._ck
        R, L, RP = self.R, self.L, self.RP
        lib.ck_set(ck, S_CYCLE, net.cycle)

        # static tensors
        self._view(A_NPORTS, R)[:] = soa.nports
        self._view(A_NVCS, R)[:] = soa.nvcs
        self._view(A_DEPTH, R)[:] = soa.depth
        self._view(A_EJ_PMASK, R)[:] = soa.ej_pmask
        self._view(A_EJ_LANES, R)[:] = soa.ej_lanes
        self._view(A_HAS_WIDE, R)[:] = [1 if w else 0 for w in soa.has_wide]
        nnodes = self.nnodes
        rt = self._view(A_ROUTE_TAB, R * nnodes)
        for rid, row in enumerate(soa.route_tab):
            rt[rid * nnodes:(rid + 1) * nnodes] = row
        self._view(A_OVC_CNT, RP)[:] = soa.ovc_cnt
        self._view(A_CEIL, RP)[:] = soa.ceil
        self._view(A_SLANES, RP)[:] = soa.slanes
        link_r, link_p = [-1] * RP, [0] * RP
        link_d, link_l = [0] * RP, [0] * RP
        for rp, info in enumerate(soa.linkinfo):
            if info is not None:
                link_r[rp], link_p[rp], link_d[rp], link_l[rp] = info
        self._view(A_LINK_R, RP)[:] = link_r
        self._view(A_LINK_P, RP)[:] = link_p
        self._view(A_LINK_DELAY, RP)[:] = link_d
        self._view(A_LINK_LANES, RP)[:] = link_l
        up_r, up_p = [-1] * RP, [0] * RP
        for rp, up in enumerate(soa.upstream):
            if up is not None:
                up_r[rp], up_p[rp] = up
        self._view(A_UP_R, RP)[:] = up_r
        self._view(A_UP_P, RP)[:] = up_p
        self._view(A_NODE_RID, nnodes)[:] = net._node_router_id
        self._view(A_NODE_PORT, nnodes)[:] = net._node_port
        self._view(A_NODE_LANES, nnodes)[:] = net._node_lanes

        # dynamic scalar state straight from the freshly packed soa codec
        self._view(A_ST_PID, L)[:] = soa.st_pid
        self._view(A_ST_ROUTE, L)[:] = soa.st_route
        self._view(A_ST_OUTVC, L)[:] = soa.st_outvc
        self._view(A_NEED, L)[:] = soa.need
        self._view(A_CRED, L)[:] = soa.cred
        self._view(A_OWNER, L)[:] = soa.owner
        self._view(A_OCC, RP)[:] = soa.occ_mask
        self._view(A_AM, RP)[:] = soa.am
        self._view(A_CREDOK, RP)[:] = soa.credok
        self._view(A_IN_NEXT, RP)[:] = soa.in_next
        self._view(A_OUT_NEXT, RP)[:] = soa.out_next
        self._view(A_SEC_NEXT, RP)[:] = soa.sec_next
        self._view(A_NVA, R)[:] = soa.nva
        self._view(A_OCCUPIED, R)[:] = soa.occupied
        self._view(A_VA_OFF, R)[:] = soa.va_off
        nw_r = (R + 63) // 64
        self._view(A_ACTW, nw_r)[:] = [
            _to_i64(soa.actmask >> (64 * w)) for w in range(nw_r)
        ]
        for rid in range(R):
            lib.ck_act_clear(ck, rid)
            for lane in soa.active_lanes[rid]:
                lib.ck_act_push(ck, rid, lane)

        # flit queues (shared deques -> handle/index/ready rings)
        for lane, q in enumerate(soa.queues):
            if not q:
                continue
            for flit in q:
                if lib.ck_queue_push(
                    ck, lane, self._handle(flit.packet), flit.index,
                    flit.ready_at,
                ):
                    raise CKernelUnavailable(
                        "flit queue deeper than the configured buffer"
                    )

        # sources: queued packets, mid-injection state, active-set bits
        src_pkt = self._arr(A_SRC_PKT)
        src_next = self._arr(A_SRC_NEXT)
        src_vc = self._arr(A_SRC_VC)
        for node, source in enumerate(net.sources):
            for packet in source.queue:
                if lib.ck_source_push(ck, node, self._handle(packet)):
                    raise MemoryError("ck_source_push failed")
            if source.next_flit < len(source.flits):
                src_pkt[node] = self._handle(source.flits[0].packet)
                src_next[node] = source.next_flit
                src_vc[node] = source.vc
        # srcw already has bits for queued nodes; add the conservative
        # active-source superset so pruning matches the event kernel.
        for node in net._active_sources:
            lib.ck_src_wake(ck, node)

        # pending events -> calendars (then C owns them)
        for when, events in net._arrivals.items():
            for rid, port, vc, flit in events:
                rc = lib.ck_sched_arrival(
                    ck, when, rid, port, vc, self._handle(flit.packet),
                    flit.index,
                )
                if rc:
                    raise CKernelUnavailable(
                        f"arrival event at cycle {when} outside the "
                        "calendar ring"
                    )
        for when, events in net._credits.items():
            for rid, port, vc, release in events:
                rc = lib.ck_sched_credit(
                    ck, when, rid, port, vc, 1 if release else 0
                )
                if rc:
                    raise CKernelUnavailable(
                        f"credit event at cycle {when} outside the "
                        "calendar ring"
                    )
        net._arrivals.clear()
        net._credits.clear()

        # cache stable array pointers for the hot step/sync paths
        self._qs_pkt = self._arr(A_QS_PKT)
        self._qs_seq = self._arr(A_QS_SEQ)
        self._qs_ready = self._arr(A_QS_READY)
        self._qhead = self._arr(A_QHEAD)
        self._qlen = self._arr(A_QLEN)
        self._refresh_pk()

    # -- stepping ---------------------------------------------------------
    def step(self) -> None:
        net = self.net
        cycle = net.cycle
        lib = self.lib
        ck = self._ck
        if self._mirrored:
            # sync() left a read-only mirror of the C calendars in the
            # event dicts (for digests / snapshots / kernel hand-off).
            # C stays authoritative while we keep stepping, so drop the
            # mirror -- a stale copy would make idle()/drain() spin
            # forever on events the C side has long consumed.
            net._arrivals.clear()
            net._credits.clear()
            self._mirrored = False
        ncomp = lib.ck_step(ck, 1 if net.measuring else 0)
        if ncomp < 0:
            self._raise_error(ncomp)
        if ncomp:
            comp = lib.ck_arr(ck, A_COMP)
            handles = comp[0:ncomp]
            lib.ck_set(ck, S_NCOMP, 0)
            complete = net._complete_packet
            for h in handles:
                packet = self._handles[h]
                self._mirror_packet(h, packet)
                self._release(h, packet)
                complete(packet, cycle)
        if net.measuring:
            net._stats.measured_cycles += 1
        net.cycle = cycle + 1

    def _raise_error(self, code: int) -> None:
        lib, ck = self.lib, self._ck
        a = lib.ck_get(ck, S_ERR_A)
        b = lib.ck_get(ck, S_ERR_B)
        c = lib.ck_get(ck, S_ERR_C)
        if code == -1:
            raise RuntimeError(
                f"buffer overflow at router {a} port {b} vc {c}: "
                "credit protocol violated"
            )
        if code == -2:
            raise RuntimeError(
                f"credit overflow at router {a} port {b} vc {c}"
            )
        if code == -3:
            raise RuntimeError(
                f"wormhole violation at router {a}: body flit of packet "
                f"{b} at queue head without its head flit"
            )
        if code == -4:
            raise RuntimeError("switch traversal popped an unexpected flit")
        if code == -5:
            raise RuntimeError(
                f"negative credits at router {a} port {b} vc {c}"
            )
        raise RuntimeError(f"compiled kernel error {code} ({a}, {b}, {c})")

    # -- network-facing helpers -------------------------------------------
    def enqueue_packet(self, packet: Packet) -> None:
        """Append ``packet`` to its node's C-side source queue."""
        if self.lib.ck_source_push(
            self._ck, packet.src, self._handle(packet)
        ):
            raise MemoryError("ck_source_push failed")

    def source_queue_len(self, node: int) -> int:
        return self.lib.ck_source_len(self._ck, node)

    def wake(self, router_id: int) -> None:
        self.lib.ck_wake(self._ck, router_id)

    def wake_source(self, node: int) -> None:
        self.lib.ck_src_wake(self._ck, node)

    def pending_events(self) -> bool:
        """True while scheduled arrival/credit events remain undelivered
        (the drain-loop quiesce condition)."""
        return self.lib.ck_get(self._ck, S_PEND) > 0

    def total_buffered_flits(self) -> int:
        return self.lib.ck_total_buffered(self._ck)

    # -- activity & link-stat flushing ------------------------------------
    def _drain_deltas(self) -> None:
        """Move C-side activity/link deltas into the soa delta arrays and
        the stats dictionaries, zeroing the C side."""
        R, RP = self.R, self.RP
        soa = self.soa
        zeros_r = [0] * R
        for aid, name in _ACTIVITY_ARRS:
            view = self._view(aid, R)
            deltas = view[:]
            view[:] = zeros_r
            target = getattr(soa, name)
            for rid, d in enumerate(deltas):
                if d:
                    target[rid] += d
        stats = self.net._stats
        P = self.P
        for aid, dest in ((A_LF, stats.link_flits),
                          (A_LB, stats.link_busy_cycles)):
            view = self._view(aid, RP)
            deltas = view[:]
            view[:] = [0] * RP
            for rp, d in enumerate(deltas):
                if d:
                    key = (rp // P, rp % P)
                    dest[key] = dest.get(key, 0) + d

    def flush_activity(self) -> None:
        """Flush pending activity deltas into the shared RouterActivity
        objects (measurement boundaries call this)."""
        self._drain_deltas()
        self.soa.flush_activity()

    def reload_activities(self) -> None:
        """Drop pending deltas after ``reset_stats`` replaced the
        RouterActivity objects."""
        R, RP = self.R, self.RP
        for aid, _ in _ACTIVITY_ARRS:
            self._view(aid, R)[:] = [0] * R
        self._view(A_LF, RP)[:] = [0] * RP
        self._view(A_LB, RP)[:] = [0] * RP
        self.soa.reload_activities()

    # -- sync: C -> Python -------------------------------------------------
    def _make_flit(self, packet: Packet, index: int) -> Flit:
        if packet.num_flits == 1:
            ftype = FlitType.HEAD_TAIL
        elif index == 0:
            ftype = FlitType.HEAD
        elif index == packet.num_flits - 1:
            ftype = FlitType.TAIL
        else:
            ftype = FlitType.BODY
        return Flit(packet=packet, index=index, flit_type=ftype)

    def sync(self) -> None:
        """Mirror the C state back into the object model (non-destructive:
        the C side stays live and authoritative until :meth:`free`)."""
        net = self.net
        soa = self.soa
        lib = self.lib
        ck = self._ck
        R, L, RP, V, D = self.R, self.L, self.RP, self.V, self.D

        soa.st_pid[:] = self._arr(A_ST_PID)[0:L]
        soa.st_route[:] = self._arr(A_ST_ROUTE)[0:L]
        soa.st_outvc[:] = self._arr(A_ST_OUTVC)[0:L]
        soa.need[:] = self._arr(A_NEED)[0:L]
        soa.cred[:] = self._arr(A_CRED)[0:L]
        soa.owner[:] = self._arr(A_OWNER)[0:L]
        soa.occ_mask[:] = self._arr(A_OCC)[0:RP]
        soa.am[:] = self._arr(A_AM)[0:RP]
        soa.credok[:] = self._arr(A_CREDOK)[0:RP]
        soa.in_next[:] = self._arr(A_IN_NEXT)[0:RP]
        soa.out_next[:] = self._arr(A_OUT_NEXT)[0:RP]
        soa.sec_next[:] = self._arr(A_SEC_NEXT)[0:RP]
        soa.nva[:] = self._arr(A_NVA)[0:R]
        soa.occupied[:] = self._arr(A_OCCUPIED)[0:R]
        soa.va_off[:] = self._arr(A_VA_OFF)[0:R]
        nw_r = (R + 63) // 64
        actmask = 0
        for w, word in enumerate(self._arr(A_ACTW)[0:nw_r]):
            actmask |= (word & _MASK64) << (64 * w)
        soa.actmask = actmask
        for rid in range(R):
            lanes = {
                lib.ck_act_at(ck, rid, i): True
                for i in range(lib.ck_act_len(ck, rid))
            }
            soa.active_lanes[rid] = lanes

        # queue rings -> the shared Flit deques, rebuilt in place
        qs_pkt, qs_seq, qs_ready = self._qs_pkt, self._qs_seq, self._qs_ready
        qhead, qlen = self._qhead, self._qlen
        handles = self._handles
        for lane, q in enumerate(soa.queues):
            if q is None:
                continue
            n = qlen[lane]
            if not n and not q:
                continue
            q.clear()
            head = qhead[lane]
            base = lane * D
            for i in range(n):
                slot = base + (head + i) % D
                flit = self._make_flit(handles[qs_pkt[slot]], qs_seq[slot])
                flit.ready_at = qs_ready[slot]
                q.append(flit)

        # sources
        src_pkt = self._arr(A_SRC_PKT)
        src_next = self._arr(A_SRC_NEXT)
        src_vc = self._arr(A_SRC_VC)
        srcw = self._arr(A_SRCW)
        nw_n = (self.nnodes + 63) // 64
        srcmask = 0
        for w, word in enumerate(srcw[0:nw_n]):
            srcmask |= (word & _MASK64) << (64 * w)
        for node, source in enumerate(net.sources):
            nq = lib.ck_source_len(ck, node)
            if nq or source.queue:
                source.queue.clear()
                for i in range(nq):
                    source.queue.append(
                        handles[lib.ck_source_at(ck, node, i)]
                    )
            h = src_pkt[node]
            if h >= 0:
                packet = handles[h]
                source.flits = packet.make_flits()
                source.next_flit = src_next[node]
                source.vc = src_vc[node]
            else:
                source.flits = []
                source.next_flit = 0
                source.vc = None
        net._active_sources = {
            node for node in range(self.nnodes) if srcmask >> node & 1
        }

        # calendars -> the event dicts
        cycle = lib.ck_get(ck, S_CYCLE)
        cal_sz = self.cal_sz
        net._arrivals.clear()
        net._credits.clear()
        for idx in range(cal_sz):
            when = cycle + (idx - cycle) % cal_sz
            n = lib.ck_bucket_len(ck, 0, idx)
            if n:
                ptr = lib.ck_bucket_ptr(ck, 0, idx)
                raw = ptr[0:n]
                events = []
                for e in range(0, n, 5):
                    flit = self._make_flit(handles[raw[e + 3]], raw[e + 4])
                    events.append((raw[e], raw[e + 1], raw[e + 2], flit))
                net._arrivals[when] = events
            n = lib.ck_bucket_len(ck, 1, idx)
            if n:
                ptr = lib.ck_bucket_ptr(ck, 1, idx)
                raw = ptr[0:n]
                net._credits[when] = [
                    (raw[e], raw[e + 1], raw[e + 2], bool(raw[e + 3]))
                    for e in range(0, n, 4)
                ]

        # live packet records -> Packet attributes
        for h, packet in enumerate(handles):
            if packet is not None:
                self._mirror_packet(h, packet)

        self._drain_deltas()
        soa.sync()
        self._mirrored = True
