"""Wall-clock benchmark CLI for the cycle kernels.

Runs a fixed matrix of simulator workloads -- empty meshes, uniform-random
sweeps at low/mid/saturation rates on 4x4 and 8x8, the fig07 operating
points for both the baseline and the HeteroNoC diagonal layout, and one
faulty point -- and reports cycles-per-second for the event-driven
kernel, the structure-of-arrays batch kernel, the compiled C kernel
(``repro.noc.ckernel``; timed only when a C compiler is available) and
(optionally) the retained naive full-scan kernel.  Each case gets one
untimed warmup run before the timed best-of-N repetitions, so one-time
costs (route-table build, kernel pack, shared-object load, allocator
warmup) never pollute the recorded figures.

Usage::

    PYTHONPATH=src python -m repro.noc.bench --out BENCH_kernel.json
    PYTHONPATH=src python -m repro.noc.bench --kernel event --repeat 1
    PYTHONPATH=src python -m repro.noc.bench --check BENCH_kernel.json
    PYTHONPATH=src python -m repro.noc.bench --kernel soa --only empty-4x4
    PYTHONPATH=src python -m repro.noc.bench --kernel c

``--check`` is the CI perf-smoke mode: it times a small subset of the
matrix and fails (exit 1) if any point runs more than ``--tolerance``
times slower than the committed baseline's figure for the same kernel
(``--kernel event`` by default; the soa-smoke job passes
``--kernel soa``, the ckernel-smoke job ``--kernel c``).  On a host
with no C compiler, ``--kernel c`` prints a clear skip message and
exits 0 instead of timing a silently degraded kernel.

``--only`` with a name not in the frozen matrix is an error (exit 2,
naming the unknown case): a typo must not silently time nothing.

Every full (non ``--check``) run also *appends* a timestamped entry to
``BENCH_history.jsonl`` (``--history`` to relocate, ``--no-history`` to
skip, ``--timestamp`` to inject a reproducible stamp), so the perf
trajectory accumulates across commits instead of each run overwriting
the last; and when the ``--baseline`` report (default
``BENCH_kernel.json``) exists, cases that regressed past ``--tolerance``
are flagged on stdout and the run exits 1 (history and ``--out``
artifacts are still written first, so the regression evidence lands).

The committed ``BENCH_kernel.json`` additionally embeds a
``seed_baseline`` section: the same matrix measured at the commit *before*
the event-driven kernel landed, recorded on the same machine.  Speedup
figures quoted in the README are current-event vs. that seed baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import warnings
from typing import Dict, List, Optional, Tuple

# Per-case FAST scale: enough traffic for a stable timing signal while the
# full matrix stays under a couple of minutes.
FAST = {"warmup_packets": 100, "measure_packets": 600}

#: (name, kind, params) -- the benchmark matrix.  Names, parameters and
#: seeds are frozen: the recorded seed baseline was measured with exactly
#: these cases, so editing one breaks comparability of the committed
#: numbers.
CASES = [
    ("empty-4x4", "empty", {"mesh_size": 4, "cycles": 30000}),
    ("empty-8x8", "empty", {"mesh_size": 8, "cycles": 10000}),
    ("ur-4x4-r0.05", "synthetic", {"layout": "baseline", "mesh_size": 4, "rate": 0.05}),
    ("ur-4x4-r0.15", "synthetic", {"layout": "baseline", "mesh_size": 4, "rate": 0.15}),
    ("ur-4x4-r0.30", "synthetic", {"layout": "baseline", "mesh_size": 4, "rate": 0.30}),
    ("ur-8x8-r0.05", "synthetic", {"layout": "baseline", "mesh_size": 8, "rate": 0.05}),
    ("ur-8x8-r0.15", "synthetic", {"layout": "baseline", "mesh_size": 8, "rate": 0.15}),
    ("ur-8x8-r0.30", "synthetic", {"layout": "baseline", "mesh_size": 8, "rate": 0.30}),
    ("fig07-base-8x8-r0.01", "synthetic", {"layout": "baseline", "mesh_size": 8, "rate": 0.01}),
    ("fig07-base-8x8-r0.05", "synthetic", {"layout": "baseline", "mesh_size": 8, "rate": 0.05}),
    ("fig07-base-8x8-r0.10", "synthetic", {"layout": "baseline", "mesh_size": 8, "rate": 0.10}),
    ("fig07-base-8x8-r0.15", "synthetic", {"layout": "baseline", "mesh_size": 8, "rate": 0.15}),
    ("fig07-hetero-8x8-r0.01", "synthetic", {"layout": "diagonal+BL", "mesh_size": 8, "rate": 0.01}),
    ("fig07-hetero-8x8-r0.05", "synthetic", {"layout": "diagonal+BL", "mesh_size": 8, "rate": 0.05}),
    ("fig07-hetero-8x8-r0.10", "synthetic", {"layout": "diagonal+BL", "mesh_size": 8, "rate": 0.10}),
    ("fig07-hetero-8x8-r0.15", "synthetic", {"layout": "diagonal+BL", "mesh_size": 8, "rate": 0.15}),
    ("faulty-4x4-r0.05", "faulty", {"layout": "baseline", "mesh_size": 4, "rate": 0.05}),
]

#: The acceptance group: fig07 uniform-random sweep points at rates <= 0.15.
FIG07_GROUP = [name for name, _, _ in CASES if name.startswith("fig07-")]
#: Saturation guard group: no point here may regress > 10% vs. the seed.
SATURATION_GROUP = ["ur-4x4-r0.30", "ur-8x8-r0.30"]
#: Quick subset timed by ``--check`` (the CI perf-smoke job).
CHECK_GROUP = ["empty-4x4", "ur-4x4-r0.05"]


def _build(layout_name: str, mesh_size: int, kernel: str = "event"):
    from repro.core.layouts import build_network, layout_by_name
    from repro.noc.flit import reset_packet_ids

    reset_packet_ids()
    network = build_network(layout_by_name(layout_name, mesh_size))
    network.use_kernel(kernel)
    return network


def run_case(
    name: str,
    kind: str,
    params: Dict,
    naive: bool = False,
    kernel: Optional[str] = None,
) -> Tuple[int, float]:
    """Run one benchmark case; returns ``(simulated_cycles, wall_seconds)``.

    ``kernel`` names the cycle kernel to time; the legacy ``naive`` flag
    is shorthand for ``kernel="naive"``.
    """
    from repro.traffic.patterns import pattern_by_name
    from repro.traffic.runner import run_synthetic

    if kernel is None:
        kernel = "naive" if naive else "event"
    if kind == "empty":
        net = _build("baseline", params["mesh_size"], kernel)
        n = params["cycles"]
        t0 = time.perf_counter()
        net.run_cycles(n)
        return n, time.perf_counter() - t0

    faults = None
    if kind == "faulty":
        from repro.faults.schedule import FaultSchedule, FaultSpec

        faults = FaultSchedule(
            specs=(
                FaultSpec(kind="link", router=5, port=2, mode="transient",
                          at=150, repair_after=200),
            ),
            seed=3,
        )
    net = _build(params["layout"], params["mesh_size"], kernel)
    pattern = pattern_by_name("uniform_random", net.topology)
    t0 = time.perf_counter()
    result = run_synthetic(
        net, pattern, params["rate"], seed=11, faults=faults, **FAST
    )
    return result.total_cycles, time.perf_counter() - t0


def run_suite(
    repeat: int = 3,
    kernel: str = "event",
    only: Optional[list] = None,
    quiet: bool = False,
    warmup: bool = True,
) -> Dict[str, Dict]:
    """Run the matrix (one untimed warmup, then best-of-``repeat`` wall
    clock per case).

    The warmup run absorbs one-time costs -- route-table construction,
    kernel packing, the compiled kernel's shared-object build/load,
    interpreter and allocator warmup -- so the recorded best-of-N
    figures measure steady-state stepping only.  ``warmup=False`` skips
    it for callers that only need a smoke signal.

    Raises :class:`ValueError` when ``only`` names a case that is not in
    the frozen matrix -- a silent empty run would report nothing while
    looking like success.
    """
    if only is not None:
        known = {name for name, _, _ in CASES}
        unknown = sorted(set(only) - known)
        if unknown:
            raise ValueError(
                f"unknown bench case(s): {', '.join(unknown)}; "
                f"known cases: {', '.join(name for name, _, _ in CASES)}"
            )
    out: Dict[str, Dict] = {}
    for name, kind, params in CASES:
        if only is not None and name not in only:
            continue
        best_wall, cycles = None, None
        if warmup:
            run_case(name, kind, params, kernel=kernel)
        for _ in range(repeat):
            c, w = run_case(name, kind, params, kernel=kernel)
            if best_wall is None or w < best_wall:
                best_wall, cycles = w, c
        out[name] = {
            "cycles": cycles,
            "wall_s": round(best_wall, 4),
            "cycles_per_s": round(cycles / best_wall, 1),
        }
        if not quiet:
            print(
                f"  [{kernel}] {name}: {cycles} cycles, {best_wall:.3f}s, "
                f"{cycles / best_wall:,.0f} cyc/s"
            )
    return out


def _group_summary(
    group: list, current: Dict[str, Dict], baseline: Optional[Dict[str, Dict]]
) -> Dict:
    wall = sum(current[n]["wall_s"] for n in group if n in current)
    summary = {"cases": group, "wall_s": round(wall, 4)}
    if baseline and all(n in baseline for n in group):
        base_wall = sum(baseline[n]["wall_s"] for n in group)
        summary["baseline_wall_s"] = round(base_wall, 4)
        if wall > 0:
            summary["speedup_vs_baseline"] = round(base_wall / wall, 3)
    return summary


def build_report(
    event: Dict[str, Dict],
    naive: Optional[Dict[str, Dict]],
    seed_baseline: Optional[Dict[str, Dict]],
    repeat: int,
    soa: Optional[Dict[str, Dict]] = None,
    c: Optional[Dict[str, Dict]] = None,
) -> Dict:
    report: Dict = {
        "meta": {
            "tool": "repro.noc.bench",
            "repeat": repeat,
            "scale": FAST,
            "note": (
                "best-of-N wall clock; seed_baseline was measured on the "
                "same machine at the commit preceding the event-driven "
                "kernel"
            ),
        },
        "event": event,
    }
    if naive:
        report["naive"] = naive
        report["speedup_event_vs_naive"] = {
            name: round(naive[name]["wall_s"] / event[name]["wall_s"], 3)
            for name in event
            if name in naive and event[name]["wall_s"] > 0
        }
    if soa:
        report["soa"] = soa
        report["speedup_soa_vs_event"] = {
            name: round(event[name]["wall_s"] / soa[name]["wall_s"], 3)
            for name in event
            if name in soa and soa[name]["wall_s"] > 0
        }
    if c:
        report["c"] = c
        report["speedup_c_vs_event"] = {
            name: round(event[name]["wall_s"] / c[name]["wall_s"], 3)
            for name in event
            if name in c and c[name]["wall_s"] > 0
        }
        if soa:
            report["speedup_c_vs_soa"] = {
                name: round(soa[name]["wall_s"] / c[name]["wall_s"], 3)
                for name in soa
                if name in c and c[name]["wall_s"] > 0
            }
    if seed_baseline:
        report["seed_baseline"] = seed_baseline
        report["speedup_vs_seed"] = {
            name: round(
                seed_baseline[name]["wall_s"] / event[name]["wall_s"], 3
            )
            for name in event
            if name in seed_baseline and event[name]["wall_s"] > 0
        }
    report["groups"] = {
        "fig07_low": _group_summary(FIG07_GROUP, event, seed_baseline),
        "saturation": _group_summary(SATURATION_GROUP, event, seed_baseline),
    }
    if soa:
        # The soa acceptance group: same cases, soa wall clock, with the
        # current *event* figures as the comparison baseline.
        report["groups"]["fig07_low_soa"] = _group_summary(
            FIG07_GROUP, soa, event
        )
        summary = report["groups"]["fig07_low_soa"]
        if "speedup_vs_baseline" in summary:
            summary["speedup_vs_event"] = summary.pop("speedup_vs_baseline")
            summary["event_wall_s"] = summary.pop("baseline_wall_s")
    if c:
        # The compiled-kernel acceptance group: same cases, c wall
        # clock, with the current *event* figures as the baseline.
        report["groups"]["fig07_low_c"] = _group_summary(
            FIG07_GROUP, c, event
        )
        summary = report["groups"]["fig07_low_c"]
        if "speedup_vs_baseline" in summary:
            summary["speedup_vs_event"] = summary.pop("speedup_vs_baseline")
            summary["event_wall_s"] = summary.pop("baseline_wall_s")
    return report


def history_entry(
    report: Dict, timestamp: str, git_sha: Optional[str] = None
) -> Dict:
    """One ``BENCH_history.jsonl`` line: the trajectory-tracking digest.

    ``timestamp`` is injected by the caller (an ISO-8601 string) so tests
    and reproducible drivers control it.
    """
    event = report.get("event", {})
    entry = {
        "timestamp": timestamp,
        "git_sha": git_sha,
        "repeat": report.get("meta", {}).get("repeat"),
        "event": {
            name: stats["cycles_per_s"] for name, stats in event.items()
        },
        "groups": {
            group: summary.get("wall_s")
            for group, summary in report.get("groups", {}).items()
        },
    }
    for section in ("soa", "c"):
        data = report.get(section)
        if data:
            entry[section] = {
                name: stats["cycles_per_s"] for name, stats in data.items()
            }
    return entry


def append_history(entry: Dict, path: str) -> None:
    """Append one JSON line; creates the file on first use.

    The line is written with a single ``os.write`` on an ``O_APPEND``
    descriptor: POSIX guarantees the append offset and the write are one
    atomic step, so concurrent bench runs (or a crash mid-append) can
    interleave whole lines but never tear one.  Buffered ``fh.write``
    gave no such guarantee -- a signal between flushes could leave half
    a JSON line that poisoned every later read of the file.
    """
    line = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line)
    finally:
        os.close(fd)


def read_history(path: str) -> List[Dict]:
    """Parse a history file, skipping (and warning about) damaged lines.

    A torn line from a pre-fix writer or a crashed machine costs that
    one entry, not the whole trajectory.
    """
    entries: List[Dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except ValueError:
                warnings.warn(
                    f"{path}:{lineno}: skipping unparsable history line"
                )
    return entries


def flag_regressions(
    current_event: Dict[str, Dict],
    baseline_event: Dict[str, Dict],
    tolerance: float = 1.5,
) -> List[str]:
    """Names of cases slower than ``tolerance`` x the baseline rate."""
    flagged = []
    for name, stats in current_event.items():
        base = baseline_event.get(name)
        if not base:
            continue
        base_rate = base.get("cycles_per_s", 0)
        cur_rate = stats.get("cycles_per_s", 0)
        if base_rate and (not cur_rate or base_rate / cur_rate > tolerance):
            flagged.append(name)
    return flagged


def run_check(
    baseline_path: str, tolerance: float, repeat: int, kernel: str = "event"
) -> int:
    """CI perf-smoke: fail when ``kernel`` regresses past ``tolerance``
    against the committed baseline's figures for the same kernel."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    reference = baseline.get(kernel, {})
    current = run_suite(
        repeat=repeat, kernel=kernel, only=CHECK_GROUP, quiet=True
    )
    failed = False
    for name in CHECK_GROUP:
        if name not in reference:
            print(f"  {name}: no {kernel} baseline entry, skipping")
            continue
        base_rate = reference[name]["cycles_per_s"]
        cur_rate = current[name]["cycles_per_s"]
        ratio = base_rate / cur_rate if cur_rate else float("inf")
        status = "OK" if ratio <= tolerance else "REGRESSION"
        print(
            f"  [{kernel}] {name}: {cur_rate:,.0f} cyc/s vs baseline "
            f"{base_rate:,.0f} cyc/s ({ratio:.2f}x slower, "
            f"tolerance {tolerance:.2f}x) {status}"
        )
        if ratio > tolerance:
            failed = True
    if failed:
        print("perf check FAILED")
        return 1
    print("perf check passed")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.noc.bench", description=__doc__
    )
    parser.add_argument(
        "--out", default=None,
        help="write the JSON report to this path (default: stdout summary only)",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="timing repetitions per case (best-of, default 3)",
    )
    parser.add_argument(
        "--kernel",
        choices=("event", "soa", "naive", "c", "both", "all"),
        default="all",
        help="which kernel(s) to time: a single kernel, 'both' "
             "(event + naive, the pre-soa matrix) or 'all' "
             "(event + soa + c + naive, default; c is skipped when no "
             "C compiler is available); in --check mode a single "
             "kernel name selects which baseline figures to compare",
    )
    parser.add_argument(
        "--seed-baseline", default=None,
        help="JSON file of seed-commit measurements to embed for comparison",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="CI mode: compare a quick subset against a committed report",
    )
    parser.add_argument(
        "--tolerance", type=float, default=1.5,
        help="--check / regression-flag threshold (default 1.5x slower)",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="CASE",
        help="run only this case (repeatable); see CASES for names",
    )
    parser.add_argument(
        "--history", default="BENCH_history.jsonl",
        help="JSONL file to append the run's trajectory entry to "
             "(default BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip appending to the history file",
    )
    parser.add_argument(
        "--timestamp", default=None,
        help="ISO-8601 stamp recorded in the history entry "
             "(default: current UTC time)",
    )
    parser.add_argument(
        "--baseline", default="BENCH_kernel.json",
        help="committed report to flag regressions against "
             "(default BENCH_kernel.json; skipped when absent)",
    )
    args = parser.parse_args(argv)

    # The compiled kernel degrades silently to soa when no compiler
    # exists; timing it would then mislabel soa figures as "c".  Decide
    # availability up front and skip loudly instead.
    want_c = args.kernel in ("c", "all")
    c_reason = None
    if want_c or (args.check and args.kernel == "c"):
        from repro.noc.ckernel import ckernel_available, unavailable_reason

        if not ckernel_available():
            c_reason = unavailable_reason()
            if args.kernel == "c":
                print(
                    "skipping compiled-kernel benchmark: "
                    f"{c_reason} (nothing to time; exit 0)"
                )
                return 0
            print(f"note: compiled kernel unavailable ({c_reason}); "
                  "timing event + soa + naive only")
            want_c = False

    if args.check:
        check_kernel = (
            args.kernel
            if args.kernel in ("event", "soa", "naive", "c")
            else "event"
        )
        return run_check(
            args.check, args.tolerance, max(1, args.repeat), check_kernel
        )

    try:
        print("benchmarking event-driven kernel:")
        event = run_suite(repeat=args.repeat, kernel="event", only=args.only)
        soa = None
        if args.kernel in ("soa", "all"):
            print("benchmarking structure-of-arrays kernel:")
            soa = run_suite(repeat=args.repeat, kernel="soa", only=args.only)
        c = None
        if want_c:
            print("benchmarking compiled (C) kernel:")
            c = run_suite(repeat=args.repeat, kernel="c", only=args.only)
        naive = None
        if args.kernel in ("naive", "both", "all"):
            print("benchmarking naive full-scan kernel:")
            naive = run_suite(
                repeat=args.repeat, kernel="naive", only=args.only
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    seed_baseline = None
    if args.seed_baseline:
        with open(args.seed_baseline) as fh:
            seed_baseline = json.load(fh)
        # Accept either a bare {case: stats} map or a full report.
        if "event" in seed_baseline and isinstance(
            seed_baseline["event"], dict
        ):
            seed_baseline = seed_baseline["event"]

    report = build_report(
        event, naive, seed_baseline, args.repeat, soa=soa, c=c
    )
    fig07 = report["groups"]["fig07_low"]
    if "speedup_vs_baseline" in fig07:
        print(
            f"fig07 group: {fig07['wall_s']:.3f}s vs seed "
            f"{fig07['baseline_wall_s']:.3f}s = "
            f"{fig07['speedup_vs_baseline']:.2f}x"
        )
    for label, group in (("soa", "fig07_low_soa"), ("c", "fig07_low_c")):
        summary = report["groups"].get(group)
        if summary and "speedup_vs_event" in summary:
            print(
                f"fig07 group ({label}): {summary['wall_s']:.3f}s vs event "
                f"{summary['event_wall_s']:.3f}s = "
                f"{summary['speedup_vs_event']:.2f}x"
            )
    # Regression flags against the committed baseline (read before --out
    # can overwrite it).  A flagged case fails the run -- after the
    # history/report artifacts are written, so the evidence survives.
    flagged = []
    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline) as fh:
            baseline_event = json.load(fh).get("event", {})
        flagged = flag_regressions(event, baseline_event, args.tolerance)
        if flagged:
            print(
                f"REGRESSION vs {args.baseline} "
                f"(> {args.tolerance:.2f}x slower): {', '.join(flagged)}"
            )
        else:
            print(f"no regressions vs {args.baseline}")

    if not args.no_history and args.history:
        from repro.obs.manifest import git_sha

        timestamp = args.timestamp or time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        )
        append_history(
            history_entry(report, timestamp, git_sha()), args.history
        )
        total = len(read_history(args.history))
        print(f"appended history entry #{total} to {args.history}")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 1 if flagged else 0


if __name__ == "__main__":
    sys.exit(main())
