"""Routing disciplines.

All evaluations in the paper use deterministic dimension-order (X-Y)
routing; the asymmetric-CMP case study (Section 7) adds *table-based*
routing for traffic to/from the four large cores, which zig-zags through
the big routers along the diagonals and relies on a reserved escape
virtual channel for deadlock freedom.

A routing object answers two questions for the router model:

* :meth:`Routing.output_port` -- given the current router and a packet,
  which output port does the head flit request?
* :meth:`Routing.allowed_vcs` -- which virtual channels at the downstream
  router may the packet be allocated (dateline classes on the torus,
  escape-channel reservation under table-based routing)?
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.noc.flit import Packet
from repro.noc.topology import (
    EAST,
    NORTH,
    SOUTH,
    WEST,
    ConcentratedMesh,
    FlattenedButterfly,
    Mesh,
    Topology,
    Torus,
)


class RoutingError(Exception):
    """Raised when no legal output port exists for a packet."""


class Routing:
    """Base class for routing disciplines."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology

    def build_route_tables(self) -> Optional[List[List[int]]]:
        """Precomputed ``tables[router][dst_node] -> out_port``, or ``None``.

        A discipline may return full (router, destination) -> output-port
        tables when :meth:`output_port` is a *pure* function of the current
        router and the packet's destination -- no per-packet routing state
        (torus dateline classes, escape-channel flags) and no dependence on
        the packet's source.  :class:`~repro.noc.network.Network` then
        installs one table row per router so route computation on the cycle
        loop is a list index instead of a method call.  Disciplines with
        dynamic state (torus dateline, table/escape routing, fault-aware
        rerouting) return ``None`` and keep the per-packet lookup.
        """
        return None

    def uses_default_va(self) -> bool:
        """Whether VC-allocation candidates can be precomputed per port.

        True when the discipline keeps the base-class ``allowed_vcs`` /
        ``va_candidates`` (every downstream VC of the routed port, in
        order), which makes the candidate list a pure function of the
        output port.
        """
        cls = type(self)
        return (
            cls.allowed_vcs is Routing.allowed_vcs
            and cls.va_candidates is Routing.va_candidates
        )

    def _probe_tables(self) -> List[List[int]]:
        """Build full route tables by probing :meth:`output_port`.

        Probe packets carry ``packet_id=-1`` explicitly so table
        construction never draws from the global packet-id counter (which
        the sweep engine rewinds for bit-identical replay).
        """
        topo = self.topology
        tables: List[List[int]] = []
        for router in range(topo.num_routers):
            row = [
                self.output_port(
                    router,
                    Packet(src=0, dst=dst, num_flits=1, created_at=0,
                           packet_id=-1),
                )
                for dst in range(topo.num_nodes)
            ]
            tables.append(row)
        return tables

    def output_port(self, router: int, packet: Packet) -> int:
        """Output port the packet requests at ``router``.

        For a packet whose destination attaches to ``router``, the local
        (ejection) port of the destination node is returned.
        """
        raise NotImplementedError

    def allowed_vcs(
        self, router: int, out_port: int, packet: Packet, num_vcs: int
    ) -> Sequence[int]:
        """Virtual channels the packet may claim at the downstream router."""
        return range(num_vcs)

    def va_candidates(
        self,
        router: int,
        packet: Packet,
        route_port: int,
        out_vc_count: Sequence[int],
    ) -> Sequence[Tuple[int, int, bool]]:
        """(out_port, vc, escaped) candidates for VC allocation, in order.

        ``route_port`` is the output port already chosen by RC for this
        packet (passed in rather than recomputed because
        :meth:`output_port` may mutate per-packet routing state).  The
        ``escaped`` flag tells the router to switch the packet onto the
        escape path if that candidate wins (only table-based routing uses
        it).
        """
        return [
            (route_port, vc, False)
            for vc in self.allowed_vcs(
                router, route_port, packet, out_vc_count[route_port]
            )
        ]

    def _ejection_port(self, router: int, packet: Packet) -> Optional[int]:
        """Local port if the packet terminates at ``router``, else None."""
        if self.topology.router_of_node(packet.dst) == router:
            return self.topology.local_port_of_node(packet.dst)
        return None


class XYRouting(Routing):
    """Deterministic dimension-order routing for mesh-like topologies.

    Routes fully in X (columns) first, then in Y (rows).  Applicable to
    :class:`Mesh` and :class:`ConcentratedMesh`; deadlock-free because the
    X-before-Y turn restriction breaks all channel-dependency cycles.
    """

    def __init__(self, topology: Topology) -> None:
        if not isinstance(topology, (Mesh, ConcentratedMesh)):
            raise TypeError(
                f"XYRouting needs a mesh-like topology, got {type(topology).__name__}"
            )
        if isinstance(topology, Torus):
            raise TypeError("use TorusXYRouting for torus topologies")
        super().__init__(topology)

    def build_route_tables(self) -> List[List[int]]:
        # X-Y is a pure function of (router, destination): precomputable.
        return self._probe_tables()

    def output_port(self, router: int, packet: Packet) -> int:
        ejection = self._ejection_port(router, packet)
        if ejection is not None:
            return ejection
        topo = self.topology
        row, col = topo.coords(router)
        dst_row, dst_col = topo.coords(topo.router_of_node(packet.dst))
        if col < dst_col:
            return topo.direction_port(EAST)
        if col > dst_col:
            return topo.direction_port(WEST)
        if row < dst_row:
            return topo.direction_port(SOUTH)
        if row > dst_row:
            return topo.direction_port(NORTH)
        raise RoutingError(
            f"packet {packet.packet_id} at its destination router {router} "
            "but ejection port lookup failed"
        )


class TorusXYRouting(Routing):
    """Dimension-order routing on a torus with shortest-way wrap links.

    Deadlock within each unidirectional ring is avoided with dateline
    virtual-channel classes: a packet starts in class 0 and moves to class 1
    after traversing the wrap-around link of the dimension it is currently
    routing in; the class is reset when the packet turns from X to Y.  The
    low half of the VCs serves class 0, the high half class 1.
    """

    def __init__(self, topology: Torus) -> None:
        if not isinstance(topology, Torus):
            raise TypeError(
                f"TorusXYRouting needs a Torus, got {type(topology).__name__}"
            )
        super().__init__(topology)

    def _step(self, router: int, packet: Packet) -> Tuple[int, bool, bool]:
        """(direction_port, uses_wrap_link, turns_dimension) for next hop."""
        topo = self.topology
        row, col = topo.coords(router)
        dst_row, dst_col = topo.coords(topo.router_of_node(packet.dst))
        width, height = topo.width, topo.height
        if col != dst_col:
            right = (dst_col - col) % width
            left = (col - dst_col) % width
            if right <= left:
                wraps = col == width - 1
                return topo.direction_port(EAST), wraps, False
            wraps = col == 0
            return topo.direction_port(WEST), wraps, False
        down = (dst_row - row) % height
        up = (row - dst_row) % height
        turning = col == dst_col and row != dst_row
        # "turning" marks entry into the Y dimension; the caller resets the
        # dateline class when the packet makes this turn.
        if down <= up:
            wraps = row == height - 1
            return topo.direction_port(SOUTH), wraps, turning
        wraps = row == 0
        return topo.direction_port(NORTH), wraps, turning

    def output_port(self, router: int, packet: Packet) -> int:
        ejection = self._ejection_port(router, packet)
        if ejection is not None:
            return ejection
        port, wraps, turns = self._step(router, packet)
        if turns:
            packet.vc_class = 0
        if wraps:
            packet.vc_class = 1
        return port

    def allowed_vcs(
        self, router: int, out_port: int, packet: Packet, num_vcs: int
    ) -> Sequence[int]:
        if self.topology.is_local_port(router, out_port):
            return range(num_vcs)
        if num_vcs < 2:
            raise RoutingError(
                "torus dateline routing needs at least 2 VCs per channel"
            )
        # Most packets never cross a dateline, so class 0 gets the larger
        # share of the VCs; class 1 only needs enough to break the cycle.
        split = num_vcs - max(1, num_vcs // 3)
        if packet.vc_class == 0:
            return range(split)
        return range(split, num_vcs)


class FlattenedButterflyRouting(Routing):
    """Minimal (row-then-column) routing on a flattened butterfly.

    At most two network hops: a row link to the destination column followed
    by a column link to the destination row.  Dimension order makes it
    deadlock-free, mirroring X-Y on the mesh.
    """

    def __init__(self, topology: FlattenedButterfly) -> None:
        if not isinstance(topology, FlattenedButterfly):
            raise TypeError(
                "FlattenedButterflyRouting needs a FlattenedButterfly, "
                f"got {type(topology).__name__}"
            )
        super().__init__(topology)

    def build_route_tables(self) -> List[List[int]]:
        # Row-then-column is a pure function of (router, destination).
        return self._probe_tables()

    def output_port(self, router: int, packet: Packet) -> int:
        ejection = self._ejection_port(router, packet)
        if ejection is not None:
            return ejection
        topo = self.topology
        row, col = topo.coords(router)
        dst_router = topo.router_of_node(packet.dst)
        dst_row, dst_col = topo.coords(dst_router)
        if col != dst_col:
            return topo.row_port_to(router, dst_col)
        return topo.col_port_to(router, dst_row)


def minimal_routing_for(topology: Topology) -> Routing:
    """The paper's deterministic minimal routing for ``topology``."""
    if isinstance(topology, Torus):
        return TorusXYRouting(topology)
    if isinstance(topology, FlattenedButterfly):
        return FlattenedButterflyRouting(topology)
    if isinstance(topology, (Mesh, ConcentratedMesh)):
        return XYRouting(topology)
    raise TypeError(f"no minimal routing known for {type(topology).__name__}")


def max_big_router_path(
    mesh: Mesh, src_router: int, dst_router: int, big_routers: Set[int]
) -> List[int]:
    """Minimal path from src to dst visiting the most big routers.

    Searches only *monotone* minimal paths (every hop moves toward the
    destination), choosing among them the staircase that traverses the most
    routers in ``big_routers`` -- the paper's "zig-zag X-Y-X-Y" paths that
    maximally exploit the diagonal big routers (Section 7).

    Returns the router sequence including both endpoints.
    """
    src_row, src_col = mesh.coords(src_router)
    dst_row, dst_col = mesh.coords(dst_router)
    dr = 0 if dst_row == src_row else (1 if dst_row > src_row else -1)
    dc = 0 if dst_col == src_col else (1 if dst_col > src_col else -1)

    rows = list(range(src_row, dst_row + dr, dr)) if dr else [src_row]
    cols = list(range(src_col, dst_col + dc, dc)) if dc else [src_col]

    # Dynamic program over the src->dst rectangle: best[i][j] is the largest
    # big-router count achievable from cell (i, j) to the destination moving
    # only toward it.  Process cells outward from the destination corner.
    n_rows, n_cols = len(rows), len(cols)
    best = [[0] * n_cols for _ in range(n_rows)]
    move_row = [[False] * n_cols for _ in range(n_rows)]
    for i in range(n_rows - 1, -1, -1):
        for j in range(n_cols - 1, -1, -1):
            router = mesh.router_at(rows[i], cols[j])
            here = 1 if router in big_routers else 0
            if i == n_rows - 1 and j == n_cols - 1:
                best[i][j] = here
                continue
            down = best[i + 1][j] if i + 1 < n_rows else -1
            right = best[i][j + 1] if j + 1 < n_cols else -1
            if down >= right:
                best[i][j] = here + down
                move_row[i][j] = True
            else:
                best[i][j] = here + right
    path = []
    i = j = 0
    while True:
        path.append(mesh.router_at(rows[i], cols[j]))
        if i == n_rows - 1 and j == n_cols - 1:
            break
        if move_row[i][j] and i + 1 < n_rows:
            i += 1
        else:
            j += 1
    return path


def _path_to_ports(mesh: Mesh, path: List[int]) -> List[int]:
    """Convert a router sequence into per-hop output ports."""
    ports = []
    for here, there in zip(path, path[1:]):
        here_row, here_col = mesh.coords(here)
        there_row, there_col = mesh.coords(there)
        if there_col == here_col + 1:
            ports.append(mesh.direction_port(EAST))
        elif there_col == here_col - 1:
            ports.append(mesh.direction_port(WEST))
        elif there_row == here_row + 1:
            ports.append(mesh.direction_port(SOUTH))
        elif there_row == here_row - 1:
            ports.append(mesh.direction_port(NORTH))
        else:
            raise RoutingError(f"non-adjacent hop {here} -> {there}")
    return ports


class TableRouting(Routing):
    """Table-based routing through big routers, with X-Y escape channels.

    For source/destination pairs present in the table (built for the large
    cores of the asymmetric CMP), packets follow a precomputed minimal
    staircase path that maximizes big-router usage.  All other packets use
    plain X-Y.  Table-following packets avoid the reserved escape VC; if a
    blocked packet is ever allocated the escape VC it permanently switches
    to X-Y routing (``packet.on_escape``), which guarantees deadlock freedom
    (the escape subnetwork is the acyclic X-Y network).
    """

    def __init__(
        self,
        topology: Mesh,
        big_routers: Set[int],
        table_nodes: Set[int],
        escape_vc: int = 0,
    ) -> None:
        if isinstance(topology, Torus) or not isinstance(topology, Mesh):
            raise TypeError("TableRouting is defined for plain meshes")
        super().__init__(topology)
        self.big_routers = frozenset(big_routers)
        self.table_nodes = frozenset(table_nodes)
        self.escape_vc = escape_vc
        self._xy = XYRouting(topology)
        # (src_router, dst_router) -> {router_on_path: out_port}
        self._table: Dict[Tuple[int, int], Dict[int, int]] = {}
        self._build_table()

    def _build_table(self) -> None:
        topo = self.topology
        routers_of_interest = {
            topo.router_of_node(node) for node in self.table_nodes
        }
        for endpoint in routers_of_interest:
            for other in range(topo.num_routers):
                if other == endpoint:
                    continue
                for src, dst in ((endpoint, other), (other, endpoint)):
                    if (src, dst) in self._table:
                        continue
                    path = max_big_router_path(topo, src, dst, self.big_routers)
                    ports = _path_to_ports(topo, path)
                    self._table[(src, dst)] = dict(zip(path, ports))

    def uses_table(self, packet: Packet) -> bool:
        """Whether the packet's flow is steered by the routing table."""
        return (
            packet.src in self.table_nodes or packet.dst in self.table_nodes
        )

    def output_port(self, router: int, packet: Packet) -> int:
        ejection = self._ejection_port(router, packet)
        if ejection is not None:
            return ejection
        if packet.on_escape or not self.uses_table(packet):
            return self._xy.output_port(router, packet)
        src_router = self.topology.router_of_node(packet.src)
        dst_router = self.topology.router_of_node(packet.dst)
        hops = self._table.get((src_router, dst_router))
        if hops is None or router not in hops:
            # Not on the tabled path (e.g. the packet escaped earlier and
            # the flag was lost) -- fall back to X-Y, which is always legal.
            return self._xy.output_port(router, packet)
        return hops[router]

    def allowed_vcs(
        self, router: int, out_port: int, packet: Packet, num_vcs: int
    ) -> Sequence[int]:
        if self.topology.is_local_port(router, out_port):
            return range(num_vcs)
        if packet.on_escape:
            return (self.escape_vc,)
        return range(num_vcs)

    def va_candidates(
        self,
        router: int,
        packet: Packet,
        route_port: int,
        out_vc_count: Sequence[int],
    ) -> Sequence[Tuple[int, int, bool]]:
        """Tabled packets try non-escape VCs on their tabled port first.

        As a last resort they may claim the *escape* VC, but only in the
        X-Y direction: the escape subnetwork carries exclusively X-Y-routed
        traffic, so it inherits X-Y's freedom from channel-dependency
        cycles.  Claiming it flips ``packet.on_escape`` (the router acts on
        the ``escaped`` flag), after which the packet finishes via X-Y on
        escape channels only.
        """
        if self.topology.is_local_port(router, route_port):
            return [(route_port, vc, False) for vc in range(out_vc_count[route_port])]
        if packet.on_escape:
            return [(route_port, self.escape_vc, False)]
        if not self.uses_table(packet):
            return [
                (route_port, vc, False)
                for vc in range(out_vc_count[route_port])
            ]
        xy_port = self._xy.output_port(router, packet)
        candidates = [
            (route_port, vc, False)
            for vc in range(out_vc_count[route_port])
            if vc != self.escape_vc
        ]
        candidates.append((xy_port, self.escape_vc, True))
        return candidates

    def path_routers(self, src_router: int, dst_router: int) -> List[int]:
        """Routers on the tabled path (for tests and diagnostics)."""
        hops = self._table.get((src_router, dst_router))
        if hops is None:
            raise KeyError(f"no tabled path {src_router} -> {dst_router}")
        path = [src_router]
        mesh = self.topology
        while path[-1] != dst_router:
            port = hops[path[-1]]
            neighbor = mesh.neighbor(path[-1], port)
            if neighbor is None:
                raise RoutingError("tabled path walks off the mesh")
            path.append(neighbor[0])
        return path
