"""Bit-identical simulation checkpointing.

A snapshot captures the *complete* state of a running simulation -- the
:class:`~repro.noc.network.Network` object graph (routers, VC states,
in-flight flits, arbiter pointers, activity counters, event buckets,
sources, stats), the driver's RNG, the injection process, the global
packet-id counter and any driver bookkeeping -- so that a restored run
continues exactly where the original left off.  "Exactly" is literal:
the differential state digests of a restored run match an uninterrupted
one cycle for cycle, for all four cycle kernels (pinned by
``tests/test_snapshot.py``).

Two layers:

* :func:`capture` / :class:`SimSnapshot` -- freeze a live network (plus
  optional RNG / injector / driver state) into one picklable value.  The
  structure-of-arrays kernel is synced back into the object model first
  (the hand-off is bit-identical, see :mod:`repro.noc.soa`), so
  snapshots never contain numpy arrays and a restored ``"soa"`` network
  simply re-packs on its next step.
* :func:`save_snapshot` / :func:`load_snapshot` -- the versioned binary
  container: an 8-byte magic, a format version, the sha256 of the pickle
  payload, then the payload.  Writes are atomic (temp file +
  ``os.replace``); loads verify magic, version and digest and raise
  :class:`SnapshotCorrupt` / :class:`SnapshotVersionMismatch` on any
  mismatch, so a truncated or bit-flipped file is *detected*, never
  silently half-restored.  Callers treat a corrupt snapshot as "no
  checkpoint" and restart from cycle 0 (the chaos tests pin this).

Not supported: networks with an observer or profiler attached (both may
hold open file handles); :func:`capture` refuses them loudly rather than
producing a snapshot that cannot restore.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import random
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.noc.flit import packet_id_marker, seed_packet_ids

#: bump when the container layout or the pickled payload schema changes.
SNAPSHOT_VERSION = 1

_MAGIC = b"RNOCSNAP"
#: magic(8s) version(I) payload_len(Q) sha256(32s)
_HEADER = struct.Struct(">8sIQ32s")

#: pinned pickle protocol so snapshots written on newer interpreters stay
#: readable on the oldest supported one (protocol 4: Python >= 3.4).
_PICKLE_PROTOCOL = 4


class SnapshotError(RuntimeError):
    """Base class for snapshot failures."""


class SnapshotCorrupt(SnapshotError):
    """The snapshot file is truncated, bit-flipped or not a snapshot."""


class SnapshotVersionMismatch(SnapshotError):
    """The snapshot was written by an incompatible format version."""


@dataclass
class SimSnapshot:
    """One frozen simulation, ready to pickle.

    ``extra`` carries driver-level state (loop counters, the NI
    retransmission manager, ...) and is pickled in the *same* payload as
    the network, so shared references -- an NI holding the network, a
    packet present both in a source queue and in the NI's outstanding
    table -- survive the round trip as shared references.
    """

    network: object
    rng_state: Optional[tuple] = None
    injector: Optional[object] = None
    packet_id_next: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    def restore_packet_ids(self) -> None:
        """Rewind the global packet-id counter to the captured marker."""
        seed_packet_ids(self.packet_id_next)

    def make_rng(self) -> Optional[random.Random]:
        """A ``random.Random`` positioned exactly where capture left it."""
        if self.rng_state is None:
            return None
        rng = random.Random()
        rng.setstate(self.rng_state)
        return rng


def capture(
    network,
    rng: Optional[random.Random] = None,
    injector: Optional[object] = None,
    extra: Optional[Dict[str, object]] = None,
) -> SimSnapshot:
    """Freeze a live network (and driver state) into a :class:`SimSnapshot`.

    The soa or compiled (C) kernel, if active, is synced and
    deactivated first: the object model then holds the authoritative
    state, and the restored network re-activates its batch kernel on
    the next step (both transitions are bit-identical, pinned by the
    differential tests).
    Deactivation is equally bit-identical for the network being
    captured, so taking a checkpoint never perturbs the ongoing run.
    """
    if network.obs is not None or network.profiler is not None:
        raise SnapshotError(
            "cannot snapshot a network with an observer or profiler "
            "attached (live file handles); detach it first"
        )
    network.sync_kernel()
    network._deactivate_ck()
    network._deactivate_soa()
    return SimSnapshot(
        network=network,
        rng_state=rng.getstate() if rng is not None else None,
        injector=injector,
        packet_id_next=packet_id_marker(),
        extra=dict(extra or {}),
    )


def dumps(snapshot: SimSnapshot) -> bytes:
    """The snapshot as one self-verifying binary blob."""
    buffer = io.BytesIO()
    pickle.dump(snapshot, buffer, protocol=_PICKLE_PROTOCOL)
    payload = buffer.getvalue()
    digest = hashlib.sha256(payload).digest()
    return _HEADER.pack(_MAGIC, SNAPSHOT_VERSION, len(payload), digest) + payload


def loads(blob: bytes) -> SimSnapshot:
    """Parse and verify a snapshot blob (see :func:`load_snapshot`)."""
    if len(blob) < _HEADER.size:
        raise SnapshotCorrupt(
            f"snapshot truncated: {len(blob)} bytes is shorter than the "
            f"{_HEADER.size}-byte header"
        )
    magic, version, length, digest = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise SnapshotCorrupt(f"bad magic {magic!r}; not a snapshot file")
    if version != SNAPSHOT_VERSION:
        raise SnapshotVersionMismatch(
            f"snapshot format v{version} != supported v{SNAPSHOT_VERSION}"
        )
    payload = blob[_HEADER.size:]
    if len(payload) != length:
        raise SnapshotCorrupt(
            f"snapshot payload is {len(payload)} bytes, header promised "
            f"{length} (truncated or appended-to)"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise SnapshotCorrupt("snapshot payload sha256 mismatch (bit rot?)")
    try:
        snapshot = pickle.loads(payload)
    except Exception as exc:  # digest passed but unpickling still failed
        raise SnapshotCorrupt(f"snapshot payload does not unpickle: {exc}")
    if not isinstance(snapshot, SimSnapshot):
        raise SnapshotCorrupt(
            f"snapshot payload is a {type(snapshot).__name__}, "
            "not a SimSnapshot"
        )
    return snapshot


def save_snapshot(snapshot: SimSnapshot, path) -> None:
    """Write ``snapshot`` to ``path`` atomically.

    A crashed writer leaves either the previous snapshot or the complete
    new one -- never a torn file -- which is what makes periodic
    auto-checkpointing safe to interrupt at any instant.
    """
    blob = dumps(snapshot)
    path = os.fspath(path)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_snapshot(path) -> SimSnapshot:
    """Read, verify and unpickle a snapshot written by :func:`save_snapshot`.

    Raises :class:`SnapshotCorrupt` on any damage and ``OSError`` /
    ``FileNotFoundError`` as usual for unreadable paths; callers that
    auto-resume treat both as "start from scratch".
    """
    with open(path, "rb") as handle:
        return loads(handle.read())
