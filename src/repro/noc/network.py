"""The assembled network: routers, links, injection and the cycle loop.

A :class:`Network` is built from a topology, a per-router configuration map
(produced by :mod:`repro.core.layouts` for the paper's seven
configurations), a :class:`~repro.noc.config.NetworkConfig` and a routing
discipline.  Higher layers interact with it through three calls:

* :meth:`Network.enqueue` -- hand a packet to its source queue;
* :meth:`Network.step` -- advance one clock cycle;
* :meth:`Network.stats` -- the :class:`~repro.noc.stats.NetworkStats`
  collector for packets marked ``measured``.

Per-cycle phase order (chosen so that no flit uses a resource in the same
cycle it is produced):

1. deliver link arrivals and credit returns scheduled for this cycle;
2. inject source-queue flits into local input buffers;
3. RC + VC allocation at every router holding flits;
4. switch allocation + traversal; departures are scheduled onto links and
   ejections are consumed;
5. occupancy sampling (measurement window only).

The cycle kernel is *event-driven*: the network keeps an **active set** of
router ids (routers holding at least one buffered flit) and of source nodes
(nodes with queued or mid-injection packets), and each cycle walks only
those, so per-cycle cost scales with traffic rather than mesh size.  The
active sets are conservative supersets maintained lazily -- membership is
added on every ``write_flit``/``enqueue`` and pruned when a drained member
is next visited -- and they are always iterated in ascending id order with
the same per-element guards as a full scan, which makes the kernel
bit-identical to the naive all-routers walk.  That naive walk is retained
as :meth:`Network._step_naive` (select it with ``REPRO_NAIVE_STEP=1`` or
``network.naive_step = True``) and serves as the differential-testing
reference for the event kernel.

A third kernel -- the structure-of-arrays batch kernel of
:mod:`repro.noc.soa` -- is selected with ``NetworkConfig(kernel="soa")``,
``REPRO_KERNEL=soa`` or ``network.use_kernel("soa")``.  It simulates the
same microarchitecture over flat arrays and bitmasks, is bit-identical to
both object-model kernels, and *falls back to the event kernel
automatically* whenever faults, observation hooks, a watchdog, a profiler
or a dynamic routing discipline require the per-flit object datapath; the
fallback is re-evaluated every cycle, so attaching or detaching such a
subsystem mid-run simply switches kernels at the next step.
"""

from __future__ import annotations

import math
import os
from collections import deque
from time import perf_counter
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.noc.config import NetworkConfig, RouterConfig
from repro.noc.flit import Flit, Packet, flits_per_packet
from repro.noc.link import Link, link_width_between
from repro.noc.router import Grant, Router
from repro.noc.routing import Routing, minimal_routing_for
from repro.noc.stats import LatencyRecord, NetworkStats
from repro.noc.topology import Topology


class _SourceState:
    """Injection-side state of one terminal node."""

    __slots__ = ("queue", "flits", "next_flit", "vc")

    def __init__(self) -> None:
        self.queue: Deque[Packet] = deque()
        self.flits: List[Flit] = []
        self.next_flit = 0
        self.vc: Optional[int] = None

    @property
    def mid_packet(self) -> bool:
        return self.next_flit < len(self.flits)


class Network:
    """A simulated on-chip network instance."""

    def __init__(
        self,
        topology: Topology,
        router_configs: Dict[int, RouterConfig],
        network_config: Optional[NetworkConfig] = None,
        routing: Optional[Routing] = None,
    ) -> None:
        if set(router_configs) != set(range(topology.num_routers)):
            raise ValueError(
                "router_configs must map every router id exactly once"
            )
        self.topology = topology
        self.router_configs = dict(router_configs)
        self.config = network_config or NetworkConfig()
        # Set the backing attribute directly: the ``routing`` property
        # setter rebuilds routing tables, which needs the routers to exist.
        self._routing = routing or minimal_routing_for(topology)
        widths = {cfg.flit_width for cfg in router_configs.values()}
        if len(widths) != 1:
            raise ValueError(
                f"all routers must share one flit width, got {sorted(widths)}"
            )
        self.flit_width = widths.pop()

        self.routers: List[Router] = []
        for rid in range(topology.num_routers):
            n_ports = topology.num_ports(rid)
            locals_ = [
                p for p in range(n_ports) if topology.is_local_port(rid, p)
            ]
            self.routers.append(
                Router(rid, router_configs[rid], n_ports, locals_, self.config)
            )
        self._wire_links()

        self.sources = [_SourceState() for _ in range(topology.num_nodes)]
        self.cycle = 0
        self._arrivals: Dict[int, List[Tuple[int, int, int, Flit]]] = {}
        # credit events: (router, port, vc, release_vc_too)
        self._credits: Dict[int, List[Tuple[int, int, int, bool]]] = {}
        self._stats = NetworkStats(topology.num_routers, topology.num_nodes)
        # The stats object aggregates the *routers'* live activity counters.
        self._stats.router_activity = [r.activity for r in self.routers]
        self.measuring = False
        self.packets_in_flight = 0
        #: optional callback fired on every delivered packet
        self.on_delivery: Optional[Callable[[Packet, int], None]] = None
        #: optional observation hooks (see :mod:`repro.obs.hooks`); ``None``
        #: keeps every tap point on its single-attribute-check fast path.
        self.obs = None
        #: optional :class:`repro.obs.profiler.RunProfiler`; when set,
        #: :meth:`step` switches to the phase-timed variant.
        self.profiler = None
        #: optional :class:`repro.faults.injector.FaultInjector`; ``None``
        #: (the default) keeps every fault tap on a single attribute check,
        #: so a fault-free build is byte-identical to one without the
        #: subsystem (same discipline as ``obs``).
        self.faults = None
        #: optional :class:`repro.faults.watchdog.Watchdog` sampled at the
        #: end of every cycle.
        self.watchdog = None
        #: lifetime count of completed packets (clean or corrupted);
        #: monotone progress signal for the watchdog's livelock check.
        self.total_delivered = 0
        #: optional callback fired when a fault purges a packet
        #: (``on_loss(packet, reason, cycle)``) -- the NI retransmission
        #: layer subscribes here.
        self.on_loss: Optional[Callable[[Packet, str, int], None]] = None
        #: mirror of ``obs is not None`` checked once per phase on the hot
        #: path (the null-object fast path: a run without an observer makes
        #: zero hook calls and zero per-event attribute probes).
        self._tracing = False
        # -- kernel selection --------------------------------------------
        # REPRO_NAIVE_STEP=1 (the original switch) takes precedence, then
        # REPRO_KERNEL, then the config field.
        kernel = os.environ.get("REPRO_KERNEL") or self.config.kernel
        if os.environ.get("REPRO_NAIVE_STEP") == "1":
            kernel = "naive"
        if kernel not in NetworkConfig.KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of "
                f"{NetworkConfig.KERNELS}"
            )
        #: whether the retained naive (full-scan) stepper is selected.
        self._naive = kernel == "naive"
        #: whether the structure-of-arrays batch kernel is requested;
        #: eligibility is (re)checked every step so faults/obs/watchdog/
        #: profiler attachment falls back to the event kernel.
        self._soa_requested = kernel == "soa"
        #: the live :class:`repro.noc.soa.SoaKernel`, or ``None`` when the
        #: object-model kernels are driving.
        self._soa = None
        #: whether the compiled (C) kernel is requested; it shares the soa
        #: kernel's eligibility rules and degrades to soa when the shared
        #: library cannot be built or loaded.
        self._ck_requested = kernel == "c"
        #: the live :class:`repro.noc.ckernel.CKernel`, or ``None``.
        self._ck = None
        #: set after a failed compiled-kernel activation so the (warned)
        #: soa fallback does not retry the build every cycle.
        self._ck_blocked = False
        #: whether precomputed route tables *and* default-VA tables are
        #: installed (the soa kernel's routing precondition).
        self._route_tables_ok = False

        # -- prebuilt hot-path structures (hoisted out of the cycle loop) --
        # Per-channel lane map, built once from the wired links; both the
        # initial stats object and every reset_stats() copy this template
        # instead of re-walking topology.channels().
        self._link_lanes_template: Dict[Tuple[int, int], int] = {}
        for rid, router in enumerate(self.routers):
            for port, link in enumerate(router.out_links):
                if link is not None:
                    self._link_lanes_template[(rid, port)] = link.lanes
        self._stats.link_lanes.update(self._link_lanes_template)
        # Upstream adjacency: _upstream[rid][port] = (neighbor, its port)
        # for network ports, None for local/edge ports.
        self._upstream: List[List[Optional[Tuple[int, int]]]] = [
            [
                None
                if topology.is_local_port(rid, port)
                else topology.neighbor(rid, port)
                for port in range(topology.num_ports(rid))
            ]
            for rid in range(topology.num_routers)
        ]
        # Injection-side per-node lookups.
        self._node_router_id: List[int] = [
            topology.router_of_node(node)
            for node in range(topology.num_nodes)
        ]
        self._node_router: List[Router] = [
            self.routers[rid] for rid in self._node_router_id
        ]
        self._node_port: List[int] = [
            topology.local_port_of_node(node)
            for node in range(topology.num_nodes)
        ]
        self._node_lanes: List[int] = [
            router._local_lanes for router in self._node_router
        ]
        self._all_nodes = range(topology.num_nodes)
        self._credit_delay = self.config.credit_delay
        self._merging = self.config.flit_merging
        self._default_packet_flits = flits_per_packet(
            self.config.data_packet_bits, self.flit_width
        )

        # -- active sets (the event-driven kernel's work lists) --
        #: routers that may hold buffered flits; conservative superset,
        #: pruned lazily when a drained router is visited.
        self._active_routers: set = set()
        #: source nodes that may have queued or mid-injection packets.
        self._active_sources: set = set()

        self._install_routing_tables()

    # -- construction ---------------------------------------------------------
    def _wire_links(self) -> None:
        topo = self.topology
        for rid, router in enumerate(self.routers):
            for port in range(router.num_ports):
                if topo.is_local_port(rid, port):
                    # Ejection: no downstream credits; lanes follow the
                    # router's own link width.
                    router.attach_output(port, None, 0, 0)
                    continue
                neighbor = topo.neighbor(rid, port)
                if neighbor is None:
                    router.attach_output(port, None, 0, 0)
                    continue
                other, other_port = neighbor
                other_cfg = self.router_configs[other]
                link = Link(
                    src_router=rid,
                    src_port=port,
                    dst_router=other,
                    dst_port=other_port,
                    width_bits=link_width_between(
                        self.router_configs[rid], other_cfg
                    ),
                    flit_width_bits=self.flit_width,
                    delay=self.config.link_delay,
                )
                router.attach_output(
                    port, link, other_cfg.num_vcs, other_cfg.buffer_depth
                )

    def _install_routing_tables(self) -> None:
        """(Re)install precomputed RC/VA tables on every router.

        Tables are only valid when the routing discipline is a pure
        function of (router, destination) *and* no fault injector can
        reroute around dead channels mid-run; otherwise every router falls
        back to dynamic per-packet lookups.  The naive reference stepper
        also runs table-free so it exercises the original code path
        end-to-end.
        """
        routers = getattr(self, "routers", None)
        if not routers:
            return
        self._deactivate_ck()
        self._deactivate_soa()
        tables = None
        if not self._naive and self.faults is None:
            tables = self._routing.build_route_tables()
        if tables is None:
            self._route_tables_ok = False
            for router in routers:
                router.set_routing_tables(None, None)
            return
        default_va = self._routing.uses_default_va()
        self._route_tables_ok = default_va
        for rid, router in enumerate(routers):
            va_table = None
            if default_va:
                va_table = [
                    [
                        (port, vc, False)
                        for vc in range(router.out_vc_count[port])
                    ]
                    for port in range(router.num_ports)
                ]
            router.set_routing_tables(tables[rid], va_table)

    # -- public API -------------------------------------------------------------
    @property
    def stats(self) -> NetworkStats:
        return self._stats

    @property
    def routing(self) -> Routing:
        return self._routing

    @routing.setter
    def routing(self, routing: Routing) -> None:
        self._routing = routing
        self._install_routing_tables()

    @property
    def naive_step(self) -> bool:
        """Whether the retained full-scan reference stepper is selected."""
        return self._naive

    @naive_step.setter
    def naive_step(self, naive: bool) -> None:
        if naive:
            self.use_kernel("naive")
        elif self._naive:
            self.use_kernel("event")

    @property
    def kernel(self) -> str:
        """The selected cycle kernel: ``"event"``, ``"soa"``, ``"naive"``
        or ``"c"``.

        Note this is the *requested* kernel; a requested ``"soa"`` or
        ``"c"`` still steps through the event kernel whenever faults,
        observation hooks, a watchdog, a profiler or dynamic routing are
        attached, and ``"c"`` degrades to the soa datapath when no C
        compiler is available (see :attr:`active_kernel`).
        """
        if self._naive:
            return "naive"
        if self._ck_requested:
            return "c"
        if self._soa_requested:
            return "soa"
        return "event"

    @kernel.setter
    def kernel(self, name: str) -> None:
        self.use_kernel(name)

    def use_kernel(self, name: str) -> None:
        """Switch the cycle kernel mid-run (bit-identical hand-off)."""
        if name not in NetworkConfig.KERNELS:
            raise ValueError(
                f"unknown kernel {name!r}; expected one of "
                f"{NetworkConfig.KERNELS}"
            )
        self._deactivate_ck()
        self._deactivate_soa()
        was_naive = self._naive
        self._naive = name == "naive"
        self._soa_requested = name == "soa"
        self._ck_requested = name == "c"
        if self._ck_requested:
            # An explicit re-request gets a fresh activation attempt
            # (e.g. a compiler appeared on PATH since the last failure).
            self._ck_blocked = False
        if was_naive != self._naive:
            # naive <-> table-driven changes the routers' RC/VA tables.
            self._install_routing_tables()

    @property
    def soa_active(self) -> bool:
        """Whether the soa batch kernel is currently driving the cycle."""
        return self._soa is not None

    @property
    def active_kernel(self) -> str:
        """The kernel *actually driving* the cycle right now.

        Unlike :attr:`kernel` (the request), this reflects the fallback
        ladder: ``"c"`` while the compiled kernel is live, ``"soa"``
        while the batch kernel is live, otherwise the object-model
        kernel that would step (``"naive"`` or ``"event"``).
        """
        if self._ck is not None:
            return "c"
        if self._soa is not None:
            return "soa"
        return "naive" if self._naive else "event"

    def _activate_soa(self):
        from repro.noc.soa import SoaKernel

        kernel = SoaKernel(self)
        self._soa = kernel
        return kernel

    def _deactivate_soa(self) -> None:
        kernel = getattr(self, "_soa", None)
        if kernel is not None:
            kernel.sync()
            self._soa = None

    def _activate_ck(self):
        """Try to bring up the compiled kernel; on failure warn once and
        return ``None`` (the caller then steps the soa kernel)."""
        from repro.noc.ckernel import (
            CKernel,
            CKernelUnavailable,
            warn_unavailable,
        )

        try:
            kernel = CKernel(self)
        except CKernelUnavailable as exc:
            warn_unavailable(str(exc))
            self._ck_blocked = True
            return None
        self._ck = kernel
        return kernel

    def _deactivate_ck(self) -> None:
        kernel = getattr(self, "_ck", None)
        if kernel is not None:
            kernel.sync()
            kernel.free()
            self._ck = None

    def sync_kernel(self) -> None:
        """Mirror batch-kernel state back into the Router objects.

        No-op unless the soa kernel is live.  Callers that inspect router
        internals mid-run (tests, diagnostics) should call this first;
        the shared structures (flit queues, stats, activity counters,
        event buckets, sources) are always current.
        """
        if self._ck is not None:
            self._ck.sync()
        elif self._soa is not None:
            self._soa.sync()

    def wake_router(self, router_id: int) -> None:
        """Mark a router active (for callers that write flits directly)."""
        self._active_routers.add(router_id)
        if self._ck is not None:
            self._ck.wake(router_id)
        elif self._soa is not None:
            self._soa.actmask |= 1 << router_id

    def wake_source(self, node: int) -> None:
        """Mark a source node active (for callers that bypass enqueue)."""
        self._active_sources.add(node)
        if self._ck is not None:
            self._ck.wake_source(node)

    def attach_observer(self, observer) -> None:
        """Attach observation hooks (an :class:`repro.obs.hooks.Observer`)
        to the network and all its routers."""
        self._deactivate_ck()
        self._deactivate_soa()
        self.obs = observer
        self._tracing = observer is not None
        for router in self.routers:
            router.obs = observer

    def detach_observer(self) -> None:
        """Remove the observation hooks; tap points revert to no-ops."""
        self.obs = None
        self._tracing = False
        for router in self.routers:
            router.obs = None

    def attach_faults(self, injector) -> None:
        """Attach a fault injector to the network and all its routers.

        Precomputed routing tables are cleared: under faults, route
        computation must stay dynamic so rerouting around dead channels
        can take effect.
        """
        self.faults = injector
        for router in self.routers:
            router.faults = injector
        self._install_routing_tables()

    def detach_faults(self) -> None:
        """Remove the fault injector; fault taps revert to no-ops."""
        self.faults = None
        for router in self.routers:
            router.faults = None
        self._install_routing_tables()

    def attach_watchdog(self, watchdog) -> None:
        """Attach a deadlock/livelock watchdog (read-only: cannot change
        simulation results)."""
        self._deactivate_ck()
        self._deactivate_soa()
        self.watchdog = watchdog

    def detach_watchdog(self) -> None:
        self.watchdog = None

    def begin_measurement(self) -> None:
        """Open the measurement window: snapshot event counters so that
        utilization and power cover exactly the window."""
        if self._ck is not None:
            self._ck.flush_activity()
        elif self._soa is not None:
            self._soa.flush_activity()
        self._activity_snapshot = [r.activity.snapshot() for r in self.routers]
        self.measuring = True

    def end_measurement(self) -> None:
        """Close the window and freeze its activity deltas into the stats."""
        if self._ck is not None:
            self._ck.flush_activity()
        elif self._soa is not None:
            self._soa.flush_activity()
        self.measuring = False
        snapshot = getattr(self, "_activity_snapshot", None)
        if snapshot is None:
            raise RuntimeError("end_measurement() without begin_measurement()")
        self._stats.router_activity = [
            router.activity.delta_since(start)
            for router, start in zip(self.routers, snapshot)
        ]

    def reset_stats(self) -> None:
        """Start a fresh measurement window (counters and records only)."""
        self._stats = NetworkStats(
            self.topology.num_routers, self.topology.num_nodes
        )
        self._stats.link_lanes.update(self._link_lanes_template)
        for router in self.routers:
            router.activity = type(router.activity)(
                buffer_capacity_flits=router.activity.buffer_capacity_flits
            )
        self._stats.router_activity = [r.activity for r in self.routers]
        if self._ck is not None:
            self._ck.reload_activities()
        elif self._soa is not None:
            self._soa.reload_activities()

    def make_packet(
        self,
        src: int,
        dst: int,
        payload_bits: Optional[int] = None,
        packet_class: str = "data",
        payload: object = None,
    ) -> Packet:
        """Build a packet sized for this network's flit width."""
        if payload_bits is None:
            num_flits = self._default_packet_flits
        else:
            num_flits = flits_per_packet(payload_bits, self.flit_width)
        return Packet(
            src=src,
            dst=dst,
            num_flits=num_flits,
            created_at=self.cycle,
            packet_class=packet_class,
            payload=payload,
        )

    def enqueue(self, packet: Packet, retransmit: bool = False) -> bool:
        """Queue ``packet`` at its source node.

        Returns ``False`` (and drops the packet) when the source queue is
        at its configured limit -- the closed-loop/back-pressured setting.
        ``retransmit`` re-queues a previously offered packet (the NI
        recovery path) without double-counting it in ``packets_offered``.
        """
        source = self.sources[packet.src]
        limit = self.config.source_queue_limit
        ck = self._ck
        if limit is not None:
            queued = (
                ck.source_queue_len(packet.src)
                if ck is not None
                else len(source.queue)
            )
            if queued >= limit:
                if self.obs is not None:
                    self.obs.on_packet_dropped(packet, self.cycle)
                return False
        if packet.measured and not retransmit:
            self._stats.packets_offered += 1
        if ck is not None:
            # The compiled kernel owns the source queues while active; the
            # Python deques are rebuilt from it on sync().
            ck.enqueue_packet(packet)
        else:
            source.queue.append(packet)
            self._active_sources.add(packet.src)
        self.packets_in_flight += 1
        if self.obs is not None:
            self.obs.on_packet_enqueued(packet, self.cycle)
        return True

    def idle(self) -> bool:
        """True when no packet is queued, buffered or on a link."""
        return self.packets_in_flight == 0

    def step(self) -> None:
        """Advance the network by one clock cycle (event-driven kernel).

        Only routers in the active set are visited; the set is pruned of
        drained routers as they are encountered and iterated in ascending
        router-id order, which keeps arbitration state evolution -- and
        therefore every simulation result -- bit-identical to the retained
        full-scan reference (:meth:`_step_naive`).
        """
        if self.profiler is not None:
            self._deactivate_ck()
            self._deactivate_soa()
            self._step_profiled()
            return
        if self._naive:
            self._step_naive()
            return
        if self._soa_requested or self._ck_requested:
            # Per-step eligibility: the batch kernels need precomputed
            # route/VA tables and step aside for any subsystem that needs
            # the per-flit object datapath (faults, obs, watchdog).
            if (
                self.faults is None
                and self.obs is None
                and self.watchdog is None
                and self._route_tables_ok
            ):
                if self._ck_requested and not self._ck_blocked:
                    kernel = self._ck
                    if kernel is None:
                        kernel = self._activate_ck()
                    if kernel is not None:
                        kernel.step()
                        return
                    # Activation failed (no compiler, bad shape): warned
                    # once, _ck_blocked set -- degrade to the soa datapath.
                kernel = self._soa
                if kernel is None:
                    kernel = self._activate_soa()
                kernel.step()
                return
            self._deactivate_ck()
            self._deactivate_soa()
        cycle = self.cycle
        if self.faults is not None:
            self.faults.tick(self, cycle)
        arrivals = self._arrivals.pop(cycle, None)
        if arrivals:
            self._deliver_arrival_events(arrivals, cycle)
        credits = self._credits.pop(cycle, None)
        if credits:
            self._deliver_credit_events(credits, cycle)
        if self._active_sources:
            self._inject(cycle, None)
        active = self._active_routers
        live: List[Router] = []
        if active:
            routers = self.routers
            routing = self._routing
            for rid in sorted(active):
                router = routers[rid]
                if router.occupied_flits:
                    live.append(router)
                    router.allocate_vcs(routing, cycle)
                else:
                    active.discard(rid)
            for router in live:
                grants = router.allocate_switch(cycle)
                if grants:
                    self._transport(router, grants, cycle)
        if self.measuring:
            self._stats.measured_cycles += 1
            # Inactive routers hold zero flits and would add zero to their
            # occupancy integral; sampling only the live ones is exact.
            for router in live:
                router.activity.occupancy_integral += router.occupied_flits
        if self._tracing:
            self.obs.on_cycle_end(cycle, self.measuring)
        if self.watchdog is not None:
            self.watchdog.check(self, cycle)
        self.cycle = cycle + 1

    def _step_naive(self) -> None:
        """The original full-scan cycle kernel, kept as the differential
        reference for the event-driven :meth:`step`.

        Visits every router and every source each cycle and performs
        dynamic route computation (no precomputed tables).  Active-set
        bookkeeping is still maintained so the kernels can be switched
        mid-run.
        """
        cycle = self.cycle
        if self.faults is not None:
            self.faults.tick(self, cycle)
        arrivals = self._arrivals.pop(cycle, None)
        if arrivals:
            self._deliver_arrival_events(arrivals, cycle)
        credits = self._credits.pop(cycle, None)
        if credits:
            self._deliver_credit_events(credits, cycle)
        self._inject(cycle, self._all_nodes)
        routing = self._routing
        for router in self.routers:
            if router.occupied_flits:
                router.allocate_vcs(routing, cycle)
        for router in self.routers:
            if not router.occupied_flits:
                continue
            grants = router.allocate_switch(cycle)
            if grants:
                self._transport(router, grants, cycle)
        if self.measuring:
            self._stats.measured_cycles += 1
            for router in self.routers:
                router.sample_occupancy()
        if self.obs is not None:
            self.obs.on_cycle_end(cycle, self.measuring)
        if self.watchdog is not None:
            self.watchdog.check(self, cycle)
        self.cycle = cycle + 1

    def _step_profiled(self) -> None:
        """One clock cycle with per-phase wall-clock timing.

        Mirrors the event-driven :meth:`step` exactly (same phase order,
        same hook firing) but brackets each phase with ``perf_counter``
        and reports the six durations to the attached profiler.  Kept
        separate so the default path stays free of timing overhead.
        """
        cycle = self.cycle
        if self.faults is not None:
            self.faults.tick(self, cycle)
        t0 = perf_counter()
        arrivals = self._arrivals.pop(cycle, None)
        if arrivals:
            self._deliver_arrival_events(arrivals, cycle)
        t1 = perf_counter()
        credits = self._credits.pop(cycle, None)
        if credits:
            self._deliver_credit_events(credits, cycle)
        t2 = perf_counter()
        if self._naive:
            self._inject(cycle, self._all_nodes)
        elif self._active_sources:
            self._inject(cycle, None)
        t3 = perf_counter()
        routing = self._routing
        live: List[Router] = []
        if self._naive:
            for router in self.routers:
                if router.occupied_flits:
                    live.append(router)
                    router.allocate_vcs(routing, cycle)
        else:
            active = self._active_routers
            routers = self.routers
            for rid in sorted(active):
                router = routers[rid]
                if router.occupied_flits:
                    live.append(router)
                    router.allocate_vcs(routing, cycle)
                else:
                    active.discard(rid)
        t4 = perf_counter()
        for router in live:
            grants = router.allocate_switch(cycle)
            if grants:
                self._transport(router, grants, cycle)
        t5 = perf_counter()
        if self.measuring:
            self._stats.measured_cycles += 1
            for router in live:
                router.activity.occupancy_integral += router.occupied_flits
        if self.obs is not None:
            self.obs.on_cycle_end(cycle, self.measuring)
        if self.watchdog is not None:
            self.watchdog.check(self, cycle)
        t6 = perf_counter()
        self.profiler.record_step(
            t1 - t0, t2 - t1, t3 - t2, t4 - t3, t5 - t4, t6 - t5
        )
        self.cycle = cycle + 1

    def run_cycles(self, n: int) -> None:
        for _ in range(n):
            self.step()

    def drain(self, max_cycles: int = 1_000_000) -> None:
        """Run until every queued packet has been delivered."""
        deadline = self.cycle + max_cycles
        while not self.idle():
            if self.cycle >= deadline:
                raise RuntimeError(
                    f"network failed to drain within {max_cycles} cycles "
                    f"({self.packets_in_flight} packets stuck) -- possible "
                    "deadlock or overload"
                )
            self.step()
        # Flush in-flight credit returns so the network is fully quiesced.
        while self._credits or self._arrivals or (
            self._ck is not None and self._ck.pending_events()
        ):
            self.step()

    # -- cycle phases -------------------------------------------------------------
    def _deliver_arrival_events(
        self, events: List[Tuple[int, int, int, Flit]], cycle: int
    ) -> None:
        routers = self.routers
        wake = self._active_routers.add
        faults = self.faults
        if faults is None:
            for router_id, port, vc, flit in events:
                routers[router_id].write_flit(port, vc, flit, cycle)
                wake(router_id)
            return
        dead_routers = faults.dead_routers
        dead_ports = faults.dead_ports
        for router_id, port, vc, flit in events:
            if router_id in dead_routers or (router_id, port) in dead_ports:
                # The channel died under the flit mid-flight (its packet
                # was purged by the injector when the fault applied).
                continue
            routers[router_id].write_flit(port, vc, flit, cycle)
            wake(router_id)

    def _deliver_credit_events(
        self, events: List[Tuple[int, int, int, bool]], cycle: int
    ) -> None:
        # No router wake-up needed here: credits and VC releases only
        # change the eligibility of flits the receiving router already
        # buffers, and a router holding flits is active by invariant.
        obs = self.obs if self._tracing else None
        routers = self.routers
        for router_id, port, vc, release in events:
            router = routers[router_id]
            router.return_credit(port, vc)
            if release:
                router.out_vc_owner[port][vc] = None
            if obs is not None:
                obs.on_credit_return(router_id, port, vc, cycle)

    def _inject(self, cycle: int, nodes: Optional[Iterable[int]]) -> None:
        """Inject source-queue flits into local input buffers.

        ``nodes=None`` is the event-driven mode: only active sources are
        visited (in ascending node order, matching a full scan) and
        drained ones are pruned.  Passing an explicit node range is the
        naive mode -- every node is visited, nothing is pruned.
        """
        active_sources = self._active_sources
        prune = nodes is None
        if prune:
            nodes = sorted(active_sources)
        sources = self.sources
        obs = self.obs if self._tracing else None
        faults = self.faults
        node_router = self._node_router
        node_port = self._node_port
        node_lanes = self._node_lanes
        wake = self._active_routers.add
        for node in nodes:
            source = sources[node]
            # ``mid_packet`` inlined (next_flit < len(flits)) on this path.
            if source.next_flit >= len(source.flits) and not source.queue:
                if prune:
                    active_sources.discard(node)
                continue
            if (
                faults is not None
                and self._node_router_id[node] in faults.dead_routers
            ):
                continue  # the node fell off the network with its router
            router = node_router[node]
            port = node_port[node]
            lanes = node_lanes[node]
            budget = lanes
            while budget > 0:
                if source.next_flit >= len(source.flits):
                    if not source.queue:
                        break
                    vc = self._pick_injection_vc(router, port)
                    if vc is None:
                        break
                    packet = source.queue.popleft()
                    source.flits = packet.make_flits()
                    source.next_flit = 0
                    source.vc = vc
                    packet.injected_at = cycle
                    packet.min_lanes = lanes
                if router.free_slots(port, source.vc) == 0:
                    break
                flit = source.flits[source.next_flit]
                router.write_flit(port, source.vc, flit, cycle)
                wake(router.router_id)
                source.next_flit += 1
                budget -= 1
                if obs is not None:
                    obs.on_flit_injected(
                        node, router.router_id, port, source.vc, flit, cycle
                    )
                if source.next_flit >= len(source.flits):
                    source.flits = []
                    source.next_flit = 0
                    source.vc = None

    def _pick_injection_vc(self, router: Router, port: int) -> Optional[int]:
        """Pick a local input VC for a new packet.

        The network interface is allowed to stream packets back-to-back
        into a VC FIFO (an idealized NI with per-packet segmentation), so
        a busy VC with free slots is acceptable; an idle VC is preferred.
        Inter-router VC reallocation stays conservative -- only the
        injection path is relaxed, else low-VC routers starve their own
        sources.
        """
        fallback, fallback_free = None, 0
        faults = self.faults
        for vc in range(router.config.num_vcs):
            if (
                faults is not None
                and (router.router_id, port, vc) in faults.stuck_vcs
            ):
                continue  # do not feed a stuck VC
            free = router.free_slots(port, vc)
            if free == 0:
                continue
            if router.input_vc_free(port, vc):
                return vc
            if free > fallback_free:
                fallback, fallback_free = vc, free
        return fallback

    def _transport(
        self, router: Router, grants: List[Grant], cycle: int
    ) -> None:
        rid = router.router_id
        obs = self.obs if self._tracing else None
        measuring = self.measuring
        track_links = measuring or obs is not None
        faults = self.faults
        merging = self._merging
        is_ejection = router.is_ejection
        out_links = router.out_links
        upstream_ports = self._upstream[rid]
        arrivals = self._arrivals
        credits = self._credits
        credit_when = cycle + self._credit_delay
        stats = self._stats
        used_ports = set() if track_links else None
        for grant in grants:
            router.commit_grant(grant)
            if obs is not None:
                obs.on_switch_grant(rid, grant, cycle)
            flit = grant.flit
            packet = flit.packet
            out_port = grant.out_port
            if is_ejection[out_port]:
                if flit.is_head and packet.min_lanes is not None:
                    eject_lanes = router._local_lanes
                    if eject_lanes < packet.min_lanes:
                        packet.min_lanes = eject_lanes
                if obs is not None:
                    obs.on_flit_ejected(rid, out_port, flit, cycle)
                if flit.is_tail:
                    self._complete_packet(packet, cycle)
            else:
                link = out_links[out_port]
                if flit.is_head:
                    packet.hops += 1
                    if packet.min_lanes is not None:
                        lanes = link.lanes if merging else 1
                        if (
                            faults is not None
                            and (rid, out_port) in faults.degraded_ports
                        ):
                            lanes = 1
                        if lanes < packet.min_lanes:
                            packet.min_lanes = lanes
                if (
                    faults is not None
                    and (rid, out_port) in faults.flaky_ports
                ):
                    packet.corrupted = True  # bit-flip fault on this channel
                when = cycle + link.delay
                bucket = arrivals.get(when)
                if bucket is None:
                    bucket = arrivals[when] = []
                bucket.append(
                    (link.dst_router, link.dst_port, grant.out_vc, flit)
                )
                if obs is not None:
                    obs.on_link_traversal(
                        rid, out_port, link.dst_router, link.dst_port,
                        flit, cycle,
                    )
                if track_links:
                    used_ports.add(out_port)
                    if measuring:
                        key = (rid, out_port)
                        stats.link_flits[key] = (
                            stats.link_flits.get(key, 0) + 1
                        )
            # Credit for the freed input slot returns to the upstream router
            # (injection from the local node needs none: the source reads
            # buffer occupancy directly).
            if not is_ejection[grant.in_port]:
                upstream = upstream_ports[grant.in_port]
                if upstream is not None:
                    bucket = credits.get(credit_when)
                    if bucket is None:
                        bucket = credits[credit_when] = []
                    # A tail pop also releases the VC for a new packet
                    # (conservative VC reallocation).
                    bucket.append(
                        (upstream[0], upstream[1], grant.in_vc, flit.is_tail)
                    )
        if used_ports:
            for port in used_ports:
                if measuring:
                    key = (rid, port)
                    stats.link_busy_cycles[key] = (
                        stats.link_busy_cycles.get(key, 0) + 1
                    )
                if obs is not None:
                    obs.on_link_busy(rid, port, cycle)

    def _complete_packet(self, packet: Packet, cycle: int) -> None:
        packet.received_at = cycle
        self.packets_in_flight -= 1
        self.total_delivered += 1
        if packet.corrupted:
            # A bit-flip fault mangled this packet in transit: the
            # destination NI discards it, so it contributes to no stats;
            # the ``on_delivery`` callback still fires so the NI can
            # schedule its retransmission.
            if self.on_delivery is not None:
                self.on_delivery(packet, cycle)
            return
        if self.measuring:
            self._stats.window_packet_deliveries += 1
            self._stats.window_flit_deliveries += packet.num_flits
        if packet.measured:
            self._stats.record_packet(self._latency_record(packet))
        if self.obs is not None:
            self.obs.on_packet_delivered(packet, cycle)
        if self.on_delivery is not None:
            self.on_delivery(packet, cycle)

    def _latency_record(self, packet: Packet) -> LatencyRecord:
        stages = self.config.router_pipeline_stages
        hop_cost = (stages - 1) + self.config.link_delay
        lanes = packet.min_lanes or 1
        serialization = math.ceil((packet.num_flits - 1) / lanes)
        transfer = hop_cost * packet.hops + (stages - 1) + serialization
        total = packet.received_at - packet.created_at
        queuing = packet.injected_at - packet.created_at
        blocking = total - queuing - transfer
        if blocking < 0:
            # A packet can (slightly) beat the analytic zero-load bound:
            # when contention delays the head, trailing flits bunch up and
            # later wide links carry them two per cycle, recovering
            # serialization the bound charged to the narrowest link.
            # Attribute the whole in-network time to transfer then.
            minimum = hop_cost * packet.hops + (stages - 1)
            if total - queuing < minimum:
                raise RuntimeError(
                    f"packet {packet.packet_id} beat the per-hop pipeline "
                    f"bound ({total - queuing} < {minimum} cycles); the "
                    "router model violated its own timing"
                )
            transfer = total - queuing
            blocking = 0
        return LatencyRecord(
            packet_id=packet.packet_id,
            src=packet.src,
            dst=packet.dst,
            num_flits=packet.num_flits,
            hops=packet.hops,
            total=total,
            queuing=queuing,
            transfer=transfer,
            blocking=blocking,
            packet_class=packet.packet_class,
        )

    # -- fault recovery ------------------------------------------------------------
    def _element_alive(self, router_id: int, port: int) -> bool:
        faults = self.faults
        if faults is None:
            return True
        return (
            router_id not in faults.dead_routers
            and (router_id, port) not in faults.dead_ports
        )

    def purge_packet(self, packet: Packet) -> bool:
        """Remove every trace of ``packet`` from the network.

        Flits are deleted from source queues, router buffers and
        in-flight link events; credits the packet consumed are restored
        directly at every *live* upstream router (dead elements are
        reconciled by the fault exemption in the invariant checker) and
        its downstream VC claims are released.  Used by the fault
        injector for packets damaged by a kill, and by the NI
        retransmission timeout as recovery from wedged wormholes.

        Returns ``True`` when any trace was found (and one in-flight
        packet was therefore retired); a second purge of the same packet
        is a no-op.
        """
        self._deactivate_ck()
        self._deactivate_soa()
        pid = packet.packet_id
        topo = self.topology
        found = False

        source = self.sources[packet.src]
        if packet in source.queue:
            source.queue.remove(packet)
            found = True
        if source.flits and source.flits[0].packet is packet:
            source.flits = []
            source.next_flit = 0
            source.vc = None
            found = True

        for router in self.routers:
            rid = router.router_id
            for (port, vc) in list(router._active):
                state = router._vc_states[port][vc]
                before = len(state.queue)
                if any(f.packet is packet for f in state.queue):
                    kept = [f for f in state.queue if f.packet is not packet]
                    state.queue.clear()
                    state.queue.extend(kept)
                removed = before - len(state.queue)
                if removed:
                    found = True
                    router.occupied_flits -= removed
                    if not state.queue and router._active.pop(
                        (port, vc), None
                    ):
                        router._port_active[port] -= 1
                    if not topo.is_local_port(rid, port):
                        upstream = topo.neighbor(rid, port)
                        if upstream is not None and self._element_alive(
                            *upstream
                        ):
                            up_router, up_port = upstream
                            for _ in range(removed):
                                self.routers[up_router].return_credit(
                                    up_port, vc
                                )
            # Reset *every* VC state the packet owns, not just the active
            # (non-empty) ones scanned above: a mid-wormhole input VC whose
            # flits have all been forwarded sits empty but still carries
            # the packet's id, route and downstream claim.  Retransmission
            # reuses packet ids, so a stale state would make the resent
            # packet skip RC/VA and stream onto a VC it no longer owns.
            for port in range(router.num_ports):
                for vc in range(router.config.num_vcs):
                    if router._vc_states[port][vc].packet_id == pid:
                        router._vc_states[port][vc].reset_packet()
                        found = True

        for when in list(self._arrivals):
            events = self._arrivals[when]
            kept_events = []
            for event in events:
                router_id, port, vc, flit = event
                if flit.packet is not packet:
                    kept_events.append(event)
                    continue
                found = True
                upstream = topo.neighbor(router_id, port)
                if upstream is not None and self._element_alive(*upstream):
                    self.routers[upstream[0]].return_credit(upstream[1], vc)
            if kept_events:
                self._arrivals[when] = kept_events
            else:
                del self._arrivals[when]

        # Release the packet's downstream VC claims, and defuse any
        # in-flight release events aimed at those claims so they cannot
        # free a VC a *new* packet wins in the meantime.
        released = set()
        for router in self.routers:
            for port in range(router.num_ports):
                owners = router.out_vc_owner[port]
                for vc, owner in enumerate(owners):
                    if owner == pid:
                        owners[vc] = None
                        released.add((router.router_id, port, vc))
        if released:
            for when, events in self._credits.items():
                self._credits[when] = [
                    (rid, port, vc, release and (rid, port, vc) not in released)
                    for rid, port, vc, release in events
                ]

        if found:
            self.packets_in_flight -= 1
        return found

    def reconcile_channel_credits(self, revived) -> None:
        """Re-derive upstream credit counts for just-repaired channels.

        While an element is dead, purges deliberately skip restoring
        credits at dead routers/ports (the invariant checker exempts
        dead channels instead), so a channel comes back from a repair
        with its upstream counter short by every flit discarded during
        the outage.  For each revived ``(router, port)`` downstream
        endpoint, recompute ``held = depth - buffered - on_link -
        returning`` from the actual queues and in-flight events so the
        repaired channel runs at full credit again.
        """
        arrivals: Dict[Tuple[int, int, int], int] = {}
        for events in self._arrivals.values():
            for router_id, port, vc, _flit in events:
                key = (router_id, port, vc)
                arrivals[key] = arrivals.get(key, 0) + 1
        returning: Dict[Tuple[int, int, int], int] = {}
        for events in self._credits.values():
            for router_id, port, vc, _release in events:
                key = (router_id, port, vc)
                returning[key] = returning.get(key, 0) + 1
        for rid, port in revived:
            if not self._element_alive(rid, port):
                continue  # still dead via an overlapping fault
            upstream = self.topology.neighbor(rid, port)
            if upstream is None or not self._element_alive(*upstream):
                continue
            up_router = self.routers[upstream[0]]
            sport = upstream[1]
            depth = up_router._credit_ceiling[sport]
            down_states = self.routers[rid]._vc_states[port]
            for vc in range(up_router.out_vc_count[sport]):
                up_router.out_credits[sport][vc] = (
                    depth
                    - len(down_states[vc].queue)
                    - arrivals.get((rid, port, vc), 0)
                    - returning.get((upstream[0], sport, vc), 0)
                )

    def report_packet_lost(self, packet: Packet, reason: str, cycle: int) -> None:
        """Tell the recovery/observation layers a fault purged ``packet``."""
        if self.obs is not None:
            self.obs.on_packet_lost(packet, reason, cycle)
        if self.on_loss is not None:
            self.on_loss(packet, reason, cycle)

    # -- diagnostics ---------------------------------------------------------------
    def total_buffered_flits(self) -> int:
        if self._ck is not None:
            return self._ck.total_buffered_flits()
        if self._soa is not None:
            return self._soa.total_buffered_flits()
        return sum(router.occupied_flits for router in self.routers)

    def describe(self) -> str:
        """One-line human description of the network build."""
        kinds: Dict[str, int] = {}
        for cfg in self.router_configs.values():
            kinds[cfg.kind] = kinds.get(cfg.kind, 0) + 1
        kind_text = ", ".join(f"{v} {k}" for k, v in sorted(kinds.items()))
        return (
            f"{type(self.topology).__name__} with {self.topology.num_routers} "
            f"routers ({kind_text}), flit width {self.flit_width} b, "
            f"{self.config.frequency_ghz:.2f} GHz"
        )
