"""Flits and packets.

A packet is the unit of routing (one cache line or one address/control
message); a flit is the unit of link-level flow control.  Wormhole switching
sends the head flit first, which acquires a path of virtual channels, and the
body/tail flits follow on the same virtual channels.

The paper's packet formats (Section 4):

* a data packet is 1024 bits (one cache line) and decomposes into
  ``ceil(1024 / flit_width)`` flits -- 6 flits at the baseline 192-bit flit
  width, 8 flits at the HeteroNoC 128-bit flit width;
* an address packet is a single flit in every configuration.

Timestamps recorded on the packet let :mod:`repro.noc.stats` decompose
end-to-end latency into queuing (waiting at the source before the head flit
enters the router), transfer (the zero-load component: pipeline depth x hops
plus serialization) and blocking (everything else: contention stalls inside
the network).
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

DATA_PACKET_BITS = 1024
"""Payload of a data packet: one 128-byte cache line transfers as 1024 bits
in the paper's flit accounting (Section 4)."""

_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Restart the global packet-id counter at zero.

    Packet ids are process-global, so two otherwise-identical simulations
    observe different ids unless the counter is rewound first.  The sweep
    engine (:mod:`repro.exec`) calls this before executing each point so
    that results are bit-identical whether points run serially in one
    process or fan out across workers.
    """
    global _packet_ids
    _packet_ids = itertools.count()


def packet_id_marker() -> int:
    """The next packet id that would be issued, without consuming it.

    ``itertools.count`` cannot be peeked, so the counter is advanced once
    and replaced by a fresh count starting at the observed value -- an
    exact no-op for every later ``next()``.  Checkpointing
    (:mod:`repro.noc.snapshot`) records this marker so a restored
    simulation issues the same ids the uninterrupted one would.
    """
    global _packet_ids
    next_id = next(_packet_ids)
    _packet_ids = itertools.count(next_id)
    return next_id


def seed_packet_ids(next_id: int) -> None:
    """Make ``next_id`` the next packet id issued (checkpoint restore)."""
    global _packet_ids
    if next_id < 0:
        raise ValueError(f"next_id must be >= 0, got {next_id}")
    _packet_ids = itertools.count(next_id)


class FlitType(enum.Enum):
    """Position of a flit inside its packet."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    HEAD_TAIL = "head_tail"  # single-flit packet (e.g. an address packet)

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


_flits_per_packet_cache: dict = {}


def flits_per_packet(payload_bits: int, flit_width_bits: int) -> int:
    """Number of flits needed to carry ``payload_bits``.

    Results are memoized per ``(payload, width)`` pair: the simulator asks
    this question once per packet, always with the same handful of sizes,
    so the cache turns a ``ceil`` + validation into one dict probe on the
    packet-creation hot path.

    >>> flits_per_packet(1024, 192)
    6
    >>> flits_per_packet(1024, 128)
    8
    >>> flits_per_packet(64, 192)
    1
    """
    key = (payload_bits, flit_width_bits)
    cached = _flits_per_packet_cache.get(key)
    if cached is not None:
        return cached
    if payload_bits <= 0:
        raise ValueError(f"payload_bits must be positive, got {payload_bits}")
    if flit_width_bits <= 0:
        raise ValueError(
            f"flit_width_bits must be positive, got {flit_width_bits}"
        )
    result = max(1, math.ceil(payload_bits / flit_width_bits))
    _flits_per_packet_cache[key] = result
    return result


@dataclass
class Packet:
    """A routable message.

    Attributes:
        src: source node id.
        dst: destination node id.
        num_flits: packet length in flits.
        created_at: cycle the packet was handed to the source queue.
        injected_at: cycle the head flit entered the source router
            (set by the network; ``None`` until injection).
        received_at: cycle the tail flit was ejected at the destination
            (set by the network; ``None`` until delivery).
        packet_class: free-form tag used by higher layers (e.g. ``"request"``
            / ``"response"`` for the CMP model).
        payload: opaque payload carried for higher layers.
    """

    src: int
    dst: int
    num_flits: int
    created_at: int
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    packet_class: str = "data"
    payload: object = None
    injected_at: Optional[int] = None
    received_at: Optional[int] = None
    hops: int = 0
    # Routing state, managed by repro.noc.routing:
    # vc_class: dateline class for torus deadlock avoidance.
    # on_escape: True once the packet has been forced onto the escape
    # virtual channel and must finish its journey via X-Y routing.
    vc_class: int = 0
    on_escape: bool = False
    # Narrowest channel (in lanes) encountered on the path; maintained by
    # the network to compute the analytic zero-load transfer latency.
    min_lanes: Optional[int] = None
    # Whether this packet falls inside the measurement window.
    measured: bool = False
    # Set by the fault injector when a bit-flip fault mangles any of the
    # packet's flits in transit; the destination NI discards corrupted
    # arrivals and retransmits.
    corrupted: bool = False

    def __post_init__(self) -> None:
        if self.num_flits < 1:
            raise ValueError(f"num_flits must be >= 1, got {self.num_flits}")
        if self.src < 0 or self.dst < 0:
            raise ValueError(
                f"src/dst must be non-negative, got {self.src}/{self.dst}"
            )

    def make_flits(self) -> List["Flit"]:
        """Decompose the packet into its flit sequence."""
        if self.num_flits == 1:
            return [Flit(packet=self, index=0, flit_type=FlitType.HEAD_TAIL)]
        flits = [Flit(packet=self, index=0, flit_type=FlitType.HEAD)]
        flits.extend(
            Flit(packet=self, index=i, flit_type=FlitType.BODY)
            for i in range(1, self.num_flits - 1)
        )
        flits.append(
            Flit(
                packet=self,
                index=self.num_flits - 1,
                flit_type=FlitType.TAIL,
            )
        )
        return flits

    @property
    def latency(self) -> int:
        """End-to-end latency in cycles (creation to tail ejection)."""
        if self.received_at is None:
            raise ValueError("packet has not been delivered yet")
        return self.received_at - self.created_at

    @property
    def queuing_latency(self) -> int:
        """Cycles the packet waited in the source queue before injection."""
        if self.injected_at is None:
            raise ValueError("packet has not been injected yet")
        return self.injected_at - self.created_at


class Flit:
    """One flow-control unit of a packet.

    A plain ``__slots__`` class rather than a dataclass: flits are the
    highest-volume objects in the simulator, and ``is_head``/``is_tail``
    are consulted on every switch traversal, so both are precomputed as
    plain attributes at construction instead of going through the
    :class:`FlitType` properties per access.
    """

    __slots__ = ("packet", "index", "flit_type", "ready_at",
                 "is_head", "is_tail")

    def __init__(
        self,
        packet: Packet,
        index: int,
        flit_type: FlitType,
        ready_at: int = 0,
    ) -> None:
        self.packet = packet
        self.index = index
        self.flit_type = flit_type
        # Cycle at which the flit becomes eligible for switch allocation in
        # the router currently buffering it (the first pipeline stage).
        self.ready_at = ready_at
        self.is_head = (
            flit_type is FlitType.HEAD or flit_type is FlitType.HEAD_TAIL
        )
        self.is_tail = (
            flit_type is FlitType.TAIL or flit_type is FlitType.HEAD_TAIL
        )

    @property
    def dst(self) -> int:
        return self.packet.dst

    @property
    def src(self) -> int:
        return self.packet.src

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Flit(pkt={self.packet.packet_id}, idx={self.index}, "
            f"{self.flit_type.value}, {self.src}->{self.dst})"
        )


def split_into_packets(
    payload_bits: int, flit_width_bits: int, src: int, dst: int, cycle: int
) -> Tuple[Packet, int]:
    """Build a single packet carrying ``payload_bits`` and report flit count.

    Convenience used by traffic generators; returns ``(packet, num_flits)``.
    """
    n = flits_per_packet(payload_bits, flit_width_bits)
    return Packet(src=src, dst=dst, num_flits=n, created_at=cycle), n
