"""Structure-of-arrays batch cycle kernel.

The third cycle kernel (the fastest *pure-Python* one — the compiled
``c`` kernel in :mod:`repro.noc.ckernel` runs the same walk over these
arrays natively), selected with ``NetworkConfig(kernel="soa")`` or
``REPRO_KERNEL=soa``.  Where the
event-driven kernel walks :class:`~repro.noc.router.Router` objects and
their per-VC ``_VCState`` records, this kernel flattens the entire
router microarchitecture into parallel arrays and bitmasks:

* per-lane scalar state -- the head packet id, routed output port and
  allocated downstream VC of every ``(router, port, vc)`` input lane --
  lives in flat lists indexed by ``(router * P + port) * V + vc``;
* per-port virtual-channel *bitmasks* (occupied lanes, allocated lanes,
  credit-available downstream VCs) turn the switch-allocation
  eligibility scan into a handful of integer operations, and round-robin
  arbitration into a rotate-and-count-trailing-zeros;
* the active-router and active-port sets are single integers walked in
  ascending bit order, replacing the event kernel's per-cycle
  ``sorted(set)``;
* routing and VC-candidate lookups come from the precomputed tensors of
  :meth:`repro.noc.routing.Routing.build_route_tables` (assembled here
  with numpy and flattened for O(1) scalar access);
* a per-lane *needs-VA* flag, maintained at every head-of-queue change,
  lets the kernel skip the route-computation/VC-allocation walk for
  routers whose lanes are all mid-wormhole -- the event kernel revisits
  every active lane every cycle;
* per-router micro-event counters accumulate in flat delta arrays and
  flush into the shared :class:`~repro.noc.stats.RouterActivity`
  objects on :meth:`sync`/:meth:`flush_activity` (measurement
  boundaries flush automatically, so activity-derived results never
  observe a stale counter).

The flit queues themselves, the :class:`~repro.noc.flit.Flit` and
:class:`~repro.noc.flit.Packet` objects, the source-queue states, the
stats dictionaries and the event buckets are *shared* with the object
model -- the kernel mutates them in place.  Packing therefore only
snapshots scalar state out of the ``Router`` objects, and unpacking
writes the identical values back, which is what makes mid-run kernel
switches (and the per-cycle digests of the differential suite) exact.

Bit-for-bit contract: every simulation observable -- flit movements,
arbitration pointer evolution, credit counters, activity counters,
latency records, delivered-packet order -- is identical to the
event-driven and naive kernels.  ``tests/test_kernel_differential.py``
enforces this over a randomized three-way matrix, and the golden-run
suite pins byte-identical :class:`~repro.exec.point.PointResult`
payloads across all three kernels.

Fallback rules (handled by :meth:`Network.step` dispatch): the kernel
requires the precomputed route/VA tables (pure-function routing
disciplines such as X-Y and the flattened butterfly), and steps aside
for the event kernel whenever faults, observation hooks, a watchdog or
a profiler are attached -- those need per-flit callbacks or dynamic
routing that the batch datapath deliberately omits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class SoaKernel:
    """Flattened simulation state plus the batch step loop.

    Built lazily by :class:`~repro.noc.network.Network` when the soa
    kernel is requested and eligible; :meth:`sync` mirrors the flat
    state back into the ``Router`` objects at any cycle boundary.
    """

    def __init__(self, net) -> None:
        self.net = net
        topo = net.topology
        routers = net.routers
        R = topo.num_routers
        #: uniform strides: max ports / max VCs over the mesh (lanes for
        #: ports or VCs a router does not have are simply never touched).
        P = max(r.num_ports for r in routers)
        V = max(r.config.num_vcs for r in routers)
        self.R, self.P, self.V = R, P, V

        # -- static per-router tensors ----------------------------------
        self.nports = [r.num_ports for r in routers]
        self.nvcs = [r.config.num_vcs for r in routers]
        self.depth = [r.config.buffer_depth for r in routers]
        self.ej_pmask = [0] * R  # bitmask of ejection (local) ports
        self.ej_lanes = [r._local_lanes for r in routers]
        for rid, r in enumerate(routers):
            for port in range(r.num_ports):
                if r.is_ejection[port]:
                    self.ej_pmask[rid] |= 1 << port

        # Routing tensor: route_tab[rid][dst] -> out port, assembled as
        # one (R, num_nodes) numpy array then flattened to lists for
        # scalar access on the cycle loop.
        table = np.array(
            [r._route_table for r in routers], dtype=np.int64
        )
        self.route_tab: List[List[int]] = table.tolist()

        # -- per-(router, port) output-side tensors ---------------------
        RP = R * P
        self.ovc_cnt = [0] * RP   # downstream VC count (VA candidates)
        self.ceil = [0] * RP      # credit ceiling (downstream depth)
        self.slanes = [0] * RP    # static lane count of the output port
        self.linkinfo: List[Optional[Tuple[int, int, int, int]]] = [None] * RP
        self.upstream: List[Optional[Tuple[int, int]]] = [None] * RP
        self.has_wide = [False] * R
        merging = net._merging
        for rid, r in enumerate(routers):
            base = rid * P
            for port in range(r.num_ports):
                rp = base + port
                self.ovc_cnt[rp] = r.out_vc_count[port]
                self.ceil[rp] = r._credit_ceiling[port]
                self.slanes[rp] = r._static_lanes[port]
                link = r.out_links[port]
                if link is not None:
                    self.linkinfo[rp] = (
                        link.dst_router, link.dst_port, link.delay, link.lanes
                    )
                    if merging and link.lanes >= 2:
                        self.has_wide[rid] = True
                self.upstream[rp] = net._upstream[rid][port]

        # -- shared mutable structures (objects owned by the network) ---
        #: flit queues, one per lane; the *same* deque objects as
        #: ``router._vc_states[port][vc].queue`` so queue contents never
        #: need packing or unpacking.
        self.queues: List[Optional[object]] = [None] * (RP * V)
        for rid, r in enumerate(routers):
            for port in range(r.num_ports):
                lane = (rid * P + port) * V
                states = r._vc_states[port]
                for vc in range(r.config.num_vcs):
                    self.queues[lane + vc] = states[vc].queue
        self.activities = [r.activity for r in routers]

        # -- packed scalar state (filled by pack()) ---------------------
        self.st_pid = [-1] * (RP * V)    # -1 == None
        self.st_route = [-1] * (RP * V)  # -1 == None
        self.st_outvc = [-2] * (RP * V)  # -2 == None, -1 == ejection
        self.need = [0] * (RP * V)       # lane needs RC/VA processing
        self.nva = [0] * R               # needy lanes per router
        self.cred = [0] * (RP * V)
        self.owner = [-1] * (RP * V)     # -1 == None
        self.occ_mask = [0] * RP         # VCs with a non-empty queue
        self.am = [0] * RP               # VCs with an allocated out VC
        self.credok = [0] * RP           # downstream VCs with credits > 0
        self.in_next = [0] * RP
        self.out_next = [0] * RP
        self.sec_next = [0] * RP
        self.occupied = [0] * R
        self.va_off = [0] * R
        self.active_lanes: List[Dict[int, bool]] = [dict() for _ in range(R)]
        self.actmask = 0

        # -- activity counter deltas (flushed into RouterActivity) ------
        self.a_bw = [0] * R   # buffer_writes
        self.a_br = [0] * R   # buffer_reads
        self.a_xb = [0] * R   # crossbar_traversals
        self.a_rc = [0] * R   # route_computations
        self.a_va = [0] * R   # vc_allocations
        self.a_arb = [0] * R  # arbitrations
        self.a_cf = [0] * R   # arbitration_conflicts
        self.a_cs = [0] * R   # credit_stalls
        self.a_mg = [0] * R   # merged_flit_pairs
        self.a_oc = [0] * R   # occupancy_integral

        # -- reusable per-cycle scratch (avoids hot-path allocation) ----
        self._grants: List[tuple] = []
        self._bid_vc = [-1] * P
        self._bid_ports: List[int] = []
        self._obid = [0] * P
        self._out_order: List[int] = []
        self._elig_mask = [0] * P

        self.pack()

    # -- state transfer ----------------------------------------------------
    def reload_activities(self) -> None:
        """Re-fetch the RouterActivity objects and drop pending deltas
        (``reset_stats`` replaces the objects to zero the counters)."""
        self.activities = [r.activity for r in self.net.routers]
        for arr in (
            self.a_bw, self.a_br, self.a_xb, self.a_rc, self.a_va,
            self.a_arb, self.a_cf, self.a_cs, self.a_mg, self.a_oc,
        ):
            for i in range(self.R):
                arr[i] = 0

    def flush_activity(self) -> None:
        """Add the accumulated counter deltas to the shared
        RouterActivity objects and zero the delta arrays."""
        a_bw, a_br, a_xb = self.a_bw, self.a_br, self.a_xb
        a_rc, a_va, a_arb = self.a_rc, self.a_va, self.a_arb
        a_cf, a_cs, a_mg, a_oc = self.a_cf, self.a_cs, self.a_mg, self.a_oc
        for rid, act in enumerate(self.activities):
            if a_bw[rid]:
                act.buffer_writes += a_bw[rid]
                a_bw[rid] = 0
            if a_br[rid]:
                act.buffer_reads += a_br[rid]
                a_br[rid] = 0
            if a_xb[rid]:
                act.crossbar_traversals += a_xb[rid]
                a_xb[rid] = 0
            if a_rc[rid]:
                act.route_computations += a_rc[rid]
                a_rc[rid] = 0
            if a_va[rid]:
                act.vc_allocations += a_va[rid]
                a_va[rid] = 0
            if a_arb[rid]:
                act.arbitrations += a_arb[rid]
                a_arb[rid] = 0
            if a_cf[rid]:
                act.arbitration_conflicts += a_cf[rid]
                a_cf[rid] = 0
            if a_cs[rid]:
                act.credit_stalls += a_cs[rid]
                a_cs[rid] = 0
            if a_mg[rid]:
                act.merged_flit_pairs += a_mg[rid]
                a_mg[rid] = 0
            if a_oc[rid]:
                act.occupancy_integral += a_oc[rid]
                a_oc[rid] = 0

    def pack(self) -> None:
        """Snapshot scalar state out of the Router objects."""
        net = self.net
        P, V = self.P, self.V
        st_pid, st_route, st_outvc = self.st_pid, self.st_route, self.st_outvc
        need, nva = self.need, self.nva
        cred, owner = self.cred, self.owner
        occ_mask, am, credok = self.occ_mask, self.am, self.credok
        for rid, r in enumerate(net.routers):
            base = rid * P
            self.occupied[rid] = r.occupied_flits
            self.va_off[rid] = r._va_offset
            nva[rid] = 0
            allocator = r.allocator
            for port in range(r.num_ports):
                rp = base + port
                self.in_next[rp] = allocator.input_stage[port]._next
                self.out_next[rp] = allocator.output_stage[port]._next
                self.sec_next[rp] = allocator.second_output_stage[port]._next
                om = a = ck = 0
                lane = rp * V
                states = r._vc_states[port]
                credits = r.out_credits[port]
                owners = r.out_vc_owner[port]
                for vc in range(self.ovc_cnt[rp]):
                    cred[lane + vc] = credits[vc]
                    if credits[vc] > 0:
                        ck |= 1 << vc
                    ow = owners[vc]
                    owner[lane + vc] = -1 if ow is None else ow
                for vc in range(r.config.num_vcs):
                    state = states[vc]
                    pid = state.packet_id
                    st_pid[lane + vc] = -1 if pid is None else pid
                    rtp = state.route_port
                    st_route[lane + vc] = -1 if rtp is None else rtp
                    ov = state.out_vc
                    st_outvc[lane + vc] = -2 if ov is None else ov
                    if ov is not None:
                        a |= 1 << vc
                    q = state.queue
                    if q:
                        om |= 1 << vc
                        head = q[0]
                        needs = (
                            pid != head.packet.packet_id or ov is None
                        )
                        need[lane + vc] = 1 if needs else 0
                        if needs:
                            nva[rid] += 1
                    else:
                        need[lane + vc] = 0
                occ_mask[rp] = om
                am[rp] = a
                credok[rp] = ck
            active = self.active_lanes[rid]
            active.clear()
            for (port, vc) in r._active:
                active[(base + port) * V + vc] = True
        self.actmask = 0
        for rid in net._active_routers:
            self.actmask |= 1 << rid
        self.reload_activities()

    def sync(self) -> None:
        """Mirror the flat state back into the Router objects.

        Exact inverse of :meth:`pack` plus an activity flush; queue
        contents, stats, sources and event buckets are shared so only
        scalars move.
        """
        net = self.net
        P, V = self.P, self.V
        st_pid, st_route, st_outvc = self.st_pid, self.st_route, self.st_outvc
        cred, owner = self.cred, self.owner
        for rid, r in enumerate(net.routers):
            base = rid * P
            r.occupied_flits = self.occupied[rid]
            r._va_offset = self.va_off[rid]
            allocator = r.allocator
            for port in range(r.num_ports):
                rp = base + port
                allocator.input_stage[port]._next = self.in_next[rp]
                allocator.output_stage[port]._next = self.out_next[rp]
                allocator.second_output_stage[port]._next = self.sec_next[rp]
                r._port_active[port] = self.occ_mask[rp].bit_count()
                lane = rp * V
                credits = r.out_credits[port]
                owners = r.out_vc_owner[port]
                for vc in range(self.ovc_cnt[rp]):
                    credits[vc] = cred[lane + vc]
                    ow = owner[lane + vc]
                    owners[vc] = None if ow == -1 else ow
                states = r._vc_states[port]
                for vc in range(r.config.num_vcs):
                    state = states[vc]
                    pid = st_pid[lane + vc]
                    state.packet_id = None if pid == -1 else pid
                    rtp = st_route[lane + vc]
                    state.route_port = None if rtp == -1 else rtp
                    ov = st_outvc[lane + vc]
                    state.out_vc = None if ov == -2 else ov
            r._active = {
                ((lane // V) % P, lane % V): True
                for lane in self.active_lanes[rid]
            }
        net._active_routers = {
            rid for rid in range(self.R) if self.actmask >> rid & 1
        }
        self.flush_activity()

    # -- the batch cycle ---------------------------------------------------
    def step(self) -> None:
        """One clock cycle over the flattened state.

        Phase order, bucket formats and iteration orders replicate the
        event-driven kernel exactly (see ``Network.step``); every
        divergence would show in the differential suite's digests.
        """
        net = self.net
        cycle = net.cycle
        P, V = self.P, self.V
        queues = self.queues
        st_pid, st_route, st_outvc = self.st_pid, self.st_route, self.st_outvc
        need, nva = self.need, self.nva
        cred, owner = self.cred, self.owner
        occ_mask, am, credok = self.occ_mask, self.am, self.credok
        occupied = self.occupied
        active_lanes = self.active_lanes
        ej_pmask = self.ej_pmask
        route_tab = self.route_tab
        ovc_cnt = self.ovc_cnt
        depth = self.depth
        po = net.config.router_pipeline_stages - 1
        arrivals = net._arrivals
        credits_q = net._credits
        a_bw = self.a_bw

        # -- phase 1: link arrivals scheduled for this cycle ------------
        events = arrivals.pop(cycle, None)
        if events is not None:
            actmask = self.actmask
            ready = cycle + po
            for rid, port, vc, flit in events:
                rp = rid * P + port
                lane = rp * V + vc
                q = queues[lane]
                if len(q) >= depth[rid]:
                    raise RuntimeError(
                        f"buffer overflow at router {rid} "
                        f"port {port} vc {vc}: credit protocol violated"
                    )
                flit.ready_at = ready
                if not q:
                    occ_mask[rp] |= 1 << vc
                    active_lanes[rid][lane] = True
                    if st_pid[lane] != flit.packet.packet_id or (
                        st_outvc[lane] == -2
                    ):
                        if not need[lane]:
                            need[lane] = 1
                            nva[rid] += 1
                q.append(flit)
                occupied[rid] += 1
                a_bw[rid] += 1
                actmask |= 1 << rid
            self.actmask = actmask

        # -- phase 2: credit returns ------------------------------------
        events = credits_q.pop(cycle, None)
        if events is not None:
            ceil = self.ceil
            for rid, port, vc, release in events:
                rp = rid * P + port
                lane = rp * V + vc
                c = cred[lane] + 1
                if c > ceil[rp]:
                    raise RuntimeError(
                        f"credit overflow at router {rid} port {port} vc {vc}"
                    )
                cred[lane] = c
                credok[rp] |= 1 << vc
                if release:
                    owner[lane] = -1

        # -- phase 3: injection from active sources ---------------------
        active_sources = net._active_sources
        if active_sources:
            sources = net.sources
            node_rid = net._node_router_id
            node_port = net._node_port
            node_lanes = net._node_lanes
            nvcs = self.nvcs
            actmask = self.actmask
            ready = cycle + po
            for node in sorted(active_sources):
                source = sources[node]
                if source.next_flit >= len(source.flits) and not source.queue:
                    active_sources.discard(node)
                    continue
                rid = node_rid[node]
                port = node_port[node]
                lanes = node_lanes[node]
                rp = rid * P + port
                lane0 = rp * V
                cap = depth[rid]
                budget = lanes
                while budget > 0:
                    if source.next_flit >= len(source.flits):
                        if not source.queue:
                            break
                        # -- pick an injection VC (idle preferred) ------
                        vc = None
                        fallback, fallback_free = None, 0
                        for cand in range(nvcs[rid]):
                            q = queues[lane0 + cand]
                            free = cap - len(q)
                            if free == 0:
                                continue
                            if not q and st_pid[lane0 + cand] == -1:
                                vc = cand
                                break
                            if free > fallback_free:
                                fallback, fallback_free = cand, free
                        if vc is None:
                            vc = fallback
                        if vc is None:
                            break
                        packet = source.queue.popleft()
                        source.flits = packet.make_flits()
                        source.next_flit = 0
                        source.vc = vc
                        packet.injected_at = cycle
                        packet.min_lanes = lanes
                    vc = source.vc
                    lane = lane0 + vc
                    q = queues[lane]
                    if len(q) >= cap:
                        break
                    flit = source.flits[source.next_flit]
                    flit.ready_at = ready
                    if not q:
                        occ_mask[rp] |= 1 << vc
                        active_lanes[rid][lane] = True
                        if st_pid[lane] != flit.packet.packet_id or (
                            st_outvc[lane] == -2
                        ):
                            if not need[lane]:
                                need[lane] = 1
                                nva[rid] += 1
                    q.append(flit)
                    occupied[rid] += 1
                    a_bw[rid] += 1
                    actmask |= 1 << rid
                    source.next_flit += 1
                    budget -= 1
                    if source.next_flit >= len(source.flits):
                        source.flits = []
                        source.next_flit = 0
                        source.vc = None
            self.actmask = actmask

        # -- phases 4+5: RC/VA, switch allocation, traversal ------------
        # Routers are walked in ascending id order (the bitmask is the
        # sorted active set); drained routers are pruned exactly as the
        # event kernel prunes them.  VA for a router completes before
        # its SA, and no same-cycle state crosses routers (arrivals and
        # credits travel through the future-cycle buckets), so fusing
        # the phases per router is bit-identical to the two-pass walk.
        measuring = net.measuring
        in_next, out_next, sec_next = self.in_next, self.out_next, self.sec_next
        nports, nvcs = self.nports, self.nvcs
        va_off = self.va_off
        slanes, linkinfo, upstream = self.slanes, self.linkinfo, self.upstream
        merging = net._merging
        cd = net._credit_delay
        grants = self._grants
        bid_vc = self._bid_vc
        bid_ports = self._bid_ports
        obid = self._obid
        out_order = self._out_order
        elig_mask = self._elig_mask
        stats = net._stats
        link_flits = stats.link_flits
        ej_lanes = self.ej_lanes
        a_br, a_xb, a_rc = self.a_br, self.a_xb, self.a_rc
        a_va, a_arb, a_cf = self.a_va, self.a_arb, self.a_cf
        a_cs, a_mg, a_oc = self.a_cs, self.a_mg, self.a_oc
        complete = net._complete_packet
        m = self.actmask
        while m:
            low = m & -m
            m ^= low
            rid = low.bit_length() - 1
            if not occupied[rid]:
                self.actmask ^= low
                continue
            base = rid * P
            ejp = ej_pmask[rid]
            lanes_dict = active_lanes[rid]

            # ---- RC + VC allocation (needy lanes only) ----------------
            off = va_off[rid]
            va_off[rid] = off + 1
            needy = nva[rid]
            if needy:
                if needy == 1:
                    # A single needy lane allocates identically wherever
                    # the rotation starts: non-needy lanes neither read
                    # nor write allocation state.  Skip the list build.
                    order = ()
                    for lane in lanes_dict:
                        if need[lane]:
                            order = (lane,)
                            break
                else:
                    offset = off % len(lanes_dict)
                    order = list(lanes_dict)
                    if offset:
                        order = order[offset:] + order[:offset]
                rt = route_tab[rid]
                for lane in order:
                    if not need[lane]:
                        continue
                    q = queues[lane]
                    if not q:
                        continue
                    flit = q[0]
                    packet = flit.packet
                    pid = packet.packet_id
                    if st_pid[lane] != pid:
                        if not flit.is_head:
                            raise RuntimeError(
                                f"wormhole violation at router {rid}: "
                                f"body flit of packet {pid} at queue "
                                "head without its head flit"
                            )
                        st_pid[lane] = pid
                        st_route[lane] = rt[packet.dst]
                        st_outvc[lane] = -2
                        a_rc[rid] += 1
                    if st_outvc[lane] != -2 or flit.ready_at > cycle:
                        continue
                    op = st_route[lane]
                    if ejp >> op & 1:
                        st_outvc[lane] = -1
                        am[lane // V] |= 1 << (lane % V)
                        need[lane] = 0
                        nva[rid] -= 1
                        continue
                    if not flit.is_head:
                        continue
                    rp2 = base + op
                    lane2 = rp2 * V
                    for cvc in range(ovc_cnt[rp2]):
                        if owner[lane2 + cvc] == -1:
                            owner[lane2 + cvc] = pid
                            st_outvc[lane] = cvc
                            am[lane // V] |= 1 << (lane % V)
                            a_va[rid] += 1
                            need[lane] = 0
                            nva[rid] -= 1
                            break

            # ---- switch allocation ------------------------------------
            out_order.clear()
            bid_ports.clear()
            np_ = nports[rid]
            nv = nvcs[rid]
            wide = self.has_wide[rid]
            for port in range(np_):
                rp = base + port
                em = occ_mask[rp] & am[rp]
                if not em:
                    continue
                lane = rp * V
                embit = 0
                necount = 0
                mm = em
                while mm:
                    lowv = mm & -mm
                    mm ^= lowv
                    vc = lowv.bit_length() - 1
                    if queues[lane + vc][0].ready_at > cycle:
                        continue
                    op = st_route[lane + vc]
                    if ejp >> op & 1:
                        embit |= lowv
                        necount += 1
                    elif credok[base + op] >> st_outvc[lane + vc] & 1:
                        embit |= lowv
                        necount += 1
                    else:
                        a_cs[rid] += 1
                if not embit:
                    continue
                if necount == 1:
                    bid = embit.bit_length() - 1
                    nxt = bid + 1
                    in_next[rp] = nxt if nxt < nv else 0
                else:
                    nxt = in_next[rp]
                    r = ((embit >> nxt) | (embit << (nv - nxt))) & (
                        (1 << nv) - 1
                    )
                    bid = (nxt + (r & -r).bit_length() - 1) % nv
                    nxt = bid + 1
                    in_next[rp] = nxt if nxt < nv else 0
                    a_cf[rid] += necount - 1
                a_arb[rid] += 1
                bid_vc[port] = bid
                bid_ports.append(port)
                if wide:
                    elig_mask[port] = embit
                op = st_route[lane + bid]
                if not obid[op]:
                    out_order.append(op)
                obid[op] |= 1 << port
            if out_order:
                grants.clear()
                for op in out_order:
                    m2 = obid[op]
                    obid[op] = 0
                    rpo = base + op
                    if not (m2 & (m2 - 1)):
                        wp = m2.bit_length() - 1
                        nxt = wp + 1
                        out_next[rpo] = nxt if nxt < np_ else 0
                    else:
                        nxt = out_next[rpo]
                        r = ((m2 >> nxt) | (m2 << (np_ - nxt))) & (
                            (1 << np_) - 1
                        )
                        wp = (nxt + (r & -r).bit_length() - 1) % np_
                        nxt = wp + 1
                        out_next[rpo] = nxt if nxt < np_ else 0
                        a_cf[rid] += m2.bit_count() - 1
                    a_arb[rid] += 1
                    wvc = bid_vc[wp]
                    lane = (base + wp) * V + wvc
                    q1 = queues[lane]
                    is_ej = ejp >> op & 1
                    gov = -1 if is_ej else st_outvc[lane]
                    grants.append((wp, wvc, q1[0], op, gov))
                    if not merging or slanes[rpo] < 2:
                        continue
                    # ---- second parallel arbiter (wide output) --------
                    second = None
                    if len(q1) > 1:
                        nxt_f = q1[1]
                        if (
                            nxt_f.packet.packet_id == st_pid[lane]
                            and nxt_f.ready_at <= cycle
                        ):
                            if not is_ej and cred[rpo * V + gov] >= 2:
                                second = (wp, wvc, nxt_f, op, gov)
                            elif is_ej:
                                second = (wp, wvc, nxt_f, op, -1)
                    if second is None:
                        cand: Dict[int, int] = {}
                        cm = elig_mask[wp] & ~(1 << wvc)
                        lane0 = (base + wp) * V
                        while cm:
                            lowv = cm & -cm
                            cm ^= lowv
                            vc = lowv.bit_length() - 1
                            if st_route[lane0 + vc] == op:
                                cand[wp] = vc
                                break
                        for p2 in bid_ports:
                            if p2 == wp:
                                continue
                            vcb = bid_vc[p2]
                            if st_route[(base + p2) * V + vcb] == op:
                                if p2 not in cand:
                                    cand[p2] = vcb
                        if cand:
                            if len(cand) == 1:
                                cp = next(iter(cand))
                                nxt = cp + 1
                                sec_next[rpo] = nxt if nxt < np_ else 0
                            else:
                                m3 = 0
                                for p2 in cand:
                                    m3 |= 1 << p2
                                nxt = sec_next[rpo]
                                r = ((m3 >> nxt) | (m3 << (np_ - nxt))) & (
                                    (1 << np_) - 1
                                )
                                cp = (nxt + (r & -r).bit_length() - 1) % np_
                                nxt = cp + 1
                                sec_next[rpo] = nxt if nxt < np_ else 0
                            a_arb[rid] += 1
                            cvc = cand[cp]
                            lane2 = (base + cp) * V + cvc
                            second = (
                                cp, cvc, queues[lane2][0], op,
                                -1 if is_ej else st_outvc[lane2],
                            )
                    if second is not None:
                        grants.append(second)
                        a_mg[rid] += 1

                # ---- switch traversal ---------------------------------
                used_mask = 0
                for ip, ivc, flit, op, gov in grants:
                    rp_in = base + ip
                    lane = rp_in * V + ivc
                    q = queues[lane]
                    popped = q.popleft()
                    if popped is not flit:
                        raise RuntimeError(
                            "switch traversal popped an unexpected flit"
                        )
                    occupied[rid] -= 1
                    a_br[rid] += 1
                    a_xb[rid] += 1
                    if not q:
                        occ_mask[rp_in] &= ~(1 << ivc)
                        del lanes_dict[lane]
                    if gov >= 0:
                        cidx = (base + op) * V + gov
                        c = cred[cidx] - 1
                        cred[cidx] = c
                        if not c:
                            credok[base + op] &= ~(1 << gov)
                        elif c < 0:
                            raise RuntimeError(
                                f"negative credits at router {rid} "
                                f"port {op} vc {gov}"
                            )
                    packet = flit.packet
                    is_tail = flit.is_tail
                    if ejp >> op & 1:
                        if flit.is_head and packet.min_lanes is not None:
                            el = ej_lanes[rid]
                            if el < packet.min_lanes:
                                packet.min_lanes = el
                        if is_tail:
                            complete(packet, cycle)
                    else:
                        drid, dport, delay, llanes = linkinfo[base + op]
                        if flit.is_head:
                            packet.hops += 1
                            if packet.min_lanes is not None:
                                width = llanes if merging else 1
                                if width < packet.min_lanes:
                                    packet.min_lanes = width
                        when = cycle + delay
                        bucket = arrivals.get(when)
                        if bucket is None:
                            bucket = arrivals[when] = []
                        bucket.append((drid, dport, gov, flit))
                        if measuring:
                            used_mask |= 1 << op
                            key = (rid, op)
                            link_flits[key] = link_flits.get(key, 0) + 1
                    if is_tail:
                        st_pid[lane] = -1
                        st_route[lane] = -1
                        st_outvc[lane] = -2
                        am[rp_in] &= ~(1 << ivc)
                        if q and not need[lane]:
                            need[lane] = 1
                            nva[rid] += 1
                    if not (ejp >> ip & 1):
                        up = upstream[rp_in]
                        if up is not None:
                            when = cycle + cd
                            bucket = credits_q.get(when)
                            if bucket is None:
                                bucket = credits_q[when] = []
                            bucket.append((up[0], up[1], ivc, is_tail))
                if used_mask:
                    link_busy = stats.link_busy_cycles
                    while used_mask:
                        lowp = used_mask & -used_mask
                        used_mask ^= lowp
                        key = (rid, lowp.bit_length() - 1)
                        link_busy[key] = link_busy.get(key, 0) + 1
            # Occupancy after this router's own traversal equals the
            # end-of-walk value: no other router mutates it this cycle.
            if measuring:
                a_oc[rid] += occupied[rid]

        # -- phase 6: measurement bookkeeping ---------------------------
        if measuring:
            stats.measured_cycles += 1

        net.cycle = cycle + 1

    # -- diagnostics -------------------------------------------------------
    def total_buffered_flits(self) -> int:
        return sum(self.occupied)
