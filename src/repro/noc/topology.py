"""Network topologies.

Every topology maps *nodes* (cores / cache banks / memory controllers) onto
*routers* and describes the channel graph between routers.  Ports are small
integers local to a router; a port index serves both the input and output
role toward the same neighbour (the usual full-duplex channel pair).

Topologies implemented (all used by the paper):

* :class:`Mesh` -- the N x N 2-D mesh, the paper's primary platform.
* :class:`Torus` -- edge-symmetric comparison network (Section 5.1.1).
* :class:`ConcentratedMesh` -- k x k routers with a concentration degree
  (4 nodes per router in Figure 2a).
* :class:`FlattenedButterfly` -- 64 nodes on 16 fully row/column-connected
  routers (Figure 2b, after Kim/Dally/Abts).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

Channel = Tuple[int, int, int, int]
"""A directed channel: (src_router, src_port, dst_router, dst_port)."""

# Canonical direction port indices for mesh-like topologies (after the
# local ports).  Mesh and torus have one local port, so LOCAL == 0 and the
# directions are 1..4.
NORTH, EAST, SOUTH, WEST = range(4)
DIRECTION_NAMES = {NORTH: "north", EAST: "east", SOUTH: "south", WEST: "west"}


class Topology:
    """Base class: the router/channel graph and the node->router mapping."""

    #: number of terminal nodes attached to the network
    num_nodes: int
    #: number of routers
    num_routers: int

    def num_ports(self, router: int) -> int:
        """Total ports (local + network) on ``router``."""
        raise NotImplementedError

    def num_local_ports(self, router: int) -> int:
        """Ports on ``router`` that attach terminal nodes."""
        raise NotImplementedError

    def router_of_node(self, node: int) -> int:
        """Router to which terminal ``node`` attaches."""
        raise NotImplementedError

    def local_port_of_node(self, node: int) -> int:
        """Port index on ``router_of_node(node)`` that serves ``node``."""
        raise NotImplementedError

    def node_at(self, router: int, local_port: int) -> int:
        """Terminal node attached to ``router`` at ``local_port``."""
        raise NotImplementedError

    def neighbor(self, router: int, port: int) -> Optional[Tuple[int, int]]:
        """``(neighbor_router, neighbor_port)`` for a network port.

        Returns ``None`` for local ports and unconnected edge ports.
        """
        raise NotImplementedError

    def channels(self) -> Iterator[Channel]:
        """All directed router-to-router channels."""
        for router in range(self.num_routers):
            for port in range(self.num_ports(router)):
                other = self.neighbor(router, port)
                if other is not None:
                    yield (router, port, other[0], other[1])

    def is_local_port(self, router: int, port: int) -> bool:
        return port < self.num_local_ports(router)

    def bisection_channels(self) -> List[Channel]:
        """Directed channels crossing the vertical bisection, left-to-right.

        Used to check the paper's constant-bisection-bandwidth constraint.
        """
        raise NotImplementedError

    def validate(self) -> None:
        """Check channel-graph consistency (each channel has a twin)."""
        for src, sport, dst, dport in self.channels():
            back = self.neighbor(dst, dport)
            if back != (src, sport):
                raise ValueError(
                    f"asymmetric channel: {src}:{sport} -> {dst}:{dport} "
                    f"but reverse is {back}"
                )
        for node in range(self.num_nodes):
            router = self.router_of_node(node)
            port = self.local_port_of_node(node)
            if self.node_at(router, port) != node:
                raise ValueError(f"node map inconsistent for node {node}")


class Mesh(Topology):
    """N x N 2-D mesh with one terminal node per router.

    Routers are numbered row-major; node ``i`` attaches to router ``i``.
    Port 0 is the local port; ports 1..4 are north/east/south/west.
    """

    LOCAL = 0

    def __init__(self, width: int, height: Optional[int] = None) -> None:
        if width < 2:
            raise ValueError(f"mesh width must be >= 2, got {width}")
        self.width = width
        self.height = height if height is not None else width
        if self.height < 2:
            raise ValueError(f"mesh height must be >= 2, got {self.height}")
        self.num_routers = self.width * self.height
        self.num_nodes = self.num_routers

    # -- coordinates -------------------------------------------------------
    def coords(self, router: int) -> Tuple[int, int]:
        """(row, col) of ``router``."""
        return divmod(router, self.width)

    def router_at(self, row: int, col: int) -> int:
        if not (0 <= row < self.height and 0 <= col < self.width):
            raise ValueError(f"({row}, {col}) outside {self.height}x{self.width} mesh")
        return row * self.width + col

    # -- Topology interface ------------------------------------------------
    def num_ports(self, router: int) -> int:
        return 5

    def num_local_ports(self, router: int) -> int:
        return 1

    def router_of_node(self, node: int) -> int:
        return node

    def local_port_of_node(self, node: int) -> int:
        return self.LOCAL

    def node_at(self, router: int, local_port: int) -> int:
        if local_port != self.LOCAL:
            raise ValueError(f"mesh routers have one local port, not {local_port}")
        return router

    def direction_port(self, direction: int) -> int:
        """Port index for a compass direction constant."""
        return 1 + direction

    def neighbor(self, router: int, port: int) -> Optional[Tuple[int, int]]:
        if port == self.LOCAL:
            return None
        row, col = self.coords(router)
        direction = port - 1
        if direction == NORTH and row > 0:
            return (router - self.width, self.direction_port(SOUTH))
        if direction == SOUTH and row < self.height - 1:
            return (router + self.width, self.direction_port(NORTH))
        if direction == EAST and col < self.width - 1:
            return (router + 1, self.direction_port(WEST))
        if direction == WEST and col > 0:
            return (router - 1, self.direction_port(EAST))
        return None

    def bisection_channels(self) -> List[Channel]:
        cut = self.width // 2
        result = []
        for row in range(self.height):
            src = self.router_at(row, cut - 1)
            result.append(
                (src, self.direction_port(EAST), src + 1, self.direction_port(WEST))
            )
        return result


class Torus(Mesh):
    """N x N 2-D torus: a mesh plus wrap-around links (edge-symmetric)."""

    def neighbor(self, router: int, port: int) -> Optional[Tuple[int, int]]:
        if port == self.LOCAL:
            return None
        row, col = self.coords(router)
        direction = port - 1
        if direction == NORTH:
            other = self.router_at((row - 1) % self.height, col)
            return (other, self.direction_port(SOUTH))
        if direction == SOUTH:
            other = self.router_at((row + 1) % self.height, col)
            return (other, self.direction_port(NORTH))
        if direction == EAST:
            other = self.router_at(row, (col + 1) % self.width)
            return (other, self.direction_port(WEST))
        if direction == WEST:
            other = self.router_at(row, (col - 1) % self.width)
            return (other, self.direction_port(EAST))
        return None

    def bisection_channels(self) -> List[Channel]:
        # A torus bisection cuts both the direct and the wrap links: two
        # left-to-right channels per row.
        cut = self.width // 2
        result = []
        for row in range(self.height):
            src = self.router_at(row, cut - 1)
            dst = self.router_at(row, cut)
            result.append(
                (src, self.direction_port(EAST), dst, self.direction_port(WEST))
            )
            wrap_src = self.router_at(row, self.width - 1)
            wrap_dst = self.router_at(row, 0)
            result.append(
                (
                    wrap_src,
                    self.direction_port(EAST),
                    wrap_dst,
                    self.direction_port(WEST),
                )
            )
        return result


class ConcentratedMesh(Topology):
    """k x k mesh of routers, each concentrating ``concentration`` nodes.

    The paper's Figure 2(a) uses a 4x4 concentrated mesh with concentration
    degree 4 (64 nodes on 16 routers).  Ports 0..c-1 are local; ports
    c..c+3 are north/east/south/west.
    """

    def __init__(self, width: int, concentration: int = 4) -> None:
        if width < 2:
            raise ValueError(f"cmesh width must be >= 2, got {width}")
        if concentration < 1:
            raise ValueError(
                f"concentration must be >= 1, got {concentration}"
            )
        self.width = width
        self.height = width
        self.concentration = concentration
        self.num_routers = width * width
        self.num_nodes = self.num_routers * concentration

    def coords(self, router: int) -> Tuple[int, int]:
        return divmod(router, self.width)

    def router_at(self, row: int, col: int) -> int:
        if not (0 <= row < self.height and 0 <= col < self.width):
            raise ValueError(f"({row}, {col}) outside cmesh")
        return row * self.width + col

    def num_ports(self, router: int) -> int:
        return self.concentration + 4

    def num_local_ports(self, router: int) -> int:
        return self.concentration

    def router_of_node(self, node: int) -> int:
        return node // self.concentration

    def local_port_of_node(self, node: int) -> int:
        return node % self.concentration

    def node_at(self, router: int, local_port: int) -> int:
        if local_port >= self.concentration:
            raise ValueError(f"port {local_port} is not a local port")
        return router * self.concentration + local_port

    def direction_port(self, direction: int) -> int:
        return self.concentration + direction

    def neighbor(self, router: int, port: int) -> Optional[Tuple[int, int]]:
        if port < self.concentration:
            return None
        row, col = self.coords(router)
        direction = port - self.concentration
        if direction == NORTH and row > 0:
            return (router - self.width, self.direction_port(SOUTH))
        if direction == SOUTH and row < self.height - 1:
            return (router + self.width, self.direction_port(NORTH))
        if direction == EAST and col < self.width - 1:
            return (router + 1, self.direction_port(WEST))
        if direction == WEST and col > 0:
            return (router - 1, self.direction_port(EAST))
        return None

    def bisection_channels(self) -> List[Channel]:
        cut = self.width // 2
        result = []
        for row in range(self.height):
            src = self.router_at(row, cut - 1)
            result.append(
                (src, self.direction_port(EAST), src + 1, self.direction_port(WEST))
            )
        return result


class FlattenedButterfly(Topology):
    """k x k flattened butterfly with concentration (Kim, Dally & Abts).

    Every router connects directly to every other router in its row and in
    its column.  The paper's Figure 2(b) instance is k=4 with concentration
    4: 64 nodes, 16 routers, 10 ports per router (4 local + 3 row + 3 col).

    Port layout per router: ``0..c-1`` local; ``c..c+k-2`` row links in
    increasing destination-column order (skipping self); ``c+k-1..c+2k-3``
    column links in increasing destination-row order (skipping self).
    """

    def __init__(self, width: int = 4, concentration: int = 4) -> None:
        if width < 2:
            raise ValueError(f"fbfly width must be >= 2, got {width}")
        self.width = width
        self.height = width
        self.concentration = concentration
        self.num_routers = width * width
        self.num_nodes = self.num_routers * concentration
        self._row_ports = width - 1
        self._col_ports = width - 1

    def coords(self, router: int) -> Tuple[int, int]:
        return divmod(router, self.width)

    def router_at(self, row: int, col: int) -> int:
        return row * self.width + col

    def num_ports(self, router: int) -> int:
        return self.concentration + self._row_ports + self._col_ports

    def num_local_ports(self, router: int) -> int:
        return self.concentration

    def router_of_node(self, node: int) -> int:
        return node // self.concentration

    def local_port_of_node(self, node: int) -> int:
        return node % self.concentration

    def node_at(self, router: int, local_port: int) -> int:
        if local_port >= self.concentration:
            raise ValueError(f"port {local_port} is not a local port")
        return router * self.concentration + local_port

    def row_port_to(self, router: int, dst_col: int) -> int:
        """Port on ``router`` whose row link reaches column ``dst_col``."""
        _, col = self.coords(router)
        if dst_col == col:
            raise ValueError("no row link to own column")
        offset = dst_col if dst_col < col else dst_col - 1
        return self.concentration + offset

    def col_port_to(self, router: int, dst_row: int) -> int:
        """Port on ``router`` whose column link reaches row ``dst_row``."""
        row, _ = self.coords(router)
        if dst_row == row:
            raise ValueError("no column link to own row")
        offset = dst_row if dst_row < row else dst_row - 1
        return self.concentration + self._row_ports + offset

    def neighbor(self, router: int, port: int) -> Optional[Tuple[int, int]]:
        if port < self.concentration:
            return None
        row, col = self.coords(router)
        offset = port - self.concentration
        if offset < self._row_ports:
            dst_col = offset if offset < col else offset + 1
            other = self.router_at(row, dst_col)
            return (other, self.row_port_to(other, col))
        offset -= self._row_ports
        dst_row = offset if offset < row else offset + 1
        other = self.router_at(dst_row, col)
        return (other, self.col_port_to(other, row))

    def bisection_channels(self) -> List[Channel]:
        cut = self.width // 2
        result = []
        for row in range(self.height):
            for src_col in range(cut):
                for dst_col in range(cut, self.width):
                    src = self.router_at(row, src_col)
                    dst = self.router_at(row, dst_col)
                    result.append(
                        (
                            src,
                            self.row_port_to(src, dst_col),
                            dst,
                            self.row_port_to(dst, src_col),
                        )
                    )
        return result


def manhattan_distance(topology: Mesh, src_router: int, dst_router: int) -> int:
    """Hop count between two routers of a mesh under X-Y routing."""
    src_row, src_col = topology.coords(src_router)
    dst_row, dst_col = topology.coords(dst_router)
    return abs(src_row - dst_row) + abs(src_col - dst_col)


def torus_distance(topology: Torus, src_router: int, dst_router: int) -> int:
    """Hop count between two routers of a torus under shortest wrap routing."""
    src_row, src_col = topology.coords(src_router)
    dst_row, dst_col = topology.coords(dst_router)
    dr = abs(src_row - dst_row)
    dc = abs(src_col - dst_col)
    return min(dr, topology.height - dr) + min(dc, topology.width - dc)
