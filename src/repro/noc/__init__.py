"""Cycle-accurate network-on-chip simulator substrate.

This subpackage implements the wormhole-switched, virtual-channel,
credit-flow-controlled on-chip network model that the HeteroNoC paper
evaluates on: a two-stage pipelined router (Peh & Dally style), deterministic
X-Y routing (plus torus and table-based variants), and the mesh, torus,
concentrated-mesh and flattened-butterfly topologies.

The public entry point is :class:`repro.noc.network.Network`, normally built
from a layout produced by :mod:`repro.core.layouts`.
"""

from repro.noc.config import NetworkConfig, RouterConfig
from repro.noc.flit import Flit, FlitType, Packet
from repro.noc.network import Network
from repro.noc.routing import (
    RoutingError,
    TableRouting,
    TorusXYRouting,
    XYRouting,
)
from repro.noc.stats import LatencyRecord, NetworkStats
from repro.noc.topology import (
    ConcentratedMesh,
    FlattenedButterfly,
    Mesh,
    Topology,
    Torus,
)

__all__ = [
    "ConcentratedMesh",
    "Flit",
    "FlitType",
    "FlattenedButterfly",
    "LatencyRecord",
    "Mesh",
    "Network",
    "NetworkConfig",
    "NetworkStats",
    "Packet",
    "RouterConfig",
    "RoutingError",
    "TableRouting",
    "Topology",
    "Torus",
    "TorusXYRouting",
    "XYRouting",
]
