/* Compiled cycle kernel over the structure-of-arrays layout.
 *
 * This file is compiled on demand by repro.noc.ckernel with the system C
 * compiler (cc -O2 -shared -fPIC) and loaded through ctypes; keep it
 * dependency-free C99 with an int64-only FFI surface.
 *
 * The kernel owns a full copy of the dynamic simulation state -- per-lane
 * scalars and bitmasks (the SoaKernel layout), flit queues as fixed rings
 * of (packet handle, flit index, ready_at), per-node source queues,
 * arrival/credit calendars, activity-counter deltas and a completion
 * buffer -- and advances it one clock cycle per ck_step() call.  The
 * phase order, iteration orders, arbitration pointer updates and counter
 * increments replicate repro.noc.soa.SoaKernel.step() exactly: every
 * divergence would show in the four-way differential digests.
 *
 * Packets and flits cross the FFI as integer handles/indices; the Python
 * wrapper keeps the handle -> Packet table and rebuilds Flit objects on
 * sync().  All arrays are exposed through ck_arr()/ck_get()/ck_set()
 * accessors so no struct layout is shared with ctypes.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;
typedef uint64_t u64;

/* ---- growable i64 buffer ------------------------------------------------ */
typedef struct {
    i64 *buf;
    i64 cap;
    i64 len;
} Vec;

static int vec_push(Vec *v, i64 x) {
    if (v->len == v->cap) {
        i64 nc = v->cap ? v->cap * 2 : 16;
        i64 *nb = (i64 *)realloc(v->buf, (size_t)nc * sizeof(i64));
        if (!nb)
            return -1;
        v->buf = nb;
        v->cap = nc;
    }
    v->buf[v->len++] = x;
    return 0;
}

/* ---- growable ring of i64 (source queues) ------------------------------- */
typedef struct {
    i64 *buf;
    i64 cap;
    i64 head;
    i64 len;
} Ring;

static int ring_push(Ring *r, i64 x) {
    if (r->len == r->cap) {
        i64 nc = r->cap ? r->cap * 2 : 16;
        i64 *nb = (i64 *)malloc((size_t)nc * sizeof(i64));
        if (!nb)
            return -1;
        for (i64 i = 0; i < r->len; i++)
            nb[i] = r->buf[(r->head + i) % r->cap];
        free(r->buf);
        r->buf = nb;
        r->cap = nc;
        r->head = 0;
    }
    r->buf[(r->head + r->len) % r->cap] = x;
    r->len++;
    return 0;
}

static i64 ring_pop(Ring *r) {
    i64 x = r->buf[r->head];
    r->head = (r->head + 1) % r->cap;
    r->len--;
    return x;
}

/* ---- array / scalar ids (mirror repro.noc.ckernel exactly) -------------- */
enum {
    A_NPORTS = 0, A_NVCS, A_DEPTH, A_EJ_PMASK, A_EJ_LANES, A_HAS_WIDE,
    A_ROUTE_TAB, A_OVC_CNT, A_CEIL, A_SLANES,
    A_LINK_R, A_LINK_P, A_LINK_DELAY, A_LINK_LANES, A_UP_R, A_UP_P,
    A_NODE_RID, A_NODE_PORT, A_NODE_LANES,
    A_ST_PID, A_ST_ROUTE, A_ST_OUTVC, A_NEED, A_CRED, A_OWNER,
    A_OCC, A_AM, A_CREDOK, A_IN_NEXT, A_OUT_NEXT, A_SEC_NEXT,
    A_NVA, A_OCCUPIED, A_VA_OFF,
    A_ACTW, A_SRCW,
    A_QS_PKT, A_QS_SEQ, A_QS_READY, A_QHEAD, A_QLEN,
    A_SRC_PKT, A_SRC_NEXT, A_SRC_VC,
    A_BW, A_BR, A_XB, A_RC, A_VA, A_ARB, A_CF, A_CS, A_MG, A_OC,
    A_LF, A_LB,
    A_PK_ID, A_PK_SRC, A_PK_DST, A_PK_NFLITS, A_PK_MINLANES, A_PK_HOPS,
    A_PK_INJ,
    A_COMP,
};

enum {
    S_CYCLE = 0, S_ERR, S_ERR_A, S_ERR_B, S_ERR_C, S_NCOMP, S_PEND,
    S_PK_CAP,
};

/* error codes returned by ck_step (negative) */
enum {
    E_BUF_OVERFLOW = -1,
    E_CREDIT_OVERFLOW = -2,
    E_WORMHOLE = -3,
    E_BAD_POP = -4,
    E_NEG_CREDIT = -5,
    E_NOMEM = -6,
    E_CALENDAR = -7,
};

typedef struct CK {
    i64 R, P, V, RP, L, nnodes, D;
    i64 po, cd, merging, cal_sz;
    i64 nw_r, nw_n; /* actmask / srcmask word counts */
    i64 cycle;
    i64 err, err_a, err_b, err_c;
    i64 pend; /* scheduled, undelivered calendar events */

    /* static tensors */
    i64 *nports, *nvcs, *depth, *ej_pmask, *ej_lanes, *has_wide;
    i64 *route_tab; /* R * nnodes */
    i64 *ovc_cnt, *ceil_, *slanes;
    i64 *link_r, *link_p, *link_delay, *link_lanes, *up_r, *up_p;
    i64 *node_rid, *node_port, *node_lanes;

    /* dynamic scalar state */
    i64 *st_pid, *st_route, *st_outvc, *need, *cred, *owner;
    i64 *occ, *am, *credok, *in_next, *out_next, *sec_next;
    i64 *nva, *occupied, *va_off;
    u64 *actw, *srcw, *scratch_w;

    /* insertion-ordered active-lane lists, one row per router */
    i64 *act_arr; /* R * (P*V) */
    i64 *act_len; /* R */
    i64 *act_pos; /* L, -1 when absent */

    /* flit queues: fixed rings of depth D per lane */
    i64 *qs_pkt, *qs_seq, *qs_ready; /* L * D */
    i64 *qhead, *qlen;               /* L */

    /* source queues */
    Ring *srcq;                 /* nnodes */
    i64 *src_pkt, *src_next, *src_vc; /* nnodes; -1 sentinels */

    /* calendars: cal_sz buckets, events flattened (5 / 4 ints each) */
    Vec *arr_b;  /* (rid, port, vc, pkt, seq) */
    Vec *cred_b; /* (rid, port, vc, release) */

    /* activity + measured-link deltas */
    i64 *a_bw, *a_br, *a_xb, *a_rc, *a_va, *a_arb, *a_cf, *a_cs, *a_mg,
        *a_oc;
    i64 *lf, *lb; /* RP */

    /* packet records (grown on demand) */
    i64 pk_cap;
    i64 *pk_id, *pk_src, *pk_dst, *pk_nflits, *pk_minlanes, *pk_hops,
        *pk_inj;

    /* completions (packet handles, tail ejected this cycle) */
    Vec comp;

    /* per-cycle scratch */
    i64 *bid_vc, *obid, *elig, *bid_ports, *out_order;
    i64 *grants; /* 2*P rows of 6: ip, ivc, op, gov, pkt, seq */
} CK;

static i64 *zalloc(i64 n) {
    return (i64 *)calloc((size_t)(n > 0 ? n : 1), sizeof(i64));
}

CK *ck_new(i64 R, i64 P, i64 V, i64 nnodes, i64 po, i64 cd, i64 merging,
           i64 cal_sz, i64 maxdepth) {
    CK *ck = (CK *)calloc(1, sizeof(CK));
    if (!ck)
        return NULL;
    ck->R = R;
    ck->P = P;
    ck->V = V;
    ck->RP = R * P;
    ck->L = R * P * V;
    ck->nnodes = nnodes;
    ck->D = maxdepth;
    ck->po = po;
    ck->cd = cd;
    ck->merging = merging;
    ck->cal_sz = cal_sz;
    ck->nw_r = (R + 63) / 64;
    ck->nw_n = (nnodes + 63) / 64;

    i64 L = ck->L, RP = ck->RP;
    ck->nports = zalloc(R);
    ck->nvcs = zalloc(R);
    ck->depth = zalloc(R);
    ck->ej_pmask = zalloc(R);
    ck->ej_lanes = zalloc(R);
    ck->has_wide = zalloc(R);
    ck->route_tab = zalloc(R * nnodes);
    ck->ovc_cnt = zalloc(RP);
    ck->ceil_ = zalloc(RP);
    ck->slanes = zalloc(RP);
    ck->link_r = zalloc(RP);
    ck->link_p = zalloc(RP);
    ck->link_delay = zalloc(RP);
    ck->link_lanes = zalloc(RP);
    ck->up_r = zalloc(RP);
    ck->up_p = zalloc(RP);
    ck->node_rid = zalloc(nnodes);
    ck->node_port = zalloc(nnodes);
    ck->node_lanes = zalloc(nnodes);

    ck->st_pid = zalloc(L);
    ck->st_route = zalloc(L);
    ck->st_outvc = zalloc(L);
    ck->need = zalloc(L);
    ck->cred = zalloc(L);
    ck->owner = zalloc(L);
    ck->occ = zalloc(RP);
    ck->am = zalloc(RP);
    ck->credok = zalloc(RP);
    ck->in_next = zalloc(RP);
    ck->out_next = zalloc(RP);
    ck->sec_next = zalloc(RP);
    ck->nva = zalloc(R);
    ck->occupied = zalloc(R);
    ck->va_off = zalloc(R);
    ck->actw = (u64 *)zalloc(ck->nw_r);
    ck->srcw = (u64 *)zalloc(ck->nw_n);
    ck->scratch_w = (u64 *)zalloc(ck->nw_r);

    ck->act_arr = zalloc(R * P * V);
    ck->act_len = zalloc(R);
    ck->act_pos = zalloc(L);
    for (i64 i = 0; i < L; i++)
        ck->act_pos[i] = -1;

    ck->qs_pkt = zalloc(L * maxdepth);
    ck->qs_seq = zalloc(L * maxdepth);
    ck->qs_ready = zalloc(L * maxdepth);
    ck->qhead = zalloc(L);
    ck->qlen = zalloc(L);

    ck->srcq = (Ring *)calloc((size_t)(nnodes > 0 ? nnodes : 1),
                              sizeof(Ring));
    ck->src_pkt = zalloc(nnodes);
    ck->src_next = zalloc(nnodes);
    ck->src_vc = zalloc(nnodes);
    for (i64 i = 0; i < nnodes; i++) {
        ck->src_pkt[i] = -1;
        ck->src_vc[i] = -1;
    }

    ck->arr_b = (Vec *)calloc((size_t)cal_sz, sizeof(Vec));
    ck->cred_b = (Vec *)calloc((size_t)cal_sz, sizeof(Vec));

    ck->a_bw = zalloc(R);
    ck->a_br = zalloc(R);
    ck->a_xb = zalloc(R);
    ck->a_rc = zalloc(R);
    ck->a_va = zalloc(R);
    ck->a_arb = zalloc(R);
    ck->a_cf = zalloc(R);
    ck->a_cs = zalloc(R);
    ck->a_mg = zalloc(R);
    ck->a_oc = zalloc(R);
    ck->lf = zalloc(RP);
    ck->lb = zalloc(RP);

    ck->pk_cap = 0;

    ck->bid_vc = zalloc(P);
    ck->obid = zalloc(P);
    ck->elig = zalloc(P);
    ck->bid_ports = zalloc(P);
    ck->out_order = zalloc(P);
    ck->grants = zalloc(2 * P * 6);
    return ck;
}

void ck_free(CK *ck) {
    if (!ck)
        return;
    free(ck->nports); free(ck->nvcs); free(ck->depth); free(ck->ej_pmask);
    free(ck->ej_lanes); free(ck->has_wide); free(ck->route_tab);
    free(ck->ovc_cnt); free(ck->ceil_); free(ck->slanes);
    free(ck->link_r); free(ck->link_p); free(ck->link_delay);
    free(ck->link_lanes); free(ck->up_r); free(ck->up_p);
    free(ck->node_rid); free(ck->node_port); free(ck->node_lanes);
    free(ck->st_pid); free(ck->st_route); free(ck->st_outvc);
    free(ck->need); free(ck->cred); free(ck->owner);
    free(ck->occ); free(ck->am); free(ck->credok);
    free(ck->in_next); free(ck->out_next); free(ck->sec_next);
    free(ck->nva); free(ck->occupied); free(ck->va_off);
    free(ck->actw); free(ck->srcw); free(ck->scratch_w);
    free(ck->act_arr); free(ck->act_len); free(ck->act_pos);
    free(ck->qs_pkt); free(ck->qs_seq); free(ck->qs_ready);
    free(ck->qhead); free(ck->qlen);
    if (ck->srcq) {
        for (i64 i = 0; i < ck->nnodes; i++)
            free(ck->srcq[i].buf);
        free(ck->srcq);
    }
    free(ck->src_pkt); free(ck->src_next); free(ck->src_vc);
    if (ck->arr_b) {
        for (i64 i = 0; i < ck->cal_sz; i++)
            free(ck->arr_b[i].buf);
        free(ck->arr_b);
    }
    if (ck->cred_b) {
        for (i64 i = 0; i < ck->cal_sz; i++)
            free(ck->cred_b[i].buf);
        free(ck->cred_b);
    }
    free(ck->a_bw); free(ck->a_br); free(ck->a_xb); free(ck->a_rc);
    free(ck->a_va); free(ck->a_arb); free(ck->a_cf); free(ck->a_cs);
    free(ck->a_mg); free(ck->a_oc); free(ck->lf); free(ck->lb);
    free(ck->pk_id); free(ck->pk_src); free(ck->pk_dst);
    free(ck->pk_nflits); free(ck->pk_minlanes); free(ck->pk_hops);
    free(ck->pk_inj);
    free(ck->comp.buf);
    free(ck->bid_vc); free(ck->obid); free(ck->elig);
    free(ck->bid_ports); free(ck->out_order); free(ck->grants);
    free(ck);
}

/* ---- accessors ---------------------------------------------------------- */
i64 *ck_arr(CK *ck, i64 id) {
    switch (id) {
    case A_NPORTS: return ck->nports;
    case A_NVCS: return ck->nvcs;
    case A_DEPTH: return ck->depth;
    case A_EJ_PMASK: return ck->ej_pmask;
    case A_EJ_LANES: return ck->ej_lanes;
    case A_HAS_WIDE: return ck->has_wide;
    case A_ROUTE_TAB: return ck->route_tab;
    case A_OVC_CNT: return ck->ovc_cnt;
    case A_CEIL: return ck->ceil_;
    case A_SLANES: return ck->slanes;
    case A_LINK_R: return ck->link_r;
    case A_LINK_P: return ck->link_p;
    case A_LINK_DELAY: return ck->link_delay;
    case A_LINK_LANES: return ck->link_lanes;
    case A_UP_R: return ck->up_r;
    case A_UP_P: return ck->up_p;
    case A_NODE_RID: return ck->node_rid;
    case A_NODE_PORT: return ck->node_port;
    case A_NODE_LANES: return ck->node_lanes;
    case A_ST_PID: return ck->st_pid;
    case A_ST_ROUTE: return ck->st_route;
    case A_ST_OUTVC: return ck->st_outvc;
    case A_NEED: return ck->need;
    case A_CRED: return ck->cred;
    case A_OWNER: return ck->owner;
    case A_OCC: return ck->occ;
    case A_AM: return ck->am;
    case A_CREDOK: return ck->credok;
    case A_IN_NEXT: return ck->in_next;
    case A_OUT_NEXT: return ck->out_next;
    case A_SEC_NEXT: return ck->sec_next;
    case A_NVA: return ck->nva;
    case A_OCCUPIED: return ck->occupied;
    case A_VA_OFF: return ck->va_off;
    case A_ACTW: return (i64 *)ck->actw;
    case A_SRCW: return (i64 *)ck->srcw;
    case A_QS_PKT: return ck->qs_pkt;
    case A_QS_SEQ: return ck->qs_seq;
    case A_QS_READY: return ck->qs_ready;
    case A_QHEAD: return ck->qhead;
    case A_QLEN: return ck->qlen;
    case A_SRC_PKT: return ck->src_pkt;
    case A_SRC_NEXT: return ck->src_next;
    case A_SRC_VC: return ck->src_vc;
    case A_BW: return ck->a_bw;
    case A_BR: return ck->a_br;
    case A_XB: return ck->a_xb;
    case A_RC: return ck->a_rc;
    case A_VA: return ck->a_va;
    case A_ARB: return ck->a_arb;
    case A_CF: return ck->a_cf;
    case A_CS: return ck->a_cs;
    case A_MG: return ck->a_mg;
    case A_OC: return ck->a_oc;
    case A_LF: return ck->lf;
    case A_LB: return ck->lb;
    case A_PK_ID: return ck->pk_id;
    case A_PK_SRC: return ck->pk_src;
    case A_PK_DST: return ck->pk_dst;
    case A_PK_NFLITS: return ck->pk_nflits;
    case A_PK_MINLANES: return ck->pk_minlanes;
    case A_PK_HOPS: return ck->pk_hops;
    case A_PK_INJ: return ck->pk_inj;
    case A_COMP: return ck->comp.buf;
    }
    return NULL;
}

i64 ck_get(CK *ck, i64 id) {
    switch (id) {
    case S_CYCLE: return ck->cycle;
    case S_ERR: return ck->err;
    case S_ERR_A: return ck->err_a;
    case S_ERR_B: return ck->err_b;
    case S_ERR_C: return ck->err_c;
    case S_NCOMP: return ck->comp.len;
    case S_PEND: return ck->pend;
    case S_PK_CAP: return ck->pk_cap;
    }
    return 0;
}

void ck_set(CK *ck, i64 id, i64 v) {
    switch (id) {
    case S_CYCLE: ck->cycle = v; break;
    case S_NCOMP: ck->comp.len = v; break;
    }
}

/* ---- packet records ----------------------------------------------------- */
static i64 *regrow(i64 *p, i64 old, i64 nc) {
    i64 *nb = (i64 *)realloc(p, (size_t)nc * sizeof(i64));
    if (nb)
        memset(nb + old, 0, (size_t)(nc - old) * sizeof(i64));
    return nb;
}

i64 ck_ensure_packets(CK *ck, i64 cap) {
    if (cap <= ck->pk_cap)
        return 0;
    i64 nc = ck->pk_cap ? ck->pk_cap : 64;
    while (nc < cap)
        nc *= 2;
    i64 old = ck->pk_cap;
    i64 *a;
    a = regrow(ck->pk_id, old, nc); if (!a) return -1; ck->pk_id = a;
    a = regrow(ck->pk_src, old, nc); if (!a) return -1; ck->pk_src = a;
    a = regrow(ck->pk_dst, old, nc); if (!a) return -1; ck->pk_dst = a;
    a = regrow(ck->pk_nflits, old, nc); if (!a) return -1; ck->pk_nflits = a;
    a = regrow(ck->pk_minlanes, old, nc); if (!a) return -1;
    ck->pk_minlanes = a;
    a = regrow(ck->pk_hops, old, nc); if (!a) return -1; ck->pk_hops = a;
    a = regrow(ck->pk_inj, old, nc); if (!a) return -1; ck->pk_inj = a;
    ck->pk_cap = nc;
    return 0;
}

void ck_set_packet(CK *ck, i64 h, i64 pid, i64 src, i64 dst, i64 nflits,
                   i64 injected, i64 minlanes, i64 hops) {
    ck->pk_id[h] = pid;
    ck->pk_src[h] = src;
    ck->pk_dst[h] = dst;
    ck->pk_nflits[h] = nflits;
    ck->pk_inj[h] = injected;
    ck->pk_minlanes[h] = minlanes;
    ck->pk_hops[h] = hops;
}

/* ---- source queues ------------------------------------------------------ */
i64 ck_source_push(CK *ck, i64 node, i64 h) {
    if (ring_push(&ck->srcq[node], h))
        return -1;
    ck->srcw[node >> 6] |= 1ull << (node & 63);
    return 0;
}

i64 ck_source_len(CK *ck, i64 node) { return ck->srcq[node].len; }

i64 ck_source_at(CK *ck, i64 node, i64 i) {
    Ring *r = &ck->srcq[node];
    return r->buf[(r->head + i) % r->cap];
}

void ck_src_wake(CK *ck, i64 node) {
    ck->srcw[node >> 6] |= 1ull << (node & 63);
}

/* ---- flit queues (pack-side writes; step uses inline ring ops) ---------- */
i64 ck_queue_push(CK *ck, i64 lane, i64 pkt, i64 seq, i64 ready) {
    if (ck->qlen[lane] >= ck->D)
        return -1;
    i64 slot = lane * ck->D + (ck->qhead[lane] + ck->qlen[lane]) % ck->D;
    ck->qs_pkt[slot] = pkt;
    ck->qs_seq[slot] = seq;
    ck->qs_ready[slot] = ready;
    ck->qlen[lane]++;
    return 0;
}

/* ---- active-lane insertion-ordered lists -------------------------------- */
void ck_act_clear(CK *ck, i64 rid) {
    i64 *row = ck->act_arr + rid * ck->P * ck->V;
    for (i64 i = 0; i < ck->act_len[rid]; i++)
        ck->act_pos[row[i]] = -1;
    ck->act_len[rid] = 0;
}

void ck_act_push(CK *ck, i64 rid, i64 lane) {
    if (ck->act_pos[lane] >= 0)
        return;
    i64 *row = ck->act_arr + rid * ck->P * ck->V;
    row[ck->act_len[rid]] = lane;
    ck->act_pos[lane] = ck->act_len[rid]++;
}

i64 ck_act_len(CK *ck, i64 rid) { return ck->act_len[rid]; }

i64 ck_act_at(CK *ck, i64 rid, i64 i) {
    return ck->act_arr[rid * ck->P * ck->V + i];
}

static void act_del(CK *ck, i64 rid, i64 lane) {
    i64 *row = ck->act_arr + rid * ck->P * ck->V;
    i64 i = ck->act_pos[lane];
    i64 n = --ck->act_len[rid];
    for (; i < n; i++) {
        i64 l2 = row[i + 1];
        row[i] = l2;
        ck->act_pos[l2] = i;
    }
    ck->act_pos[lane] = -1;
}

/* ---- calendars ---------------------------------------------------------- */
i64 ck_sched_arrival(CK *ck, i64 when, i64 rid, i64 port, i64 vc, i64 pkt,
                     i64 seq) {
    if (when < ck->cycle || when - ck->cycle >= ck->cal_sz)
        return E_CALENDAR;
    Vec *b = &ck->arr_b[when % ck->cal_sz];
    if (vec_push(b, rid) || vec_push(b, port) || vec_push(b, vc) ||
        vec_push(b, pkt) || vec_push(b, seq))
        return E_NOMEM;
    ck->pend++;
    return 0;
}

i64 ck_sched_credit(CK *ck, i64 when, i64 rid, i64 port, i64 vc,
                    i64 release) {
    if (when < ck->cycle || when - ck->cycle >= ck->cal_sz)
        return E_CALENDAR;
    Vec *b = &ck->cred_b[when % ck->cal_sz];
    if (vec_push(b, rid) || vec_push(b, port) || vec_push(b, vc) ||
        vec_push(b, release))
        return E_NOMEM;
    ck->pend++;
    return 0;
}

i64 ck_bucket_len(CK *ck, i64 kind, i64 idx) {
    Vec *b = kind ? &ck->cred_b[idx] : &ck->arr_b[idx];
    return b->len;
}

i64 *ck_bucket_ptr(CK *ck, i64 kind, i64 idx) {
    Vec *b = kind ? &ck->cred_b[idx] : &ck->arr_b[idx];
    return b->buf;
}

/* ---- misc --------------------------------------------------------------- */
void ck_wake(CK *ck, i64 rid) { ck->actw[rid >> 6] |= 1ull << (rid & 63); }

i64 ck_total_buffered(CK *ck) {
    i64 t = 0;
    for (i64 i = 0; i < ck->R; i++)
        t += ck->occupied[i];
    return t;
}

/* ---- one clock cycle ---------------------------------------------------- */
static i64 rot_pick(i64 mask, i64 nxt, i64 n) {
    u64 m = (u64)mask;
    u64 r = ((m >> nxt) | (m << (n - nxt))) & ((1ull << n) - 1);
    return (nxt + (i64)__builtin_ctzll(r)) % n;
}

#define ERR3(code, a, b, c)                                                  \
    do {                                                                     \
        ck->err = (code);                                                    \
        ck->err_a = (a);                                                     \
        ck->err_b = (b);                                                     \
        ck->err_c = (c);                                                     \
        return (code);                                                       \
    } while (0)

i64 ck_step(CK *ck, i64 measuring) {
    const i64 P = ck->P, V = ck->V, D = ck->D;
    const i64 cycle = ck->cycle;
    const i64 po = ck->po, cd = ck->cd, merging = ck->merging;
    i64 *st_pid = ck->st_pid, *st_route = ck->st_route,
        *st_outvc = ck->st_outvc;
    i64 *need = ck->need, *nva = ck->nva, *cred = ck->cred,
        *owner = ck->owner;
    i64 *occ = ck->occ, *am = ck->am, *credok = ck->credok;
    i64 *occupied = ck->occupied;
    i64 *qs_pkt = ck->qs_pkt, *qs_seq = ck->qs_seq, *qs_ready = ck->qs_ready;
    i64 *qhead = ck->qhead, *qlen = ck->qlen;
    i64 *depth = ck->depth;
    i64 *pk_id = ck->pk_id, *pk_nflits = ck->pk_nflits,
        *pk_dst = ck->pk_dst;
    i64 *pk_minlanes = ck->pk_minlanes, *pk_hops = ck->pk_hops,
        *pk_inj = ck->pk_inj;
    u64 *actw = ck->actw;
    const i64 bslot = cycle % ck->cal_sz;

    /* -- phase 1: link arrivals scheduled for this cycle ------------------ */
    {
        Vec *b = &ck->arr_b[bslot];
        i64 n = b->len / 5;
        for (i64 e = 0; e < n; e++) {
            i64 *ev = b->buf + e * 5;
            i64 rid = ev[0], port = ev[1], vc = ev[2], pkt = ev[3],
                seq = ev[4];
            i64 rp = rid * P + port;
            i64 lane = rp * V + vc;
            if (qlen[lane] >= depth[rid])
                ERR3(E_BUF_OVERFLOW, rid, port, vc);
            if (qlen[lane] == 0) {
                occ[rp] |= 1ll << vc;
                ck_act_push(ck, rid, lane);
                if (st_pid[lane] != pk_id[pkt] || st_outvc[lane] == -2) {
                    if (!need[lane]) {
                        need[lane] = 1;
                        nva[rid]++;
                    }
                }
            }
            i64 slot = lane * D + (qhead[lane] + qlen[lane]) % D;
            qs_pkt[slot] = pkt;
            qs_seq[slot] = seq;
            qs_ready[slot] = cycle + po;
            qlen[lane]++;
            occupied[rid]++;
            ck->a_bw[rid]++;
            actw[rid >> 6] |= 1ull << (rid & 63);
        }
        ck->pend -= n;
        b->len = 0;
    }

    /* -- phase 2: credit returns ------------------------------------------ */
    {
        Vec *b = &ck->cred_b[bslot];
        i64 n = b->len / 4;
        for (i64 e = 0; e < n; e++) {
            i64 *ev = b->buf + e * 4;
            i64 rid = ev[0], port = ev[1], vc = ev[2], release = ev[3];
            i64 rp = rid * P + port;
            i64 lane = rp * V + vc;
            i64 c = cred[lane] + 1;
            if (c > ck->ceil_[rp])
                ERR3(E_CREDIT_OVERFLOW, rid, port, vc);
            cred[lane] = c;
            credok[rp] |= 1ll << vc;
            if (release)
                owner[lane] = -1;
        }
        ck->pend -= n;
        b->len = 0;
    }

    /* -- phase 3: injection from active sources --------------------------- */
    {
        u64 *srcw = ck->srcw;
        i64 *src_pkt = ck->src_pkt, *src_next = ck->src_next,
            *src_vc = ck->src_vc;
        i64 ready = cycle + po;
        for (i64 w = 0; w < ck->nw_n; w++) {
            u64 bits = srcw[w];
            while (bits) {
                i64 bpos = (i64)__builtin_ctzll(bits);
                bits &= bits - 1;
                i64 node = w * 64 + bpos;
                Ring *sq = &ck->srcq[node];
                if (src_pkt[node] < 0 && sq->len == 0) {
                    srcw[w] &= ~(1ull << bpos);
                    continue;
                }
                i64 rid = ck->node_rid[node];
                i64 port = ck->node_port[node];
                i64 lanes = ck->node_lanes[node];
                i64 rp = rid * P + port;
                i64 lane0 = rp * V;
                i64 cap = depth[rid];
                i64 budget = lanes;
                while (budget > 0) {
                    if (src_pkt[node] < 0) {
                        if (sq->len == 0)
                            break;
                        i64 vc = -1, fallback = -1, fallback_free = 0;
                        for (i64 cand = 0; cand < ck->nvcs[rid]; cand++) {
                            i64 l = lane0 + cand;
                            i64 free_ = cap - qlen[l];
                            if (free_ == 0)
                                continue;
                            if (qlen[l] == 0 && st_pid[l] == -1) {
                                vc = cand;
                                break;
                            }
                            if (free_ > fallback_free) {
                                fallback = cand;
                                fallback_free = free_;
                            }
                        }
                        if (vc < 0)
                            vc = fallback;
                        if (vc < 0)
                            break;
                        i64 h = ring_pop(sq);
                        src_pkt[node] = h;
                        src_next[node] = 0;
                        src_vc[node] = vc;
                        pk_inj[h] = cycle;
                        pk_minlanes[h] = lanes;
                    }
                    i64 vc = src_vc[node];
                    i64 lane = lane0 + vc;
                    if (qlen[lane] >= cap)
                        break;
                    i64 h = src_pkt[node];
                    i64 seq = src_next[node];
                    if (qlen[lane] == 0) {
                        occ[rp] |= 1ll << vc;
                        ck_act_push(ck, rid, lane);
                        if (st_pid[lane] != pk_id[h] ||
                            st_outvc[lane] == -2) {
                            if (!need[lane]) {
                                need[lane] = 1;
                                nva[rid]++;
                            }
                        }
                    }
                    i64 slot = lane * D + (qhead[lane] + qlen[lane]) % D;
                    qs_pkt[slot] = h;
                    qs_seq[slot] = seq;
                    qs_ready[slot] = ready;
                    qlen[lane]++;
                    occupied[rid]++;
                    ck->a_bw[rid]++;
                    actw[rid >> 6] |= 1ull << (rid & 63);
                    src_next[node]++;
                    budget--;
                    if (src_next[node] >= pk_nflits[h]) {
                        src_pkt[node] = -1;
                        src_next[node] = 0;
                        src_vc[node] = -1;
                    }
                }
            }
        }
    }

    /* -- phases 4+5: RC/VA, switch allocation, traversal ------------------ */
    {
        i64 *in_next = ck->in_next, *out_next = ck->out_next,
            *sec_next = ck->sec_next;
        i64 *bid_vc = ck->bid_vc, *obid = ck->obid, *elig = ck->elig;
        i64 *bid_ports = ck->bid_ports, *out_order = ck->out_order;
        i64 *grants = ck->grants;
        u64 *snap = ck->scratch_w;
        memcpy(snap, actw, (size_t)ck->nw_r * sizeof(u64));
        for (i64 w = 0; w < ck->nw_r; w++) {
            u64 bits = snap[w];
            while (bits) {
                i64 bpos = (i64)__builtin_ctzll(bits);
                bits &= bits - 1;
                i64 rid = w * 64 + bpos;
                if (!occupied[rid]) {
                    actw[w] &= ~(1ull << bpos);
                    continue;
                }
                i64 base = rid * P;
                i64 ejp = ck->ej_pmask[rid];
                i64 *aarr = ck->act_arr + rid * P * V;
                i64 alen = ck->act_len[rid];

                /* ---- RC + VC allocation (needy lanes only) ------------- */
                i64 off = ck->va_off[rid];
                ck->va_off[rid] = off + 1;
                i64 needy = nva[rid];
                if (needy) {
                    i64 start = 0, count = 0;
                    if (needy == 1) {
                        for (i64 i = 0; i < alen; i++) {
                            if (need[aarr[i]]) {
                                start = i;
                                count = 1;
                                break;
                            }
                        }
                    } else {
                        start = off % alen;
                        count = alen;
                    }
                    const i64 *rt = ck->route_tab + rid * ck->nnodes;
                    for (i64 k = 0; k < count; k++) {
                        i64 lane = aarr[(start + k) % alen];
                        if (!need[lane])
                            continue;
                        if (qlen[lane] == 0)
                            continue;
                        i64 hslot = lane * D + qhead[lane];
                        i64 pkt = qs_pkt[hslot];
                        i64 seq = qs_seq[hslot];
                        i64 pid = pk_id[pkt];
                        if (st_pid[lane] != pid) {
                            if (seq != 0)
                                ERR3(E_WORMHOLE, rid, pid, 0);
                            st_pid[lane] = pid;
                            st_route[lane] = rt[pk_dst[pkt]];
                            st_outvc[lane] = -2;
                            ck->a_rc[rid]++;
                        }
                        if (st_outvc[lane] != -2 || qs_ready[hslot] > cycle)
                            continue;
                        i64 op = st_route[lane];
                        if ((ejp >> op) & 1) {
                            st_outvc[lane] = -1;
                            am[lane / V] |= 1ll << (lane % V);
                            need[lane] = 0;
                            nva[rid]--;
                            continue;
                        }
                        if (seq != 0)
                            continue;
                        i64 rp2 = base + op;
                        i64 lane2 = rp2 * V;
                        for (i64 cvc = 0; cvc < ck->ovc_cnt[rp2]; cvc++) {
                            if (owner[lane2 + cvc] == -1) {
                                owner[lane2 + cvc] = pid;
                                st_outvc[lane] = cvc;
                                am[lane / V] |= 1ll << (lane % V);
                                ck->a_va[rid]++;
                                need[lane] = 0;
                                nva[rid]--;
                                break;
                            }
                        }
                    }
                }

                /* ---- switch allocation --------------------------------- */
                i64 n_out = 0, nbid = 0;
                i64 np_ = ck->nports[rid];
                i64 nv = ck->nvcs[rid];
                i64 wide = ck->has_wide[rid];
                for (i64 port = 0; port < np_; port++) {
                    i64 rp = base + port;
                    i64 em = occ[rp] & am[rp];
                    if (!em)
                        continue;
                    i64 lane = rp * V;
                    i64 embit = 0, necount = 0;
                    i64 mm = em;
                    while (mm) {
                        i64 vc = (i64)__builtin_ctzll((u64)mm);
                        mm &= mm - 1;
                        i64 l = lane + vc;
                        if (qs_ready[l * D + qhead[l]] > cycle)
                            continue;
                        i64 op = st_route[l];
                        if ((ejp >> op) & 1) {
                            embit |= 1ll << vc;
                            necount++;
                        } else if ((credok[base + op] >> st_outvc[l]) & 1) {
                            embit |= 1ll << vc;
                            necount++;
                        } else {
                            ck->a_cs[rid]++;
                        }
                    }
                    if (!embit)
                        continue;
                    i64 bid, nxt;
                    if (necount == 1) {
                        bid = (i64)__builtin_ctzll((u64)embit);
                        nxt = bid + 1;
                        in_next[rp] = nxt < nv ? nxt : 0;
                    } else {
                        bid = rot_pick(embit, in_next[rp], nv);
                        nxt = bid + 1;
                        in_next[rp] = nxt < nv ? nxt : 0;
                        ck->a_cf[rid] += necount - 1;
                    }
                    ck->a_arb[rid]++;
                    bid_vc[port] = bid;
                    bid_ports[nbid++] = port;
                    if (wide)
                        elig[port] = embit;
                    i64 op = st_route[lane + bid];
                    if (!obid[op])
                        out_order[n_out++] = op;
                    obid[op] |= 1ll << port;
                }
                if (!n_out) {
                    if (measuring)
                        ck->a_oc[rid] += occupied[rid];
                    continue;
                }
                i64 ngr = 0;
                for (i64 oi = 0; oi < n_out; oi++) {
                    i64 op = out_order[oi];
                    i64 m2 = obid[op];
                    obid[op] = 0;
                    i64 rpo = base + op;
                    i64 wp, nxt;
                    if (!(m2 & (m2 - 1))) {
                        wp = (i64)__builtin_ctzll((u64)m2);
                        nxt = wp + 1;
                        out_next[rpo] = nxt < np_ ? nxt : 0;
                    } else {
                        wp = rot_pick(m2, out_next[rpo], np_);
                        nxt = wp + 1;
                        out_next[rpo] = nxt < np_ ? nxt : 0;
                        ck->a_cf[rid] += (i64)__builtin_popcountll((u64)m2)
                                         - 1;
                    }
                    ck->a_arb[rid]++;
                    i64 wvc = bid_vc[wp];
                    i64 lane = (base + wp) * V + wvc;
                    i64 is_ej = (ejp >> op) & 1;
                    i64 gov = is_ej ? -1 : st_outvc[lane];
                    i64 hslot = lane * D + qhead[lane];
                    i64 *g = grants + ngr * 6;
                    g[0] = wp;
                    g[1] = wvc;
                    g[2] = op;
                    g[3] = gov;
                    g[4] = qs_pkt[hslot];
                    g[5] = qs_seq[hslot];
                    ngr++;
                    if (!merging || ck->slanes[rpo] < 2)
                        continue;
                    /* ---- second parallel arbiter (wide output) --------- */
                    i64 have_second = 0;
                    i64 s_ip = 0, s_ivc = 0, s_gov = 0, s_pkt = 0, s_seq = 0;
                    if (qlen[lane] > 1) {
                        i64 slot2 = lane * D + (qhead[lane] + 1) % D;
                        if (qs_pkt[slot2] >= 0 &&
                            pk_id[qs_pkt[slot2]] == st_pid[lane] &&
                            qs_ready[slot2] <= cycle) {
                            if (!is_ej && cred[rpo * V + gov] >= 2) {
                                have_second = 1;
                                s_ip = wp;
                                s_ivc = wvc;
                                s_gov = gov;
                                s_pkt = qs_pkt[slot2];
                                s_seq = qs_seq[slot2];
                            } else if (is_ej) {
                                have_second = 1;
                                s_ip = wp;
                                s_ivc = wvc;
                                s_gov = -1;
                                s_pkt = qs_pkt[slot2];
                                s_seq = qs_seq[slot2];
                            }
                        }
                    }
                    if (!have_second) {
                        /* candidate set: winner port's other eligible VCs
                         * routed to op, then other bidding ports' winners */
                        i64 cand_mask = 0;
                        i64 cand_vc[64];
                        i64 cm = elig[wp] & ~(1ll << wvc);
                        i64 lane0 = (base + wp) * V;
                        while (cm) {
                            i64 vc = (i64)__builtin_ctzll((u64)cm);
                            cm &= cm - 1;
                            if (st_route[lane0 + vc] == op) {
                                cand_mask |= 1ll << wp;
                                cand_vc[wp] = vc;
                                break;
                            }
                        }
                        for (i64 bi = 0; bi < nbid; bi++) {
                            i64 p2 = bid_ports[bi];
                            if (p2 == wp)
                                continue;
                            i64 vcb = bid_vc[p2];
                            if (st_route[(base + p2) * V + vcb] == op) {
                                if (!((cand_mask >> p2) & 1)) {
                                    cand_mask |= 1ll << p2;
                                    cand_vc[p2] = vcb;
                                }
                            }
                        }
                        if (cand_mask) {
                            i64 cp;
                            if (!(cand_mask & (cand_mask - 1))) {
                                cp = (i64)__builtin_ctzll((u64)cand_mask);
                                nxt = cp + 1;
                                sec_next[rpo] = nxt < np_ ? nxt : 0;
                            } else {
                                cp = rot_pick(cand_mask, sec_next[rpo],
                                              np_);
                                nxt = cp + 1;
                                sec_next[rpo] = nxt < np_ ? nxt : 0;
                            }
                            ck->a_arb[rid]++;
                            i64 cvc = cand_vc[cp];
                            i64 lane2 = (base + cp) * V + cvc;
                            i64 hs2 = lane2 * D + qhead[lane2];
                            have_second = 1;
                            s_ip = cp;
                            s_ivc = cvc;
                            s_gov = is_ej ? -1 : st_outvc[lane2];
                            s_pkt = qs_pkt[hs2];
                            s_seq = qs_seq[hs2];
                        }
                    }
                    if (have_second) {
                        i64 *g2 = grants + ngr * 6;
                        g2[0] = s_ip;
                        g2[1] = s_ivc;
                        g2[2] = op;
                        g2[3] = s_gov;
                        g2[4] = s_pkt;
                        g2[5] = s_seq;
                        ngr++;
                        ck->a_mg[rid]++;
                    }
                }

                /* ---- switch traversal ---------------------------------- */
                i64 used_mask = 0;
                for (i64 gi = 0; gi < ngr; gi++) {
                    i64 *g = grants + gi * 6;
                    i64 ip = g[0], ivc = g[1], op = g[2], gov = g[3];
                    i64 rp_in = base + ip;
                    i64 lane = rp_in * V + ivc;
                    i64 hslot = lane * D + qhead[lane];
                    i64 pkt = qs_pkt[hslot];
                    i64 seq = qs_seq[hslot];
                    if (pkt != g[4] || seq != g[5])
                        ERR3(E_BAD_POP, rid, ip, ivc);
                    qhead[lane] = (qhead[lane] + 1) % D;
                    qlen[lane]--;
                    occupied[rid]--;
                    ck->a_br[rid]++;
                    ck->a_xb[rid]++;
                    if (qlen[lane] == 0) {
                        occ[rp_in] &= ~(1ll << ivc);
                        act_del(ck, rid, lane);
                    }
                    if (gov >= 0) {
                        i64 cidx = (base + op) * V + gov;
                        i64 c = cred[cidx] - 1;
                        cred[cidx] = c;
                        if (c == 0)
                            credok[base + op] &= ~(1ll << gov);
                        else if (c < 0)
                            ERR3(E_NEG_CREDIT, rid, op, gov);
                    }
                    i64 is_tail = (seq == pk_nflits[pkt] - 1);
                    i64 is_head = (seq == 0);
                    if ((ejp >> op) & 1) {
                        if (is_head && pk_minlanes[pkt] != -1) {
                            i64 el = ck->ej_lanes[rid];
                            if (el < pk_minlanes[pkt])
                                pk_minlanes[pkt] = el;
                        }
                        if (is_tail) {
                            if (vec_push(&ck->comp, pkt))
                                ERR3(E_NOMEM, 0, 0, 0);
                        }
                    } else {
                        i64 rpo2 = base + op;
                        if (is_head) {
                            pk_hops[pkt]++;
                            if (pk_minlanes[pkt] != -1) {
                                i64 width =
                                    merging ? ck->link_lanes[rpo2] : 1;
                                if (width < pk_minlanes[pkt])
                                    pk_minlanes[pkt] = width;
                            }
                        }
                        i64 rc = ck_sched_arrival(
                            ck, cycle + ck->link_delay[rpo2],
                            ck->link_r[rpo2], ck->link_p[rpo2], gov, pkt,
                            seq);
                        if (rc)
                            ERR3(rc, rid, op, 0);
                        if (measuring) {
                            used_mask |= 1ll << op;
                            ck->lf[rpo2]++;
                        }
                    }
                    if (is_tail) {
                        st_pid[lane] = -1;
                        st_route[lane] = -1;
                        st_outvc[lane] = -2;
                        am[rp_in] &= ~(1ll << ivc);
                        if (qlen[lane] && !need[lane]) {
                            need[lane] = 1;
                            nva[rid]++;
                        }
                    }
                    if (!((ejp >> ip) & 1)) {
                        if (ck->up_r[rp_in] != -1) {
                            i64 rc = ck_sched_credit(
                                ck, cycle + cd, ck->up_r[rp_in],
                                ck->up_p[rp_in], ivc, is_tail);
                            if (rc)
                                ERR3(rc, rid, ip, ivc);
                        }
                    }
                }
                while (used_mask) {
                    i64 port = (i64)__builtin_ctzll((u64)used_mask);
                    used_mask &= used_mask - 1;
                    ck->lb[base + port]++;
                }
                if (measuring)
                    ck->a_oc[rid] += occupied[rid];
            }
        }
    }

    ck->cycle = cycle + 1;
    return ck->comp.len;
}
