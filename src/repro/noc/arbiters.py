"""Arbiters used by the router's allocation stages.

The baseline switch-allocation stage (Section 3.3, Figure 6a) is two
sub-stages: a v:1 arbiter per input port picks one VC to bid, then a p:1
arbiter per output port picks one input port.  HeteroNoC adds a *second*
parallel p:1 arbiter per wide output port so that a matching second flit can
share the 256-bit link (Figure 6b).

We model all of these with round-robin arbiters, the common NoC choice for
its strong local fairness.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, TypeVar

T = TypeVar("T", bound=Hashable)


class RoundRobinArbiter:
    """Round-robin arbiter over a fixed number of request lines."""

    def __init__(self, num_requesters: int) -> None:
        if num_requesters < 1:
            raise ValueError(
                f"arbiter needs >= 1 requester, got {num_requesters}"
            )
        self.num_requesters = num_requesters
        self._next = 0

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Grant one of the asserted request lines, rotating priority.

        Returns the granted index, or ``None`` when nothing is requested.
        The winner becomes the *lowest* priority for the next arbitration.
        """
        if len(requests) != self.num_requesters:
            raise ValueError(
                f"expected {self.num_requesters} request lines, "
                f"got {len(requests)}"
            )
        for offset in range(self.num_requesters):
            index = (self._next + offset) % self.num_requesters
            if requests[index]:
                self._next = (index + 1) % self.num_requesters
                return index
        return None

    def grant_from(self, indices: Iterable[int]) -> Optional[int]:
        """Grant among a sparse set of requesting indices.

        The single-requester case short-circuits: with one asserted line
        the round-robin scan always grants it and parks priority just past
        it, so the pointer update is applied directly.  Most arbitrations
        in a lightly-to-moderately loaded mesh have exactly one candidate,
        which makes this the switch-allocation fast path.
        """
        if not isinstance(indices, (list, tuple)):
            indices = list(indices)
        if not indices:
            return None
        if len(indices) == 1:
            index = indices[0]
            if index >= self.num_requesters:
                raise IndexError(
                    f"request line {index} out of range "
                    f"({self.num_requesters} lines)"
                )
            self._next = (index + 1) % self.num_requesters
            return index
        requests = [False] * self.num_requesters
        for index in indices:
            requests[index] = True
        return self.grant(requests)


class TwoStageAllocator:
    """The paper's two-sub-stage switch allocator.

    Sub-stage 1: one v:1 arbiter per input port chooses which VC of that
    port bids for the switch this cycle.  Sub-stage 2: one p:1 arbiter per
    output port chooses among the bidding input ports.  Wide output ports
    run a second parallel p:1 arbiter (``grant_second``) that supplies a
    matching second flit when one exists (flit-combining cases (a)/(b) of
    Section 3.3).
    """

    def __init__(self, num_ports: int, vcs_per_port: Sequence[int]) -> None:
        if len(vcs_per_port) != num_ports:
            raise ValueError("vcs_per_port must have one entry per port")
        self.num_ports = num_ports
        self.input_stage = [RoundRobinArbiter(v) for v in vcs_per_port]
        self.output_stage = [RoundRobinArbiter(num_ports) for _ in range(num_ports)]
        self.second_output_stage = [
            RoundRobinArbiter(num_ports) for _ in range(num_ports)
        ]

    def pick_input_vc(self, port: int, requesting_vcs: Iterable[int]) -> Optional[int]:
        """Sub-stage 1 for one input port."""
        return self.input_stage[port].grant_from(requesting_vcs)

    def pick_output_winner(
        self, out_port: int, requesting_inputs: Iterable[int]
    ) -> Optional[int]:
        """Sub-stage 2, first arbiter."""
        return self.output_stage[out_port].grant_from(requesting_inputs)

    def pick_second_winner(
        self, out_port: int, requesting_inputs: Iterable[int]
    ) -> Optional[int]:
        """Sub-stage 2, second parallel arbiter (wide outputs only)."""
        return self.second_output_stage[out_port].grant_from(requesting_inputs)
