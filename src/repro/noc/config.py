"""Configuration records for routers and networks.

The paper's three router types (Table 1):

===========  =====  ============  ==========  ======  ========  =========
Router       VCs/PC  buffer depth  flit width  power   area      frequency
===========  =====  ============  ==========  ======  ========  =========
baseline     3      5 flits       192 b       0.67 W  0.290 mm2  2.20 GHz
small        2      5 flits       128 b       0.30 W  0.235 mm2  2.25 GHz
big          6      5 flits       256 b*      1.19 W  0.425 mm2  2.07 GHz
===========  =====  ============  ==========  ======  ========  =========

``*`` big routers keep the 128-bit flit width but drive 256-bit links and
crossbar, carrying two merged flits per cycle (Section 3).

A :class:`RouterConfig` captures one router's provisioning; a
:class:`NetworkConfig` captures whole-network parameters shared by every
router (pipeline depth, routing discipline, clock).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

BASELINE_VCS = 3
SMALL_VCS = 2
BIG_VCS = 6
BUFFER_DEPTH = 5
BASELINE_FLIT_WIDTH = 192
HETERO_FLIT_WIDTH = 128
BASELINE_LINK_WIDTH = 192
NARROW_LINK_WIDTH = 128
WIDE_LINK_WIDTH = 256
BASELINE_FREQUENCY_GHZ = 2.20
SMALL_FREQUENCY_GHZ = 2.25
BIG_FREQUENCY_GHZ = 2.07
MESH_PORTS = 5  # N, E, S, W + local injection/ejection port


@dataclass(frozen=True)
class RouterConfig:
    """Provisioning of one router.

    Attributes:
        num_vcs: virtual channels per physical channel.
        buffer_depth: flit slots per virtual channel.
        flit_width: flit width in bits (the buffer word size).
        link_width: width in bits of the links this router drives; a link's
            effective width is decided per-link by the layout (see
            :func:`repro.core.layouts.link_width_between`).
        kind: ``"baseline"``, ``"small"`` or ``"big"`` -- used for layout
            bookkeeping, power/area modelling and placement-aware routing.
    """

    num_vcs: int = BASELINE_VCS
    buffer_depth: int = BUFFER_DEPTH
    flit_width: int = BASELINE_FLIT_WIDTH
    link_width: int = BASELINE_LINK_WIDTH
    kind: str = "baseline"
    # Hardware widths for the power/area models when they differ from the
    # simulation (flow-control) widths.  The "paper" flit-accounting mode
    # simulates HeteroNoC with baseline-width flits (see
    # repro.core.layouts) while the physical datapath is 128 b/256 b;
    # these fields carry the physical widths in that case.
    power_flit_width: Optional[int] = None
    power_link_width: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_vcs < 1:
            raise ValueError(f"num_vcs must be >= 1, got {self.num_vcs}")
        if self.buffer_depth < 1:
            raise ValueError(
                f"buffer_depth must be >= 1, got {self.buffer_depth}"
            )
        if self.flit_width < 1 or self.link_width < 1:
            raise ValueError("flit_width and link_width must be positive")
        if self.link_width % self.flit_width:
            raise ValueError(
                "link_width must be a multiple of flit_width "
                f"(got {self.link_width} / {self.flit_width})"
            )

    @property
    def lanes(self) -> int:
        """How many flits the router's widest link carries per cycle."""
        return self.link_width // self.flit_width

    @property
    def hw_flit_width(self) -> int:
        """Physical buffer word width (for power/area models)."""
        return self.power_flit_width or self.flit_width

    @property
    def hw_link_width(self) -> int:
        """Physical link/crossbar width (for power/area models)."""
        return self.power_link_width or self.link_width

    def buffer_bits(self, num_ports: int) -> int:
        """Total physical buffer storage of this router in bits.

        Matches the paper's accounting under Table 1:
        ``VCs x ports x depth x flit_width``.
        """
        return (
            self.num_vcs * num_ports * self.buffer_depth * self.hw_flit_width
        )


def baseline_router() -> RouterConfig:
    """The homogeneous baseline router (3 VCs, 192 b)."""
    return RouterConfig()


def small_router() -> RouterConfig:
    """The HeteroNoC small router (2 VCs, 128 b flits and links)."""
    return RouterConfig(
        num_vcs=SMALL_VCS,
        flit_width=HETERO_FLIT_WIDTH,
        link_width=NARROW_LINK_WIDTH,
        kind="small",
    )


def big_router() -> RouterConfig:
    """The HeteroNoC big router (6 VCs, 128 b flits over 256 b links)."""
    return RouterConfig(
        num_vcs=BIG_VCS,
        flit_width=HETERO_FLIT_WIDTH,
        link_width=WIDE_LINK_WIDTH,
        kind="big",
    )


def small_router_paper_mode() -> RouterConfig:
    """Small router under the paper's flit accounting (see layouts).

    The physical datapath is the Table 1 small router (128 b buffers and
    links -- carried in the ``power_*`` fields), but packets keep the
    baseline 192 b flit decomposition so narrow links move one flit per
    cycle, matching the paper's reported throughput behaviour.
    """
    return RouterConfig(
        num_vcs=SMALL_VCS,
        flit_width=BASELINE_FLIT_WIDTH,
        link_width=BASELINE_FLIT_WIDTH,
        kind="small",
        power_flit_width=HETERO_FLIT_WIDTH,
        power_link_width=NARROW_LINK_WIDTH,
    )


def big_router_paper_mode() -> RouterConfig:
    """Big router under the paper's flit accounting: its wide links carry
    two flits per cycle (the merged pair of Section 3.2)."""
    return RouterConfig(
        num_vcs=BIG_VCS,
        flit_width=BASELINE_FLIT_WIDTH,
        link_width=2 * BASELINE_FLIT_WIDTH,
        kind="big",
        power_flit_width=HETERO_FLIT_WIDTH,
        power_link_width=WIDE_LINK_WIDTH,
    )


def small_router_buffer_only() -> RouterConfig:
    """Small router of the +B layouts: fewer VCs, baseline-width links."""
    return RouterConfig(
        num_vcs=SMALL_VCS,
        flit_width=BASELINE_FLIT_WIDTH,
        link_width=BASELINE_LINK_WIDTH,
        kind="small",
    )


def big_router_buffer_only() -> RouterConfig:
    """Big router of the +B layouts: more VCs, baseline-width links."""
    return RouterConfig(
        num_vcs=BIG_VCS,
        flit_width=BASELINE_FLIT_WIDTH,
        link_width=BASELINE_LINK_WIDTH,
        kind="big",
    )


@dataclass(frozen=True)
class NetworkConfig:
    """Whole-network parameters.

    Attributes:
        router_pipeline_stages: depth of the router pipeline.  The paper
            models a state-of-the-art two-stage router (Section 4).
        link_delay: link traversal latency in cycles.
        credit_delay: cycles for a credit to return upstream.
        frequency_ghz: network clock; a heterogeneous network runs at the
            worst-case (big-router) frequency per Section 3.4.
        data_packet_bits: payload of a data packet.
        escape_vc: index of the virtual channel reserved for deadlock-free
            escape routing when table-based routing is in use (``None``
            disables the reservation).
        source_queue_limit: maximum packets buffered at a source before
            :meth:`Network.try_inject` refuses new traffic (``None`` means
            unbounded, the synthetic open-loop setting).
        flit_merging: enable the Section 3.2/3.3 wide-link flit
            combining.  Disabling it is an ablation: wide links then move
            a single flit per cycle like narrow ones.
        kernel: which cycle kernel drives :meth:`Network.step` --
            ``"event"`` (the event-driven active-set kernel, default),
            ``"soa"`` (the structure-of-arrays batch kernel, which falls
            back to the event kernel whenever faults, observation hooks
            or dynamic routing require the per-flit object datapath),
            ``"c"`` (the compiled kernel of ``repro.noc.ckernel``: the
            soa layout stepped by an on-demand-built C shared object;
            degrades to ``soa`` when no C compiler is available, and to
            ``event`` under the same conditions as ``soa``) or
            ``"naive"`` (the retained full-scan reference stepper).  All
            four are bit-identical; see ``repro.noc.soa`` and
            ``repro.noc.ckernel``.  Overridable per process with
            ``REPRO_KERNEL``.
    """

    KERNELS = ("event", "soa", "naive", "c")

    router_pipeline_stages: int = 2
    link_delay: int = 1
    credit_delay: int = 1
    frequency_ghz: float = BASELINE_FREQUENCY_GHZ
    data_packet_bits: int = 1024
    escape_vc: Optional[int] = None
    source_queue_limit: Optional[int] = None
    flit_merging: bool = True
    kernel: str = "event"

    def __post_init__(self) -> None:
        if self.router_pipeline_stages < 1:
            raise ValueError("router_pipeline_stages must be >= 1")
        if self.link_delay < 1:
            raise ValueError("link_delay must be >= 1")
        if self.credit_delay < 0:
            raise ValueError("credit_delay must be >= 0")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        if self.kernel not in self.KERNELS:
            raise ValueError(
                f"kernel must be one of {self.KERNELS}, got {self.kernel!r}"
            )

    @property
    def cycle_time_ns(self) -> float:
        """Duration of one network cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz

    def with_frequency(self, frequency_ghz: float) -> "NetworkConfig":
        """Copy of this config clocked at ``frequency_ghz``."""
        return replace(self, frequency_ghz=frequency_ghz)

    def zero_load_hop_cycles(self) -> int:
        """Cycles per hop at zero load: pipeline depth plus link delay."""
        return self.router_pipeline_stages + self.link_delay


def router_config_summary(configs: Dict[int, RouterConfig]) -> Dict[str, int]:
    """Count router kinds in a node->config map (layout sanity checks)."""
    counts: Dict[str, int] = {}
    for config in configs.values():
        counts[config.kind] = counts.get(config.kind, 0) + 1
    return counts
