"""Measurement and statistics collection for network simulations.

End-to-end packet latency is decomposed the way the paper's Figure 8(a)
does:

* **queuing latency** -- cycles spent waiting in the source queue before the
  head flit enters the injection port;
* **transfer latency** -- the zero-load component: router pipeline plus link
  traversal per hop, plus tail serialization over the narrowest link of the
  path (halved where two flits travel a wide link together);
* **blocking latency** -- the remainder: contention stalls at intermediate
  hops.

The collector also integrates per-router buffer occupancy and per-channel
link usage (the Figure 1 heat maps) and counts the micro-events (buffer
reads/writes, crossbar traversals, arbitrations, link flit-traversals) that
the power model (:mod:`repro.core.power`) converts into Watts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class LatencyRecord:
    """Latency decomposition of one delivered packet (cycles)."""

    packet_id: int
    src: int
    dst: int
    num_flits: int
    hops: int
    total: int
    queuing: int
    transfer: int
    blocking: int
    packet_class: str = "data"

    def __post_init__(self) -> None:
        if self.total != self.queuing + self.transfer + self.blocking:
            raise ValueError(
                "latency components must sum to the total "
                f"({self.queuing}+{self.transfer}+{self.blocking} != {self.total})"
            )


@dataclass
class RouterActivity:
    """Per-router micro-event counters for power and utilization."""

    buffer_writes: int = 0
    buffer_reads: int = 0
    crossbar_traversals: int = 0
    arbitrations: int = 0
    route_computations: int = 0
    vc_allocations: int = 0
    merged_flit_pairs: int = 0
    # SA-eligible head flits that could not bid because their allocated
    # downstream VC had zero credits (back-pressure stalls).
    credit_stalls: int = 0
    # Losing requesters across both SA stages: each multi-bidder
    # arbitration charges (bidders - 1) conflicts, so the counter is the
    # number of flit-cycles lost to switch contention.
    arbitration_conflicts: int = 0
    # Sum over sampled cycles of (occupied flit slots); divide by
    # (cycles * capacity) for average buffer utilization.
    occupancy_integral: int = 0
    buffer_capacity_flits: int = 0

    _COUNTER_FIELDS = (
        "buffer_writes",
        "buffer_reads",
        "crossbar_traversals",
        "arbitrations",
        "route_computations",
        "vc_allocations",
        "merged_flit_pairs",
        "credit_stalls",
        "arbitration_conflicts",
        "occupancy_integral",
    )

    def snapshot(self) -> "RouterActivity":
        """Copy of the current counter values."""
        return RouterActivity(
            **{f: getattr(self, f) for f in self._COUNTER_FIELDS},
            buffer_capacity_flits=self.buffer_capacity_flits,
        )

    def delta_since(self, start: "RouterActivity") -> "RouterActivity":
        """Counters accumulated since ``start`` (a measurement window)."""
        return RouterActivity(
            **{
                f: getattr(self, f) - getattr(start, f)
                for f in self._COUNTER_FIELDS
            },
            buffer_capacity_flits=self.buffer_capacity_flits,
        )


class NetworkStats:
    """Accumulates measurements over a simulation's measurement window."""

    def __init__(self, num_routers: int, num_nodes: int) -> None:
        self.num_routers = num_routers
        self.num_nodes = num_nodes
        self.records: List[LatencyRecord] = []
        self.router_activity = [RouterActivity() for _ in range(num_routers)]
        # (src_router, src_port) -> flits carried
        self.link_flits: Dict[Tuple[int, int], int] = {}
        # (src_router, src_port) -> cycles in which the link was busy
        self.link_busy_cycles: Dict[Tuple[int, int], int] = {}
        self.link_lanes: Dict[Tuple[int, int], int] = {}
        self.measured_cycles: int = 0
        self.flits_delivered: int = 0
        self.packets_delivered: int = 0
        self.packets_offered: int = 0
        # All deliveries that happened while the measurement window was
        # open, whether or not the packet itself was marked measured; this
        # is the "accepted traffic" throughput numerator.
        self.window_packet_deliveries: int = 0
        self.window_flit_deliveries: int = 0
        self.start_cycle: Optional[int] = None
        self.end_cycle: Optional[int] = None
        # Set by the run driver when the drain phase hit its cycle cap
        # (offered load beyond capacity); summary() reports it so sweep
        # scripts can tell an empty window from a saturated one.
        self.saturated: bool = False

    # -- recording ----------------------------------------------------------
    def record_packet(self, record: LatencyRecord) -> None:
        self.records.append(record)
        self.packets_delivered += 1
        self.flits_delivered += record.num_flits

    def record_link_use(
        self, src_router: int, src_port: int, num_flits: int
    ) -> None:
        key = (src_router, src_port)
        self.link_flits[key] = self.link_flits.get(key, 0) + num_flits
        self.link_busy_cycles[key] = self.link_busy_cycles.get(key, 0) + 1

    # -- aggregate latency metrics -------------------------------------------
    def _mean(self, values: List[float]) -> float:
        if not values:
            raise ValueError("no packets were measured")
        return sum(values) / len(values)

    @property
    def avg_latency_cycles(self) -> float:
        return self._mean([r.total for r in self.records])

    @property
    def avg_network_latency_cycles(self) -> float:
        """Mean latency excluding source queuing (in-network time only)."""
        return self._mean([r.total - r.queuing for r in self.records])

    @property
    def avg_queuing_cycles(self) -> float:
        return self._mean([r.queuing for r in self.records])

    @property
    def avg_blocking_cycles(self) -> float:
        return self._mean([r.blocking for r in self.records])

    @property
    def avg_transfer_cycles(self) -> float:
        return self._mean([r.transfer for r in self.records])

    @property
    def avg_hops(self) -> float:
        return self._mean([r.hops for r in self.records])

    def avg_latency_ns(self, frequency_ghz: float) -> float:
        """Mean end-to-end latency in nanoseconds at a given clock."""
        return self.avg_latency_cycles / frequency_ghz

    def latency_percentile(self, fraction: float) -> float:
        """Latency below which ``fraction`` of measured packets fall.

        Uses the nearest-rank definition; ``fraction == 0.0`` is defined as
        the minimum observed latency (rather than falling through the
        ``ceil(fraction * n) - 1`` rank, which would index rank -1).
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        ordered = sorted(r.total for r in self.records)
        if not ordered:
            raise ValueError("no packets were measured")
        if fraction == 0.0:
            return float(ordered[0])
        index = min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1)
        return float(ordered[index])

    def latency_std_cycles(self) -> float:
        """Standard deviation of packet latency (Figure 13b's jitter)."""
        totals = [r.total for r in self.records]
        mean = self._mean(totals)
        return math.sqrt(sum((t - mean) ** 2 for t in totals) / len(totals))

    # -- throughput -----------------------------------------------------------
    @property
    def accepted_packets_per_node_per_cycle(self) -> float:
        if self.measured_cycles == 0:
            raise ValueError("measurement window is empty")
        return self.window_packet_deliveries / (
            self.measured_cycles * self.num_nodes
        )

    @property
    def accepted_flits_per_node_per_cycle(self) -> float:
        if self.measured_cycles == 0:
            raise ValueError("measurement window is empty")
        return self.window_flit_deliveries / (
            self.measured_cycles * self.num_nodes
        )

    # -- utilization ----------------------------------------------------------
    def buffer_utilization(self, router: int) -> float:
        """Time-average fraction of the router's flit slots that were full."""
        activity = self.router_activity[router]
        if self.measured_cycles == 0 or activity.buffer_capacity_flits == 0:
            return 0.0
        denom = self.measured_cycles * activity.buffer_capacity_flits
        return activity.occupancy_integral / denom

    def link_utilization(self, src_router: int, src_port: int) -> float:
        """Fraction of cycles the channel carried at least one flit."""
        if self.measured_cycles == 0:
            return 0.0
        busy = self.link_busy_cycles.get((src_router, src_port), 0)
        return busy / self.measured_cycles

    def router_link_utilization(self, router: int, num_ports: int) -> float:
        """Mean utilization of the router's outgoing network channels."""
        values = [
            self.link_utilization(router, port)
            for port in range(num_ports)
            if (router, port) in self.link_lanes
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)

    # -- convenience ----------------------------------------------------------
    def summary(self, frequency_ghz: float = 1.0) -> Dict[str, object]:
        """Headline numbers as a plain dict (handy for printing tables).

        Never raises on an empty or saturated measurement window: metrics
        that need at least one measured packet (or one measured cycle) come
        back as ``math.nan``, and the ``measured_packets`` / ``saturated``
        keys let sweep scripts tell the cases apart past the knee.
        """

        def _safe(compute) -> float:
            try:
                return float(compute())
            except ValueError:
                return math.nan

        return {
            "packets": float(self.packets_delivered),
            "measured_packets": float(len(self.records)),
            "saturated": self.saturated,
            "avg_latency_cycles": _safe(lambda: self.avg_latency_cycles),
            "avg_latency_ns": _safe(lambda: self.avg_latency_ns(frequency_ghz)),
            "avg_queuing_cycles": _safe(lambda: self.avg_queuing_cycles),
            "avg_blocking_cycles": _safe(lambda: self.avg_blocking_cycles),
            "avg_transfer_cycles": _safe(lambda: self.avg_transfer_cycles),
            "avg_hops": _safe(lambda: self.avg_hops),
            "p95_latency_cycles": _safe(lambda: self.latency_percentile(0.95)),
            "p99_latency_cycles": _safe(lambda: self.latency_percentile(0.99)),
            "throughput_packets_per_node_cycle": _safe(
                lambda: self.accepted_packets_per_node_per_cycle
            ),
        }
