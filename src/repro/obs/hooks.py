"""The observation event bus: hook points tapped by the simulator core.

The network and routers expose a single optional ``obs`` attribute.  When it
is ``None`` (the default) every tap point collapses to one attribute check,
so an un-observed simulation pays essentially nothing.  When an
:class:`Observer` is attached (``Network.attach_observer``), the core fires
fine-grained callbacks for every interesting micro-event:

========================  =====================================================
hook                      fired when
========================  =====================================================
``on_packet_enqueued``    a packet enters its source queue
``on_packet_dropped``     the source queue was full (closed-loop setting)
``on_flit_injected``      a flit moves source queue -> local input buffer
``on_vc_allocated``       a head flit wins a downstream virtual channel
``on_switch_grant``       a flit wins switch allocation (one per grant)
``on_link_traversal``     a flit departs onto an inter-router link
``on_link_busy``          an output channel carried >= 1 flit this cycle
``on_flit_ejected``       a flit leaves the network at its destination
``on_packet_delivered``   a tail flit ejects; the packet is complete
``on_credit_return``      an upstream router receives a credit back
``on_cycle_end``          the network finished one clock cycle
``on_drain_truncated``    the run driver gave up draining measured packets
``on_fault_applied``      the fault injector activated a fault
``on_fault_repaired``     the fault injector repaired a fault
``on_packet_lost``        a packet was declared lost (purged or retries out)
``on_packet_retransmitted``  the NI re-sent a lost/corrupted/timed-out packet
``on_stall_diagnosed``    the watchdog detected deadlock/livelock
========================  =====================================================

Hooks fire regardless of the measurement window; observers that want to
mirror :class:`~repro.noc.stats.NetworkStats` exactly (the time-series
sampler does) filter on the ``measuring`` flag themselves.

All callbacks take plain positional arguments -- no per-event object is
allocated -- so an attached observer costs one method call per event.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple


class Observer:
    """Base observer: every hook is a no-op.

    Subclass and override only the hooks you care about.  ``flit`` and
    ``packet`` arguments are the live simulator objects; observers must not
    mutate them.
    """

    def on_packet_enqueued(self, packet, cycle: int) -> None:
        """``packet`` was appended to its source queue at ``cycle``."""

    def on_packet_dropped(self, packet, cycle: int) -> None:
        """``packet`` was rejected by a full source queue at ``cycle``."""

    def on_flit_injected(
        self, node: int, router_id: int, port: int, vc: int, flit, cycle: int
    ) -> None:
        """``flit`` moved from node ``node``'s source queue into the local
        input buffer of ``router_id`` (port/vc are the input coordinates)."""

    def on_vc_allocated(
        self,
        router_id: int,
        in_port: int,
        in_vc: int,
        out_port: int,
        out_vc: int,
        packet,
        cycle: int,
    ) -> None:
        """``packet``'s head flit claimed downstream VC ``out_vc`` of
        ``out_port`` at router ``router_id``."""

    def on_switch_grant(self, router_id: int, grant, cycle: int) -> None:
        """One switch-allocation winner (a :class:`~repro.noc.router.Grant`)
        is about to traverse the crossbar of ``router_id``."""

    def on_link_traversal(
        self,
        src_router: int,
        src_port: int,
        dst_router: int,
        dst_port: int,
        flit,
        cycle: int,
    ) -> None:
        """``flit`` departed ``(src_router, src_port)`` onto the link toward
        ``(dst_router, dst_port)``."""

    def on_link_busy(self, router_id: int, port: int, cycle: int) -> None:
        """Output channel ``(router_id, port)`` carried at least one flit
        during ``cycle`` (at most one event per channel per cycle)."""

    def on_flit_ejected(
        self, router_id: int, port: int, flit, cycle: int
    ) -> None:
        """``flit`` was consumed by the ejection port of ``router_id``."""

    def on_packet_delivered(self, packet, cycle: int) -> None:
        """``packet``'s tail flit ejected; timestamps on the packet are
        final (``received_at`` == ``cycle``)."""

    def on_credit_return(
        self, router_id: int, port: int, vc: int, cycle: int
    ) -> None:
        """Router ``router_id`` received a credit back for ``(port, vc)``."""

    def on_cycle_end(self, cycle: int, measuring: bool) -> None:
        """The network completed ``cycle``; ``measuring`` is the state of
        the measurement window during that cycle."""

    def on_drain_truncated(self, in_flight_measured: int, cycle: int) -> None:
        """The run driver hit its drain-cycle cap with
        ``in_flight_measured`` measured packets still undelivered."""

    def on_fault_applied(self, spec, cycle: int) -> None:
        """The fault injector activated ``spec``
        (a :class:`repro.faults.schedule.FaultSpec`)."""

    def on_fault_repaired(self, spec, cycle: int) -> None:
        """The fault injector repaired ``spec``."""

    def on_packet_lost(self, packet, reason: str, cycle: int) -> None:
        """``packet`` was declared lost (``reason`` in ``{"fault",
        "unreachable", "retries_exhausted"}``)."""

    def on_packet_retransmitted(self, packet, attempt: int, cycle: int) -> None:
        """The NI re-sent ``packet`` (``attempt`` counts sends so far)."""

    def on_stall_diagnosed(self, diagnosis, cycle: int) -> None:
        """The watchdog built a
        :class:`repro.faults.watchdog.StallDiagnosis`; a
        :class:`~repro.faults.watchdog.SimulationStalled` follows."""


class CompositeObserver(Observer):
    """Fans every event out to an ordered list of child observers."""

    def __init__(self, children: Optional[Iterable[Observer]] = None) -> None:
        self.children: List[Observer] = list(children or [])

    def add(self, observer: Observer) -> Observer:
        """Append a child; returns it for chaining."""
        self.children.append(observer)
        return observer

    def on_packet_enqueued(self, packet, cycle: int) -> None:
        for child in self.children:
            child.on_packet_enqueued(packet, cycle)

    def on_packet_dropped(self, packet, cycle: int) -> None:
        for child in self.children:
            child.on_packet_dropped(packet, cycle)

    def on_flit_injected(
        self, node: int, router_id: int, port: int, vc: int, flit, cycle: int
    ) -> None:
        for child in self.children:
            child.on_flit_injected(node, router_id, port, vc, flit, cycle)

    def on_vc_allocated(
        self,
        router_id: int,
        in_port: int,
        in_vc: int,
        out_port: int,
        out_vc: int,
        packet,
        cycle: int,
    ) -> None:
        for child in self.children:
            child.on_vc_allocated(
                router_id, in_port, in_vc, out_port, out_vc, packet, cycle
            )

    def on_switch_grant(self, router_id: int, grant, cycle: int) -> None:
        for child in self.children:
            child.on_switch_grant(router_id, grant, cycle)

    def on_link_traversal(
        self,
        src_router: int,
        src_port: int,
        dst_router: int,
        dst_port: int,
        flit,
        cycle: int,
    ) -> None:
        for child in self.children:
            child.on_link_traversal(
                src_router, src_port, dst_router, dst_port, flit, cycle
            )

    def on_link_busy(self, router_id: int, port: int, cycle: int) -> None:
        for child in self.children:
            child.on_link_busy(router_id, port, cycle)

    def on_flit_ejected(
        self, router_id: int, port: int, flit, cycle: int
    ) -> None:
        for child in self.children:
            child.on_flit_ejected(router_id, port, flit, cycle)

    def on_packet_delivered(self, packet, cycle: int) -> None:
        for child in self.children:
            child.on_packet_delivered(packet, cycle)

    def on_credit_return(
        self, router_id: int, port: int, vc: int, cycle: int
    ) -> None:
        for child in self.children:
            child.on_credit_return(router_id, port, vc, cycle)

    def on_cycle_end(self, cycle: int, measuring: bool) -> None:
        for child in self.children:
            child.on_cycle_end(cycle, measuring)

    def on_drain_truncated(self, in_flight_measured: int, cycle: int) -> None:
        for child in self.children:
            child.on_drain_truncated(in_flight_measured, cycle)

    def on_fault_applied(self, spec, cycle: int) -> None:
        for child in self.children:
            child.on_fault_applied(spec, cycle)

    def on_fault_repaired(self, spec, cycle: int) -> None:
        for child in self.children:
            child.on_fault_repaired(spec, cycle)

    def on_packet_lost(self, packet, reason: str, cycle: int) -> None:
        for child in self.children:
            child.on_packet_lost(packet, reason, cycle)

    def on_packet_retransmitted(self, packet, attempt: int, cycle: int) -> None:
        for child in self.children:
            child.on_packet_retransmitted(packet, attempt, cycle)

    def on_stall_diagnosed(self, diagnosis, cycle: int) -> None:
        for child in self.children:
            child.on_stall_diagnosed(diagnosis, cycle)


class EventLog(Observer):
    """Debug observer: records every event as a small tuple.

    Tuples start with the event kind (the hook name without the ``on_``
    prefix) followed by the cycle and the event's identifying fields.  A
    ``max_events`` cap guards against runaway memory on long runs; counts
    keep accumulating past the cap.
    """

    def __init__(self, max_events: int = 100_000) -> None:
        self.max_events = max_events
        self.events: List[Tuple] = []
        self.counts: dict = {}

    def _log(self, kind: str, *fields) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if len(self.events) < self.max_events:
            self.events.append((kind, *fields))

    def on_packet_enqueued(self, packet, cycle: int) -> None:
        self._log("packet_enqueued", cycle, packet.packet_id)

    def on_packet_dropped(self, packet, cycle: int) -> None:
        self._log("packet_dropped", cycle, packet.packet_id)

    def on_flit_injected(
        self, node: int, router_id: int, port: int, vc: int, flit, cycle: int
    ) -> None:
        self._log(
            "flit_injected", cycle, flit.packet.packet_id, flit.index,
            node, router_id, port, vc,
        )

    def on_vc_allocated(
        self,
        router_id: int,
        in_port: int,
        in_vc: int,
        out_port: int,
        out_vc: int,
        packet,
        cycle: int,
    ) -> None:
        self._log(
            "vc_allocated", cycle, packet.packet_id,
            router_id, in_port, in_vc, out_port, out_vc,
        )

    def on_switch_grant(self, router_id: int, grant, cycle: int) -> None:
        self._log(
            "switch_grant", cycle, grant.flit.packet.packet_id,
            grant.flit.index, router_id, grant.in_port, grant.in_vc,
            grant.out_port,
        )

    def on_link_traversal(
        self,
        src_router: int,
        src_port: int,
        dst_router: int,
        dst_port: int,
        flit,
        cycle: int,
    ) -> None:
        self._log(
            "link_traversal", cycle, flit.packet.packet_id, flit.index,
            src_router, src_port, dst_router, dst_port,
        )

    def on_link_busy(self, router_id: int, port: int, cycle: int) -> None:
        self._log("link_busy", cycle, router_id, port)

    def on_flit_ejected(
        self, router_id: int, port: int, flit, cycle: int
    ) -> None:
        self._log(
            "flit_ejected", cycle, flit.packet.packet_id, flit.index,
            router_id, port,
        )

    def on_packet_delivered(self, packet, cycle: int) -> None:
        self._log("packet_delivered", cycle, packet.packet_id)

    def on_credit_return(
        self, router_id: int, port: int, vc: int, cycle: int
    ) -> None:
        self._log("credit_return", cycle, router_id, port, vc)

    def on_cycle_end(self, cycle: int, measuring: bool) -> None:
        self.counts["cycle_end"] = self.counts.get("cycle_end", 0) + 1

    def on_drain_truncated(self, in_flight_measured: int, cycle: int) -> None:
        self._log("drain_truncated", cycle, in_flight_measured)

    def on_fault_applied(self, spec, cycle: int) -> None:
        self._log("fault_applied", cycle, spec.kind, spec.router, spec.port)

    def on_fault_repaired(self, spec, cycle: int) -> None:
        self._log("fault_repaired", cycle, spec.kind, spec.router, spec.port)

    def on_packet_lost(self, packet, reason: str, cycle: int) -> None:
        self._log("packet_lost", cycle, packet.packet_id, reason)

    def on_packet_retransmitted(self, packet, attempt: int, cycle: int) -> None:
        self._log("packet_retransmitted", cycle, packet.packet_id, attempt)

    def on_stall_diagnosed(self, diagnosis, cycle: int) -> None:
        self._log("stall_diagnosed", cycle, diagnosis.kind, len(diagnosis.blocked))
