"""Windowed time-series telemetry for a running network.

:class:`TimeSeriesSampler` turns the Figure 1 heat maps into *timelines*:
it integrates per-router buffer occupancy and per-channel busy cycles over
fixed-width windows of simulated cycles and records one
:class:`WindowSample` per window.  In the default ``only_measured`` mode it
accumulates exactly when :class:`~repro.noc.stats.NetworkStats` does (cycles
with the measurement window open), so the time-average of its series equals
the end-of-run ``buffer_utilization`` / ``link_utilization`` aggregates bit
for bit -- the property the acceptance tests assert.

Each window also carries delivery counts and the mean latency of measured
packets delivered inside it, which makes saturation onset visible: past the
knee, the per-window latency series diverges while throughput flattens.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.hooks import Observer

LinkKey = Tuple[int, int]  # (src_router, src_port)


@dataclass
class WindowSample:
    """Telemetry integrated over one sampling window."""

    index: int
    start_cycle: int
    end_cycle: int  # last sampled cycle, inclusive
    cycles: int
    #: per-router sum over sampled cycles of occupied flit slots
    occupancy: List[int]
    #: (router, port) -> cycles in which the channel carried >= 1 flit
    link_busy: Dict[LinkKey, int] = field(default_factory=dict)
    deliveries: int = 0
    flits_delivered: int = 0
    latency_sum: int = 0
    latency_count: int = 0

    def buffer_utilization(self, router: int, capacity_flits: int) -> float:
        """Fraction of ``router``'s buffer slots occupied, window average."""
        if self.cycles == 0 or capacity_flits == 0:
            return 0.0
        return self.occupancy[router] / (self.cycles * capacity_flits)

    def link_utilization(self, router: int, port: int) -> float:
        """Fraction of window cycles the channel carried >= 1 flit."""
        if self.cycles == 0:
            return 0.0
        return self.link_busy.get((router, port), 0) / self.cycles

    @property
    def avg_latency_cycles(self) -> float:
        """Mean latency of measured packets delivered in this window."""
        if self.latency_count == 0:
            return math.nan
        return self.latency_sum / self.latency_count


class TimeSeriesSampler(Observer):
    """Observer recording windowed utilization/latency/throughput series.

    Args:
        network: the network being observed (read-only access to routers).
        window: sampling window width in cycles.
        only_measured: when True (default), accumulate only while the
            network's measurement window is open, mirroring
            :class:`~repro.noc.stats.NetworkStats` exactly; when False,
            sample every cycle from attach onward.
    """

    def __init__(
        self, network, window: int = 100, only_measured: bool = True
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.network = network
        self.window = int(window)
        self.only_measured = bool(only_measured)
        self.windows: List[WindowSample] = []
        self._num_routers = len(network.routers)
        self._reset_accumulator()

    # -- accumulation -------------------------------------------------------
    def _reset_accumulator(self) -> None:
        self._cycles = 0
        self._start: Optional[int] = None
        self._last = 0
        self._occ = [0] * self._num_routers
        self._busy: Dict[LinkKey, int] = {}
        self._deliveries = 0
        self._flits = 0
        self._latency_sum = 0
        self._latency_count = 0

    def _flush(self) -> None:
        if self._cycles == 0:
            return
        self.windows.append(
            WindowSample(
                index=len(self.windows),
                start_cycle=self._start if self._start is not None else 0,
                end_cycle=self._last,
                cycles=self._cycles,
                occupancy=list(self._occ),
                link_busy=dict(self._busy),
                deliveries=self._deliveries,
                flits_delivered=self._flits,
                latency_sum=self._latency_sum,
                latency_count=self._latency_count,
            )
        )
        self._reset_accumulator()

    def finalize(self) -> "TimeSeriesSampler":
        """Flush a partially filled window (call once the run is over)."""
        self._flush()
        return self

    # -- hooks --------------------------------------------------------------
    def on_link_busy(self, router_id: int, port: int, cycle: int) -> None:
        if self.only_measured and not self.network.measuring:
            return
        key = (router_id, port)
        self._busy[key] = self._busy.get(key, 0) + 1

    def on_packet_delivered(self, packet, cycle: int) -> None:
        if self.only_measured and not self.network.measuring:
            return
        self._deliveries += 1
        self._flits += packet.num_flits
        if packet.measured:
            self._latency_sum += packet.received_at - packet.created_at
            self._latency_count += 1

    def on_cycle_end(self, cycle: int, measuring: bool) -> None:
        if self.only_measured and not measuring:
            # Close the final partial window when measurement ends.
            if self._cycles:
                self._flush()
            return
        if self._start is None:
            self._start = cycle
        occ = self._occ
        for i, router in enumerate(self.network.routers):
            occ[i] += router.occupied_flits
        self._cycles += 1
        self._last = cycle
        if self._cycles >= self.window:
            self._flush()

    # -- derived series -----------------------------------------------------
    def buffer_capacity(self, router: int) -> int:
        return self.network.routers[router].activity.buffer_capacity_flits

    def sampled_cycles(self) -> int:
        """Total cycles integrated across all recorded windows."""
        return sum(w.cycles for w in self.windows)

    def buffer_utilization_series(
        self, router: int
    ) -> List[Tuple[int, float]]:
        """[(window start cycle, buffer utilization), ...] for one router."""
        cap = self.buffer_capacity(router)
        return [
            (w.start_cycle, w.buffer_utilization(router, cap))
            for w in self.windows
        ]

    def link_utilization_series(
        self, router: int, port: int
    ) -> List[Tuple[int, float]]:
        """[(window start cycle, link utilization), ...] for one channel."""
        return [
            (w.start_cycle, w.link_utilization(router, port))
            for w in self.windows
        ]

    def latency_series(self) -> List[Tuple[int, float]]:
        """[(window start cycle, mean measured latency), ...]."""
        return [(w.start_cycle, w.avg_latency_cycles) for w in self.windows]

    def throughput_series(
        self, num_nodes: Optional[int] = None
    ) -> List[Tuple[int, float]]:
        """[(window start cycle, packets/node/cycle delivered), ...]."""
        nodes = num_nodes or self.network.topology.num_nodes
        return [
            (
                w.start_cycle,
                w.deliveries / (w.cycles * nodes) if w.cycles else 0.0,
            )
            for w in self.windows
        ]

    # -- whole-run averages (must equal NetworkStats in only_measured mode) --
    def time_average_buffer_utilization(self, router: int) -> float:
        """Occupancy integral over all windows; equals
        ``NetworkStats.buffer_utilization`` in ``only_measured`` mode."""
        cycles = self.sampled_cycles()
        cap = self.buffer_capacity(router)
        if cycles == 0 or cap == 0:
            return 0.0
        total = sum(w.occupancy[router] for w in self.windows)
        return total / (cycles * cap)

    def time_average_link_utilization(self, router: int, port: int) -> float:
        """Busy fraction over all windows; equals
        ``NetworkStats.link_utilization`` in ``only_measured`` mode."""
        cycles = self.sampled_cycles()
        if cycles == 0:
            return 0.0
        busy = sum(w.link_busy.get((router, port), 0) for w in self.windows)
        return busy / cycles

    def link_keys(self) -> List[LinkKey]:
        """Every channel observed busy at least once, sorted."""
        keys = set()
        for w in self.windows:
            keys.update(w.link_busy)
        return sorted(keys)

    # -- diagnostics --------------------------------------------------------
    def saturation_onset(
        self, factor: float = 3.0, reference_windows: int = 1
    ) -> Optional[int]:
        """First window whose mean latency exceeds ``factor`` x the mean of
        the first ``reference_windows`` windows; ``None`` if never.

        A cheap knee detector for load sweeps: below saturation the series
        is flat, past it queueing grows without bound window over window.
        """
        baseline_vals = [
            w.avg_latency_cycles
            for w in self.windows[:reference_windows]
            if w.latency_count
        ]
        if not baseline_vals:
            return None
        baseline = sum(baseline_vals) / len(baseline_vals)
        if baseline <= 0:
            return None
        for w in self.windows[reference_windows:]:
            if w.latency_count and w.avg_latency_cycles > factor * baseline:
                return w.index
        return None
