"""ASCII heatmaps for bottleneck-attribution reports.

Renders an :class:`~repro.obs.attribution.AttributionReport` as a
terminal heatmap of per-router outgoing link traffic -- the measurable
version of the paper's Figure 3 diagonal/center concentration -- plus
ranked top-k tables of the most contended links, routers, and
source/destination pairs.

Usage::

    PYTHONPATH=src python -m repro.obs.heatmap attribution.json
    PYTHONPATH=src python -m repro.obs.heatmap attribution.json --top 5
    PYTHONPATH=src python -m repro.obs.heatmap --demo --size 8 --rate 0.05

``--demo`` runs a small instrumented uniform-random simulation in-process
and renders its attribution directly (no file needed); with ``--out`` it
also writes the attribution JSON for later rendering.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.attribution import AttributionReport

__all__ = ["render_grid", "render_report", "demo_report", "main"]

#: Intensity ramp, blank (cold) to ``@`` (hot).
RAMP = " .:-=+*#%@"


def _shade(value: float, peak: float) -> str:
    if peak <= 0:
        return RAMP[0]
    index = int((value / peak) * (len(RAMP) - 1) + 0.5)
    return RAMP[max(0, min(index, len(RAMP) - 1))]


def render_grid(grid: List[List[float]], label: str = "") -> str:
    """Render a row-major numeric grid as a two-chars-per-cell heatmap."""
    peak = max((v for row in grid for v in row), default=0)
    lines = []
    if label:
        lines.append(label)
    width = len(grid[0]) if grid else 0
    lines.append("    +" + "--" * width + "+")
    for row_idx, row in enumerate(grid):
        cells = "".join(_shade(v, peak) * 2 for v in row)
        lines.append(f"  {row_idx:2d}|{cells}|")
    lines.append("    +" + "--" * width + "+")
    lines.append(f"    peak={peak:g}  ramp='{RAMP}'")
    return "\n".join(lines)


def render_report(report: AttributionReport, top_k: int = 10) -> str:
    """Full text rendering: heatmap + conservation line + top-k tables."""
    lines = [
        render_grid(
            report.router_grid(),
            label=(
                f"per-router outgoing link flits "
                f"({report.height}x{report.width}, "
                f"{report.cycles} cycles, source={report.source})"
            ),
        ),
        "",
    ]
    if report.conserved is None:
        lines.append(
            f"link flits total: {report.link_flits_total} "
            "(conservation not checked for window reports)"
        )
    else:
        verdict = "OK" if report.conserved else "VIOLATED"
        lines.append(
            f"flit conservation: {report.link_flits_total} link crossings "
            f"vs {report.expected_link_flits} expected "
            f"(delivered flits x hops) -- {verdict}"
        )
    lines.append("")
    lines.append(f"top {top_k} links (src router/port, flits, utilization):")
    for row in report.top_links(top_k):
        lines.append(
            f"  r{row['router']:<3d} {row['direction']:<5s} "
            f"{row['flits']:>8d} flits   util {row['utilization']:.3f}"
        )
    lines.append("")
    lines.append(
        f"top {top_k} routers (outgoing flits, credit stalls, SA conflicts):"
    )
    for row in report.top_routers(top_k):
        lines.append(
            f"  r{row['router']:<3d} ({row['row']},{row['col']}) "
            f"{row['flits_out']:>8d} flits   "
            f"stalls {row['credit_stalls']:<6d} "
            f"conflicts {row['arbitration_conflicts']}"
        )
    lines.append("")
    lines.append(f"top {top_k} (src, dst) pairs (flits, packets):")
    for row in report.top_pairs(top_k):
        lines.append(
            f"  {row['src']:>3d} -> {row['dst']:<3d} "
            f"{row['flits']:>8d} flits   {row['packets']} packets"
        )
    return "\n".join(lines)


def demo_report(
    size: int = 8,
    rate: float = 0.05,
    seed: int = 11,
    layout: str = "baseline",
    warmup_packets: int = 100,
    measure_packets: int = 600,
) -> AttributionReport:
    """Run a small instrumented uniform-random simulation and attribute it."""
    from repro.core.layouts import build_network, layout_by_name
    from repro.noc.flit import reset_packet_ids
    from repro.obs.attribution import attribute_metrics
    from repro.obs.metrics import KernelMetrics
    from repro.traffic.patterns import pattern_by_name
    from repro.traffic.runner import run_synthetic

    reset_packet_ids()
    network = build_network(layout_by_name(layout, size))
    metrics = KernelMetrics(network)
    network.attach_observer(metrics)
    pattern = pattern_by_name("uniform_random", network.topology)
    run_synthetic(
        network,
        pattern,
        rate,
        seed=seed,
        warmup_packets=warmup_packets,
        measure_packets=measure_packets,
    )
    # run_synthetic stops once the measured packets are accounted for;
    # drain the background load to idle so flit conservation is exact.
    network.drain(max_cycles=400_000)
    network.detach_observer()
    return attribute_metrics(metrics)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.heatmap", description=__doc__
    )
    parser.add_argument(
        "report", nargs="?", default=None,
        help="attribution JSON written by AttributionReport.write_json",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="rows per top-k table (default 10)",
    )
    parser.add_argument(
        "--demo", action="store_true",
        help="run a small instrumented simulation instead of reading a file",
    )
    parser.add_argument("--size", type=int, default=8,
                        help="--demo mesh size (default 8)")
    parser.add_argument("--rate", type=float, default=0.05,
                        help="--demo injection rate (default 0.05)")
    parser.add_argument("--seed", type=int, default=11,
                        help="--demo traffic seed (default 11)")
    parser.add_argument("--layout", default="baseline",
                        help="--demo layout name (default baseline)")
    parser.add_argument(
        "--out", default=None,
        help="also write the attribution JSON to this path (--demo only)",
    )
    args = parser.parse_args(argv)

    if args.demo:
        report = demo_report(
            size=args.size, rate=args.rate, seed=args.seed,
            layout=args.layout,
        )
        if args.out:
            report.write_json(args.out, top_k=args.top)
            print(f"wrote {args.out}")
    elif args.report is not None:
        report = AttributionReport.read_json(args.report)
    else:
        parser.error("give an attribution JSON file or use --demo")
        return 2  # unreachable; parser.error raises SystemExit
    print(render_report(report, top_k=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
