"""Run provenance: sweep spans, search telemetry, and run manifests.

Three pieces, all engine-side (wall-clock) rather than kernel-side
(simulated cycles):

* :class:`SweepTelemetry` -- per-:class:`~repro.exec.point.SweepPoint`
  structured spans recorded by :func:`repro.exec.engine.run_sweep` when a
  telemetry object is passed (or configured): queue wait, simulation wall
  time, worker pid, cache hit/miss, attempt count, config digest.  Spans
  export as JSONL (``type: "span"`` records the replay CLI understands)
  and as Chrome ``trace_event`` complete ("X") events that merge with the
  packet tracer's output.
* :class:`SearchTrace` -- per-step / per-generation best-score telemetry
  from :mod:`repro.search.optimize`.  Purely additive: the optimizers
  never let telemetry touch their RNG, so traced and untraced runs are
  bit-identical.
* :class:`RunManifest` -- the who/what/when of a run: git sha, python and
  platform versions, config digests, point labels, span summary.

Timestamps come from ``time.perf_counter()`` -- CLOCK_MONOTONIC on Linux,
so parent-side submit times and worker-side start times are directly
comparable, which is what makes the queue-wait measurement valid across
processes on one machine.
"""

from __future__ import annotations

import hashlib
import json
import platform as _platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "SweepTelemetry",
    "SearchTrace",
    "RunManifest",
    "git_sha",
    "config_digest",
    "merge_chrome_events",
    "write_spans_jsonl",
]


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Current commit sha, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha or None


def config_digest(config: object) -> str:
    """Stable sha256 of any JSON-serializable configuration object."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_spans_jsonl(path, spans: List[dict]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span) + "\n")


def merge_chrome_events(*event_lists: List[dict]) -> List[dict]:
    """Concatenate Chrome ``trace_event`` lists into one timeline.

    The packet tracer's events tick in simulated cycles while span events
    tick in microseconds of wall clock, so the merged file is two
    process-separated tracks, not one shared clock; ``chrome://tracing``
    renders them as separate rows.
    """
    merged: List[dict] = []
    for events in event_lists:
        merged.extend(events)
    return merged


class SweepTelemetry:
    """Collects one span per executed (or cache-hit) sweep point.

    Pass to :func:`repro.exec.engine.run_sweep` (``telemetry=``) or
    install process-wide with ``repro.exec.engine.configure(telemetry=t)``.
    When no telemetry is installed the engine submits the plain untimed
    runner, so the disabled path is bit-for-bit the pre-telemetry code.
    """

    def __init__(self) -> None:
        self.spans: List[dict] = []

    def record_point(
        self,
        point,
        *,
        queue_wait_s: float,
        sim_s: float,
        worker: int,
        start_s: Optional[float] = None,
        cache_hit: bool = False,
        attempts: int = 1,
        error: Optional[str] = None,
    ) -> dict:
        span = {
            "type": "span",
            "kind": "sweep_point",
            "name": point.label,
            "config_digest": point.key(),
            "queue_wait_s": round(queue_wait_s, 6),
            "sim_s": round(sim_s, 6),
            "worker": worker,
            "start_s": start_s,
            "cache_hit": cache_hit,
            "attempts": attempts,
            "error": error,
        }
        self.spans.append(span)
        return span

    # -- views ----------------------------------------------------------------
    def summary(self) -> dict:
        spans = self.spans
        return {
            "points": len(spans),
            "cache_hits": sum(1 for s in spans if s["cache_hit"]),
            "errors": sum(1 for s in spans if s["error"]),
            "retried_points": sum(1 for s in spans if s["attempts"] > 1),
            "total_sim_s": round(sum(s["sim_s"] for s in spans), 6),
            "total_queue_wait_s": round(
                sum(s["queue_wait_s"] for s in spans), 6
            ),
            "workers": sorted({s["worker"] for s in spans}),
        }

    def chrome_trace_events(self) -> List[dict]:
        """Spans as Chrome complete ("X") events, one track per worker.

        ``ts`` is microseconds since the earliest span start; spans with
        no recorded start (cache hits recorded parent-side) sit at 0.
        """
        starts = [
            s["start_s"] for s in self.spans if s["start_s"] is not None
        ]
        origin = min(starts) if starts else 0.0
        events = []
        for span in self.spans:
            start = span["start_s"]
            ts = 0.0 if start is None else (start - origin) * 1e6
            events.append({
                "name": span["name"],
                "cat": "sweep",
                "ph": "X",
                "ts": ts,
                "dur": span["sim_s"] * 1e6,
                "pid": "sweep",
                "tid": f"worker-{span['worker']}",
                "args": {
                    "queue_wait_s": span["queue_wait_s"],
                    "cache_hit": span["cache_hit"],
                    "attempts": span["attempts"],
                    "error": span["error"],
                    "config_digest": span["config_digest"][:12],
                },
            })
        return events

    def write_jsonl(self, path) -> None:
        write_spans_jsonl(path, self.spans)


class SearchTrace:
    """Best-score telemetry from the metaheuristic searches.

    The optimizers call :meth:`sa_step` / :meth:`generation`; both are
    pure appends -- no RNG access, no effect on the search trajectory.
    """

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.records: List[dict] = []

    def sa_step(
        self,
        chain: int,
        step: int,
        temperature: float,
        current: float,
        best: float,
    ) -> None:
        if step % self.every:
            return
        self.records.append({
            "type": "span",
            "kind": "search_step",
            "algorithm": "simulated_annealing",
            "chain": chain,
            "step": step,
            "temperature": round(temperature, 8),
            "current": current,
            "best": best,
        })

    def generation(
        self, generation: int, best: float, population_best: float
    ) -> None:
        self.records.append({
            "type": "span",
            "kind": "search_generation",
            "algorithm": "evolutionary",
            "generation": generation,
            "best": best,
            "population_best": population_best,
        })

    def best_curve(self) -> List[float]:
        """The best-so-far trajectory across all records, in order."""
        return [r["best"] for r in self.records]

    def write_jsonl(self, path) -> None:
        write_spans_jsonl(path, self.records)


@dataclass
class RunManifest:
    """Provenance record for one experiment run."""

    name: str
    created_at: str
    git_sha: Optional[str] = None
    python: str = ""
    platform: str = ""
    argv: List[str] = field(default_factory=list)
    config: Dict[str, object] = field(default_factory=dict)
    config_sha256: Optional[str] = None
    points: List[dict] = field(default_factory=list)
    sweep_summary: Dict[str, object] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        name: str,
        created_at: str,
        config: Optional[dict] = None,
        points=None,
        telemetry: Optional[SweepTelemetry] = None,
        argv: Optional[List[str]] = None,
        extra: Optional[dict] = None,
    ) -> "RunManifest":
        """Build a manifest from the ambient environment.

        ``created_at`` is injected (an ISO-8601 string from the caller)
        rather than read from the clock here, so tests and resumable
        drivers control it.
        """
        config = dict(config or {})
        manifest = cls(
            name=name,
            created_at=created_at,
            git_sha=git_sha(),
            python=sys.version.split()[0],
            platform=_platform.platform(),
            argv=list(sys.argv if argv is None else argv),
            config=config,
            config_sha256=config_digest(config) if config else None,
            extra=dict(extra or {}),
        )
        for point in points or []:
            manifest.points.append(
                {"label": point.label, "config_digest": point.key()}
            )
        if telemetry is not None:
            manifest.sweep_summary = telemetry.summary()
        return manifest

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "python": self.python,
            "platform": self.platform,
            "argv": self.argv,
            "config": self.config,
            "config_sha256": self.config_sha256,
            "points": self.points,
            "sweep_summary": self.sweep_summary,
            "extra": self.extra,
        }

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json_dict(), fh, indent=1)
            fh.write("\n")

    @classmethod
    def read_json(cls, path) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        return cls(**payload)
