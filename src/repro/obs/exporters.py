"""JSON/CSV exporters for observability artifacts.

Row builders return long-format lists of flat dicts (ready for
:func:`repro.experiments.export.write_rows` or any CSV writer); the
``write_*`` helpers are self-contained so the obs package has no import
cycle with the experiment harnesses.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, List, Optional, Union

from repro.obs.profiler import RunProfiler
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.tracer import PacketTracer

PathLike = Union[str, pathlib.Path]


# -- row builders -----------------------------------------------------------
def sampler_summary_rows(
    sampler: TimeSeriesSampler, num_nodes: Optional[int] = None
) -> List[Dict[str, object]]:
    """One row per window: deliveries, throughput, mean latency."""
    nodes = num_nodes or sampler.network.topology.num_nodes
    rows = []
    for w in sampler.windows:
        rows.append(
            {
                "window": w.index,
                "start_cycle": w.start_cycle,
                "end_cycle": w.end_cycle,
                "cycles": w.cycles,
                "deliveries": w.deliveries,
                "flits_delivered": w.flits_delivered,
                "throughput_packets_per_node_cycle": (
                    w.deliveries / (w.cycles * nodes) if w.cycles else 0.0
                ),
                "avg_latency_cycles": w.avg_latency_cycles,
                "measured_deliveries": w.latency_count,
            }
        )
    return rows


def sampler_buffer_rows(sampler: TimeSeriesSampler) -> List[Dict[str, object]]:
    """One row per (window, router): buffer utilization time series."""
    rows = []
    capacities = [
        sampler.buffer_capacity(r) for r in range(len(sampler.network.routers))
    ]
    for w in sampler.windows:
        for router, capacity in enumerate(capacities):
            rows.append(
                {
                    "window": w.index,
                    "start_cycle": w.start_cycle,
                    "router": router,
                    "occupancy_integral": w.occupancy[router],
                    "buffer_utilization": w.buffer_utilization(
                        router, capacity
                    ),
                }
            )
    return rows


def sampler_link_rows(sampler: TimeSeriesSampler) -> List[Dict[str, object]]:
    """One row per (window, channel): link utilization time series."""
    keys = sampler.link_keys()
    rows = []
    for w in sampler.windows:
        for router, port in keys:
            rows.append(
                {
                    "window": w.index,
                    "start_cycle": w.start_cycle,
                    "router": router,
                    "port": port,
                    "busy_cycles": w.link_busy.get((router, port), 0),
                    "link_utilization": w.link_utilization(router, port),
                }
            )
    return rows


# -- writers ----------------------------------------------------------------
def _write_csv(path: PathLike, rows: List[Dict[str, object]]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        raise ValueError(f"nothing to export to {path}: no rows")
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_sampler_csv(
    sampler: TimeSeriesSampler, directory: PathLike, prefix: str = "obs"
) -> List[pathlib.Path]:
    """Write summary/buffer/link window series as three CSV files."""
    directory = pathlib.Path(directory)
    written = []
    for suffix, rows in (
        ("timeseries", sampler_summary_rows(sampler)),
        ("buffer_series", sampler_buffer_rows(sampler)),
        ("link_series", sampler_link_rows(sampler)),
    ):
        if rows:
            written.append(_write_csv(directory / f"{prefix}_{suffix}.csv", rows))
    return written


def write_sampler_json(
    sampler: TimeSeriesSampler, path: PathLike
) -> pathlib.Path:
    """Dump the full window list (plus whole-run averages) as one JSON doc."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    num_routers = len(sampler.network.routers)
    document = {
        "window_cycles": sampler.window,
        "sampled_cycles": sampler.sampled_cycles(),
        "windows": [
            {
                "index": w.index,
                "start_cycle": w.start_cycle,
                "end_cycle": w.end_cycle,
                "cycles": w.cycles,
                "occupancy": w.occupancy,
                "link_busy": {
                    f"{router}:{port}": busy
                    for (router, port), busy in sorted(w.link_busy.items())
                },
                "deliveries": w.deliveries,
                "flits_delivered": w.flits_delivered,
                "latency_sum": w.latency_sum,
                "latency_count": w.latency_count,
            }
            for w in sampler.windows
        ],
        "time_average_buffer_utilization": [
            sampler.time_average_buffer_utilization(r)
            for r in range(num_routers)
        ],
    }
    with path.open("w") as handle:
        json.dump(document, handle)
    return path


def write_trace_jsonl(tracer: PacketTracer, path: PathLike) -> pathlib.Path:
    """JSONL packet trace (delegates to the tracer)."""
    return tracer.write_jsonl(path)


def write_chrome_trace(tracer: PacketTracer, path: PathLike) -> pathlib.Path:
    """Chrome ``trace_event`` JSON (delegates to the tracer)."""
    return tracer.write_chrome_trace(path)


def write_profile_json(profiler: RunProfiler, path: PathLike) -> pathlib.Path:
    """Profiler report as a JSON document."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(profiler.report(), handle)
    return path


def write_metrics_json(metrics, path: PathLike) -> pathlib.Path:
    """Kernel metrics snapshot (see :class:`repro.obs.metrics.KernelMetrics`)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    metrics.write_json(path)
    return path


def write_attribution(
    metrics, directory: PathLike, prefix: str = "obs"
) -> List[pathlib.Path]:
    """Attribution report as JSON plus per-link / per-pair CSV tables."""
    from repro.obs.attribution import attribute_metrics

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    report = attribute_metrics(metrics)
    json_path = directory / f"{prefix}_attribution.json"
    links_path = directory / f"{prefix}_attribution_links.csv"
    pairs_path = directory / f"{prefix}_attribution_pairs.csv"
    report.write_json(json_path)
    report.write_csv(links_path, pairs_path)
    return [json_path, links_path, pairs_path]


def write_spans_jsonl(telemetry, path: PathLike) -> pathlib.Path:
    """Engine spans as JSONL (see :class:`repro.obs.manifest.SweepTelemetry`)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    telemetry.write_jsonl(path)
    return path
