"""Hop-by-hop packet tracing with JSONL and Chrome trace output.

:class:`PacketTracer` follows selected packets through every hook the
simulator fires and keeps an ordered event list per packet.  Traces export
two ways:

* **JSONL** (:meth:`PacketTracer.write_jsonl`): one JSON object per line,
  each carrying ``packet_id``, ``type`` and ``cycle`` plus event-specific
  fields.  The ``delivered`` record per packet summarizes hop count and the
  latency decomposition endpoints, so a trace file is self-contained --
  ``python -m repro.obs.replay trace.jsonl`` summarizes one.
* **Chrome trace_event** (:meth:`PacketTracer.write_chrome_trace`): a JSON
  document loadable in ``chrome://tracing`` / Perfetto, one timeline row
  per packet (``tid`` = packet id, ``ts`` in simulated cycles).
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.obs.hooks import Observer

Selector = Union[str, Iterable[int], Callable[[object], bool]]


class PacketTracer(Observer):
    """Observer recording per-packet hop-by-hop event streams.

    Args:
        select: which packets to trace --

            * ``"measured"`` (default): packets inside the measurement
              window;
            * ``"all"``: every packet offered to the network;
            * an iterable of packet ids;
            * a callable ``(packet) -> bool``.
        max_packets: stop admitting *new* packets once this many are being
            traced (already-admitted packets keep tracing to completion).
    """

    def __init__(
        self, select: Selector = "measured", max_packets: Optional[int] = None
    ) -> None:
        if isinstance(select, str):
            if select not in ("measured", "all"):
                raise ValueError(
                    f"select must be 'measured', 'all', ids or a callable; "
                    f"got {select!r}"
                )
            self._select = select
        elif callable(select):
            self._select = select
        else:
            self._select = frozenset(int(p) for p in select)
        self.max_packets = max_packets
        self.traces: Dict[int, List[dict]] = {}
        self.delivered: Dict[int, dict] = {}

    # -- admission ----------------------------------------------------------
    def _admit(self, packet) -> Optional[List[dict]]:
        pid = packet.packet_id
        events = self.traces.get(pid)
        if events is not None:
            return events
        if self.max_packets is not None and len(self.traces) >= self.max_packets:
            return None
        select = self._select
        if select == "measured":
            wanted = packet.measured
        elif select == "all":
            wanted = True
        elif callable(select):
            wanted = bool(select(packet))
        else:
            wanted = pid in select
        if not wanted:
            return None
        events = []
        self.traces[pid] = events
        return events

    def _events_for(self, packet) -> Optional[List[dict]]:
        return self.traces.get(packet.packet_id)

    # -- hooks --------------------------------------------------------------
    def on_packet_enqueued(self, packet, cycle: int) -> None:
        events = self._admit(packet)
        if events is None:
            return
        events.append(
            {
                "type": "enqueue",
                "cycle": cycle,
                "packet_id": packet.packet_id,
                "src": packet.src,
                "dst": packet.dst,
                "num_flits": packet.num_flits,
                "created_at": packet.created_at,
                "packet_class": packet.packet_class,
                "measured": packet.measured,
            }
        )

    def on_flit_injected(
        self, node: int, router_id: int, port: int, vc: int, flit, cycle: int
    ) -> None:
        events = self._events_for(flit.packet)
        if events is None:
            return
        events.append(
            {
                "type": "inject",
                "cycle": cycle,
                "packet_id": flit.packet.packet_id,
                "flit": flit.index,
                "node": node,
                "router": router_id,
                "port": port,
                "vc": vc,
            }
        )

    def on_vc_allocated(
        self,
        router_id: int,
        in_port: int,
        in_vc: int,
        out_port: int,
        out_vc: int,
        packet,
        cycle: int,
    ) -> None:
        events = self._events_for(packet)
        if events is None:
            return
        events.append(
            {
                "type": "vc_alloc",
                "cycle": cycle,
                "packet_id": packet.packet_id,
                "router": router_id,
                "in_port": in_port,
                "in_vc": in_vc,
                "out_port": out_port,
                "out_vc": out_vc,
            }
        )

    def on_switch_grant(self, router_id: int, grant, cycle: int) -> None:
        packet = grant.flit.packet
        events = self._events_for(packet)
        if events is None:
            return
        events.append(
            {
                "type": "switch",
                "cycle": cycle,
                "packet_id": packet.packet_id,
                "flit": grant.flit.index,
                "router": router_id,
                "in_port": grant.in_port,
                "in_vc": grant.in_vc,
                "out_port": grant.out_port,
                "out_vc": grant.out_vc,
                "merged": grant.merged,
            }
        )

    def on_link_traversal(
        self,
        src_router: int,
        src_port: int,
        dst_router: int,
        dst_port: int,
        flit,
        cycle: int,
    ) -> None:
        events = self._events_for(flit.packet)
        if events is None:
            return
        events.append(
            {
                "type": "link",
                "cycle": cycle,
                "packet_id": flit.packet.packet_id,
                "flit": flit.index,
                "head": flit.is_head,
                "src_router": src_router,
                "src_port": src_port,
                "dst_router": dst_router,
                "dst_port": dst_port,
            }
        )

    def on_flit_ejected(
        self, router_id: int, port: int, flit, cycle: int
    ) -> None:
        events = self._events_for(flit.packet)
        if events is None:
            return
        events.append(
            {
                "type": "eject",
                "cycle": cycle,
                "packet_id": flit.packet.packet_id,
                "flit": flit.index,
                "router": router_id,
                "port": port,
            }
        )

    def on_packet_delivered(self, packet, cycle: int) -> None:
        events = self._events_for(packet)
        if events is None:
            return
        record = {
            "type": "delivered",
            "cycle": cycle,
            "packet_id": packet.packet_id,
            "hops": packet.hops,
            "latency": packet.received_at - packet.created_at,
            "queuing": (
                packet.injected_at - packet.created_at
                if packet.injected_at is not None
                else None
            ),
            "num_flits": packet.num_flits,
        }
        events.append(record)
        self.delivered[packet.packet_id] = record

    # -- queries ------------------------------------------------------------
    def trace(self, packet_id: int) -> List[dict]:
        """The ordered event list of one traced packet."""
        return self.traces.get(packet_id, [])

    def hop_count(self, packet_id: int) -> int:
        """Inter-router hops taken by the head flit (matches
        ``LatencyRecord.hops``)."""
        return sum(
            1
            for event in self.traces.get(packet_id, [])
            if event["type"] == "link" and event["head"]
        )

    def total_latency(self, packet_id: int) -> Optional[int]:
        """Creation-to-ejection cycles (matches ``LatencyRecord.total``);
        ``None`` while the packet is still in flight."""
        record = self.delivered.get(packet_id)
        return None if record is None else record["latency"]

    def iter_events(self):
        """All events of all traced packets, ordered by packet then time."""
        for pid in sorted(self.traces):
            yield from self.traces[pid]

    # -- export -------------------------------------------------------------
    def write_jsonl(self, path) -> pathlib.Path:
        """Write one JSON object per line; returns the path written."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for event in self.iter_events():
                handle.write(json.dumps(event, separators=(",", ":")))
                handle.write("\n")
        return path

    def chrome_trace_events(self) -> List[dict]:
        """Trace in Chrome ``trace_event`` form (``ts`` = simulated cycle).

        Each packet becomes one timeline row: a ``B``/``E`` duration pair
        spanning enqueue to delivery, with instant events for every VC
        allocation and link traversal in between.
        """
        out: List[dict] = []
        for pid in sorted(self.traces):
            events = self.traces[pid]
            if not events:
                continue
            first = events[0]
            name = f"pkt{pid}"
            if first["type"] == "enqueue":
                name = f"pkt{pid} {first['src']}->{first['dst']}"
            out.append(
                {
                    "name": name,
                    "cat": "packet",
                    "ph": "B",
                    "ts": events[0]["cycle"],
                    "pid": 0,
                    "tid": pid,
                    "args": {k: v for k, v in first.items() if k != "type"},
                }
            )
            end_cycle = events[-1]["cycle"]
            for event in events:
                kind = event["type"]
                if kind == "link":
                    out.append(
                        {
                            "name": (
                                f"r{event['src_router']}"
                                f"->r{event['dst_router']}"
                            ),
                            "cat": "hop",
                            "ph": "i",
                            "s": "t",
                            "ts": event["cycle"],
                            "pid": 0,
                            "tid": pid,
                        }
                    )
                elif kind == "vc_alloc":
                    out.append(
                        {
                            "name": (
                                f"VA r{event['router']} "
                                f"p{event['out_port']}v{event['out_vc']}"
                            ),
                            "cat": "va",
                            "ph": "i",
                            "s": "t",
                            "ts": event["cycle"],
                            "pid": 0,
                            "tid": pid,
                        }
                    )
                elif kind == "delivered":
                    end_cycle = event["cycle"]
            out.append(
                {
                    "name": name,
                    "cat": "packet",
                    "ph": "E",
                    "ts": end_cycle,
                    "pid": 0,
                    "tid": pid,
                }
            )
        return out

    def write_chrome_trace(self, path) -> pathlib.Path:
        """Write a ``chrome://tracing``-loadable JSON document."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "traceEvents": self.chrome_trace_events(),
            "displayTimeUnit": "ns",
            "otherData": {"time_unit": "cycle"},
        }
        with path.open("w") as handle:
            json.dump(document, handle)
        return path
