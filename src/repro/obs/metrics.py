"""Metrics registry and the kernel metrics observer.

Three primitive instruments -- :class:`Counter`, :class:`Gauge`,
:class:`Histogram` -- live in a :class:`MetricsRegistry` keyed by
``(name, labels)``.  :class:`KernelMetrics` is an
:class:`~repro.obs.hooks.Observer` that wires the registry into the
event-driven kernel: per-link and per-VC flit counts, per-pair (src, dst)
traffic matrices, sampled buffer occupancy, and active-set size.

The disabled fast path is the simulator's existing null-object discipline:
metrics are "off" when no observer is attached (``Network.obs is None``),
in which case the kernel performs zero metric calls -- there is no separate
"metrics disabled" flag to check.  ``tests/test_obs_fastpath.py`` proves
the zero-call property and ``benchmarks/test_kernel_speed.py`` bounds the
residual overhead of the attach/detach lifecycle at 5%.

Counter bumps on the hot hooks go through cached :class:`Counter` objects
held in tuple-keyed dicts, so the per-event cost is one dict probe plus one
attribute increment -- no label hashing or string formatting per event.

Credit stalls and arbitration conflicts are *not* hook-driven: the router
counts them unconditionally in :class:`~repro.noc.stats.RouterActivity`
(they live on rare fall-through branches, so the always-on cost is noise),
and :meth:`KernelMetrics.snapshot` reads the delta since attach.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.hooks import Observer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "KernelMetrics",
    "ServeMetrics",
]


class Counter:
    """Monotonically increasing count.

    Hot paths cache the object and bump ``value`` directly; ``inc`` is the
    polite API for cold paths.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-observed value (e.g. active-set size at the latest sample)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-boundary histogram with running sum/min/max.

    ``boundaries`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything beyond the last edge.
    """

    __slots__ = ("boundaries", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, boundaries: Tuple[float, ...]) -> None:
        if list(boundaries) != sorted(boundaries):
            raise ValueError(f"histogram boundaries must ascend: {boundaries}")
        self.boundaries = tuple(boundaries)
        self.bucket_counts = [0] * (len(boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, edge in enumerate(self.boundaries):
            if value <= edge:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


def _label_key(labels: dict) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """A flat namespace of instruments keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Tuple], object] = {}

    def counter(self, name: str, **labels) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(
        self, name: str, boundaries: Tuple[float, ...], **labels
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Histogram(boundaries)
            self._instruments[key] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(f"{name}{labels} already registered as "
                            f"{type(instrument).__name__}")
        return instrument

    def _get(self, name: str, labels: dict, cls) -> object:
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls()
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(f"{name}{labels} already registered as "
                            f"{type(instrument).__name__}")
        return instrument

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> List[dict]:
        """Every instrument as a plain dict row (JSON/CSV friendly)."""
        rows = []
        for (name, labels) in sorted(
            self._instruments, key=lambda k: (k[0], str(k[1]))
        ):
            instrument = self._instruments[(name, labels)]
            row = {"name": name, "labels": dict(labels)}
            if isinstance(instrument, Counter):
                row["kind"] = "counter"
                row["value"] = instrument.value
            elif isinstance(instrument, Gauge):
                row["kind"] = "gauge"
                row["value"] = instrument.value
            else:
                row["kind"] = "histogram"
                row.update(instrument.to_dict())
            rows.append(row)
        return rows

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=1)
            fh.write("\n")


_OCCUPANCY_BUCKETS = (0.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)
_LATENCY_BUCKETS = (10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0, 1280.0)

_WALL_BUCKETS_S = (0.01, 0.05, 0.25, 1.0, 5.0, 25.0, 120.0, 600.0)


class ServeMetrics:
    """Instruments for the :mod:`repro.serve` job server.

    Lives on a :class:`MetricsRegistry`, so ``GET /metrics`` is just
    :meth:`MetricsRegistry.snapshot`.  Wall-clock latency histograms use
    log-spaced buckets from 10 ms to 10 min (sweep points span that whole
    range between fast-scale and ``--full``).

    Worker utilization is derived, not sampled: each worker accumulates
    busy-seconds into a counter, and :meth:`derived` divides by
    ``workers x uptime``.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self.jobs_submitted = reg.counter("serve.jobs_submitted")
        self.jobs_deduped = reg.counter("serve.jobs_deduped")
        self.points_executed = reg.counter("serve.points_executed")
        self.point_cache_hits = reg.counter("serve.point_cache_hits")
        self.point_inflight_joins = reg.counter("serve.point_inflight_joins")
        self.point_errors = reg.counter("serve.point_errors")
        self.http_requests = reg.counter("serve.http_requests")
        self.http_errors = reg.counter("serve.http_errors")
        self.job_latency = reg.histogram("serve.job_latency_s", _WALL_BUCKETS_S)
        self.point_latency = reg.histogram(
            "serve.point_latency_s", _WALL_BUCKETS_S
        )
        self._jobs_finished: Dict[str, Counter] = {}
        self._worker_busy: Dict[int, Counter] = {}

    def job_finished(self, state: str, latency_s: float) -> None:
        counter = self._jobs_finished.get(state)
        if counter is None:
            counter = self.registry.counter("serve.jobs_finished", state=state)
            self._jobs_finished[state] = counter
        counter.inc()
        self.job_latency.observe(latency_s)

    def worker_busy(self, worker: int, busy_s: float) -> None:
        counter = self._worker_busy.get(worker)
        if counter is None:
            counter = self.registry.counter("serve.worker_busy_s",
                                            worker=worker)
            self._worker_busy[worker] = counter
        counter.value += busy_s

    def observe_queue(self, counts: Dict[str, int]) -> None:
        """Record jobs-table state counts as queue-depth gauges."""
        for state in ("queued", "running", "done", "failed", "cancelled"):
            self.registry.gauge("serve.queue_depth", state=state).set(
                counts.get(state, 0)
            )

    def derived(self, workers: int, uptime_s: float) -> Dict[str, float]:
        """Ratios the raw instruments imply (dedup rate, utilization)."""
        submitted = self.jobs_submitted.value + self.jobs_deduped.value
        served = (
            self.points_executed.value
            + self.point_cache_hits.value
            + self.point_inflight_joins.value
        )
        busy = sum(c.value for c in self._worker_busy.values())
        return {
            "job_dedup_rate": (
                self.jobs_deduped.value / submitted if submitted else 0.0
            ),
            "point_cache_hit_rate": (
                (served - self.points_executed.value) / served
                if served else 0.0
            ),
            "worker_utilization": (
                busy / (workers * uptime_s)
                if workers > 0 and uptime_s > 0 else 0.0
            ),
            "uptime_s": uptime_s,
        }


class KernelMetrics(Observer):
    """Observer that populates a :class:`MetricsRegistry` from kernel events.

    Attach with ``network.attach_observer(metrics)`` (or via
    :func:`repro.obs.observe` with ``metrics=True``).  Counts *all* traffic,
    not just the measurement window, so flit conservation is exact: every
    flit of every delivered packet crosses exactly ``hops`` links, hence
    ``total link flits == sum(num_flits * hops)`` once the network is idle
    (fault-free runs; corrupted deliveries skip ``on_packet_delivered``).

    Args:
        network: the :class:`~repro.noc.network.Network` to instrument.
        sample_every: cycle stride for the occupancy / active-set samples.
    """

    def __init__(self, network, sample_every: int = 32) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.network = network
        self.registry = MetricsRegistry()
        self.sample_every = sample_every
        self.cycles = 0
        reg = self.registry
        self._injected = reg.counter("kernel.flits_injected")
        self._enqueued = reg.counter("kernel.packets_offered")
        self._dropped = reg.counter("kernel.packets_dropped")
        self._delivered_packets = reg.counter("kernel.packets_delivered")
        self._delivered_flits = reg.counter("kernel.flits_delivered")
        self._expected_link_flits = reg.counter("kernel.expected_link_flits")
        self._total_link_flits = reg.counter("kernel.link_flits_total")
        self._occupancy_hist = reg.histogram(
            "kernel.buffer_occupancy_flits", _OCCUPANCY_BUCKETS
        )
        self._active_hist = reg.histogram(
            "kernel.active_routers",
            tuple(float(x) for x in (0, 1, 2, 4, 8, 16, 32, 64)),
        )
        self._latency_hist = reg.histogram(
            "kernel.packet_latency_cycles", _LATENCY_BUCKETS
        )
        self._occupancy_gauge = reg.gauge("kernel.buffer_occupancy_now")
        self._active_gauge = reg.gauge("kernel.active_routers_now")
        # Hot-path caches: tuple key -> Counter, bumped via .value directly.
        self._link: Dict[Tuple[int, int], Counter] = {}
        self._link_busy: Dict[Tuple[int, int], Counter] = {}
        self._vc: Dict[Tuple[int, int, int], Counter] = {}
        self._pair_flits: Dict[Tuple[int, int], Counter] = {}
        self._pair_packets: Dict[Tuple[int, int], Counter] = {}
        # Baseline for the credit-stall / arbitration-conflict deltas.
        self._activity_base = [
            r.activity.snapshot() for r in network.routers
        ]

    # -- hot hooks -----------------------------------------------------------
    def on_packet_enqueued(self, packet, cycle: int) -> None:
        self._enqueued.value += 1

    def on_packet_dropped(self, packet, cycle: int) -> None:
        self._dropped.value += 1

    def on_flit_injected(
        self, node: int, router_id: int, port: int, vc: int, flit, cycle: int
    ) -> None:
        self._injected.value += 1

    def on_switch_grant(self, router_id: int, grant, cycle: int) -> None:
        out_vc = grant.out_vc
        key = (router_id, grant.out_port, -1 if out_vc is None else out_vc)
        counter = self._vc.get(key)
        if counter is None:
            counter = self._vc[key] = self.registry.counter(
                "kernel.vc_grants",
                router=key[0], port=key[1], vc=key[2],
            )
        counter.value += 1

    def on_link_traversal(
        self, src_router: int, src_port: int,
        dst_router: int, dst_port: int, flit, cycle: int,
    ) -> None:
        key = (src_router, src_port)
        counter = self._link.get(key)
        if counter is None:
            counter = self._link[key] = self.registry.counter(
                "kernel.link_flits", router=src_router, port=src_port
            )
        counter.value += 1
        self._total_link_flits.value += 1

    def on_link_busy(self, router_id: int, port: int, cycle: int) -> None:
        key = (router_id, port)
        counter = self._link_busy.get(key)
        if counter is None:
            counter = self._link_busy[key] = self.registry.counter(
                "kernel.link_busy_cycles", router=router_id, port=port
            )
        counter.value += 1

    def on_packet_delivered(self, packet, cycle: int) -> None:
        self._delivered_packets.value += 1
        self._delivered_flits.value += packet.num_flits
        self._expected_link_flits.value += packet.num_flits * packet.hops
        self._latency_hist.observe(cycle - packet.created_at)
        key = (packet.src, packet.dst)
        counter = self._pair_flits.get(key)
        if counter is None:
            counter = self._pair_flits[key] = self.registry.counter(
                "kernel.pair_flits", src=key[0], dst=key[1]
            )
            self._pair_packets[key] = self.registry.counter(
                "kernel.pair_packets", src=key[0], dst=key[1]
            )
        counter.value += packet.num_flits
        self._pair_packets[key].value += 1

    def on_cycle_end(self, cycle: int, measuring: bool) -> None:
        self.cycles += 1
        if cycle % self.sample_every == 0:
            network = self.network
            occupancy = sum(
                r.occupied_flits for r in network.routers
            )
            active = len(network._active_routers)
            self._occupancy_hist.observe(occupancy)
            self._active_hist.observe(active)
            self._occupancy_gauge.value = occupancy
            self._active_gauge.value = active

    # -- snapshots ------------------------------------------------------------
    def link_flits(self) -> Dict[Tuple[int, int], int]:
        """``(src_router, src_port) -> flits`` carried since attach."""
        return {key: c.value for key, c in self._link.items()}

    def link_busy(self) -> Dict[Tuple[int, int], int]:
        """``(src_router, src_port) -> cycles with >= 1 flit``."""
        return {key: c.value for key, c in self._link_busy.items()}

    def vc_grants(self) -> Dict[Tuple[int, int, int], int]:
        """``(router, out_port, out_vc) -> grants``; ejection is vc ``-1``."""
        return {key: c.value for key, c in self._vc.items()}

    def pair_flits(self) -> Dict[Tuple[int, int], int]:
        """``(src_node, dst_node) -> delivered flits``."""
        return {key: c.value for key, c in self._pair_flits.items()}

    def pair_packets(self) -> Dict[Tuple[int, int], int]:
        return {key: c.value for key, c in self._pair_packets.items()}

    def router_contention(self) -> List[dict]:
        """Per-router credit stalls / arbitration conflicts since attach."""
        rows = []
        for router, base in zip(self.network.routers, self._activity_base):
            delta = router.activity.delta_since(base)
            rows.append({
                "router": router.router_id,
                "credit_stalls": delta.credit_stalls,
                "arbitration_conflicts": delta.arbitration_conflicts,
                "buffer_writes": delta.buffer_writes,
                "crossbar_traversals": delta.crossbar_traversals,
            })
        return rows

    @property
    def conserved(self) -> bool:
        """True when every delivered flit's hop crossings are accounted for.

        Exact only once the network has drained (in-flight flits have
        crossed links their packets have not yet been credited for) and
        only fault-free (corrupted deliveries never fire the delivery
        hook).
        """
        return (
            self._total_link_flits.value == self._expected_link_flits.value
        )

    def snapshot(self) -> dict:
        """Everything as one JSON-ready dict."""
        busy = self.link_busy()
        return {
            "cycles": self.cycles,
            "sample_every": self.sample_every,
            "packets_offered": self._enqueued.value,
            "packets_dropped": self._dropped.value,
            "packets_delivered": self._delivered_packets.value,
            "flits_injected": self._injected.value,
            "flits_delivered": self._delivered_flits.value,
            "link_flits_total": self._total_link_flits.value,
            "expected_link_flits": self._expected_link_flits.value,
            "conserved": self.conserved,
            "link_flits": [
                {
                    "router": r, "port": p, "flits": v,
                    "busy_cycles": busy.get((r, p), 0),
                }
                for (r, p), v in sorted(self.link_flits().items())
            ],
            "vc_grants": [
                {"router": r, "port": p, "vc": vc, "grants": v}
                for (r, p, vc), v in sorted(self.vc_grants().items())
            ],
            "pair_flits": [
                {"src": s, "dst": d, "flits": v}
                for (s, d), v in sorted(self.pair_flits().items())
            ],
            "router_contention": self.router_contention(),
            "latency_hist": self._latency_hist.to_dict(),
            "occupancy_hist": self._occupancy_hist.to_dict(),
            "active_routers_hist": self._active_hist.to_dict(),
        }

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=1)
            fh.write("\n")
