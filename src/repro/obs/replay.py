"""Summarize (and convert) packet trace and engine span files.

Usage::

    python -m repro.obs.replay trace.jsonl              # print a summary
    python -m repro.obs.replay trace.jsonl --chrome out.json
    python -m repro.obs.replay trace.jsonl --packet 42  # one packet's hops
    python -m repro.obs.replay spans.jsonl              # engine spans

Two record families share the JSONL format:

* packet trace events written by
  :meth:`repro.obs.tracer.PacketTracer.write_jsonl` -- one event object
  per line, each carrying at least ``type``, ``cycle`` and ``packet_id``;
* engine records (``"type": "span"``) written by
  :class:`repro.obs.manifest.SweepTelemetry` /
  :class:`~repro.obs.manifest.SearchTrace` -- per-sweep-point wall-clock
  spans and per-step search telemetry.

A file may mix both; the summary reports each family separately and
``--chrome`` renders packet events as B/E pairs and sweep spans as
complete ("X") events on per-worker tracks.
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Dict, List, Optional


def load_events(path) -> List[dict]:
    """Read a JSONL trace file into a list of event dicts."""
    events = []
    with pathlib.Path(path).open() as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not valid JSON ({exc})"
                ) from None
    return events


def split_records(events: List[dict]):
    """Partition mixed JSONL records into (trace_events, span_records)."""
    trace = [e for e in events if e.get("type") != "span"]
    spans = [e for e in events if e.get("type") == "span"]
    return trace, spans


def summarize_spans(spans: List[dict]) -> Dict[str, object]:
    """Aggregate engine span records into headline numbers."""
    sweep = [s for s in spans if s.get("kind") == "sweep_point"]
    search = [s for s in spans if s.get("kind", "").startswith("search")]
    other = len(spans) - len(sweep) - len(search)
    summary: Dict[str, object] = {
        "spans": len(spans),
        "sweep_points": len(sweep),
        "search_records": len(search),
        "other_spans": other,
    }
    if sweep:
        sims = [s.get("sim_s", 0.0) for s in sweep]
        waits = [s.get("queue_wait_s", 0.0) for s in sweep]
        slowest = max(sweep, key=lambda s: s.get("sim_s", 0.0))
        summary.update({
            "cache_hits": sum(1 for s in sweep if s.get("cache_hit")),
            "errors": sum(1 for s in sweep if s.get("error")),
            "retried_points": sum(
                1 for s in sweep if s.get("attempts", 1) > 1
            ),
            "total_sim_s": sum(sims),
            "total_queue_wait_s": sum(waits),
            "workers": sorted({
                s.get("worker") for s in sweep if s.get("worker") is not None
            }),
            "slowest_point": (slowest.get("name"), slowest.get("sim_s")),
        })
    if search:
        bests = [s["best"] for s in search if "best" in s]
        summary["search_best"] = max(bests) if bests else None
    return summary


def format_span_summary(summary: Dict[str, object]) -> str:
    """Render :func:`summarize_spans` output as printable text."""
    lines = [
        f"spans            {summary['spans']} "
        f"({summary['sweep_points']} sweep points, "
        f"{summary['search_records']} search records)",
    ]
    if summary.get("sweep_points"):
        lines.append(
            f"sweep wall time  sim {summary['total_sim_s']:.3f}s, "
            f"queue wait {summary['total_queue_wait_s']:.3f}s"
        )
        lines.append(
            f"cache/retry/err  {summary['cache_hits']} hits, "
            f"{summary['retried_points']} retried, "
            f"{summary['errors']} errors"
        )
        workers = ", ".join(str(w) for w in summary["workers"])
        lines.append(f"workers          {workers}")
        name, sim_s = summary["slowest_point"]
        lines.append(f"slowest point    {name} ({sim_s:.3f}s)")
    if summary.get("search_best") is not None:
        lines.append(f"search best      {summary['search_best']:.6f}")
    return "\n".join(lines)


def spans_to_chrome(spans: List[dict]) -> List[dict]:
    """Sweep spans as Chrome complete ("X") events (per-worker tracks)."""
    sweep = [s for s in spans if s.get("kind") == "sweep_point"]
    starts = [
        s["start_s"] for s in sweep if s.get("start_s") is not None
    ]
    origin = min(starts) if starts else 0.0
    events = []
    for span in sweep:
        start = span.get("start_s")
        ts = 0.0 if start is None else (start - origin) * 1e6
        events.append({
            "name": span.get("name", "?"),
            "cat": "sweep",
            "ph": "X",
            "ts": ts,
            "dur": span.get("sim_s", 0.0) * 1e6,
            "pid": "sweep",
            "tid": f"worker-{span.get('worker', '?')}",
            "args": {
                "queue_wait_s": span.get("queue_wait_s"),
                "cache_hit": span.get("cache_hit"),
                "attempts": span.get("attempts"),
                "error": span.get("error"),
            },
        })
    return events


def summarize(events: List[dict]) -> Dict[str, object]:
    """Aggregate a trace into headline numbers."""
    by_type: Dict[str, int] = {}
    packets = set()
    delivered: List[dict] = []
    router_events: Dict[int, int] = {}
    first_cycle: Optional[int] = None
    last_cycle: Optional[int] = None
    for event in events:
        kind = event.get("type", "?")
        by_type[kind] = by_type.get(kind, 0) + 1
        pid = event.get("packet_id")
        if pid is not None:
            packets.add(pid)
        cycle = event.get("cycle")
        if cycle is not None:
            first_cycle = cycle if first_cycle is None else min(first_cycle, cycle)
            last_cycle = cycle if last_cycle is None else max(last_cycle, cycle)
        if kind == "delivered":
            delivered.append(event)
        router = event.get("router", event.get("src_router"))
        if router is not None:
            router_events[router] = router_events.get(router, 0) + 1
    hops = [e["hops"] for e in delivered if "hops" in e]
    latencies = [e["latency"] for e in delivered if "latency" in e]
    hottest = sorted(
        router_events.items(), key=lambda item: (-item[1], item[0])
    )[:5]
    return {
        "events": len(events),
        "events_by_type": by_type,
        "packets": len(packets),
        "delivered": len(delivered),
        "first_cycle": first_cycle,
        "last_cycle": last_cycle,
        "avg_hops": sum(hops) / len(hops) if hops else None,
        "max_hops": max(hops) if hops else None,
        "avg_latency_cycles": (
            sum(latencies) / len(latencies) if latencies else None
        ),
        "max_latency_cycles": max(latencies) if latencies else None,
        "hottest_routers": hottest,
    }


def format_summary(summary: Dict[str, object]) -> str:
    """Render :func:`summarize` output as printable text."""
    lines = [
        f"events           {summary['events']}",
        f"packets          {summary['packets']} "
        f"({summary['delivered']} delivered)",
        f"cycle span       {summary['first_cycle']}..{summary['last_cycle']}",
    ]
    if summary["avg_hops"] is not None:
        lines.append(
            f"hops             avg {summary['avg_hops']:.2f}, "
            f"max {summary['max_hops']}"
        )
    if summary["avg_latency_cycles"] is not None:
        lines.append(
            f"latency (cycles) avg {summary['avg_latency_cycles']:.2f}, "
            f"max {summary['max_latency_cycles']}"
        )
    lines.append("events by type:")
    for kind in sorted(summary["events_by_type"]):
        lines.append(f"  {kind:<16} {summary['events_by_type'][kind]}")
    if summary["hottest_routers"]:
        hot = ", ".join(
            f"r{router} ({count})"
            for router, count in summary["hottest_routers"]
        )
        lines.append(f"hottest routers: {hot}")
    return "\n".join(lines)


def format_packet(events: List[dict], packet_id: int) -> str:
    """Hop-by-hop listing of one packet's trace."""
    mine = [e for e in events if e.get("packet_id") == packet_id]
    if not mine:
        return f"packet {packet_id}: not in trace"
    lines = [f"packet {packet_id}: {len(mine)} events"]
    for event in mine:
        detail = ", ".join(
            f"{k}={v}"
            for k, v in event.items()
            if k not in ("type", "cycle", "packet_id")
        )
        lines.append(f"  cycle {event['cycle']:>6}  {event['type']:<10} {detail}")
    return "\n".join(lines)


def to_chrome(events: List[dict]) -> Dict[str, object]:
    """Convert JSONL events into a Chrome ``trace_event`` document."""
    by_packet: Dict[int, List[dict]] = {}
    for event in events:
        pid = event.get("packet_id")
        if pid is not None:
            by_packet.setdefault(pid, []).append(event)
    trace_events: List[dict] = []
    for pid in sorted(by_packet):
        mine = sorted(by_packet[pid], key=lambda e: e.get("cycle", 0))
        trace_events.append(
            {
                "name": f"pkt{pid}",
                "cat": "packet",
                "ph": "B",
                "ts": mine[0].get("cycle", 0),
                "pid": 0,
                "tid": pid,
            }
        )
        for event in mine:
            if event.get("type") == "link":
                trace_events.append(
                    {
                        "name": (
                            f"r{event.get('src_router')}"
                            f"->r{event.get('dst_router')}"
                        ),
                        "cat": "hop",
                        "ph": "i",
                        "s": "t",
                        "ts": event.get("cycle", 0),
                        "pid": 0,
                        "tid": pid,
                    }
                )
        trace_events.append(
            {
                "name": f"pkt{pid}",
                "cat": "packet",
                "ph": "E",
                "ts": mine[-1].get("cycle", 0),
                "pid": 0,
                "tid": pid,
            }
        )
    return {"traceEvents": trace_events, "otherData": {"time_unit": "cycle"}}


def main(argv: List[str]) -> int:
    args = list(argv)
    chrome_out = None
    packet_id = None
    if "--chrome" in args:
        index = args.index("--chrome")
        if index + 1 >= len(args):
            print("--chrome needs an output path", file=sys.stderr)
            return 2
        chrome_out = args[index + 1]
        args = args[:index] + args[index + 2:]
    if "--packet" in args:
        index = args.index("--packet")
        if index + 1 >= len(args):
            print("--packet needs a packet id", file=sys.stderr)
            return 2
        try:
            packet_id = int(args[index + 1])
        except ValueError:
            print(f"--packet needs an integer id, got {args[index + 1]!r}",
                  file=sys.stderr)
            return 2
        args = args[:index] + args[index + 2:]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        events = load_events(args[0])
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    trace_events, spans = split_records(events)
    if packet_id is not None:
        listing = format_packet(trace_events, packet_id)
        print(listing)
        if listing.endswith("not in trace"):
            return 1
    else:
        if trace_events:
            print(format_summary(summarize(trace_events)))
        if spans:
            if trace_events:
                print()
            print(format_span_summary(summarize_spans(spans)))
        if not trace_events and not spans:
            print("empty trace")
    if chrome_out is not None:
        path = pathlib.Path(chrome_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = to_chrome(trace_events)
        document["traceEvents"].extend(spans_to_chrome(spans))
        with path.open("w") as handle:
            json.dump(document, handle)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
