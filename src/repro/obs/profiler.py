"""Wall-clock profiling and progress reporting for simulation runs.

:class:`RunProfiler` answers "where does the wall-clock go?" for the
pure-Python cycle loop: attach one to a network (``network.profiler =
profiler`` or via :func:`repro.obs.observe`) and ``Network.step`` switches
to an instrumented variant that times each per-cycle phase (arrival
delivery, credit delivery, injection, VC allocation, switch allocation +
traversal, occupancy sampling).  The run driver additionally tracks the
warmup / measure / drain phases and the overall cycles-per-second rate.

:class:`Progress` is the payload handed to the ``progress`` callback of
:func:`repro.traffic.runner.run_synthetic`; :func:`make_progress_printer`
builds a ready-made callback that prints ETA lines at a bounded rate.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

#: step-loop phases timed by ``Network._step_profiled`` (in order).
STEP_PHASES = (
    "arrivals",
    "credits",
    "inject",
    "vc_alloc",
    "switch",
    "sample",
)


class RunProfiler:
    """Accumulates wall-clock timings for a simulation run."""

    def __init__(self) -> None:
        self.phase_seconds: Dict[str, float] = {p: 0.0 for p in STEP_PHASES}
        self.steps = 0
        self.wall_seconds = 0.0
        self.run_phase_seconds: Dict[str, float] = {}
        self._started_at: Optional[float] = None
        self._run_phase: Optional[str] = None
        self._run_phase_started = 0.0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "RunProfiler":
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> "RunProfiler":
        if self._started_at is not None:
            self.wall_seconds += time.perf_counter() - self._started_at
            self._started_at = None
        self.enter_run_phase(None)
        return self

    def enter_run_phase(self, name: Optional[str]) -> None:
        """Close the current run-level phase (warmup/measure/drain/...) and
        open ``name`` (``None`` just closes)."""
        now = time.perf_counter()
        if self._run_phase is not None:
            self.run_phase_seconds[self._run_phase] = (
                self.run_phase_seconds.get(self._run_phase, 0.0)
                + now
                - self._run_phase_started
            )
        self._run_phase = name
        self._run_phase_started = now

    # -- called by Network._step_profiled ------------------------------------
    def record_step(
        self,
        arrivals: float,
        credits: float,
        inject: float,
        vc_alloc: float,
        switch: float,
        sample: float,
    ) -> None:
        phase_seconds = self.phase_seconds
        phase_seconds["arrivals"] += arrivals
        phase_seconds["credits"] += credits
        phase_seconds["inject"] += inject
        phase_seconds["vc_alloc"] += vc_alloc
        phase_seconds["switch"] += switch
        phase_seconds["sample"] += sample
        self.steps += 1

    # -- reporting ----------------------------------------------------------
    @property
    def step_seconds(self) -> float:
        """Total time spent inside timed step phases."""
        return sum(self.phase_seconds.values())

    def cycles_per_second(self) -> float:
        """Simulated cycles per wall-clock second."""
        wall = self.wall_seconds or self.step_seconds
        if wall <= 0.0 or self.steps == 0:
            return 0.0
        return self.steps / wall

    def report(self) -> Dict[str, object]:
        """Everything as a plain JSON-serializable dict."""
        step_total = self.step_seconds
        return {
            "wall_seconds": self.wall_seconds,
            "cycles": self.steps,
            "cycles_per_second": self.cycles_per_second(),
            "phase_seconds": dict(self.phase_seconds),
            "phase_fraction": {
                phase: (seconds / step_total if step_total > 0 else 0.0)
                for phase, seconds in self.phase_seconds.items()
            },
            "run_phase_seconds": dict(self.run_phase_seconds),
        }

    def format_report(self) -> str:
        """Human-readable multi-line timing summary."""
        report = self.report()
        lines = [
            f"cycles            {report['cycles']}",
            f"wall clock        {report['wall_seconds']:.3f} s",
            f"cycles/second     {report['cycles_per_second']:.0f}",
            "step-phase breakdown:",
        ]
        for phase in STEP_PHASES:
            seconds = self.phase_seconds[phase]
            fraction = report["phase_fraction"][phase]
            lines.append(f"  {phase:<10} {seconds:8.3f} s  {100 * fraction:5.1f}%")
        if self.run_phase_seconds:
            lines.append("run-phase breakdown:")
            for name, seconds in self.run_phase_seconds.items():
                lines.append(f"  {name:<10} {seconds:8.3f} s")
        return "\n".join(lines)


@dataclass
class Progress:
    """One progress heartbeat from a run driver."""

    phase: str  # "warmup" | "measure" | "drain"
    cycle: int
    done: int  # packets created (warmup/measure) or recorded (drain)
    target: int
    elapsed_s: float

    @property
    def fraction(self) -> float:
        if self.target <= 0:
            return math.nan
        return min(1.0, self.done / self.target)

    @property
    def eta_s(self) -> float:
        """Estimated seconds to completion; ``nan`` until progress exists."""
        if self.done <= 0 or self.target <= 0 or self.elapsed_s <= 0:
            return math.nan
        remaining = max(0, self.target - self.done)
        return self.elapsed_s * remaining / self.done

    def __str__(self) -> str:
        eta = self.eta_s
        eta_text = f"{eta:.1f}s" if not math.isnan(eta) else "?"
        return (
            f"[{self.phase}] cycle {self.cycle}: {self.done}/{self.target} "
            f"({100 * self.fraction:.0f}%), elapsed {self.elapsed_s:.1f}s, "
            f"ETA {eta_text}"
        )


def make_progress_printer(
    stream=None, min_interval_s: float = 1.0
) -> Callable[[Progress], None]:
    """A ``progress`` callback printing at most one line per interval.

    With ``stream=None`` the *current* ``sys.stderr`` is resolved at
    every print: these printers get installed as long-lived engine
    defaults (``repro.exec.configure``), and a stream captured at
    construction time can be redirected or closed long before the next
    sweep runs.  A closed stream never kills the sweep it narrates --
    the heartbeat is dropped instead.
    """
    last = [0.0]

    def _print(progress: Progress) -> None:
        now = time.perf_counter()
        if now - last[0] < min_interval_s:
            return
        last[0] = now
        out = stream if stream is not None else sys.stderr
        try:
            print(progress, file=out)
        except ValueError:
            pass  # stream closed between sweeps; progress is best-effort

    return _print
