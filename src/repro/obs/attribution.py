"""Bottleneck attribution: turn kernel counters into ranked hot spots.

The paper's placement argument (Section 3, Figure 3) is that XY routing
concentrates traffic on the diagonal and center of the mesh; this module
makes that concentration a measurable artifact.  An
:class:`AttributionReport` aggregates per-link flit counts, per-pair
(src, dst) traffic matrices, and per-router contention counters into:

* per-router *outgoing-flit* totals (the heatmap grid);
* a ranked top-k of the most contended links, routers, and pairs;
* a flit-conservation check (``link_flits_total`` must equal
  ``sum(num_flits * hops)`` over delivered packets in a drained,
  fault-free run).

Build one from a live :class:`~repro.obs.metrics.KernelMetrics`
(:func:`attribute_metrics`, whole-run accounting) or from
:class:`~repro.noc.stats.NetworkStats` (:func:`attribute_stats`,
measurement-window accounting, conservation unchecked).  Render with
``python -m repro.obs.heatmap`` or export via :meth:`write_json` /
:meth:`write_csv`.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "AttributionReport",
    "attribute_metrics",
    "attribute_stats",
    "PORT_NAMES",
]

# Mesh port layout: ejection/injection is port 0, then 1 + direction with
# NORTH, EAST, SOUTH, WEST = range(4) (see repro.noc.topology).
PORT_NAMES = {0: "local", 1: "north", 2: "east", 3: "south", 4: "west"}


def port_name(port: int) -> str:
    return PORT_NAMES.get(port, f"port{port}")


@dataclass
class AttributionReport:
    """Aggregated bottleneck attribution for one run (or one window)."""

    width: int
    height: int
    cycles: int
    source: str  # "metrics" (whole run) or "stats" (measurement window)
    # (src_router, src_port) -> flits carried / busy cycles.
    link_flits: Dict[Tuple[int, int], int] = field(default_factory=dict)
    link_busy: Dict[Tuple[int, int], int] = field(default_factory=dict)
    # (src_node, dst_node) -> delivered flits / packets.
    pair_flits: Dict[Tuple[int, int], int] = field(default_factory=dict)
    pair_packets: Dict[Tuple[int, int], int] = field(default_factory=dict)
    # router -> contention counters.
    credit_stalls: Dict[int, int] = field(default_factory=dict)
    arbitration_conflicts: Dict[int, int] = field(default_factory=dict)
    flits_injected: int = 0
    flits_delivered: int = 0
    packets_delivered: int = 0
    link_flits_total: int = 0
    expected_link_flits: Optional[int] = None

    # -- derived views -------------------------------------------------------
    @property
    def conserved(self) -> Optional[bool]:
        """Flit-conservation verdict; ``None`` when not computable
        (stats-window reports never are)."""
        if self.expected_link_flits is None:
            return None
        return self.link_flits_total == self.expected_link_flits

    def router_outgoing_flits(self) -> Dict[int, int]:
        """router -> flits sent on all its outgoing inter-router links."""
        totals: Dict[int, int] = {}
        for (router, _port), flits in self.link_flits.items():
            totals[router] = totals.get(router, 0) + flits
        return totals

    def router_grid(self) -> List[List[int]]:
        """Outgoing-flit totals as a height x width grid (row-major)."""
        totals = self.router_outgoing_flits()
        return [
            [totals.get(row * self.width + col, 0)
             for col in range(self.width)]
            for row in range(self.height)
        ]

    def link_utilization(self, key: Tuple[int, int]) -> float:
        """Fraction of cycles the link carried at least one flit."""
        if self.cycles <= 0:
            return 0.0
        return self.link_busy.get(key, 0) / self.cycles

    def top_links(self, k: int = 10) -> List[dict]:
        ranked = sorted(
            self.link_flits.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [
            {
                "router": router,
                "port": port,
                "direction": port_name(port),
                "flits": flits,
                "utilization": self.link_utilization((router, port)),
            }
            for (router, port), flits in ranked[:k]
        ]

    def top_routers(self, k: int = 10) -> List[dict]:
        totals = self.router_outgoing_flits()
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            {
                "router": router,
                "row": router // self.width,
                "col": router % self.width,
                "flits_out": flits,
                "credit_stalls": self.credit_stalls.get(router, 0),
                "arbitration_conflicts":
                    self.arbitration_conflicts.get(router, 0),
            }
            for router, flits in ranked[:k]
        ]

    def top_pairs(self, k: int = 10) -> List[dict]:
        ranked = sorted(
            self.pair_flits.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [
            {
                "src": src,
                "dst": dst,
                "flits": flits,
                "packets": self.pair_packets.get((src, dst), 0),
            }
            for (src, dst), flits in ranked[:k]
        ]

    # -- serialization -------------------------------------------------------
    def to_json_dict(self, top_k: int = 10) -> dict:
        return {
            "width": self.width,
            "height": self.height,
            "cycles": self.cycles,
            "source": self.source,
            "flits_injected": self.flits_injected,
            "flits_delivered": self.flits_delivered,
            "packets_delivered": self.packets_delivered,
            "link_flits_total": self.link_flits_total,
            "expected_link_flits": self.expected_link_flits,
            "conserved": self.conserved,
            "links": [
                {
                    "router": r,
                    "port": p,
                    "direction": port_name(p),
                    "flits": flits,
                    "busy_cycles": self.link_busy.get((r, p), 0),
                    "utilization": self.link_utilization((r, p)),
                }
                for (r, p), flits in sorted(self.link_flits.items())
            ],
            "pairs": [
                {
                    "src": s,
                    "dst": d,
                    "flits": flits,
                    "packets": self.pair_packets.get((s, d), 0),
                }
                for (s, d), flits in sorted(self.pair_flits.items())
            ],
            "routers": [
                {
                    "router": r,
                    "flits_out": flits,
                    "credit_stalls": self.credit_stalls.get(r, 0),
                    "arbitration_conflicts":
                        self.arbitration_conflicts.get(r, 0),
                }
                for r, flits in sorted(
                    self.router_outgoing_flits().items()
                )
            ],
            "top_links": self.top_links(top_k),
            "top_routers": self.top_routers(top_k),
            "top_pairs": self.top_pairs(top_k),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "AttributionReport":
        report = cls(
            width=payload["width"],
            height=payload["height"],
            cycles=payload["cycles"],
            source=payload.get("source", "metrics"),
            flits_injected=payload.get("flits_injected", 0),
            flits_delivered=payload.get("flits_delivered", 0),
            packets_delivered=payload.get("packets_delivered", 0),
            link_flits_total=payload.get("link_flits_total", 0),
            expected_link_flits=payload.get("expected_link_flits"),
        )
        for row in payload.get("links", []):
            key = (row["router"], row["port"])
            report.link_flits[key] = row["flits"]
            report.link_busy[key] = row.get("busy_cycles", 0)
        for row in payload.get("pairs", []):
            key = (row["src"], row["dst"])
            report.pair_flits[key] = row["flits"]
            report.pair_packets[key] = row.get("packets", 0)
        for row in payload.get("routers", []):
            report.credit_stalls[row["router"]] = row.get("credit_stalls", 0)
            report.arbitration_conflicts[row["router"]] = row.get(
                "arbitration_conflicts", 0
            )
        return report

    def write_json(self, path, top_k: int = 10) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json_dict(top_k), fh, indent=1)
            fh.write("\n")

    @classmethod
    def read_json(cls, path) -> "AttributionReport":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json_dict(json.load(fh))

    def link_rows(self) -> List[dict]:
        return [
            {
                "src_router": r,
                "src_port": p,
                "direction": port_name(p),
                "flits": flits,
                "busy_cycles": self.link_busy.get((r, p), 0),
                "utilization": f"{self.link_utilization((r, p)):.6f}",
            }
            for (r, p), flits in sorted(self.link_flits.items())
        ]

    def pair_rows(self) -> List[dict]:
        return [
            {
                "src": s,
                "dst": d,
                "flits": flits,
                "packets": self.pair_packets.get((s, d), 0),
            }
            for (s, d), flits in sorted(self.pair_flits.items())
        ]

    def write_csv(self, links_path, pairs_path=None) -> None:
        """Write the per-link table (and optionally the per-pair table)."""
        _write_rows(links_path, self.link_rows(),
                    ["src_router", "src_port", "direction", "flits",
                     "busy_cycles", "utilization"])
        if pairs_path is not None:
            _write_rows(pairs_path, self.pair_rows(),
                        ["src", "dst", "flits", "packets"])


def _write_rows(path, rows: List[dict], fieldnames: List[str]) -> None:
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def _mesh_shape(network) -> Tuple[int, int]:
    topology = network.topology
    width = getattr(topology, "width", None)
    height = getattr(topology, "height", None)
    if width is None or height is None:
        # Fall back to a single row for exotic topologies.
        return topology.num_routers, 1
    return width, height


def attribute_metrics(metrics) -> AttributionReport:
    """Whole-run attribution from a :class:`~repro.obs.metrics.KernelMetrics`.

    Conservation is checked: in a drained fault-free run
    ``link_flits_total == expected_link_flits`` exactly.
    """
    network = metrics.network
    width, height = _mesh_shape(network)
    snap = metrics.snapshot()
    report = AttributionReport(
        width=width,
        height=height,
        cycles=metrics.cycles,
        source="metrics",
        link_flits=metrics.link_flits(),
        link_busy=metrics.link_busy(),
        pair_flits=metrics.pair_flits(),
        pair_packets=metrics.pair_packets(),
        flits_injected=snap["flits_injected"],
        flits_delivered=snap["flits_delivered"],
        packets_delivered=snap["packets_delivered"],
        link_flits_total=snap["link_flits_total"],
        expected_link_flits=snap["expected_link_flits"],
    )
    for row in metrics.router_contention():
        report.credit_stalls[row["router"]] = row["credit_stalls"]
        report.arbitration_conflicts[row["router"]] = (
            row["arbitration_conflicts"]
        )
    return report


def attribute_stats(network) -> AttributionReport:
    """Measurement-window attribution from ``network.stats``.

    Uses the always-on :class:`~repro.noc.stats.NetworkStats` counters, so
    it needs no observer -- but it only covers the measurement window and
    per-pair matrices come from the latency records (measured packets
    only).  Conservation is not checked (in-flight flits at the window
    edges make it meaningless).
    """
    stats = network.stats
    width, height = _mesh_shape(network)
    report = AttributionReport(
        width=width,
        height=height,
        cycles=stats.measured_cycles,
        source="stats",
        link_flits=dict(stats.link_flits),
        link_busy=dict(stats.link_busy_cycles),
        flits_delivered=stats.flits_delivered,
        packets_delivered=stats.packets_delivered,
        link_flits_total=sum(stats.link_flits.values()),
        expected_link_flits=None,
    )
    for record in stats.records:
        key = (record.src, record.dst)
        report.pair_flits[key] = (
            report.pair_flits.get(key, 0) + record.num_flits
        )
        report.pair_packets[key] = report.pair_packets.get(key, 0) + 1
    for router_id, activity in enumerate(stats.router_activity):
        if activity.credit_stalls:
            report.credit_stalls[router_id] = activity.credit_stalls
        if activity.arbitration_conflicts:
            report.arbitration_conflicts[router_id] = (
                activity.arbitration_conflicts
            )
    return report
