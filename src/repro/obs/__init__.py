"""Observability for the NoC simulator: tracing, telemetry, profiling.

The package instruments the simulator through lightweight hook points (see
:mod:`repro.obs.hooks`); with no observer attached the core pays only a
``None`` check per tap point.  The pieces:

* :class:`~repro.obs.hooks.Observer` / ``CompositeObserver`` / ``EventLog``
  -- the event bus;
* :class:`~repro.obs.sampler.TimeSeriesSampler` -- windowed utilization /
  latency / throughput series (Figure 1 heat maps as timelines);
* :class:`~repro.obs.tracer.PacketTracer` -- hop-by-hop packet traces with
  JSONL and Chrome ``trace_event`` export;
* :class:`~repro.obs.metrics.KernelMetrics` -- counter/gauge/histogram
  registry over kernel events (per-link/per-VC flit counts, per-pair
  traffic matrices, occupancy and active-set samples);
* :mod:`repro.obs.attribution` / ``python -m repro.obs.heatmap`` --
  bottleneck attribution: ranked contended links/routers/pairs and ASCII
  utilization heatmaps;
* :mod:`repro.obs.manifest` -- engine-side provenance: per-sweep-point
  spans, search telemetry, and run manifests;
* :class:`~repro.obs.profiler.RunProfiler` -- wall-clock phase profiling
  plus :class:`~repro.obs.profiler.Progress` / ETA callbacks;
* :mod:`repro.obs.exporters` -- CSV/JSON writers;
* ``python -m repro.obs.replay trace.jsonl`` -- trace/span summaries.

Typical use::

    from repro.obs import observe
    obs = observe(network, sample_window=200, trace=True, profile=True)
    result = run_synthetic(network, pattern, rate, profiler=obs.profiler)
    obs.finalize()
    obs.sampler.buffer_utilization_series(27)   # hot center router
    obs.tracer.write_jsonl("trace.jsonl")
    print(obs.profiler.format_report())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.hooks import CompositeObserver, EventLog, Observer
from repro.obs.metrics import KernelMetrics, MetricsRegistry
from repro.obs.profiler import (
    Progress,
    RunProfiler,
    make_progress_printer,
)
from repro.obs.sampler import TimeSeriesSampler, WindowSample
from repro.obs.tracer import PacketTracer

__all__ = [
    "Observer",
    "CompositeObserver",
    "EventLog",
    "TimeSeriesSampler",
    "WindowSample",
    "PacketTracer",
    "KernelMetrics",
    "MetricsRegistry",
    "RunProfiler",
    "Progress",
    "make_progress_printer",
    "Observation",
    "observe",
]


@dataclass
class Observation:
    """The bundle of observers :func:`observe` attached to a network."""

    network: object
    observer: CompositeObserver
    sampler: Optional[TimeSeriesSampler] = None
    tracer: Optional[PacketTracer] = None
    profiler: Optional[RunProfiler] = None
    metrics: Optional[KernelMetrics] = None

    def finalize(self) -> "Observation":
        """Flush partial sampler windows and stop the profiler."""
        if self.sampler is not None:
            self.sampler.finalize()
        if self.profiler is not None:
            self.profiler.stop()
        return self

    def detach(self) -> "Observation":
        """Detach every observer (and the profiler) from the network."""
        self.network.detach_observer()
        self.network.profiler = None
        return self


def observe(
    network,
    sample_window: Optional[int] = 100,
    trace: bool = False,
    trace_select="measured",
    trace_max_packets: Optional[int] = None,
    profile: bool = False,
    only_measured: bool = True,
    metrics: bool = False,
    metrics_sample_every: int = 32,
) -> Observation:
    """Attach a ready-made observer stack to ``network``.

    Args:
        network: a :class:`~repro.noc.network.Network`.
        sample_window: window width (cycles) for the time-series sampler;
            ``None`` disables sampling.
        trace: enable the packet tracer.
        trace_select: tracer selection (see :class:`PacketTracer`).
        trace_max_packets: cap on concurrently traced packets.
        profile: enable step-phase wall-clock profiling (the profiler is
            created and attached; pass it to ``run_synthetic`` as
            ``profiler=`` so run phases and total wall time are recorded).
        only_measured: restrict sampling to the measurement window so the
            series aggregate exactly to ``NetworkStats`` utilization.
        metrics: attach a :class:`~repro.obs.metrics.KernelMetrics`
            (whole-run counters: per-link/per-VC flits, per-pair traffic,
            occupancy and active-set samples).
        metrics_sample_every: cycle stride for the metrics occupancy /
            active-set samples.
    """
    composite = CompositeObserver()
    sampler = None
    if sample_window is not None:
        sampler = TimeSeriesSampler(
            network, window=sample_window, only_measured=only_measured
        )
        composite.add(sampler)
    tracer = None
    if trace:
        tracer = PacketTracer(
            select=trace_select, max_packets=trace_max_packets
        )
        composite.add(tracer)
    kernel_metrics = None
    if metrics:
        kernel_metrics = KernelMetrics(
            network, sample_every=metrics_sample_every
        )
        composite.add(kernel_metrics)
    profiler = RunProfiler() if profile else None
    network.attach_observer(composite)
    if profiler is not None:
        network.profiler = profiler
    return Observation(
        network=network,
        observer=composite,
        sampler=sampler,
        tracer=tracer,
        profiler=profiler,
        metrics=kernel_metrics,
    )
