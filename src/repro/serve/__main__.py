"""``python -m repro.serve`` -- run the sweep job server.

Usage::

    python -m repro.serve --store results.sqlite --port 8923
    python -m repro.serve --store results.sqlite --port 0 --workers 4

``--port 0`` binds an ephemeral port (printed on stderr at startup).
SIGTERM/SIGINT stop the server; a job caught mid-run is left in the
``running`` state, which the next start requeues -- committed points
replay from the store, so stopping is always safe.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import List, Optional

from repro.serve.server import SweepServer


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run the always-on sweep job server.",
    )
    parser.add_argument(
        "--store", required=True,
        help="SQLite result store (created when missing); jobs, the "
             "journal and results all live here",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8923,
                        help="listen port (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker threads executing jobs (default 2)")
    parser.add_argument(
        "--point-timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock budget (unenforced in worker "
             "threads on platforms without SIGALRM)",
    )
    parser.add_argument("--retries", type=int, default=1,
                        help="extra attempts per failing point (default 1)")
    args = parser.parse_args(argv)

    server = SweepServer(
        args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        point_timeout=args.point_timeout,
        retries=args.retries,
    )

    def _shutdown(signum, frame):
        server._stop.set()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    server.serve_forever()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
